/**
 * @file
 * Quickstart: the core library in ~60 lines.
 *
 * Builds a scaled instance of the paper's `ls` e-commerce graph, runs
 * mini-batch multi-hop sampling with the streaming step sampler
 * (AxE's Tech-2), and pushes the sampled batch through a 2-layer
 * GraphSAGE-max model — the full LSD-GNN data path in software.
 *
 * Run: ./quickstart
 */

#include <iostream>

#include "gnn/graphsage.hh"
#include "graph/datasets.hh"
#include "sampling/minibatch.hh"

int
main()
{
    using namespace lsdgnn;

    // 1. Materialize a functional instance of the Table 2 "ls"
    //    dataset at 1/500000 scale (same degree skew, same 84-float
    //    attributes).
    const auto &spec = graph::datasetByName("ls");
    const graph::CsrGraph g = graph::instantiate(spec, 500'000);
    const graph::AttributeStore attrs(spec.attr_len);
    std::cout << "graph: " << g.numNodes() << " nodes, " << g.numEdges()
              << " edges, avg degree " << g.avgDegree() << "\n";

    // 2. Sample one mini-batch: 2 hops, fan-out 10/10, batch 32.
    sampling::SamplePlan plan;
    plan.batch_size = 32;
    plan.fanouts = {10, 10};
    const sampling::StreamingStepSampler sampler;
    sampling::MiniBatchSampler engine(g, attrs, sampler);
    Rng rng(42);
    const sampling::SampleResult batch = engine.sampleBatch(plan, rng);
    std::cout << "sampled " << batch.totalSampled()
              << " nodes for " << batch.roots.size() << " roots\n";

    // 3. Traffic accounting — the quantity the whole paper is about.
    const auto &traffic = engine.traffic();
    std::cout << "memory requests: " << traffic.totalRequests()
              << " (" << traffic.structureRequestFraction() * 100
              << "% fine-grained structure reads), "
              << traffic.totalBytes() << " bytes\n";

    // 4. GNN-NN stage: embed the roots with GraphSAGE-max.
    Rng model_rng(7);
    const gnn::GraphSageModel model(spec.attr_len, 128, plan.hops(),
                                    model_rng);
    const gnn::Matrix embeddings = model.embed(batch, attrs);
    std::cout << "embeddings: " << embeddings.rows() << " x "
              << embeddings.cols() << " (first root: [";
    for (std::size_t j = 0; j < 4; ++j)
        std::cout << embeddings.at(0, j) << (j < 3 ? ", " : " ...])\n");
    return 0;
}
