/**
 * @file
 * Capacity-planning scenario: "I have this graph and this sampling
 * throughput target — which FaaS architecture and instance size
 * should I rent?"
 *
 * Walks the paper's eight architectures x three instance sizes for a
 * dataset, sizes the service (instances to hold the graph, GPUs to
 * absorb the output), prices it with the fitted cost model, and
 * recommends the cheapest configuration meeting the target.
 *
 * Run: ./faas_planner [dataset] [target_Msamples_per_s]
 *   dataset: ss|ls|sl|ml|ll|syn (default ll)
 *   target: service throughput target in Msamples/s (default 50)
 */

#include <cstdlib>
#include <iostream>
#include <optional>

#include "common/table.hh"
#include "faas/dse.hh"

int
main(int argc, char **argv)
{
    using namespace lsdgnn;
    using namespace lsdgnn::faas;

    const std::string dataset = argc > 1 ? argv[1] : "ll";
    const double target = (argc > 2 ? std::atof(argv[2]) : 50.0) * 1e6;

    const DseExplorer dse;
    std::cout << "planning for dataset '" << dataset << "', target "
              << target / 1e6 << "M samples/s\n\n";

    TextTable table;
    table.header({"architecture", "size", "instances", "GPUs",
                  "service samples/s", "$/hour", "perf/$ vs CPU",
                  "meets target"});

    const double cpu_ref_small =
        dse.cpuPerfPerDollarGeomean(InstanceSize::Small);
    std::optional<DsePoint> best;
    for (const auto &arch : allArchitectures()) {
        for (auto size : {InstanceSize::Small, InstanceSize::Medium,
                          InstanceSize::Large}) {
            const auto p = dse.evaluate(dataset, arch, size);
            const bool meets = p.service_samples_per_s >= target;
            const double cpu_geo = dse.cpuPerfPerDollarGeomean(size);
            table.row({arch.name(), sizeName(size),
                       TextTable::num(std::uint64_t(p.instances)),
                       TextTable::num(p.gpus, 1),
                       TextTable::num(p.service_samples_per_s / 1e6, 1) +
                           "M",
                       TextTable::num(p.service_cost, 2),
                       TextTable::num(p.perf_per_dollar / cpu_geo, 2) +
                           "x",
                       meets ? "yes" : "no"});
            if (meets &&
                (!best || p.service_cost < best->service_cost)) {
                best = p;
            }
        }
    }
    table.print(std::cout);
    (void)cpu_ref_small;

    const auto cpu = dse.cpuBaseline(dataset, InstanceSize::Medium);
    std::cout << "\nCPU baseline (medium): " << cpu.instances
              << " instances, "
              << TextTable::num(cpu.service_samples_per_s / 1e6, 1)
              << "M samples/s at $" << TextTable::num(cpu.service_cost, 2)
              << "/h\n";

    if (best) {
        std::cout << "\nrecommendation: " << best->arch.name() << " / "
                  << sizeName(best->size) << " — " << best->instances
                  << " instances + " << TextTable::num(best->gpus, 1)
                  << " V100s at $"
                  << TextTable::num(best->service_cost, 2) << "/h ("
                  << TextTable::num(best->service_samples_per_s / 1e6, 1)
                  << "M samples/s, bottleneck: "
                  << bottleneckName(best->bottleneck) << ")\n";
    } else {
        std::cout << "\nno configuration meets the target — consider "
                     "sharding the service or lowering the target.\n";
    }
    return 0;
}
