/**
 * @file
 * Programmability scenario: drive the accelerator from C-level
 * control code running on the RISC-V controller.
 *
 * Assembles (with the in-repo encoders) a control program that
 * submits a batch of "sample 2-hop" commands to the AxE command
 * decoder through the QRCH queues, waits for completions, and then
 * repeats the exercise over MMIO to show the Table 7 gap live.
 *
 * Run: ./riscv_control
 */

#include <iostream>

#include "common/table.hh"
#include "riscv/control.hh"
#include "riscv/encode.hh"
#include "riscv/qrch.hh"
#include "riscv/rv32.hh"

int
main()
{
    using namespace lsdgnn;
    using namespace lsdgnn::riscv;
    using namespace lsdgnn::riscv::encode;

    // --- QRCH path -----------------------------------------------
    Rv32Core core;
    QrchHub hub(2, 32);
    CommandDevice axe_decoder;
    hub.setConsumer(0, [&](std::uint32_t lo, std::uint32_t hi) {
        axe_decoder.qrchCommand(lo, hi);
    });
    axe_decoder.attachResponseQueue(&hub, 1);
    core.attachQrch(&hub);

    // Control program: submit 8 sample commands. Each command packs
    // (root_base, batch_size<<16 | fanout) and waits for the ack.
    //   a0 = root base, a1 = arg word, a2 = loop counter
    const std::int32_t loop = 5 * 4; // body length in bytes
    std::vector<Insn> prog = {
        addi(a0, zero, 0x100),     // first root id
        lui(a1, 0x200),            // batch field
        addi(a1, a1, 10),          // fan-out 10
        addi(a2, zero, 8),         // 8 commands
        // loop:
        qrchEnq(0, a0, a1),        // push (roots, args) to AxE
        qrchDeq(a3, 1),            // wait for the ack
        addi(a0, a0, 64),          // next root window
        addi(a2, a2, -1),
        bne(a2, zero, -(loop - 4)),
        ecall(),
    };
    core.loadProgram(prog);
    const auto reason = core.run();
    std::cout << "QRCH control program: "
              << (reason == StopReason::Ecall ? "completed" : "FAILED")
              << " after " << core.cycles() << " cycles, "
              << core.instructionsRetired() << " instructions\n";

    TextTable cmds;
    cmds.header({"command #", "root base", "batch|fanout", "ack"});
    for (std::size_t i = 0; i < axe_decoder.received().size(); ++i) {
        const auto &c = axe_decoder.received()[i];
        cmds.row({TextTable::num(std::uint64_t(i)),
                  "0x" + TextTable::num(std::uint64_t(c.lo)),
                  "0x" + TextTable::num(std::uint64_t(c.hi)),
                  "ok"});
    }
    cmds.print(std::cout);

    // --- Table 7 comparison live ---------------------------------
    const auto mmio = measureMmioInteraction(64);
    const auto qrch = measureQrchInteraction(64);
    std::cout << "\ninteraction cost: MMIO "
              << TextTable::num(mmio.cycles_per_command, 1)
              << " cyc/command vs QRCH "
              << TextTable::num(qrch.cycles_per_command, 1)
              << " cyc/command ("
              << TextTable::num(
                     mmio.cycles_per_command / qrch.cycles_per_command,
                     1)
              << "x faster control path)\n";
    return 0;
}
