/**
 * @file
 * Framework-integration scenario (paper Section 5): the AliGraph-like
 * session facade with transparent backend selection, plus mini-batch
 * GraphSAGE training fed by the sampling substrate.
 *
 * The same model code runs against the CPU software backend and the
 * AxE offload backend; only the construction flag changes — the
 * "near-transparent user interface" the paper integrates its
 * hardware behind.
 *
 * Run: ./aligraph_session
 */

#include <iostream>

#include "common/table.hh"
#include "framework/session.hh"
#include "gnn/train.hh"

int
main()
{
    using namespace lsdgnn;

    sampling::SamplePlan plan;
    plan.batch_size = 32;
    plan.fanouts = {10, 10};

    // --- Same model code, two backends ----------------------------
    TextTable table;
    table.header({"backend", "samples/batch", "traffic reqs",
                  "hot-cache hits", "modeled samples/s"});
    for (auto backend : {framework::Backend::Software,
                         framework::Backend::AxeOffload}) {
        framework::SessionConfig cfg;
        cfg.dataset = "ls";
        cfg.scale_divisor = 500'000;
        cfg.num_servers = 4;
        cfg.backend = backend;
        cfg.hot_cache_fraction = 0.02;
        framework::Session session(cfg);

        std::uint64_t sampled = 0;
        for (int i = 0; i < 4; ++i) {
            const auto batch = session.sampleBatch(plan);
            sampled += batch.totalSampled();
            if (i == 0) {
                const auto emb = session.embed(batch);
                (void)emb; // model code is backend-agnostic
            }
        }
        table.row({backend == framework::Backend::Software
                       ? "software (CPU)"
                       : "AxE offload",
                   TextTable::num(sampled / 4),
                   TextTable::num(session.traffic().totalRequests()),
                   TextTable::num(session.hotCacheHitRate() * 100, 1) +
                       "%",
                   TextTable::num(
                       session.estimatedSamplesPerSecond(plan) / 1e6,
                       2) + "M"});
    }
    table.print(std::cout);

    // --- Training on the sampling substrate ------------------------
    std::cout << "\ntraining graphSAGE (link prediction, "
                 "negative sampling)...\n";
    framework::SessionConfig cfg;
    cfg.dataset = "ss";
    cfg.scale_divisor = 40'000;
    framework::Session session(cfg);

    gnn::TrainConfig train_cfg;
    train_cfg.batch_size = 16;
    train_cfg.learning_rate = 0.01f;
    graph::AttributeStore attrs(session.dataset().attr_len, 5);
    gnn::LinkPredictionTrainer trainer(session.graph(), attrs, 32,
                                       train_cfg);
    const double auc_before = trainer.evaluateAuc(128);
    for (int epoch = 0; epoch < 3; ++epoch) {
        double loss = 0;
        for (int i = 0; i < 10; ++i)
            loss += trainer.step().loss;
        std::cout << "  epoch " << epoch << ": mean loss "
                  << TextTable::num(loss / 10, 4) << "\n";
    }
    std::cout << "  pair-ranking score: "
              << TextTable::num(auc_before, 3) << " -> "
              << TextTable::num(trainer.evaluateAuc(128), 3) << "\n";
    return 0;
}
