/**
 * @file
 * GNN-serving scenario: the concurrent frontend from src/service
 * driven the way a trainer/inference fleet would — many client
 * threads submitting Jobs against a shared worker pool, with dynamic
 * micro-batching (Tech-1-style request packing) and admission control
 * absorbing an overload burst. With --mode embed the fleet drives the
 * full sample -> gather -> GraphSAGE pipeline and replies carry one
 * embedding row per root.
 *
 * Run: ./sampling_server [workers] [clients]
 *        [--mode sample|embed|train]  job kind the fleet submits
 *                        (default sample; embed/train run the full
 *                        end-to-end pipeline per request)
 *        [--tenants N]   register N tenants ("online" + N-1 "train-k"
 *                        batch tenants) and finish with a mixed-tenant
 *                        QoS phase: a paced Interactive tenant riding
 *                        through the batch tenants' flood
 *        [--lane interactive|batch]  priority lane the closed-loop
 *                        fleet submits on (default interactive)
 *        [--rate QPS]    per-tenant token-bucket admission rate
 *                        (default 0 = unlimited)
 * Observability hooks:
 *  - LSDGNN_TRACE=server.trace.json    Perfetto timeline (per-worker
 *    batch slices, per-request spans + flow arrows, queue depth).
 *  - LSDGNN_METRICS=server.metrics.json  windowed SLO metrics of the
 *    final phase (per-stage p50/p99 deltas) as one JSON object.
 *  - LSDGNN_FLIGHT=server.flight.json  anomaly flight-recorder dump
 *    path (deadline misses / shed spikes trip it automatically).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/stat_registry.hh"
#include "common/table.hh"
#include "service/load_gen.hh"

using namespace std::chrono_literals;

namespace {

/** Print one phase's windowed per-stage latency breakdown. */
void
printWindow(const char *phase, const lsdgnn::stats::WindowReport &w)
{
    using lsdgnn::TextTable;
    TextTable table;
    table.header({"stage", "n", "p50 us", "p99 us"});
    for (const char *stage :
         {"queue", "batch", "sample", "gather", "compute", "remote"}) {
        const auto *h = w.findHistogram(
            std::string("service.stage.") + stage, "us");
        if (h == nullptr)
            continue;
        table.row({stage, TextTable::num(h->n),
                   TextTable::num(h->percentile(0.5), 1),
                   TextTable::num(h->percentile(0.99), 1)});
    }
    std::cout << "\n" << phase << " window ("
              << TextTable::num(w.window_s * 1e3, 0) << " ms, "
              << w.counterDelta("service", "completed")
              << " completed):\n";
    table.print(std::cout);

    // Async-fabric health for the same window: hedge pressure and
    // in-flight depth per batch that actually crossed the fabric.
    const auto *hedges =
        w.findHistogram("service.stage.fabric", "hedges");
    const auto *depth =
        w.findHistogram("service.stage.fabric", "inflight_peak");
    if (hedges != nullptr && depth != nullptr && depth->n != 0)
        std::cout << "fabric: hedges p99 "
                  << TextTable::num(hedges->percentile(0.99), 1)
                  << "/batch, in-flight peak p50 "
                  << TextTable::num(depth->percentile(0.5), 0)
                  << " p99 "
                  << TextTable::num(depth->percentile(0.99), 0)
                  << " reads\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsdgnn;

    std::uint32_t tenants = 1;
    double tenant_rate = 0.0;
    service::Lane fleet_lane = service::Lane::Interactive;
    service::JobKind fleet_kind = service::JobKind::Sample;
    std::vector<const char *> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--mode" && i + 1 < argc) {
            const std::string_view mode = argv[++i];
            fleet_kind = mode == "embed" ? service::JobKind::Embed
                         : mode == "train"
                             ? service::JobKind::TrainStep
                             : service::JobKind::Sample;
        } else if (arg == "--tenants" && i + 1 < argc)
            tenants = std::uint32_t(
                std::max(1, std::atoi(argv[++i])));
        else if (arg == "--lane" && i + 1 < argc)
            fleet_lane = std::string_view(argv[++i]) == "batch"
                             ? service::Lane::Batch
                             : service::Lane::Interactive;
        else if (arg == "--rate" && i + 1 < argc)
            tenant_rate = std::atof(argv[++i]);
        else
            positional.push_back(argv[i]);
    }
    const std::uint32_t workers =
        positional.size() > 0
            ? std::uint32_t(std::atoi(positional[0]))
            : 2;
    const std::uint32_t clients =
        positional.size() > 1
            ? std::uint32_t(std::atoi(positional[1]))
            : 4;

    service::ServiceConfig::Builder builder;
    builder.dataset("ss", 40'000)
        .servers(4)
        .workers(workers)
        .queueCapacity(128)
        .batchWindow(200us)
        .defaultDeadline(10ms); // in-queue staleness bound
    for (std::uint32_t t = 1; t <= tenants; ++t) {
        service::TenantConfig tenant;
        tenant.name =
            t == 1 ? "online" : "train-" + std::to_string(t - 1);
        tenant.rate_qps = tenant_rate;
        builder.tenant(t, tenant);
    }

    sampling::SamplePlan plan;
    plan.batch_size = 64;
    plan.fanouts = {10, 10};

    std::cout << "serving " << toString(fleet_kind) << " jobs: "
              << workers << " workers, " << clients
              << " closed-loop clients (" << toString(fleet_lane)
              << " lane), " << tenants
              << " tenant(s)"
              << (tenant_rate > 0
                      ? ", " + TextTable::num(tenant_rate, 0) +
                            " QPS/tenant admission rate"
                      : std::string())
              << ", 200 us batching window\n\n";

    // Every fleet submission bills tenant 1 on the requested lane.
    service::SubmitOptions fleet_options;
    fleet_options.tenant = 1;
    fleet_options.lane = fleet_lane;

    service::Service svc(builder.build());

    // Rolling SLO window over the service + fabric groups. Snapshot
    // deltas, not resets: any number of these can coexist.
    stats::WindowedStats window({"service", "mof.remote"});

    // A single job end to end: execute() blocks and folds the reply
    // into Result<Reply> (service allocates the trace id). Embed and
    // train-step replies carry embeddings instead of a subgraph.
    const service::Job job =
        service::Job::of(fleet_kind, plan, fleet_options);
    const auto warmup = svc.execute(job);
    if (!warmup.ok()) {
        std::cerr << "warm-up failed: " << warmup.status().toString()
                  << "\n";
        return 1;
    }
    const service::Reply &reply = warmup.value();
    std::cout << "warm-up " << toString(reply.kind) << ": "
              << reply.status.toString() << ", ";
    if (reply.hasEmbeddings())
        std::cout << reply.embeddings.rows() << "x"
                  << reply.embeddings.cols() << " embeddings ("
                  << reply.flops << " flops)";
    else
        std::cout << reply.batch.totalSampled() << " samples";
    if (reply.kind == service::JobKind::TrainStep)
        std::cout << ", loss " << reply.loss;
    std::cout << ", " << reply.e2e_us << " us end-to-end (worker "
              << reply.worker << ", trace_id " << reply.trace_id
              << ", span " << reply.span_id << " in batch span "
              << reply.batch_span_id << ")\n";

    // Steady state: a closed-loop client fleet.
    service::LoadGenerator gen(svc);
    const auto steady = gen.runClosedLoop(job, clients, 300ms);
    printWindow("steady", window.collect());

    TextTable table;
    table.header({"phase", "offered", "ok", "shed %", "goodput QPS",
                  "p50 us", "p99 us"});
    table.row({"closed loop", TextTable::num(steady.offered),
               TextTable::num(steady.ok),
               TextTable::num(steady.shedFraction() * 100, 1),
               TextTable::num(steady.goodput_qps, 0),
               TextTable::num(steady.p50_us, 1),
               TextTable::num(steady.p99_us, 1)});

    // Overload burst: open-loop Poisson arrivals at ~4x the measured
    // capacity with a tight deadline — admission control sheds the
    // excess instead of queueing it forever.
    const auto burst =
        gen.runOpenLoop(job, 4 * steady.goodput_qps, 200ms, 99);
    const stats::WindowReport burstWindow = window.collect();
    printWindow("overload", burstWindow);
    table.row({"overload x4", TextTable::num(burst.offered),
               TextTable::num(burst.ok),
               TextTable::num(burst.shedFraction() * 100, 1),
               TextTable::num(burst.goodput_qps, 0),
               TextTable::num(burst.p50_us, 1),
               TextTable::num(burst.p99_us, 1)});
    std::cout << "\n";
    table.print(std::cout);

    // Mixed-tenant QoS phase: the "online" tenant keeps a paced
    // Interactive stream inside its SLO while the "train-k" tenants
    // flood the Batch lane; lane budgets and weighted-fair dequeue
    // keep the flood from starving the online traffic.
    if (tenants >= 2) {
        std::vector<service::TenantRun> runs;
        service::TenantRun online;
        online.label = "online";
        online.tenant = 1;
        online.lane = service::Lane::Interactive;
        online.kind = fleet_kind;
        online.plan = plan;
        online.plan.batch_size = 8;
        online.target_qps = 200.0;
        online.deadline = 25ms; // doubles as the SLO target
        online.seed = 11;
        runs.push_back(online);
        for (std::uint32_t t = 2; t <= tenants; ++t) {
            service::TenantRun train;
            train.label = "train-" + std::to_string(t - 1);
            train.tenant = t;
            train.lane = service::Lane::Batch;
            train.kind = fleet_kind == service::JobKind::Sample
                             ? service::JobKind::Sample
                             : service::JobKind::TrainStep;
            train.plan = plan;
            train.plan.batch_size = 256;
            train.target_qps = 20'000.0 / double(tenants - 1);
            train.seed = 13 + t;
            runs.push_back(train);
        }
        const auto mixed = gen.runMixed(runs, 300ms);
        printWindow("mixed-tenant", window.collect());

        TextTable mt;
        mt.header({"tenant", "lane", "offered", "ok", "SLO %",
                   "shed %", "sheds (adm/full/brown/ddl)"});
        for (const auto &[run, r] : mixed.runs)
            mt.row({run.label, toString(run.lane),
                    TextTable::num(r.offered), TextTable::num(r.ok),
                    TextTable::num(r.sloAttainment() * 100, 1),
                    TextTable::num(r.shedFraction() * 100, 1),
                    TextTable::num(r.sheds.admission_throttle) + "/" +
                        TextTable::num(r.sheds.queue_full) + "/" +
                        TextTable::num(r.sheds.brownout) + "/" +
                        TextTable::num(r.sheds.deadline_drop)});
        std::cout << "\n";
        mt.print(std::cout);
    }

    svc.shutdown();

    if (const char *path = std::getenv("LSDGNN_METRICS");
        path != nullptr && *path != '\0') {
        std::ofstream out(path, std::ios::trunc);
        burstWindow.exportJson(out);
        out << "\n";
        std::cout << "\nwindowed metrics written to " << path << "\n";
    }

    const auto &queue = svc.queueStats();
    std::cout << "\nservice totals: "
              << svc.stats().completed() << " completed in "
              << svc.stats().batches() << " backend batches (mean "
              << TextTable::num(svc.stats().meanBatchRequests(), 2)
              << " requests packed per batch); admission "
              << queue.counter("accepted").value() << " accepted, "
              << queue.counter("rejected").value() << " rejected, "
              << queue.counter("dropped").value() << " dropped\n";
    std::cout << "e2e p50/p95/p99: "
              << TextTable::num(svc.stats().e2ePercentile(0.50), 1)
              << " / "
              << TextTable::num(svc.stats().e2ePercentile(0.95), 1)
              << " / "
              << TextTable::num(svc.stats().e2ePercentile(0.99), 1)
              << " us\n";
    return 0;
}
