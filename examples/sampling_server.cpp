/**
 * @file
 * Sampling-as-a-service scenario: the concurrent frontend from
 * src/service driven the way a trainer fleet would — many client
 * threads submitting mini-batch sampling requests against a shared
 * worker pool, with dynamic micro-batching (Tech-1-style request
 * packing) and admission control absorbing an overload burst.
 *
 * Run: ./sampling_server [workers] [clients]
 * Observability hooks:
 *  - LSDGNN_TRACE=server.trace.json    Perfetto timeline (per-worker
 *    batch slices, per-request spans + flow arrows, queue depth).
 *  - LSDGNN_METRICS=server.metrics.json  windowed SLO metrics of the
 *    final phase (per-stage p50/p99 deltas) as one JSON object.
 *  - LSDGNN_FLIGHT=server.flight.json  anomaly flight-recorder dump
 *    path (deadline misses / shed spikes trip it automatically).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/stat_registry.hh"
#include "common/table.hh"
#include "service/load_gen.hh"

using namespace std::chrono_literals;

namespace {

/** Print one phase's windowed per-stage latency breakdown. */
void
printWindow(const char *phase, const lsdgnn::stats::WindowReport &w)
{
    using lsdgnn::TextTable;
    TextTable table;
    table.header({"stage", "n", "p50 us", "p99 us"});
    for (const char *stage : {"queue", "batch", "sample", "remote"}) {
        const auto *h = w.findHistogram(
            std::string("service.stage.") + stage, "us");
        if (h == nullptr)
            continue;
        table.row({stage, TextTable::num(h->n),
                   TextTable::num(h->percentile(0.5), 1),
                   TextTable::num(h->percentile(0.99), 1)});
    }
    std::cout << "\n" << phase << " window ("
              << TextTable::num(w.window_s * 1e3, 0) << " ms, "
              << w.counterDelta("service", "completed")
              << " completed):\n";
    table.print(std::cout);

    // Async-fabric health for the same window: hedge pressure and
    // in-flight depth per batch that actually crossed the fabric.
    const auto *hedges =
        w.findHistogram("service.stage.fabric", "hedges");
    const auto *depth =
        w.findHistogram("service.stage.fabric", "inflight_peak");
    if (hedges != nullptr && depth != nullptr && depth->n != 0)
        std::cout << "fabric: hedges p99 "
                  << TextTable::num(hedges->percentile(0.99), 1)
                  << "/batch, in-flight peak p50 "
                  << TextTable::num(depth->percentile(0.5), 0)
                  << " p99 "
                  << TextTable::num(depth->percentile(0.99), 0)
                  << " reads\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsdgnn;

    const std::uint32_t workers =
        argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 2;
    const std::uint32_t clients =
        argc > 2 ? std::uint32_t(std::atoi(argv[2])) : 4;

    service::ServiceConfig cfg;
    cfg.session.dataset = "ss";
    cfg.session.scale_divisor = 40'000;
    cfg.session.num_servers = 4;
    cfg.num_workers = workers;
    cfg.batcher.window = 200us;
    cfg.queue_capacity = 128;
    cfg.default_deadline = 10ms; // in-queue staleness bound

    sampling::SamplePlan plan;
    plan.batch_size = 64;
    plan.fanouts = {10, 10};

    std::cout << "sampling service: " << workers << " workers, "
              << clients << " closed-loop clients, 200 us batching "
                 "window\n\n";

    service::SamplingService svc(cfg);

    // Rolling SLO window over the service + fabric groups. Snapshot
    // deltas, not resets: any number of these can coexist.
    stats::WindowedStats window({"service", "mof.remote"});

    // A single request end to end: submit -> future -> Reply. The
    // service allocates the trace id (options.trace_id left 0).
    service::SampleRequest request{plan, {}};
    auto reply = svc.sample(request);
    std::cout << "warm-up request: " << reply.status.toString()
              << ", " << reply.batch.totalSampled() << " samples, "
              << reply.e2e_us << " us end-to-end (worker "
              << reply.worker << ", trace_id " << reply.trace_id
              << ", span " << reply.span_id << " in batch span "
              << reply.batch_span_id << ")\n";

    // Steady state: a closed-loop client fleet.
    service::LoadGenerator gen(svc);
    const auto steady = gen.runClosedLoop(plan, clients, 300ms);
    printWindow("steady", window.collect());

    TextTable table;
    table.header({"phase", "offered", "ok", "shed %", "goodput QPS",
                  "p50 us", "p99 us"});
    table.row({"closed loop", TextTable::num(steady.offered),
               TextTable::num(steady.ok),
               TextTable::num(steady.shedFraction() * 100, 1),
               TextTable::num(steady.goodput_qps, 0),
               TextTable::num(steady.p50_us, 1),
               TextTable::num(steady.p99_us, 1)});

    // Overload burst: open-loop Poisson arrivals at ~4x the measured
    // capacity with a tight deadline — admission control sheds the
    // excess instead of queueing it forever.
    const auto burst =
        gen.runOpenLoop(plan, 4 * steady.goodput_qps, 200ms, 99);
    const stats::WindowReport burstWindow = window.collect();
    printWindow("overload", burstWindow);
    table.row({"overload x4", TextTable::num(burst.offered),
               TextTable::num(burst.ok),
               TextTable::num(burst.shedFraction() * 100, 1),
               TextTable::num(burst.goodput_qps, 0),
               TextTable::num(burst.p50_us, 1),
               TextTable::num(burst.p99_us, 1)});
    std::cout << "\n";
    table.print(std::cout);

    svc.shutdown();

    if (const char *path = std::getenv("LSDGNN_METRICS");
        path != nullptr && *path != '\0') {
        std::ofstream out(path, std::ios::trunc);
        burstWindow.exportJson(out);
        out << "\n";
        std::cout << "\nwindowed metrics written to " << path << "\n";
    }

    const auto &queue = svc.queueStats();
    std::cout << "\nservice totals: "
              << svc.stats().completed() << " completed in "
              << svc.stats().batches() << " backend batches (mean "
              << TextTable::num(svc.stats().meanBatchRequests(), 2)
              << " requests packed per batch); admission "
              << queue.counter("accepted").value() << " accepted, "
              << queue.counter("rejected").value() << " rejected, "
              << queue.counter("dropped").value() << " dropped\n";
    std::cout << "e2e p50/p95/p99: "
              << TextTable::num(svc.stats().e2ePercentile(0.50), 1)
              << " / "
              << TextTable::num(svc.stats().e2ePercentile(0.95), 1)
              << " / "
              << TextTable::num(svc.stats().e2ePercentile(0.99), 1)
              << " us\n";
    return 0;
}
