/**
 * @file
 * Sampling-as-a-service scenario: the concurrent frontend from
 * src/service driven the way a trainer fleet would — many client
 * threads submitting mini-batch sampling requests against a shared
 * worker pool, with dynamic micro-batching (Tech-1-style request
 * packing) and admission control absorbing an overload burst.
 *
 * Run: ./sampling_server [workers] [clients]
 * Set LSDGNN_TRACE=server.trace.json to get a Perfetto timeline with
 * per-worker batch slices and queue-depth/latency counter tracks.
 */

#include <chrono>
#include <iostream>

#include "common/table.hh"
#include "service/load_gen.hh"

using namespace std::chrono_literals;

int
main(int argc, char **argv)
{
    using namespace lsdgnn;

    const std::uint32_t workers =
        argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 2;
    const std::uint32_t clients =
        argc > 2 ? std::uint32_t(std::atoi(argv[2])) : 4;

    service::ServiceConfig cfg;
    cfg.session.dataset = "ss";
    cfg.session.scale_divisor = 40'000;
    cfg.session.num_servers = 4;
    cfg.num_workers = workers;
    cfg.batcher.window = 200us;
    cfg.queue_capacity = 128;
    cfg.default_deadline = 10ms; // in-queue staleness bound

    sampling::SamplePlan plan;
    plan.batch_size = 64;
    plan.fanouts = {10, 10};

    std::cout << "sampling service: " << workers << " workers, "
              << clients << " closed-loop clients, 200 us batching "
                 "window\n\n";

    service::SamplingService svc(cfg);

    // A single request end to end: submit -> future -> Reply.
    service::SampleRequest request{plan, {}};
    request.options.trace_id = 1;
    auto reply = svc.sample(request);
    std::cout << "warm-up request: " << reply.status.toString()
              << ", " << reply.batch.totalSampled() << " samples, "
              << reply.e2e_us << " us end-to-end (worker "
              << reply.worker << ")\n";

    // Steady state: a closed-loop client fleet.
    service::LoadGenerator gen(svc);
    const auto steady = gen.runClosedLoop(plan, clients, 300ms);

    TextTable table;
    table.header({"phase", "offered", "ok", "shed %", "goodput QPS",
                  "p50 us", "p99 us"});
    table.row({"closed loop", TextTable::num(steady.offered),
               TextTable::num(steady.ok),
               TextTable::num(steady.shedFraction() * 100, 1),
               TextTable::num(steady.goodput_qps, 0),
               TextTable::num(steady.p50_us, 1),
               TextTable::num(steady.p99_us, 1)});

    // Overload burst: open-loop Poisson arrivals at ~4x the measured
    // capacity with a tight deadline — admission control sheds the
    // excess instead of queueing it forever.
    const auto burst =
        gen.runOpenLoop(plan, 4 * steady.goodput_qps, 200ms, 99);
    table.row({"overload x4", TextTable::num(burst.offered),
               TextTable::num(burst.ok),
               TextTable::num(burst.shedFraction() * 100, 1),
               TextTable::num(burst.goodput_qps, 0),
               TextTable::num(burst.p50_us, 1),
               TextTable::num(burst.p99_us, 1)});
    table.print(std::cout);

    svc.shutdown();

    const auto &queue = svc.queueStats();
    std::cout << "\nservice totals: "
              << svc.stats().completed() << " completed in "
              << svc.stats().batches() << " backend batches (mean "
              << TextTable::num(svc.stats().meanBatchRequests(), 2)
              << " requests packed per batch); admission "
              << queue.counter("accepted").value() << " accepted, "
              << queue.counter("rejected").value() << " rejected, "
              << queue.counter("dropped").value() << " dropped\n";
    std::cout << "e2e p50/p95/p99: "
              << TextTable::num(svc.stats().e2ePercentile(0.50), 1)
              << " / "
              << TextTable::num(svc.stats().e2ePercentile(0.95), 1)
              << " / "
              << TextTable::num(svc.stats().e2ePercentile(0.99), 1)
              << " us\n";
    return 0;
}
