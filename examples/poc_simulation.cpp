/**
 * @file
 * PoC hardware-evaluation scenario.
 *
 * Reproduces the workflow of the paper's Section 7.1: bring up the
 * 4-card PoC configuration (dual-core AxE @250 MHz, 4-channel DDR4,
 * MoF fabric between cards, PCIe result output), run Table 2
 * sampling workloads through the cycle-approximate engine model, and
 * inspect where the time goes — including the "everything is PCIe
 * output bound" observation that motivates mem-opt.tc.
 *
 * Run: ./poc_simulation [dataset] [batches]
 *   dataset: ss|ls|sl|ml|ll|syn (default ls)
 *   batches: number of 128-root batches to simulate (default 4)
 */

#include <cstdlib>
#include <iostream>

#include "axe/analytic.hh"
#include "axe/engine.hh"
#include "common/table.hh"
#include "graph/datasets.hh"

int
main(int argc, char **argv)
{
    using namespace lsdgnn;

    const std::string dataset = argc > 1 ? argv[1] : "ls";
    const std::uint32_t batches =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

    const auto &spec = graph::datasetByName(dataset);
    const std::uint64_t divisor =
        std::max<std::uint64_t>(1, spec.nodes / 20'000);
    const graph::CsrGraph g = graph::instantiate(spec, divisor);
    std::cout << "dataset " << dataset << " @1/" << divisor
              << " scale: " << g.numNodes() << " nodes, "
              << g.numEdges() << " edges\n\n";

    sampling::SamplePlan plan;
    plan.batch_size = 128;
    plan.fanouts = {10, 10};

    TextTable table;
    table.header({"configuration", "samples/s", "batches/s",
                  "cache hit", "sim time"});
    auto run_config = [&](const char *name, axe::AxeConfig cfg) {
        axe::AccessEngine engine(cfg, g, spec.attr_len * 4);
        const auto r = engine.run(plan, batches);
        table.row({name,
                   TextTable::num(r.samples_per_s / 1e6, 2) + "M",
                   TextTable::num(r.batches_per_s, 0),
                   TextTable::num(r.cache_hit_rate * 100, 1) + "%",
                   formatTime(r.sim_time)});
        return r.samples_per_s;
    };

    run_config("PoC (Table 10, 4 cards)", axe::AxeConfig::poc());
    run_config("PoC, PCIe host memory", axe::AxeConfig::pocHostMem());

    axe::AxeConfig single = axe::AxeConfig::poc();
    single.num_nodes = 1;
    run_config("single card, local graph", single);

    axe::AxeConfig unbound = axe::AxeConfig::poc();
    unbound.fast_output_link = true;
    run_config("PoC w/o PCIe output limit", unbound);

    axe::AxeConfig in_order = axe::AxeConfig::poc();
    in_order.ooo_enabled = false;
    run_config("PoC, in-order load unit", in_order);

    table.print(std::cout);

    // Cross-check against the closed-form model (Fig. 15 workflow).
    const auto profile =
        sampling::profileWorkload(spec, plan, divisor, 2);
    const auto pred =
        axe::predictEngineRate(axe::AxeConfig::poc(), profile, 0.9);
    std::cout << "\nanalytical model for the PoC: "
              << TextTable::num(pred.samples_per_s / 1e6, 2)
              << "M samples/s, bottleneck = " << pred.bottleneck
              << "\n";
    return 0;
}
