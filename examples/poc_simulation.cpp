/**
 * @file
 * PoC hardware-evaluation scenario.
 *
 * Reproduces the workflow of the paper's Section 7.1: bring up the
 * 4-card PoC configuration (dual-core AxE @250 MHz, 4-channel DDR4,
 * MoF fabric between cards, PCIe result output), run Table 2
 * sampling workloads through the cycle-approximate engine model, and
 * inspect where the time goes — including the "everything is PCIe
 * output bound" observation that motivates mem-opt.tc.
 *
 * Run: ./poc_simulation [dataset] [batches]
 *   dataset: ss|ls|sl|ml|ll|syn (default ls)
 *   batches: number of 128-root batches to simulate (default 4)
 *
 * Observability hooks (see README "Observability"):
 *   LSDGNN_TRACE=<path>        emit a Perfetto trace of every run
 *   LSDGNN_STAT_DUMP=<path>    periodic stat snapshots, CSV per config
 *   LSDGNN_STAT_PERIOD_US=<n>  snapshot period (default 10 us)
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "axe/analytic.hh"
#include "axe/engine.hh"
#include "common/table.hh"
#include "graph/datasets.hh"
#include "sim/stat_sampler.hh"

int
main(int argc, char **argv)
{
    using namespace lsdgnn;

    const std::string dataset = argc > 1 ? argv[1] : "ls";
    const std::uint32_t batches =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

    const auto &spec = graph::datasetByName(dataset);
    const std::uint64_t divisor =
        std::max<std::uint64_t>(1, spec.nodes / 20'000);
    const graph::CsrGraph g = graph::instantiate(spec, divisor);
    std::cout << "dataset " << dataset << " @1/" << divisor
              << " scale: " << g.numNodes() << " nodes, "
              << g.numEdges() << " edges\n\n";

    sampling::SamplePlan plan;
    plan.batch_size = 128;
    plan.fanouts = {10, 10};

    TextTable table;
    table.header({"configuration", "samples/s", "batches/s",
                  "cache hit", "sim time"});
    const char *stat_dump = std::getenv("LSDGNN_STAT_DUMP");
    const char *period_env = std::getenv("LSDGNN_STAT_PERIOD_US");
    const double period_us =
        period_env != nullptr ? std::atof(period_env) : 10.0;
    // Unparseable or non-positive values fall back to the default.
    const Tick stat_period =
        microseconds(period_us > 0.0 ? period_us : 10.0);
    bool first_dump = true;

    auto run_config = [&](const char *name, axe::AxeConfig cfg) {
        axe::AccessEngine engine(cfg, g, spec.attr_len * 4);
        std::unique_ptr<sim::StatSampler> sampler;
        if (stat_dump) {
            sampler = std::make_unique<sim::StatSampler>(
                engine.eventQueue(), stat_period);
            sampler->watchAll();
            sampler->start();
        }
        const auto r = engine.run(plan, batches);
        if (sampler) {
            sampler->stop();
            std::ofstream out(stat_dump, first_dump
                ? std::ios::trunc : std::ios::app);
            first_dump = false;
            out << "# " << name << "\n";
            sampler->exportCsv(out);
        }
        table.row({name,
                   TextTable::num(r.samples_per_s / 1e6, 2) + "M",
                   TextTable::num(r.batches_per_s, 0),
                   TextTable::num(r.cache_hit_rate * 100, 1) + "%",
                   formatTime(r.sim_time)});
        return r.samples_per_s;
    };

    run_config("PoC (Table 10, 4 cards)", axe::AxeConfig::poc());
    run_config("PoC, PCIe host memory", axe::AxeConfig::pocHostMem());

    axe::AxeConfig single = axe::AxeConfig::poc();
    single.num_nodes = 1;
    run_config("single card, local graph", single);

    axe::AxeConfig unbound = axe::AxeConfig::poc();
    unbound.fast_output_link = true;
    run_config("PoC w/o PCIe output limit", unbound);

    axe::AxeConfig in_order = axe::AxeConfig::poc();
    in_order.ooo_enabled = false;
    run_config("PoC, in-order load unit", in_order);

    axe::AxeConfig packing = axe::AxeConfig::poc();
    packing.num_nodes = 4; // remote traffic to pack
    packing.mof_packing = true;
    run_config("PoC + MoF packing endpoint", packing);

    table.print(std::cout);

    // Cross-check against the closed-form model (Fig. 15 workflow).
    const auto profile =
        sampling::profileWorkload(spec, plan, divisor, 2);
    const auto pred =
        axe::predictEngineRate(axe::AxeConfig::poc(), profile, 0.9);
    std::cout << "\nanalytical model for the PoC: "
              << TextTable::num(pred.samples_per_s / 1e6, 2)
              << "M samples/s, bottleneck = " << pred.bottleneck
              << "\n";
    return 0;
}
