# Empty dependencies file for lsd_common.
# This may be replaced when dependencies are built.
