file(REMOVE_RECURSE
  "liblsd_common.a"
)
