file(REMOVE_RECURSE
  "CMakeFiles/lsd_common.dir/logging.cc.o"
  "CMakeFiles/lsd_common.dir/logging.cc.o.d"
  "CMakeFiles/lsd_common.dir/rng.cc.o"
  "CMakeFiles/lsd_common.dir/rng.cc.o.d"
  "CMakeFiles/lsd_common.dir/stats.cc.o"
  "CMakeFiles/lsd_common.dir/stats.cc.o.d"
  "CMakeFiles/lsd_common.dir/table.cc.o"
  "CMakeFiles/lsd_common.dir/table.cc.o.d"
  "CMakeFiles/lsd_common.dir/units.cc.o"
  "CMakeFiles/lsd_common.dir/units.cc.o.d"
  "liblsd_common.a"
  "liblsd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
