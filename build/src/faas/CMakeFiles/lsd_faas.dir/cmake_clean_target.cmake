file(REMOVE_RECURSE
  "liblsd_faas.a"
)
