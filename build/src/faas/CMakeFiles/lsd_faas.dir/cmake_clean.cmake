file(REMOVE_RECURSE
  "CMakeFiles/lsd_faas.dir/arch.cc.o"
  "CMakeFiles/lsd_faas.dir/arch.cc.o.d"
  "CMakeFiles/lsd_faas.dir/cost_model.cc.o"
  "CMakeFiles/lsd_faas.dir/cost_model.cc.o.d"
  "CMakeFiles/lsd_faas.dir/dse.cc.o"
  "CMakeFiles/lsd_faas.dir/dse.cc.o.d"
  "CMakeFiles/lsd_faas.dir/instance.cc.o"
  "CMakeFiles/lsd_faas.dir/instance.cc.o.d"
  "CMakeFiles/lsd_faas.dir/perf_model.cc.o"
  "CMakeFiles/lsd_faas.dir/perf_model.cc.o.d"
  "liblsd_faas.a"
  "liblsd_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
