# Empty dependencies file for lsd_faas.
# This may be replaced when dependencies are built.
