file(REMOVE_RECURSE
  "CMakeFiles/lsd_riscv.dir/control.cc.o"
  "CMakeFiles/lsd_riscv.dir/control.cc.o.d"
  "CMakeFiles/lsd_riscv.dir/encode.cc.o"
  "CMakeFiles/lsd_riscv.dir/encode.cc.o.d"
  "CMakeFiles/lsd_riscv.dir/qrch.cc.o"
  "CMakeFiles/lsd_riscv.dir/qrch.cc.o.d"
  "CMakeFiles/lsd_riscv.dir/rv32.cc.o"
  "CMakeFiles/lsd_riscv.dir/rv32.cc.o.d"
  "liblsd_riscv.a"
  "liblsd_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
