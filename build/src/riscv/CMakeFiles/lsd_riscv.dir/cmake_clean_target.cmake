file(REMOVE_RECURSE
  "liblsd_riscv.a"
)
