# Empty compiler generated dependencies file for lsd_riscv.
# This may be replaced when dependencies are built.
