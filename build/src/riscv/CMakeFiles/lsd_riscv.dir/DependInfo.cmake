
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/riscv/control.cc" "src/riscv/CMakeFiles/lsd_riscv.dir/control.cc.o" "gcc" "src/riscv/CMakeFiles/lsd_riscv.dir/control.cc.o.d"
  "/root/repo/src/riscv/encode.cc" "src/riscv/CMakeFiles/lsd_riscv.dir/encode.cc.o" "gcc" "src/riscv/CMakeFiles/lsd_riscv.dir/encode.cc.o.d"
  "/root/repo/src/riscv/qrch.cc" "src/riscv/CMakeFiles/lsd_riscv.dir/qrch.cc.o" "gcc" "src/riscv/CMakeFiles/lsd_riscv.dir/qrch.cc.o.d"
  "/root/repo/src/riscv/rv32.cc" "src/riscv/CMakeFiles/lsd_riscv.dir/rv32.cc.o" "gcc" "src/riscv/CMakeFiles/lsd_riscv.dir/rv32.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
