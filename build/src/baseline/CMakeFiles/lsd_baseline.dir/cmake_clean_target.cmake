file(REMOVE_RECURSE
  "liblsd_baseline.a"
)
