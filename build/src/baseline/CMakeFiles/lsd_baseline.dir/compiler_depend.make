# Empty compiler generated dependencies file for lsd_baseline.
# This may be replaced when dependencies are built.
