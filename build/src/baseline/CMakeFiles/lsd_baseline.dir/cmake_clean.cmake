file(REMOVE_RECURSE
  "CMakeFiles/lsd_baseline.dir/cpu_sampler.cc.o"
  "CMakeFiles/lsd_baseline.dir/cpu_sampler.cc.o.d"
  "CMakeFiles/lsd_baseline.dir/hot_cache.cc.o"
  "CMakeFiles/lsd_baseline.dir/hot_cache.cc.o.d"
  "liblsd_baseline.a"
  "liblsd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
