file(REMOVE_RECURSE
  "liblsd_graph.a"
)
