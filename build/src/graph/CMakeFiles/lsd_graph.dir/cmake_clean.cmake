file(REMOVE_RECURSE
  "CMakeFiles/lsd_graph.dir/attributes.cc.o"
  "CMakeFiles/lsd_graph.dir/attributes.cc.o.d"
  "CMakeFiles/lsd_graph.dir/csr_graph.cc.o"
  "CMakeFiles/lsd_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/lsd_graph.dir/datasets.cc.o"
  "CMakeFiles/lsd_graph.dir/datasets.cc.o.d"
  "CMakeFiles/lsd_graph.dir/dynamic.cc.o"
  "CMakeFiles/lsd_graph.dir/dynamic.cc.o.d"
  "CMakeFiles/lsd_graph.dir/generator.cc.o"
  "CMakeFiles/lsd_graph.dir/generator.cc.o.d"
  "CMakeFiles/lsd_graph.dir/hetero.cc.o"
  "CMakeFiles/lsd_graph.dir/hetero.cc.o.d"
  "CMakeFiles/lsd_graph.dir/partition.cc.o"
  "CMakeFiles/lsd_graph.dir/partition.cc.o.d"
  "CMakeFiles/lsd_graph.dir/serialize.cc.o"
  "CMakeFiles/lsd_graph.dir/serialize.cc.o.d"
  "liblsd_graph.a"
  "liblsd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
