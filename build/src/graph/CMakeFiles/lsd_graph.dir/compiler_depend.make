# Empty compiler generated dependencies file for lsd_graph.
# This may be replaced when dependencies are built.
