
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/attributes.cc" "src/graph/CMakeFiles/lsd_graph.dir/attributes.cc.o" "gcc" "src/graph/CMakeFiles/lsd_graph.dir/attributes.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/graph/CMakeFiles/lsd_graph.dir/csr_graph.cc.o" "gcc" "src/graph/CMakeFiles/lsd_graph.dir/csr_graph.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/graph/CMakeFiles/lsd_graph.dir/datasets.cc.o" "gcc" "src/graph/CMakeFiles/lsd_graph.dir/datasets.cc.o.d"
  "/root/repo/src/graph/dynamic.cc" "src/graph/CMakeFiles/lsd_graph.dir/dynamic.cc.o" "gcc" "src/graph/CMakeFiles/lsd_graph.dir/dynamic.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/graph/CMakeFiles/lsd_graph.dir/generator.cc.o" "gcc" "src/graph/CMakeFiles/lsd_graph.dir/generator.cc.o.d"
  "/root/repo/src/graph/hetero.cc" "src/graph/CMakeFiles/lsd_graph.dir/hetero.cc.o" "gcc" "src/graph/CMakeFiles/lsd_graph.dir/hetero.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/lsd_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/lsd_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/serialize.cc" "src/graph/CMakeFiles/lsd_graph.dir/serialize.cc.o" "gcc" "src/graph/CMakeFiles/lsd_graph.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
