file(REMOVE_RECURSE
  "CMakeFiles/lsd_fabric.dir/link.cc.o"
  "CMakeFiles/lsd_fabric.dir/link.cc.o.d"
  "CMakeFiles/lsd_fabric.dir/network.cc.o"
  "CMakeFiles/lsd_fabric.dir/network.cc.o.d"
  "CMakeFiles/lsd_fabric.dir/sim_link.cc.o"
  "CMakeFiles/lsd_fabric.dir/sim_link.cc.o.d"
  "liblsd_fabric.a"
  "liblsd_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
