file(REMOVE_RECURSE
  "liblsd_fabric.a"
)
