# Empty compiler generated dependencies file for lsd_fabric.
# This may be replaced when dependencies are built.
