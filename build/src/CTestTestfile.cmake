# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("graph")
subdirs("sampling")
subdirs("fabric")
subdirs("baseline")
subdirs("mof")
subdirs("axe")
subdirs("riscv")
subdirs("gnn")
subdirs("faas")
subdirs("framework")
