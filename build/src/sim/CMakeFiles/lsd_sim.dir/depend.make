# Empty dependencies file for lsd_sim.
# This may be replaced when dependencies are built.
