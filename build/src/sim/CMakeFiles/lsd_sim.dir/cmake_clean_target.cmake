file(REMOVE_RECURSE
  "liblsd_sim.a"
)
