file(REMOVE_RECURSE
  "CMakeFiles/lsd_sim.dir/event_queue.cc.o"
  "CMakeFiles/lsd_sim.dir/event_queue.cc.o.d"
  "liblsd_sim.a"
  "liblsd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
