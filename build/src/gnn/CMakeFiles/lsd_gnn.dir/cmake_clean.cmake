file(REMOVE_RECURSE
  "CMakeFiles/lsd_gnn.dir/accuracy.cc.o"
  "CMakeFiles/lsd_gnn.dir/accuracy.cc.o.d"
  "CMakeFiles/lsd_gnn.dir/end_to_end.cc.o"
  "CMakeFiles/lsd_gnn.dir/end_to_end.cc.o.d"
  "CMakeFiles/lsd_gnn.dir/graphsage.cc.o"
  "CMakeFiles/lsd_gnn.dir/graphsage.cc.o.d"
  "CMakeFiles/lsd_gnn.dir/tensor.cc.o"
  "CMakeFiles/lsd_gnn.dir/tensor.cc.o.d"
  "CMakeFiles/lsd_gnn.dir/train.cc.o"
  "CMakeFiles/lsd_gnn.dir/train.cc.o.d"
  "liblsd_gnn.a"
  "liblsd_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
