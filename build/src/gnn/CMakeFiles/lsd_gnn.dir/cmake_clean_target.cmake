file(REMOVE_RECURSE
  "liblsd_gnn.a"
)
