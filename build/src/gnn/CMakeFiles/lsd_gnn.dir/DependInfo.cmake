
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/accuracy.cc" "src/gnn/CMakeFiles/lsd_gnn.dir/accuracy.cc.o" "gcc" "src/gnn/CMakeFiles/lsd_gnn.dir/accuracy.cc.o.d"
  "/root/repo/src/gnn/end_to_end.cc" "src/gnn/CMakeFiles/lsd_gnn.dir/end_to_end.cc.o" "gcc" "src/gnn/CMakeFiles/lsd_gnn.dir/end_to_end.cc.o.d"
  "/root/repo/src/gnn/graphsage.cc" "src/gnn/CMakeFiles/lsd_gnn.dir/graphsage.cc.o" "gcc" "src/gnn/CMakeFiles/lsd_gnn.dir/graphsage.cc.o.d"
  "/root/repo/src/gnn/tensor.cc" "src/gnn/CMakeFiles/lsd_gnn.dir/tensor.cc.o" "gcc" "src/gnn/CMakeFiles/lsd_gnn.dir/tensor.cc.o.d"
  "/root/repo/src/gnn/train.cc" "src/gnn/CMakeFiles/lsd_gnn.dir/train.cc.o" "gcc" "src/gnn/CMakeFiles/lsd_gnn.dir/train.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/lsd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/lsd_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/lsd_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
