# Empty compiler generated dependencies file for lsd_gnn.
# This may be replaced when dependencies are built.
