
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axe/analytic.cc" "src/axe/CMakeFiles/lsd_axe.dir/analytic.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/analytic.cc.o.d"
  "/root/repo/src/axe/coalescing_cache.cc" "src/axe/CMakeFiles/lsd_axe.dir/coalescing_cache.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/coalescing_cache.cc.o.d"
  "/root/repo/src/axe/command.cc" "src/axe/CMakeFiles/lsd_axe.dir/command.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/command.cc.o.d"
  "/root/repo/src/axe/config.cc" "src/axe/CMakeFiles/lsd_axe.dir/config.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/config.cc.o.d"
  "/root/repo/src/axe/core.cc" "src/axe/CMakeFiles/lsd_axe.dir/core.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/core.cc.o.d"
  "/root/repo/src/axe/engine.cc" "src/axe/CMakeFiles/lsd_axe.dir/engine.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/engine.cc.o.d"
  "/root/repo/src/axe/gemm.cc" "src/axe/CMakeFiles/lsd_axe.dir/gemm.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/gemm.cc.o.d"
  "/root/repo/src/axe/load_unit.cc" "src/axe/CMakeFiles/lsd_axe.dir/load_unit.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/load_unit.cc.o.d"
  "/root/repo/src/axe/multi_node.cc" "src/axe/CMakeFiles/lsd_axe.dir/multi_node.cc.o" "gcc" "src/axe/CMakeFiles/lsd_axe.dir/multi_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/lsd_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/mof/CMakeFiles/lsd_mof.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/lsd_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
