# Empty compiler generated dependencies file for lsd_axe.
# This may be replaced when dependencies are built.
