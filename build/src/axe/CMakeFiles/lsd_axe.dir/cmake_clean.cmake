file(REMOVE_RECURSE
  "CMakeFiles/lsd_axe.dir/analytic.cc.o"
  "CMakeFiles/lsd_axe.dir/analytic.cc.o.d"
  "CMakeFiles/lsd_axe.dir/coalescing_cache.cc.o"
  "CMakeFiles/lsd_axe.dir/coalescing_cache.cc.o.d"
  "CMakeFiles/lsd_axe.dir/command.cc.o"
  "CMakeFiles/lsd_axe.dir/command.cc.o.d"
  "CMakeFiles/lsd_axe.dir/config.cc.o"
  "CMakeFiles/lsd_axe.dir/config.cc.o.d"
  "CMakeFiles/lsd_axe.dir/core.cc.o"
  "CMakeFiles/lsd_axe.dir/core.cc.o.d"
  "CMakeFiles/lsd_axe.dir/engine.cc.o"
  "CMakeFiles/lsd_axe.dir/engine.cc.o.d"
  "CMakeFiles/lsd_axe.dir/gemm.cc.o"
  "CMakeFiles/lsd_axe.dir/gemm.cc.o.d"
  "CMakeFiles/lsd_axe.dir/load_unit.cc.o"
  "CMakeFiles/lsd_axe.dir/load_unit.cc.o.d"
  "CMakeFiles/lsd_axe.dir/multi_node.cc.o"
  "CMakeFiles/lsd_axe.dir/multi_node.cc.o.d"
  "liblsd_axe.a"
  "liblsd_axe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_axe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
