file(REMOVE_RECURSE
  "liblsd_axe.a"
)
