
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mof/bdi.cc" "src/mof/CMakeFiles/lsd_mof.dir/bdi.cc.o" "gcc" "src/mof/CMakeFiles/lsd_mof.dir/bdi.cc.o.d"
  "/root/repo/src/mof/endpoint.cc" "src/mof/CMakeFiles/lsd_mof.dir/endpoint.cc.o" "gcc" "src/mof/CMakeFiles/lsd_mof.dir/endpoint.cc.o.d"
  "/root/repo/src/mof/frame.cc" "src/mof/CMakeFiles/lsd_mof.dir/frame.cc.o" "gcc" "src/mof/CMakeFiles/lsd_mof.dir/frame.cc.o.d"
  "/root/repo/src/mof/packer.cc" "src/mof/CMakeFiles/lsd_mof.dir/packer.cc.o" "gcc" "src/mof/CMakeFiles/lsd_mof.dir/packer.cc.o.d"
  "/root/repo/src/mof/reliability.cc" "src/mof/CMakeFiles/lsd_mof.dir/reliability.cc.o" "gcc" "src/mof/CMakeFiles/lsd_mof.dir/reliability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lsd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/lsd_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
