file(REMOVE_RECURSE
  "CMakeFiles/lsd_mof.dir/bdi.cc.o"
  "CMakeFiles/lsd_mof.dir/bdi.cc.o.d"
  "CMakeFiles/lsd_mof.dir/endpoint.cc.o"
  "CMakeFiles/lsd_mof.dir/endpoint.cc.o.d"
  "CMakeFiles/lsd_mof.dir/frame.cc.o"
  "CMakeFiles/lsd_mof.dir/frame.cc.o.d"
  "CMakeFiles/lsd_mof.dir/packer.cc.o"
  "CMakeFiles/lsd_mof.dir/packer.cc.o.d"
  "CMakeFiles/lsd_mof.dir/reliability.cc.o"
  "CMakeFiles/lsd_mof.dir/reliability.cc.o.d"
  "liblsd_mof.a"
  "liblsd_mof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_mof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
