# Empty dependencies file for lsd_mof.
# This may be replaced when dependencies are built.
