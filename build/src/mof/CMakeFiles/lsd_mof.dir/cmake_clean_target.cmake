file(REMOVE_RECURSE
  "liblsd_mof.a"
)
