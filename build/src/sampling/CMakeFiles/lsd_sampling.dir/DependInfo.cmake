
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/metapath.cc" "src/sampling/CMakeFiles/lsd_sampling.dir/metapath.cc.o" "gcc" "src/sampling/CMakeFiles/lsd_sampling.dir/metapath.cc.o.d"
  "/root/repo/src/sampling/minibatch.cc" "src/sampling/CMakeFiles/lsd_sampling.dir/minibatch.cc.o" "gcc" "src/sampling/CMakeFiles/lsd_sampling.dir/minibatch.cc.o.d"
  "/root/repo/src/sampling/negative.cc" "src/sampling/CMakeFiles/lsd_sampling.dir/negative.cc.o" "gcc" "src/sampling/CMakeFiles/lsd_sampling.dir/negative.cc.o.d"
  "/root/repo/src/sampling/sampler.cc" "src/sampling/CMakeFiles/lsd_sampling.dir/sampler.cc.o" "gcc" "src/sampling/CMakeFiles/lsd_sampling.dir/sampler.cc.o.d"
  "/root/repo/src/sampling/weighted.cc" "src/sampling/CMakeFiles/lsd_sampling.dir/weighted.cc.o" "gcc" "src/sampling/CMakeFiles/lsd_sampling.dir/weighted.cc.o.d"
  "/root/repo/src/sampling/workload.cc" "src/sampling/CMakeFiles/lsd_sampling.dir/workload.cc.o" "gcc" "src/sampling/CMakeFiles/lsd_sampling.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
