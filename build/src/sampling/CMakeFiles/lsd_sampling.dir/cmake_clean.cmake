file(REMOVE_RECURSE
  "CMakeFiles/lsd_sampling.dir/metapath.cc.o"
  "CMakeFiles/lsd_sampling.dir/metapath.cc.o.d"
  "CMakeFiles/lsd_sampling.dir/minibatch.cc.o"
  "CMakeFiles/lsd_sampling.dir/minibatch.cc.o.d"
  "CMakeFiles/lsd_sampling.dir/negative.cc.o"
  "CMakeFiles/lsd_sampling.dir/negative.cc.o.d"
  "CMakeFiles/lsd_sampling.dir/sampler.cc.o"
  "CMakeFiles/lsd_sampling.dir/sampler.cc.o.d"
  "CMakeFiles/lsd_sampling.dir/weighted.cc.o"
  "CMakeFiles/lsd_sampling.dir/weighted.cc.o.d"
  "CMakeFiles/lsd_sampling.dir/workload.cc.o"
  "CMakeFiles/lsd_sampling.dir/workload.cc.o.d"
  "liblsd_sampling.a"
  "liblsd_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
