# Empty dependencies file for lsd_sampling.
# This may be replaced when dependencies are built.
