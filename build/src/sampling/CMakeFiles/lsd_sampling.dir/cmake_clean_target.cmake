file(REMOVE_RECURSE
  "liblsd_sampling.a"
)
