# Empty compiler generated dependencies file for lsd_framework.
# This may be replaced when dependencies are built.
