file(REMOVE_RECURSE
  "CMakeFiles/lsd_framework.dir/session.cc.o"
  "CMakeFiles/lsd_framework.dir/session.cc.o.d"
  "liblsd_framework.a"
  "liblsd_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
