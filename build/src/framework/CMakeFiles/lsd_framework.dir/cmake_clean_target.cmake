file(REMOVE_RECURSE
  "liblsd_framework.a"
)
