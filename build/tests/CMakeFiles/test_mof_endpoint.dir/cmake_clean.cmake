file(REMOVE_RECURSE
  "CMakeFiles/test_mof_endpoint.dir/test_mof_endpoint.cc.o"
  "CMakeFiles/test_mof_endpoint.dir/test_mof_endpoint.cc.o.d"
  "test_mof_endpoint"
  "test_mof_endpoint.pdb"
  "test_mof_endpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mof_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
