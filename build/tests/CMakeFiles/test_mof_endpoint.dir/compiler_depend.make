# Empty compiler generated dependencies file for test_mof_endpoint.
# This may be replaced when dependencies are built.
