# Empty dependencies file for test_multi_node.
# This may be replaced when dependencies are built.
