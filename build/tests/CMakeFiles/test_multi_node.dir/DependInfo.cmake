
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_multi_node.cc" "tests/CMakeFiles/test_multi_node.dir/test_multi_node.cc.o" "gcc" "tests/CMakeFiles/test_multi_node.dir/test_multi_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/axe/CMakeFiles/lsd_axe.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mof/CMakeFiles/lsd_mof.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/lsd_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/lsd_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
