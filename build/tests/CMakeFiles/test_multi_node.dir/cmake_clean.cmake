file(REMOVE_RECURSE
  "CMakeFiles/test_multi_node.dir/test_multi_node.cc.o"
  "CMakeFiles/test_multi_node.dir/test_multi_node.cc.o.d"
  "test_multi_node"
  "test_multi_node.pdb"
  "test_multi_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
