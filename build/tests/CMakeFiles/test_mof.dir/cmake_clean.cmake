file(REMOVE_RECURSE
  "CMakeFiles/test_mof.dir/test_mof.cc.o"
  "CMakeFiles/test_mof.dir/test_mof.cc.o.d"
  "test_mof"
  "test_mof.pdb"
  "test_mof[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
