# Empty dependencies file for test_mof.
# This may be replaced when dependencies are built.
