file(REMOVE_RECURSE
  "CMakeFiles/test_axe.dir/test_axe.cc.o"
  "CMakeFiles/test_axe.dir/test_axe.cc.o.d"
  "test_axe"
  "test_axe.pdb"
  "test_axe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_axe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
