# Empty compiler generated dependencies file for test_axe.
# This may be replaced when dependencies are built.
