# Empty compiler generated dependencies file for test_hetero_dynamic.
# This may be replaced when dependencies are built.
