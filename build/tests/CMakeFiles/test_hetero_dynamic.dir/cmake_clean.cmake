file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_dynamic.dir/test_hetero_dynamic.cc.o"
  "CMakeFiles/test_hetero_dynamic.dir/test_hetero_dynamic.cc.o.d"
  "test_hetero_dynamic"
  "test_hetero_dynamic.pdb"
  "test_hetero_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
