# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_mof[1]_include.cmake")
include("/root/repo/build/tests/test_axe[1]_include.cmake")
include("/root/repo/build/tests/test_riscv[1]_include.cmake")
include("/root/repo/build/tests/test_gnn[1]_include.cmake")
include("/root/repo/build/tests/test_faas[1]_include.cmake")
include("/root/repo/build/tests/test_hetero_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_multi_node[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_mof_endpoint[1]_include.cmake")
