file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_poc.dir/bench_fig14_poc.cc.o"
  "CMakeFiles/bench_fig14_poc.dir/bench_fig14_poc.cc.o.d"
  "bench_fig14_poc"
  "bench_fig14_poc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_poc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
