# Empty dependencies file for bench_fig14_poc.
# This may be replaced when dependencies are built.
