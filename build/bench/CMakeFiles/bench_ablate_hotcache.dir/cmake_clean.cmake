file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_hotcache.dir/bench_ablate_hotcache.cc.o"
  "CMakeFiles/bench_ablate_hotcache.dir/bench_ablate_hotcache.cc.o.d"
  "bench_ablate_hotcache"
  "bench_ablate_hotcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_hotcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
