# Empty dependencies file for bench_ablate_hotcache.
# This may be replaced when dependencies are built.
