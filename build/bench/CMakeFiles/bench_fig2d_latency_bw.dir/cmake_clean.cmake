file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2d_latency_bw.dir/bench_fig2d_latency_bw.cc.o"
  "CMakeFiles/bench_fig2d_latency_bw.dir/bench_fig2d_latency_bw.cc.o.d"
  "bench_fig2d_latency_bw"
  "bench_fig2d_latency_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2d_latency_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
