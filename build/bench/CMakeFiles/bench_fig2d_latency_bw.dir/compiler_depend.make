# Empty compiler generated dependencies file for bench_fig2d_latency_bw.
# This may be replaced when dependencies are built.
