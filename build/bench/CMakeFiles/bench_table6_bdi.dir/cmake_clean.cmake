file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_bdi.dir/bench_table6_bdi.cc.o"
  "CMakeFiles/bench_table6_bdi.dir/bench_table6_bdi.cc.o.d"
  "bench_table6_bdi"
  "bench_table6_bdi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_bdi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
