# Empty compiler generated dependencies file for bench_fig19_geomean_perf.
# This may be replaced when dependencies are built.
