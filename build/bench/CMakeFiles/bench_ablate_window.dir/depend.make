# Empty dependencies file for bench_ablate_window.
# This may be replaced when dependencies are built.
