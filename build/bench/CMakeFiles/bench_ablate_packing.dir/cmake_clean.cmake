file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_packing.dir/bench_ablate_packing.cc.o"
  "CMakeFiles/bench_ablate_packing.dir/bench_ablate_packing.cc.o.d"
  "bench_ablate_packing"
  "bench_ablate_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
