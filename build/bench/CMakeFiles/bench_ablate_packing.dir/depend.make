# Empty dependencies file for bench_ablate_packing.
# This may be replaced when dependencies are built.
