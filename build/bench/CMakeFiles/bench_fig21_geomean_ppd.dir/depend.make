# Empty dependencies file for bench_fig21_geomean_ppd.
# This may be replaced when dependencies are built.
