file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_geomean_ppd.dir/bench_fig21_geomean_ppd.cc.o"
  "CMakeFiles/bench_fig21_geomean_ppd.dir/bench_fig21_geomean_ppd.cc.o.d"
  "bench_fig21_geomean_ppd"
  "bench_fig21_geomean_ppd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_geomean_ppd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
