# Empty dependencies file for bench_eq3_cores.
# This may be replaced when dependencies are built.
