file(REMOVE_RECURSE
  "CMakeFiles/bench_eq3_cores.dir/bench_eq3_cores.cc.o"
  "CMakeFiles/bench_eq3_cores.dir/bench_eq3_cores.cc.o.d"
  "bench_eq3_cores"
  "bench_eq3_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq3_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
