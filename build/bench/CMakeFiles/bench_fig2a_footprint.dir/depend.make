# Empty dependencies file for bench_fig2a_footprint.
# This may be replaced when dependencies are built.
