file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_reliability.dir/bench_ablate_reliability.cc.o"
  "CMakeFiles/bench_ablate_reliability.dir/bench_ablate_reliability.cc.o.d"
  "bench_ablate_reliability"
  "bench_ablate_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
