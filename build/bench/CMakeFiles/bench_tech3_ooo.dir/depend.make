# Empty dependencies file for bench_tech3_ooo.
# This may be replaced when dependencies are built.
