file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_reduction.dir/bench_ablate_reduction.cc.o"
  "CMakeFiles/bench_ablate_reduction.dir/bench_ablate_reduction.cc.o.d"
  "bench_ablate_reduction"
  "bench_ablate_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
