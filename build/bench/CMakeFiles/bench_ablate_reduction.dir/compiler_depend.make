# Empty compiler generated dependencies file for bench_ablate_reduction.
# This may be replaced when dependencies are built.
