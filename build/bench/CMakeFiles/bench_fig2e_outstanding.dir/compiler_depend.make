# Empty compiler generated dependencies file for bench_fig2e_outstanding.
# This may be replaced when dependencies are built.
