file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_qrch.dir/bench_table7_qrch.cc.o"
  "CMakeFiles/bench_table7_qrch.dir/bench_table7_qrch.cc.o.d"
  "bench_table7_qrch"
  "bench_table7_qrch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_qrch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
