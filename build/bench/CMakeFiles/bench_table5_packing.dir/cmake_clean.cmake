file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_packing.dir/bench_table5_packing.cc.o"
  "CMakeFiles/bench_table5_packing.dir/bench_table5_packing.cc.o.d"
  "bench_table5_packing"
  "bench_table5_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
