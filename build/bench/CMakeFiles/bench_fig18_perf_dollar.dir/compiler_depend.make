# Empty compiler generated dependencies file for bench_fig18_perf_dollar.
# This may be replaced when dependencies are built.
