file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_perf_dollar.dir/bench_fig18_perf_dollar.cc.o"
  "CMakeFiles/bench_fig18_perf_dollar.dir/bench_fig18_perf_dollar.cc.o.d"
  "bench_fig18_perf_dollar"
  "bench_fig18_perf_dollar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_perf_dollar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
