# Empty compiler generated dependencies file for bench_fig2c_access_mix.
# This may be replaced when dependencies are built.
