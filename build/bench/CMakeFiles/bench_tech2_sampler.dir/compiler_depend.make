# Empty compiler generated dependencies file for bench_tech2_sampler.
# This may be replaced when dependencies are built.
