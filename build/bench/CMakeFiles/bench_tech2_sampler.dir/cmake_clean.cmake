file(REMOVE_RECURSE
  "CMakeFiles/bench_tech2_sampler.dir/bench_tech2_sampler.cc.o"
  "CMakeFiles/bench_tech2_sampler.dir/bench_tech2_sampler.cc.o.d"
  "bench_tech2_sampler"
  "bench_tech2_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tech2_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
