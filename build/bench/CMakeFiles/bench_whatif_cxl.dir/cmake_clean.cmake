file(REMOVE_RECURSE
  "CMakeFiles/bench_whatif_cxl.dir/bench_whatif_cxl.cc.o"
  "CMakeFiles/bench_whatif_cxl.dir/bench_whatif_cxl.cc.o.d"
  "bench_whatif_cxl"
  "bench_whatif_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
