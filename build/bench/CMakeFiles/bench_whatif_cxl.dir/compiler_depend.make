# Empty compiler generated dependencies file for bench_whatif_cxl.
# This may be replaced when dependencies are built.
