file(REMOVE_RECURSE
  "CMakeFiles/aligraph_session.dir/aligraph_session.cpp.o"
  "CMakeFiles/aligraph_session.dir/aligraph_session.cpp.o.d"
  "aligraph_session"
  "aligraph_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aligraph_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
