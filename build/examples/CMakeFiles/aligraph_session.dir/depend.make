# Empty dependencies file for aligraph_session.
# This may be replaced when dependencies are built.
