# Empty dependencies file for poc_simulation.
# This may be replaced when dependencies are built.
