file(REMOVE_RECURSE
  "CMakeFiles/poc_simulation.dir/poc_simulation.cpp.o"
  "CMakeFiles/poc_simulation.dir/poc_simulation.cpp.o.d"
  "poc_simulation"
  "poc_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
