# Empty dependencies file for riscv_control.
# This may be replaced when dependencies are built.
