file(REMOVE_RECURSE
  "CMakeFiles/riscv_control.dir/riscv_control.cpp.o"
  "CMakeFiles/riscv_control.dir/riscv_control.cpp.o.d"
  "riscv_control"
  "riscv_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
