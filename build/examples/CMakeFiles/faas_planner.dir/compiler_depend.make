# Empty compiler generated dependencies file for faas_planner.
# This may be replaced when dependencies are built.
