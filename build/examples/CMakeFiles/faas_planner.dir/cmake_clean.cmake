file(REMOVE_RECURSE
  "CMakeFiles/faas_planner.dir/faas_planner.cpp.o"
  "CMakeFiles/faas_planner.dir/faas_planner.cpp.o.d"
  "faas_planner"
  "faas_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
