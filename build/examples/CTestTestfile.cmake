# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_poc_simulation "/root/repo/build/examples/poc_simulation" "ss" "2")
set_tests_properties(example_poc_simulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_faas_planner "/root/repo/build/examples/faas_planner" "ll" "50")
set_tests_properties(example_faas_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_riscv_control "/root/repo/build/examples/riscv_control")
set_tests_properties(example_riscv_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aligraph_session "/root/repo/build/examples/aligraph_session")
set_tests_properties(example_aligraph_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
