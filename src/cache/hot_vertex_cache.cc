#include "hot_vertex_cache.hh"

#include <bit>

#include "common/flight_recorder.hh"
#include "common/logging.hh"

namespace lsdgnn {
namespace cache {

HotVertexCache::HotVertexCache(HotVertexCacheParams params)
    : params_(std::move(params)),
      sketch_(params_.entries_hint * 8),
      group_(params_.stat_name)
{
    lsd_assert(params_.capacity_bytes > 0, "cache needs a byte budget");
    lsd_assert(params_.protected_fraction > 0.0 &&
                   params_.protected_fraction < 1.0,
               "protected fraction must be in (0,1)");
    lsd_assert(params_.collapse_window > 0,
               "collapse window must be > 0");

    group_.addCounter("lookups", &lookups_, "read-through lookups");
    group_.addCounter("hits", &hits_, "lookups answered locally");
    group_.addCounter("misses", &misses_,
                      "lookups that fell through to the fabric");
    group_.addCounter("admitted", &admitted_,
                      "entries admitted (warmup + on-miss fill)");
    group_.addCounter("rejected", &rejected_,
                      "candidates the TinyLFU filter turned away");
    group_.addCounter("evicted", &evicted_,
                      "entries displaced by a hotter candidate");
    group_.addCounter("invalidated", &invalidated_,
                      "entries dropped by an epoch bump");
    group_.addCounter("epoch_bumps", &epochBumps_,
                      "invalidation epochs started");
    group_.addCounter("bytes_admitted", &bytesAdmitted_,
                      "replicated bytes ever admitted");
    group_.addCounter("bytes_evicted", &bytesEvicted_,
                      "replicated bytes evicted or invalidated");

    if (params_.flight_gauges) {
        auto &fr = trace::FlightRecorder::instance();
        bytesGauge_ = fr.registerGauge(
            params_.stat_name + ".bytes",
            [this] { return static_cast<double>(occupancyBytes()); });
        hitRateGauge_ = fr.registerGauge(
            params_.stat_name + ".hit_rate",
            [this] { return hitRate(); });
    }
}

HotVertexCache::~HotVertexCache()
{
    if (bytesGauge_ != 0)
        trace::FlightRecorder::instance().unregisterGauge(bytesGauge_);
    if (hitRateGauge_ != 0)
        trace::FlightRecorder::instance().unregisterGauge(hitRateGauge_);
}

std::uint64_t
HotVertexCache::scoreLocked(graph::NodeId node,
                            std::uint64_t degree) const
{
    // Frequency dominates; the degree prior (log-bucketed) orders
    // entries no traffic has distinguished yet — warmup and cold
    // starts admit by structural hotness.
    const std::uint64_t prior = std::min<std::uint64_t>(
        15, std::bit_width(degree));
    return (static_cast<std::uint64_t>(sketch_.estimate(node)) << 4) |
           prior;
}

std::uint64_t
HotVertexCache::entryScoreLocked(const Entry &e) const
{
    return scoreLocked(e.node, e.degree);
}

void
HotVertexCache::promoteLocked(EntryList::iterator it)
{
    if (it->segment == Segment::Protected) {
        protected_.splice(protected_.begin(), protected_, it);
        return;
    }
    it->segment = Segment::Protected;
    protectedBytes_ += it->bytes;
    protected_.splice(protected_.begin(), probation_, it);
    // Keep the protected segment within its budget share by demoting
    // its coldest entries back to probation (second chance, not
    // eviction).
    const auto protected_cap = static_cast<std::uint64_t>(
        params_.protected_fraction *
        static_cast<double>(params_.capacity_bytes));
    while (protectedBytes_ > protected_cap && !protected_.empty()) {
        const auto victim = std::prev(protected_.end());
        victim->segment = Segment::Probation;
        protectedBytes_ -= victim->bytes;
        probation_.splice(probation_.begin(), protected_,
                          victim);
    }
}

void
HotVertexCache::evictLocked(EntryList::iterator it)
{
    evicted_.inc();
    bytesEvicted_.inc(it->bytes);
    occupancy_.fetch_sub(it->bytes, std::memory_order_relaxed);
    index_.erase(it->node);
    if (it->segment == Segment::Protected) {
        protectedBytes_ -= it->bytes;
        protected_.erase(it);
    } else {
        probation_.erase(it);
    }
}

bool
HotVertexCache::evictToFitLocked(std::uint64_t need,
                                 std::uint64_t candidate_score,
                                 graph::NodeId exclude)
{
    while (occupancy_.load(std::memory_order_relaxed) + need >
           params_.capacity_bytes) {
        EntryList::iterator victim;
        if (!probation_.empty())
            victim = std::prev(probation_.end());
        else if (!protected_.empty())
            victim = std::prev(protected_.end());
        else
            return false; // empty cache yet still over budget
        if (victim->node == exclude)
            return false; // only the candidate itself is left
        // TinyLFU gate: the candidate must be strictly hotter than
        // what it displaces, so scans cannot churn the hot set.
        if (candidate_score <= entryScoreLocked(*victim))
            return false;
        evictLocked(victim);
    }
    return true;
}

HotVertexCache::WindowVerdict
HotVertexCache::countLookupLocked(bool hit)
{
    lookups_.inc();
    if (hit)
        hits_.inc();
    else
        misses_.inc();

    WindowVerdict verdict;
    ++windowLookups_;
    windowHits_ += hit ? 1 : 0;
    if (windowLookups_ < params_.collapse_window)
        return verdict;
    const double rate = static_cast<double>(windowHits_) /
                        static_cast<double>(windowLookups_);
    // A collapse is a working cache suddenly missing: the classic
    // cause is an epoch-invalidation storm re-fetching everything
    // remotely, which is exactly what an anomaly dump should name.
    if (prevWindowRate_ >= 0.25 && rate < 0.5 * prevWindowRate_) {
        verdict.tripped = true;
        verdict.rate = rate;
        verdict.previous = prevWindowRate_;
    }
    prevWindowRate_ = rate;
    windowLookups_ = 0;
    windowHits_ = 0;
    return verdict;
}

void
HotVertexCache::fireCollapse(const WindowVerdict &verdict)
{
    auto &fr = trace::FlightRecorder::instance();
    fr.recordNow("cache.hitrate.collapse", 0, 0, verdict.rate,
                 verdict.previous);
    fr.trip("cache-hitrate-collapse:" + params_.stat_name);
}

HotVertexCache::AdjacencyRef
HotVertexCache::lookupAdjacency(graph::NodeId node)
{
    AdjacencyRef out;
    WindowVerdict verdict;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sketch_.record(node);
        const auto it = index_.find(node);
        const bool hit = it != index_.end() &&
                         it->second->adjacency != nullptr;
        verdict = countLookupLocked(hit);
        if (hit) {
            out = it->second->adjacency;
            promoteLocked(it->second);
        }
    }
    if (verdict.tripped)
        fireCollapse(verdict);
    return out;
}

HotVertexCache::VertexView
HotVertexCache::lookupVertex(graph::NodeId node)
{
    VertexView out;
    WindowVerdict verdict;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sketch_.record(node);
        const auto it = index_.find(node);
        const bool hit = it != index_.end();
        verdict = countLookupLocked(hit);
        if (hit) {
            out.adjacency = it->second->adjacency;
            out.has_attrs = it->second->has_attrs;
            promoteLocked(it->second);
        }
    }
    if (verdict.tripped)
        fireCollapse(verdict);
    return out;
}

bool
HotVertexCache::lookupAttributes(graph::NodeId node)
{
    bool hit = false;
    WindowVerdict verdict;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sketch_.record(node);
        const auto it = index_.find(node);
        hit = it != index_.end() && it->second->has_attrs;
        verdict = countLookupLocked(hit);
        if (hit)
            promoteLocked(it->second);
    }
    if (verdict.tripped)
        fireCollapse(verdict);
    return hit;
}

bool
HotVertexCache::admitAdjacency(graph::NodeId node,
                               std::span<const graph::NodeId> adjacency)
{
    const std::uint64_t adj_bytes =
        adjacency.size() * sizeof(graph::NodeId);
    std::lock_guard<std::mutex> lock(mutex_);

    const auto it = index_.find(node);
    if (it != index_.end()) {
        Entry &e = *it->second;
        if (e.adjacency != nullptr)
            return true; // already replicated
        // Upgrade an attribute-only entry in place. Touch it first so
        // the fit loop cannot select it as its own victim.
        e.degree = std::max<std::uint64_t>(e.degree, adjacency.size());
        if (e.segment == Segment::Probation)
            probation_.splice(probation_.begin(), probation_,
                              it->second);
        else
            protected_.splice(protected_.begin(), protected_,
                              it->second);
        if (!evictToFitLocked(adj_bytes, scoreLocked(node, e.degree),
                              node)) {
            rejected_.inc();
            return false;
        }
        e.adjacency = std::make_shared<const std::vector<graph::NodeId>>(
            adjacency.begin(), adjacency.end());
        e.bytes += adj_bytes;
        if (e.segment == Segment::Protected)
            protectedBytes_ += adj_bytes;
        occupancy_.fetch_add(adj_bytes, std::memory_order_relaxed);
        bytesAdmitted_.inc(adj_bytes);
        return true;
    }

    const std::uint64_t bytes = entry_overhead_bytes + adj_bytes;
    if (bytes > params_.capacity_bytes ||
        !evictToFitLocked(bytes, scoreLocked(node, adjacency.size()),
                          node)) {
        rejected_.inc();
        return false;
    }
    Entry e;
    e.node = node;
    e.adjacency = std::make_shared<const std::vector<graph::NodeId>>(
        adjacency.begin(), adjacency.end());
    e.degree = adjacency.size();
    e.bytes = bytes;
    probation_.push_front(std::move(e));
    index_.emplace(node, probation_.begin());
    occupancy_.fetch_add(bytes, std::memory_order_relaxed);
    admitted_.inc();
    bytesAdmitted_.inc(bytes);
    return true;
}

bool
HotVertexCache::admitAttributes(graph::NodeId node,
                                std::uint64_t degree_hint)
{
    const std::uint64_t attr_bytes = params_.attr_bytes;
    std::lock_guard<std::mutex> lock(mutex_);

    const auto it = index_.find(node);
    if (it != index_.end()) {
        Entry &e = *it->second;
        if (e.has_attrs)
            return true;
        e.degree = std::max(e.degree, degree_hint);
        if (e.segment == Segment::Probation)
            probation_.splice(probation_.begin(), probation_,
                              it->second);
        else
            protected_.splice(protected_.begin(), protected_,
                              it->second);
        if (!evictToFitLocked(attr_bytes, scoreLocked(node, e.degree),
                              node)) {
            rejected_.inc();
            return false;
        }
        e.has_attrs = true;
        e.bytes += attr_bytes;
        if (e.segment == Segment::Protected)
            protectedBytes_ += attr_bytes;
        occupancy_.fetch_add(attr_bytes, std::memory_order_relaxed);
        bytesAdmitted_.inc(attr_bytes);
        return true;
    }

    const std::uint64_t bytes = entry_overhead_bytes + attr_bytes;
    if (bytes > params_.capacity_bytes ||
        !evictToFitLocked(bytes, scoreLocked(node, degree_hint),
                          node)) {
        rejected_.inc();
        return false;
    }
    Entry e;
    e.node = node;
    e.has_attrs = true;
    e.degree = degree_hint;
    e.bytes = bytes;
    probation_.push_front(std::move(e));
    index_.emplace(node, probation_.begin());
    occupancy_.fetch_add(bytes, std::memory_order_relaxed);
    admitted_.inc();
    bytesAdmitted_.inc(bytes);
    return true;
}

bool
HotVertexCache::contains(graph::NodeId node) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(node) != index_.end();
}

std::size_t
HotVertexCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

void
HotVertexCache::bumpEpoch()
{
    std::size_t dropped = 0;
    std::uint64_t dropped_bytes = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dropped = index_.size();
        dropped_bytes = occupancy_.load(std::memory_order_relaxed);
        probation_.clear();
        protected_.clear();
        index_.clear();
        protectedBytes_ = 0;
        occupancy_.store(0, std::memory_order_relaxed);
        sketch_.clear();
        epoch_.fetch_add(1, std::memory_order_relaxed);
        invalidated_.inc(dropped);
        bytesEvicted_.inc(dropped_bytes);
        epochBumps_.inc();
        // The next hit-rate windows measure post-invalidation traffic;
        // the pre-bump rate stays as the collapse reference.
        windowLookups_ = 0;
        windowHits_ = 0;
    }
    trace::FlightRecorder::instance().recordNow(
        "cache.epoch.bump", 0, 0, static_cast<double>(dropped),
        static_cast<double>(dropped_bytes));
}

} // namespace cache
} // namespace lsdgnn
