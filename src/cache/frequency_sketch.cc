#include "frequency_sketch.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace cache {

namespace {

/** Distinct odd multipliers for the depth-4 hash family. */
constexpr std::uint64_t hash_seeds[4] = {
    0x9E3779B97F4A7C15ull,
    0xC2B2AE3D27D4EB4Full,
    0x165667B19E3779F9ull,
    0xD6E8FEB86659FD93ull,
};

/** SplitMix64 finalizer: spreads low-entropy node IDs. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x;
}

} // namespace

FrequencySketch::FrequencySketch(std::size_t counters,
                                 std::uint64_t sample_size)
{
    std::size_t words = 4; // 64 counters minimum
    while (words * slots_per_word < counters)
        words <<= 1;
    table_.assign(words, 0);
    mask_ = words - 1;
    // Aging window: roughly two increments per counter between
    // halvings (each record touches 4 counters), so hot keys saturate
    // while the table as a whole never does.
    sampleSize_ = sample_size != 0
                      ? sample_size
                      : static_cast<std::uint64_t>(words) *
                            slots_per_word / 2;
    lsd_assert(sampleSize_ > 0, "sketch sample size must be > 0");
}

std::size_t
FrequencySketch::slot(std::uint64_t key, std::size_t i) const
{
    const std::uint64_t h = mix(key * hash_seeds[i]);
    // One word per hash, one slot within it from the low bits: the
    // high bits pick the word so the mask keeps full entropy.
    const std::size_t word = static_cast<std::size_t>(h >> 32) & mask_;
    const std::size_t sub = static_cast<std::size_t>(h) % slots_per_word;
    return word * slots_per_word + sub;
}

std::uint32_t
FrequencySketch::counterAt(std::size_t idx) const
{
    const std::uint64_t word = table_[idx / slots_per_word];
    const std::size_t shift = (idx % slots_per_word) * 4;
    return static_cast<std::uint32_t>((word >> shift) & 0xF);
}

bool
FrequencySketch::incrementAt(std::size_t idx)
{
    const std::size_t shift = (idx % slots_per_word) * 4;
    std::uint64_t &word = table_[idx / slots_per_word];
    if (((word >> shift) & 0xF) >= counter_max)
        return false;
    word += std::uint64_t(1) << shift;
    return true;
}

void
FrequencySketch::record(std::uint64_t key)
{
    ++recorded_;
    bool moved = false;
    for (std::size_t i = 0; i < 4; ++i)
        moved |= incrementAt(slot(key, i));
    if (moved && ++sinceAging_ >= sampleSize_)
        age();
}

std::uint32_t
FrequencySketch::estimate(std::uint64_t key) const
{
    std::uint32_t est = counter_max;
    for (std::size_t i = 0; i < 4; ++i) {
        const std::uint32_t c = counterAt(slot(key, i));
        if (c < est)
            est = c;
    }
    return est;
}

void
FrequencySketch::age()
{
    // Halve every 4-bit counter in parallel: clear each slot's low
    // bit, then shift the whole word right once.
    for (std::uint64_t &word : table_)
        word = (word >> 1) & 0x7777777777777777ull;
    sinceAging_ = 0;
    ++agings_;
}

void
FrequencySketch::clear()
{
    table_.assign(table_.size(), 0);
    sinceAging_ = 0;
}

} // namespace cache
} // namespace lsdgnn
