/**
 * @file
 * Shard-aware hot-vertex cache tier.
 *
 * Power-law graphs concentrate sampling traffic on a tiny high-degree
 * hot set; hash partitioning still scatters those vertices across
 * shards, so every touch of a remote hot vertex pays a MoF round
 * trip. This tier replicates the hot set into each shard's local
 * memory — a vertex entry carries its adjacency slice (global target
 * IDs, byte-identical to the owner shard's) and/or its attribute row
 * — so the distributed backend can answer those reads without staging
 * anything on a shard channel. The same mechanism is AliGraph's
 * framework-level cache and the paper's mem-opt architecture point.
 *
 * Policy:
 *  - Admission: W-TinyLFU — a candidate enters only when its recent
 *    lookup frequency (FrequencySketch) plus a degree prior beats the
 *    eviction victim's. The degree prior admits structurally hot
 *    vertices (the CSR already knows them) before any traffic has
 *    been observed, which is what makes top-K degree warmup and
 *    on-miss admission the same code path.
 *  - Eviction: segmented LRU under a hard byte budget. New entries
 *    start in probation; a hit promotes to the protected segment
 *    (bounded to a fraction of the budget, demoting its LRU back to
 *    probation). Victims come from probation first, so one-hit
 *    wonders can never flush the established hot set.
 *  - Invalidation: epoch-based. bumpEpoch() atomically drops every
 *    replica and forgets sketch history; a future graph-mutation path
 *    bumps the epoch instead of chasing individual stale entries.
 *
 * Thread-safety: fully thread-safe behind one internal mutex; lookups
 * return shared_ptr payloads so a concurrent eviction or epoch bump
 * never invalidates data a reader already holds. The flight-recorder
 * trip on a hit-rate collapse is deferred until after the lock is
 * released (gauges registered by this cache re-enter the mutex).
 *
 * Determinism: for a single-threaded access sequence the full cache
 * state (residency, segments, sketch) is a pure function of that
 * sequence. Concurrent use may interleave differently run to run —
 * which is safe for the distributed backend because cache contents
 * only decide whether a read crosses the fabric, never what the
 * sampler draws (the replicated adjacency is byte-identical to the
 * owner's).
 */

#ifndef LSDGNN_CACHE_HOT_VERTEX_CACHE_HH
#define LSDGNN_CACHE_HOT_VERTEX_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/frequency_sketch.hh"
#include "common/stats.hh"
#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace cache {

/** Construction knobs for one shard's cache. */
struct HotVertexCacheParams {
    /** Hard budget for replicated bytes (adjacency + attrs + index). */
    std::uint64_t capacity_bytes = 0;
    /** Bytes one replicated attribute row is charged. */
    std::uint32_t attr_bytes = 0;
    /** Budget share the protected segment may occupy. */
    double protected_fraction = 0.8;
    /** Expected resident entries (sizes the admission sketch). */
    std::size_t entries_hint = 1024;
    /** Lookups per hit-rate window (collapse detection). */
    std::uint64_t collapse_window = 2048;
    /** StatRegistry group name, e.g. "cache.shard0". */
    std::string stat_name = "cache";
    /** Register occupancy/hit-rate gauges with the FlightRecorder. */
    bool flight_gauges = false;
};

/**
 * One shard's replicated hot-vertex set: bounded, admission-filtered,
 * epoch-invalidated. See the file comment for the policy.
 */
class HotVertexCache
{
  public:
    /** Immutable replicated adjacency slice, safe past eviction. */
    using AdjacencyRef = std::shared_ptr<const std::vector<graph::NodeId>>;

    explicit HotVertexCache(HotVertexCacheParams params);
    ~HotVertexCache();

    HotVertexCache(const HotVertexCache &) = delete;
    HotVertexCache &operator=(const HotVertexCache &) = delete;

    /** Both residency facets of one vertex, from a single probe. */
    struct VertexView {
        AdjacencyRef adjacency; ///< null when no replicated slice
        bool has_attrs = false;
    };

    /**
     * Read-through lookup of @p node's adjacency slice. Counts a hit
     * or miss, feeds the admission sketch, and promotes on hit.
     * @return the replica, or null on miss.
     */
    AdjacencyRef lookupAdjacency(graph::NodeId node);

    /**
     * One-probe lookup of both facets, for callers that memoize per
     * batch (the distributed backend): one lock, one sketch feed, one
     * hit/miss count — a hit is any residency at all.
     */
    VertexView lookupVertex(graph::NodeId node);

    /**
     * Read-through lookup of @p node's attribute-row residency.
     * Counts and promotes like lookupAdjacency().
     */
    bool lookupAttributes(graph::NodeId node);

    /**
     * Offer @p node's adjacency for admission (read-through fill or
     * warmup). Idempotent for resident entries; an attribute-only
     * entry is upgraded in place. @return true when the replica is
     * resident afterwards.
     */
    bool admitAdjacency(graph::NodeId node,
                        std::span<const graph::NodeId> adjacency);

    /**
     * Offer @p node's attribute row for admission. @p degree_hint
     * feeds the degree prior for entries with no resident adjacency.
     */
    bool admitAttributes(graph::NodeId node,
                         std::uint64_t degree_hint = 0);

    /** Residency peek; no counters, no sketch, no promotion. */
    bool contains(graph::NodeId node) const;

    /**
     * Invalidate every replica at once: a mutation path bumps the
     * epoch instead of locating stale entries. Clears the sketch too
     * (post-mutation popularity must be re-learned).
     */
    void bumpEpoch();

    /** Epoch bumps so far (0 = never invalidated). */
    std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

    /** Replicated bytes currently resident. */
    std::uint64_t
    occupancyBytes() const
    {
        return occupancy_.load(std::memory_order_relaxed);
    }

    /** Hard byte budget. */
    std::uint64_t capacityBytes() const { return params_.capacity_bytes; }

    /** Resident entries. */
    std::size_t entries() const;

    std::uint64_t lookups() const { return lookups_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t admitted() const { return admitted_.value(); }
    std::uint64_t rejected() const { return rejected_.value(); }
    std::uint64_t evicted() const { return evicted_.value(); }
    std::uint64_t invalidated() const { return invalidated_.value(); }

    /** Lifetime hit rate over lookups (0 before any lookup). */
    double
    hitRate() const
    {
        const double total = static_cast<double>(hits() + misses());
        return total == 0.0 ? 0.0
                            : static_cast<double>(hits()) / total;
    }

    /** Index/bookkeeping bytes one entry is charged beyond payload. */
    static constexpr std::uint64_t entry_overhead_bytes = 96;

  private:
    enum class Segment : std::uint8_t { Probation, Protected };

    struct Entry {
        graph::NodeId node;
        AdjacencyRef adjacency; ///< null when only attrs are resident
        bool has_attrs = false;
        std::uint64_t degree = 0; ///< degree prior (adjacency or hint)
        std::uint64_t bytes = 0;
        Segment segment = Segment::Probation;
    };

    using EntryList = std::list<Entry>;

    /** Admission score: sketch frequency dominates, degree breaks ties. */
    std::uint64_t scoreLocked(graph::NodeId node,
                              std::uint64_t degree) const;
    std::uint64_t entryScoreLocked(const Entry &e) const;

    /** Move a just-hit entry toward the protected segment's MRU end. */
    void promoteLocked(EntryList::iterator it);

    /**
     * Make room for @p need more bytes; false = candidate loses (a
     * victim was at least as hot, or only @p exclude itself is left).
     */
    bool evictToFitLocked(std::uint64_t need,
                          std::uint64_t candidate_score,
                          graph::NodeId exclude);
    void evictLocked(EntryList::iterator it);

    /** Shared miss/hit accounting + collapse detection. */
    struct WindowVerdict {
        bool tripped = false;
        double rate = 0.0;
        double previous = 0.0;
    };
    WindowVerdict countLookupLocked(bool hit);
    void fireCollapse(const WindowVerdict &verdict);

    HotVertexCacheParams params_;

    mutable std::mutex mutex_;
    EntryList probation_;
    EntryList protected_;
    std::uint64_t protectedBytes_ = 0;
    std::unordered_map<graph::NodeId, EntryList::iterator> index_;
    FrequencySketch sketch_;
    std::atomic<std::uint64_t> occupancy_{0};
    std::atomic<std::uint64_t> epoch_{0};

    std::uint64_t windowLookups_ = 0;
    std::uint64_t windowHits_ = 0;
    double prevWindowRate_ = -1.0; ///< <0 = no completed window yet

    stats::StatGroup group_;
    stats::Counter lookups_;
    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter admitted_;
    stats::Counter rejected_;
    stats::Counter evicted_;
    stats::Counter invalidated_;
    stats::Counter epochBumps_;
    stats::Counter bytesAdmitted_;
    stats::Counter bytesEvicted_;

    std::uint64_t bytesGauge_ = 0;   ///< FlightRecorder handle (0 = none)
    std::uint64_t hitRateGauge_ = 0; ///< FlightRecorder handle (0 = none)
};

} // namespace cache
} // namespace lsdgnn

#endif // LSDGNN_CACHE_HOT_VERTEX_CACHE_HH
