/**
 * @file
 * TinyLFU-style frequency sketch over recent lookups.
 *
 * The hot-vertex cache tier admits a vertex only when it is *hotter*
 * than the entry it would displace. "Hotter" is estimated by this
 * sketch: a count-min filter of 4-bit saturating counters recording
 * the recent lookup stream, periodically halved (aged) so the
 * estimate tracks a sliding sample window instead of all history —
 * the W-TinyLFU construction (Einziger et al.), which is what lets a
 * frequency-based cache react to popularity shifts that a plain LFU
 * would ignore forever.
 *
 * Fully deterministic: the hash family is fixed, so identical record
 * sequences produce identical estimates — the cache-admission
 * determinism tests rely on this.
 */

#ifndef LSDGNN_CACHE_FREQUENCY_SKETCH_HH
#define LSDGNN_CACHE_FREQUENCY_SKETCH_HH

#include <cstdint>
#include <vector>

namespace lsdgnn {
namespace cache {

/** 4-bit count-min sketch with periodic aging (TinyLFU). */
class FrequencySketch
{
  public:
    /**
     * @param counters Counter slots to provision; rounded up to a
     *        power of two, minimum 64. Size for several counters per
     *        expected cache entry so collisions stay rare.
     * @param sample_size record() calls between agings; 0 picks a
     *        default proportional to the table size.
     */
    explicit FrequencySketch(std::size_t counters,
                             std::uint64_t sample_size = 0);

    /** Note one lookup of @p key (increments 4 counters, ages). */
    void record(std::uint64_t key);

    /** Recent-frequency estimate of @p key, saturated at 15. */
    std::uint32_t estimate(std::uint64_t key) const;

    /** Forget everything (epoch invalidation resets recency too). */
    void clear();

    /** record() calls so far. */
    std::uint64_t recorded() const { return recorded_; }

    /** Halvings performed so far. */
    std::uint64_t agings() const { return agings_; }

    /** Provisioned counter slots (after rounding). */
    std::size_t counters() const { return (mask_ + 1) * slots_per_word; }

  private:
    static constexpr std::size_t slots_per_word = 16; ///< 4 bits each
    static constexpr std::uint32_t counter_max = 15;

    /** The i-th counter index for @p key (depth-4 hash family). */
    std::size_t slot(std::uint64_t key, std::size_t i) const;

    std::uint32_t counterAt(std::size_t idx) const;
    /** @return true when the counter was below saturation. */
    bool incrementAt(std::size_t idx);
    void age();

    std::vector<std::uint64_t> table_; ///< 16 packed counters per word
    std::size_t mask_;                 ///< table_.size() - 1
    std::uint64_t sampleSize_;
    std::uint64_t sinceAging_ = 0;
    std::uint64_t agings_ = 0;
    std::uint64_t recorded_ = 0;
};

} // namespace cache
} // namespace lsdgnn

#endif // LSDGNN_CACHE_FREQUENCY_SKETCH_HH
