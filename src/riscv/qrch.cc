#include "qrch.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace riscv {

QrchHub::QrchHub(std::uint32_t num_queues, std::uint32_t depth)
    : queues(num_queues), consumers(num_queues), depth_(depth)
{
    lsd_assert(num_queues > 0, "hub needs at least one queue");
    lsd_assert(depth > 0, "queues need at least one entry");
}

void
QrchHub::checkQid(std::uint32_t qid) const
{
    lsd_assert(qid < queues.size(), "queue id ", qid, " out of range");
}

bool
QrchHub::enqueue(std::uint32_t qid, std::uint32_t lo, std::uint32_t hi)
{
    checkQid(qid);
    if (queues[qid].size() + 2 > depth_)
        return false;
    enqueues.inc();
    if (consumers[qid]) {
        // The attached accelerator drains the pair immediately.
        consumers[qid](lo, hi);
        return true;
    }
    queues[qid].push_back(lo);
    queues[qid].push_back(hi);
    return true;
}

bool
QrchHub::dequeue(std::uint32_t qid, std::uint32_t &value)
{
    checkQid(qid);
    if (queues[qid].empty())
        return false;
    value = queues[qid].front();
    queues[qid].pop_front();
    dequeues.inc();
    return true;
}

std::uint32_t
QrchHub::occupancy(std::uint32_t qid) const
{
    checkQid(qid);
    return static_cast<std::uint32_t>(queues[qid].size());
}

bool
QrchHub::push(std::uint32_t qid, std::uint32_t value)
{
    checkQid(qid);
    if (queues[qid].size() >= depth_)
        return false;
    queues[qid].push_back(value);
    return true;
}

void
QrchHub::setConsumer(std::uint32_t qid, Consumer consumer)
{
    checkQid(qid);
    consumers[qid] = std::move(consumer);
}

} // namespace riscv
} // namespace lsdgnn
