#include "qrch.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace lsdgnn {
namespace riscv {

QrchHub::QrchHub(std::uint32_t num_queues, std::uint32_t depth)
    : queues(num_queues), consumers(num_queues), depth_(depth),
      depths(0.0, static_cast<double>(depth) + 1.0, depth + 1)
{
    lsd_assert(num_queues > 0, "hub needs at least one queue");
    lsd_assert(depth > 0, "queues need at least one entry");
    group.addCounter("enqueues", &enqueues, "core-side pair enqueues");
    group.addCounter("dequeues", &dequeues, "words dequeued");
    group.addHistogram("occupancy", &depths,
                       "queue words occupied, sampled at enqueue");
}

void
QrchHub::traceDepth(std::uint32_t qid) const
{
    if (!trace::Tracer::enabled() || !clock)
        return;
    trace::Tracer::instance().counter(0,
        group.name() + ".q" + std::to_string(qid) + ".depth", clock(),
        static_cast<double>(queues[qid].size()));
}

void
QrchHub::checkQid(std::uint32_t qid) const
{
    lsd_assert(qid < queues.size(), "queue id ", qid, " out of range");
}

bool
QrchHub::enqueue(std::uint32_t qid, std::uint32_t lo, std::uint32_t hi)
{
    checkQid(qid);
    if (queues[qid].size() + 2 > depth_)
        return false;
    enqueues.inc();
    if (consumers[qid]) {
        // The attached accelerator drains the pair immediately.
        depths.sample(static_cast<double>(queues[qid].size()));
        consumers[qid](lo, hi);
        return true;
    }
    queues[qid].push_back(lo);
    queues[qid].push_back(hi);
    depths.sample(static_cast<double>(queues[qid].size()));
    traceDepth(qid);
    return true;
}

bool
QrchHub::dequeue(std::uint32_t qid, std::uint32_t &value)
{
    checkQid(qid);
    if (queues[qid].empty())
        return false;
    value = queues[qid].front();
    queues[qid].pop_front();
    dequeues.inc();
    traceDepth(qid);
    return true;
}

std::uint32_t
QrchHub::occupancy(std::uint32_t qid) const
{
    checkQid(qid);
    return static_cast<std::uint32_t>(queues[qid].size());
}

bool
QrchHub::push(std::uint32_t qid, std::uint32_t value)
{
    checkQid(qid);
    if (queues[qid].size() >= depth_)
        return false;
    queues[qid].push_back(value);
    return true;
}

void
QrchHub::setConsumer(std::uint32_t qid, Consumer consumer)
{
    checkQid(qid);
    consumers[qid] = std::move(consumer);
}

} // namespace riscv
} // namespace lsdgnn
