#include "control.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace riscv {

std::uint32_t
CommandDevice::mmioAccess(bool is_store, std::uint32_t offset,
                          std::uint32_t value)
{
    switch (offset & 0xf) {
      case 0x0:
        if (is_store)
            pending_lo = value;
        return pending_lo;
      case 0x4:
        if (is_store)
            complete(pending_lo, value);
        return 0;
      case 0x8:
        // Status: commands accepted so far (poll target).
        return static_cast<std::uint32_t>(commands.size());
      default:
        lsd_warn("access to unmapped device register offset ", offset);
        return 0;
    }
}

void
CommandDevice::qrchCommand(std::uint32_t lo, std::uint32_t hi)
{
    complete(lo, hi);
}

void
CommandDevice::attachResponseQueue(QrchHub *hub, std::uint32_t qid)
{
    responseHub = hub;
    responseQid = qid;
}

void
CommandDevice::complete(std::uint32_t lo, std::uint32_t hi)
{
    commands.push_back(Command{lo, hi});
    if (responseHub) {
        const bool ok = responseHub->push(responseQid,
            static_cast<std::uint32_t>(commands.size()));
        if (!ok)
            lsd_warn("response queue overflow");
    }
}

InteractionResult
measureMmioInteraction(std::uint32_t n)
{
    lsd_assert(n > 0, "need at least one command");
    Rv32Core core;
    CommandDevice device;
    constexpr std::uint32_t device_base = 0x8000'0000;
    core.mapMmio(device_base, 0x1000,
        [&device](bool is_store, std::uint32_t addr, std::uint32_t v) {
            return device.mmioAccess(is_store, addr & 0xfff, v);
        });

    // a0 = device base, a1 = loop counter, a2 = command payload.
    // loop: sw a2, 0(a0); sw a2, 4(a0); lw a3, 8(a0);
    //       addi a1, a1, -1; bne a1, zero, loop; ecall
    using namespace encode;
    std::vector<Insn> prog;
    prog.push_back(lui(a0, static_cast<std::int32_t>(device_base >> 12)));
    prog.push_back(addi(a1, zero,
        static_cast<std::int32_t>(n)));
    prog.push_back(addi(a2, zero, 42));
    const std::int32_t loop_len = 5 * 4;
    prog.push_back(sw(a2, a0, 0));
    prog.push_back(sw(a2, a0, 4));
    prog.push_back(lw(a3, a0, 8));
    prog.push_back(addi(a1, a1, -1));
    prog.push_back(bne(a1, zero, -(loop_len - 4)));
    prog.push_back(ecall());

    core.loadProgram(prog);
    const std::uint64_t before = core.cycles();
    const StopReason reason = core.run(200 + 40ull * n);
    lsd_assert(reason == StopReason::Ecall,
               "MMIO program did not finish cleanly");
    const std::uint64_t total = core.cycles() - before;
    return InteractionResult{
        static_cast<double>(total) / static_cast<double>(n),
        device.received().size()};
}

InteractionResult
measureQrchInteraction(std::uint32_t n)
{
    lsd_assert(n > 0, "need at least one command");
    Rv32Core core;
    QrchHub hub(2, 16);
    CommandDevice device;
    hub.setConsumer(0, [&device](std::uint32_t lo, std::uint32_t hi) {
        device.qrchCommand(lo, hi);
    });
    device.attachResponseQueue(&hub, 1);
    core.attachQrch(&hub);

    // loop: qrch.enq q0, a2, a2; qrch.deq a3, q1;
    //       addi a1, a1, -1; bne a1, zero, loop; ecall
    using namespace encode;
    std::vector<Insn> prog;
    prog.push_back(addi(a1, zero, static_cast<std::int32_t>(n)));
    prog.push_back(addi(a2, zero, 42));
    const std::int32_t loop_len = 4 * 4;
    prog.push_back(qrchEnq(0, a2, a2));
    prog.push_back(qrchDeq(a3, 1));
    prog.push_back(addi(a1, a1, -1));
    prog.push_back(bne(a1, zero, -(loop_len - 4)));
    prog.push_back(ecall());

    core.loadProgram(prog);
    const std::uint64_t before = core.cycles();
    const StopReason reason = core.run(200 + 40ull * n);
    lsd_assert(reason == StopReason::Ecall,
               "QRCH program did not finish cleanly");
    const std::uint64_t total = core.cycles() - before;
    return InteractionResult{
        static_cast<double>(total) / static_cast<double>(n),
        device.received().size()};
}

InteractionResult
modelIsaExtInteraction(std::uint32_t n)
{
    lsd_assert(n > 0, "need at least one command");
    // A tightly-coupled extension retires the command from the execute
    // stage: one cycle per command, no bus, no queue handshake.
    return InteractionResult{1.0, n};
}

} // namespace riscv
} // namespace lsdgnn
