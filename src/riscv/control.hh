/**
 * @file
 * Accelerator control interface comparison (paper Table 7).
 *
 * A CommandDevice stands in for the AxE command decoder. Control
 * programs running on the RV32 core push (lo, hi) command words to it
 * through one of three mechanisms and wait for the acknowledgement:
 *
 *  - MMIO: two stores into device registers + a status load over the
 *    SoC bus (~100 cycles per access);
 *  - QRCH: one qrch.enq plus one qrch.deq (~10 cycles per access);
 *  - tightly-coupled ISA extension: the command issues from inside
 *    the pipeline (~1 cycle), modeled analytically since it requires
 *    modifying the core's execute stage.
 *
 * measure*Interaction() run real interpreted programs and report
 * cycles per command round trip.
 */

#ifndef LSDGNN_RISCV_CONTROL_HH
#define LSDGNN_RISCV_CONTROL_HH

#include <cstdint>
#include <vector>

#include "riscv/rv32.hh"

namespace lsdgnn {
namespace riscv {

/**
 * Command sink playing the accelerator's role.
 */
class CommandDevice
{
  public:
    /** One received 64-bit command. */
    struct Command {
        std::uint32_t lo;
        std::uint32_t hi;
    };

    /** Commands received so far. */
    const std::vector<Command> &received() const { return commands; }

    /** MMIO register block: 0x0 cmd_lo, 0x4 cmd_hi(+fire), 0x8 status. */
    std::uint32_t mmioAccess(bool is_store, std::uint32_t offset,
                             std::uint32_t value);

    /** QRCH consumer: a (lo, hi) pair arrives from the command queue. */
    void qrchCommand(std::uint32_t lo, std::uint32_t hi);

    /** Attach the response path (QRCH queue to push acks into). */
    void attachResponseQueue(QrchHub *hub, std::uint32_t qid);

  private:
    void complete(std::uint32_t lo, std::uint32_t hi);

    std::vector<Command> commands;
    std::uint32_t pending_lo = 0;
    QrchHub *responseHub = nullptr;
    std::uint32_t responseQid = 0;
};

/** Result of one interaction measurement. */
struct InteractionResult {
    /** Cycles per command round trip. */
    double cycles_per_command;
    /** Commands actually delivered (validation). */
    std::uint64_t commands_delivered;
};

/** Issue @p n commands through MMIO registers and measure cycles. */
InteractionResult measureMmioInteraction(std::uint32_t n);

/** Issue @p n commands through QRCH queues and measure cycles. */
InteractionResult measureQrchInteraction(std::uint32_t n);

/**
 * Tightly-coupled ISA extension: the analytical single-cycle bound
 * (the instruction retires from the execute stage directly).
 */
InteractionResult modelIsaExtInteraction(std::uint32_t n);

} // namespace riscv
} // namespace lsdgnn

#endif // LSDGNN_RISCV_CONTROL_HH
