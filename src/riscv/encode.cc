#include "encode.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace riscv {
namespace encode {

namespace {

constexpr std::uint32_t op_load = 0x03;
constexpr std::uint32_t op_imm = 0x13;
constexpr std::uint32_t op_auipc = 0x17;
constexpr std::uint32_t op_store = 0x23;
constexpr std::uint32_t op_reg = 0x33;
constexpr std::uint32_t op_lui = 0x37;
constexpr std::uint32_t op_branch = 0x63;
constexpr std::uint32_t op_jalr = 0x67;
constexpr std::uint32_t op_jal = 0x6f;
constexpr std::uint32_t op_system = 0x73;
constexpr std::uint32_t op_custom0 = 0x0b;

std::uint32_t
checkImm12(std::int32_t imm)
{
    lsd_assert(imm >= -2048 && imm <= 2047,
               "12-bit immediate out of range: ", imm);
    return static_cast<std::uint32_t>(imm) & 0xfff;
}

} // namespace

Insn
rType(std::uint32_t funct7, std::uint32_t rs2, std::uint32_t rs1,
      std::uint32_t funct3, std::uint32_t rd, std::uint32_t opcode)
{
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

Insn
iType(std::int32_t imm, std::uint32_t rs1, std::uint32_t funct3,
      std::uint32_t rd, std::uint32_t opcode)
{
    return (checkImm12(imm) << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

Insn
sType(std::int32_t imm, std::uint32_t rs2, std::uint32_t rs1,
      std::uint32_t funct3, std::uint32_t opcode)
{
    const std::uint32_t u = checkImm12(imm);
    return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           ((u & 0x1f) << 7) | opcode;
}

Insn
bType(std::int32_t imm, std::uint32_t rs2, std::uint32_t rs1,
      std::uint32_t funct3, std::uint32_t opcode)
{
    lsd_assert(imm >= -4096 && imm <= 4095 && (imm & 1) == 0,
               "branch offset out of range or misaligned: ", imm);
    const auto u = static_cast<std::uint32_t>(imm);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
           (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | opcode;
}

Insn
uType(std::int32_t imm, std::uint32_t rd, std::uint32_t opcode)
{
    return (static_cast<std::uint32_t>(imm) << 12) | (rd << 7) | opcode;
}

Insn
jType(std::int32_t imm, std::uint32_t rd, std::uint32_t opcode)
{
    lsd_assert(imm >= -(1 << 20) && imm < (1 << 20) && (imm & 1) == 0,
               "jump offset out of range or misaligned: ", imm);
    const auto u = static_cast<std::uint32_t>(imm);
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
           (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
           (rd << 7) | opcode;
}

Insn lui(Reg rd, std::int32_t imm20) { return uType(imm20, rd, op_lui); }
Insn auipc(Reg rd, std::int32_t imm20)
{
    return uType(imm20, rd, op_auipc);
}
Insn jal(Reg rd, std::int32_t offset)
{
    return jType(offset, rd, op_jal);
}
Insn jalr(Reg rd, Reg rs1, std::int32_t offset)
{
    return iType(offset, rs1, 0, rd, op_jalr);
}
Insn beq(Reg rs1, Reg rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 0, op_branch);
}
Insn bne(Reg rs1, Reg rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 1, op_branch);
}
Insn blt(Reg rs1, Reg rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 4, op_branch);
}
Insn bge(Reg rs1, Reg rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 5, op_branch);
}
Insn bltu(Reg rs1, Reg rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 6, op_branch);
}
Insn bgeu(Reg rs1, Reg rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 7, op_branch);
}
Insn lb(Reg rd, Reg rs1, std::int32_t offset)
{
    return iType(offset, rs1, 0, rd, op_load);
}
Insn lh(Reg rd, Reg rs1, std::int32_t offset)
{
    return iType(offset, rs1, 1, rd, op_load);
}
Insn lw(Reg rd, Reg rs1, std::int32_t offset)
{
    return iType(offset, rs1, 2, rd, op_load);
}
Insn lbu(Reg rd, Reg rs1, std::int32_t offset)
{
    return iType(offset, rs1, 4, rd, op_load);
}
Insn lhu(Reg rd, Reg rs1, std::int32_t offset)
{
    return iType(offset, rs1, 5, rd, op_load);
}
Insn sb(Reg rs2, Reg rs1, std::int32_t offset)
{
    return sType(offset, rs2, rs1, 0, op_store);
}
Insn sh(Reg rs2, Reg rs1, std::int32_t offset)
{
    return sType(offset, rs2, rs1, 1, op_store);
}
Insn sw(Reg rs2, Reg rs1, std::int32_t offset)
{
    return sType(offset, rs2, rs1, 2, op_store);
}
Insn addi(Reg rd, Reg rs1, std::int32_t imm)
{
    return iType(imm, rs1, 0, rd, op_imm);
}
Insn slti(Reg rd, Reg rs1, std::int32_t imm)
{
    return iType(imm, rs1, 2, rd, op_imm);
}
Insn sltiu(Reg rd, Reg rs1, std::int32_t imm)
{
    return iType(imm, rs1, 3, rd, op_imm);
}
Insn xori(Reg rd, Reg rs1, std::int32_t imm)
{
    return iType(imm, rs1, 4, rd, op_imm);
}
Insn ori(Reg rd, Reg rs1, std::int32_t imm)
{
    return iType(imm, rs1, 6, rd, op_imm);
}
Insn andi(Reg rd, Reg rs1, std::int32_t imm)
{
    return iType(imm, rs1, 7, rd, op_imm);
}
Insn slli(Reg rd, Reg rs1, std::uint32_t shamt)
{
    return rType(0, shamt, rs1, 1, rd, op_imm);
}
Insn srli(Reg rd, Reg rs1, std::uint32_t shamt)
{
    return rType(0, shamt, rs1, 5, rd, op_imm);
}
Insn srai(Reg rd, Reg rs1, std::uint32_t shamt)
{
    return rType(0x20, shamt, rs1, 5, rd, op_imm);
}
Insn add(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0, rs2, rs1, 0, rd, op_reg);
}
Insn sub(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0x20, rs2, rs1, 0, rd, op_reg);
}
Insn sll(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0, rs2, rs1, 1, rd, op_reg);
}
Insn slt(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0, rs2, rs1, 2, rd, op_reg);
}
Insn sltu(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0, rs2, rs1, 3, rd, op_reg);
}
Insn xor_(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0, rs2, rs1, 4, rd, op_reg);
}
Insn srl(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0, rs2, rs1, 5, rd, op_reg);
}
Insn sra(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0x20, rs2, rs1, 5, rd, op_reg);
}
Insn or_(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0, rs2, rs1, 6, rd, op_reg);
}
Insn and_(Reg rd, Reg rs1, Reg rs2)
{
    return rType(0, rs2, rs1, 7, rd, op_reg);
}
Insn ecall() { return iType(0, 0, 0, 0, op_system); }
Insn ebreak() { return iType(1, 0, 0, 0, op_system); }

Insn mul(Reg rd, Reg rs1, Reg rs2)
{
    return rType(1, rs2, rs1, 0, rd, op_reg);
}
Insn mulh(Reg rd, Reg rs1, Reg rs2)
{
    return rType(1, rs2, rs1, 1, rd, op_reg);
}
Insn mulhu(Reg rd, Reg rs1, Reg rs2)
{
    return rType(1, rs2, rs1, 3, rd, op_reg);
}
Insn div(Reg rd, Reg rs1, Reg rs2)
{
    return rType(1, rs2, rs1, 4, rd, op_reg);
}
Insn divu(Reg rd, Reg rs1, Reg rs2)
{
    return rType(1, rs2, rs1, 5, rd, op_reg);
}
Insn rem(Reg rd, Reg rs1, Reg rs2)
{
    return rType(1, rs2, rs1, 6, rd, op_reg);
}
Insn remu(Reg rd, Reg rs1, Reg rs2)
{
    return rType(1, rs2, rs1, 7, rd, op_reg);
}

Insn
qrchEnq(std::uint32_t qid, Reg rs1, Reg rs2)
{
    lsd_assert(qid < 128, "queue id out of range");
    return rType(qid & 0x7f, rs2, rs1, 0, 0, op_custom0);
}

Insn
qrchDeq(Reg rd, std::uint32_t qid)
{
    lsd_assert(qid < 128, "queue id out of range");
    return rType(qid & 0x7f, 0, 0, 1, rd, op_custom0);
}

Insn
qrchStat(Reg rd, std::uint32_t qid)
{
    lsd_assert(qid < 128, "queue id out of range");
    return rType(qid & 0x7f, 0, 0, 2, rd, op_custom0);
}

Insn nop() { return addi(zero, zero, 0); }

} // namespace encode
} // namespace riscv
} // namespace lsdgnn
