/**
 * @file
 * RV32IM interpreter with a cycle model, an MMIO bus hook and the
 * QRCH queue extension.
 *
 * The core stands in for the PoC's Xuantie E906 controller: user
 * control programs (written against the encoders in encode.hh) drive
 * the accelerator either through memory-mapped registers (the MMIO
 * baseline of Table 7) or through the queue-based QRCH instructions.
 *
 * The cycle model charges single-cycle ALU ops, 2-cycle loads from
 * tightly-coupled memory, multi-cycle M-extension ops, ~10 cycles per
 * QRCH interaction (instruction + queue handshake) and ~100 cycles
 * per MMIO device access (full bus round trip), matching the paper's
 * Table 7 comparison.
 */

#ifndef LSDGNN_RISCV_RV32_HH
#define LSDGNN_RISCV_RV32_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "riscv/encode.hh"
#include "riscv/qrch.hh"

namespace lsdgnn {
namespace riscv {

/** Why execution stopped. */
enum class StopReason {
    Running,        ///< step budget exhausted
    Ecall,          ///< ECALL executed (program done by convention)
    Ebreak,         ///< EBREAK executed
    StalledOnQueue, ///< qrch.deq on an empty queue with no producer
    Fault,          ///< illegal instruction / bad memory access
};

/** Interaction-cost constants (Table 7). */
struct InteractionCosts {
    std::uint64_t mmio_access_cycles = 100; ///< bus round trip
    std::uint64_t qrch_access_cycles = 10;  ///< queue handshake
    std::uint64_t load_cycles = 2;          ///< TCM load
    std::uint64_t store_cycles = 1;
    std::uint64_t mul_cycles = 3;
    std::uint64_t div_cycles = 20;
};

/**
 * The interpreter core.
 */
class Rv32Core
{
  public:
    /** MMIO handler: (is_store, address, store value) -> load value. */
    using MmioHandler =
        std::function<std::uint32_t(bool, std::uint32_t, std::uint32_t)>;

    /**
     * @param mem_bytes Tightly-coupled memory size.
     * @param costs Cycle-cost table.
     */
    explicit Rv32Core(std::uint32_t mem_bytes = 64 * 1024,
                      InteractionCosts costs = InteractionCosts{});

    /** Load a program at @p base and point PC at it. */
    void loadProgram(const std::vector<Insn> &program,
                     std::uint32_t base = 0);

    /**
     * Map [base, base+size) as device MMIO; accesses cost
     * mmio_access_cycles and go through @p handler.
     */
    void mapMmio(std::uint32_t base, std::uint32_t size,
                 MmioHandler handler);

    /** Attach the QRCH hub (queues shared with accelerators). */
    void attachQrch(QrchHub *hub) { qrch = hub; }

    /**
     * Run until stop or @p max_steps instructions.
     */
    StopReason run(std::uint64_t max_steps = 1'000'000);

    /** Execute one instruction. */
    StopReason step();

    std::uint32_t reg(Reg r) const { return regs[r]; }
    void setReg(Reg r, std::uint32_t v);
    std::uint32_t pc() const { return pc_; }
    void setPc(std::uint32_t pc) { pc_ = pc; }
    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t instructionsRetired() const { return retired; }

    /** Direct memory access for tests / program data. */
    std::uint32_t loadWord(std::uint32_t addr) const;
    void storeWord(std::uint32_t addr, std::uint32_t value);

    const InteractionCosts &costs() const { return costs_; }

  private:
    struct MmioRange {
        std::uint32_t base;
        std::uint32_t size;
        MmioHandler handler;
    };

    const MmioRange *findMmio(std::uint32_t addr) const;
    std::uint32_t readMem(std::uint32_t addr, std::uint32_t bytes,
                          bool sign_extend, bool &fault);
    bool writeMem(std::uint32_t addr, std::uint32_t bytes,
                  std::uint32_t value);
    StopReason executeQrch(Insn insn);

    std::vector<std::uint8_t> mem;
    std::array<std::uint32_t, 32> regs{};
    std::uint32_t pc_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t retired = 0;
    InteractionCosts costs_;
    std::vector<MmioRange> mmio;
    QrchHub *qrch = nullptr;
};

} // namespace riscv
} // namespace lsdgnn

#endif // LSDGNN_RISCV_RV32_HH
