#include "rv32.hh"

#include <cstring>

#include "common/logging.hh"

namespace lsdgnn {
namespace riscv {

namespace {

std::int32_t
signExtend(std::uint32_t value, std::uint32_t bits)
{
    const std::uint32_t shift = 32 - bits;
    return static_cast<std::int32_t>(value << shift) >> shift;
}

} // namespace

Rv32Core::Rv32Core(std::uint32_t mem_bytes, InteractionCosts costs)
    : mem(mem_bytes, 0), costs_(costs)
{
    lsd_assert(mem_bytes >= 1024, "memory too small for any program");
}

void
Rv32Core::loadProgram(const std::vector<Insn> &program,
                      std::uint32_t base)
{
    lsd_assert(base + program.size() * 4 <= mem.size(),
               "program does not fit in memory");
    for (std::size_t i = 0; i < program.size(); ++i)
        storeWord(base + static_cast<std::uint32_t>(i * 4), program[i]);
    pc_ = base;
}

void
Rv32Core::mapMmio(std::uint32_t base, std::uint32_t size,
                  MmioHandler handler)
{
    lsd_assert(handler, "MMIO range needs a handler");
    lsd_assert(base >= mem.size(),
               "MMIO range shadows tightly-coupled memory");
    mmio.push_back(MmioRange{base, size, std::move(handler)});
}

void
Rv32Core::setReg(Reg r, std::uint32_t v)
{
    if (r != zero)
        regs[r] = v;
}

std::uint32_t
Rv32Core::loadWord(std::uint32_t addr) const
{
    lsd_assert(addr + 4 <= mem.size(), "loadWord out of range");
    std::uint32_t v;
    std::memcpy(&v, &mem[addr], 4);
    return v;
}

void
Rv32Core::storeWord(std::uint32_t addr, std::uint32_t value)
{
    lsd_assert(addr + 4 <= mem.size(), "storeWord out of range");
    std::memcpy(&mem[addr], &value, 4);
}

const Rv32Core::MmioRange *
Rv32Core::findMmio(std::uint32_t addr) const
{
    for (const auto &range : mmio)
        if (addr >= range.base && addr < range.base + range.size)
            return &range;
    return nullptr;
}

std::uint32_t
Rv32Core::readMem(std::uint32_t addr, std::uint32_t bytes,
                  bool sign_extend_result, bool &fault)
{
    fault = false;
    if (const MmioRange *range = findMmio(addr)) {
        cycles_ += costs_.mmio_access_cycles;
        return range->handler(false, addr, 0);
    }
    if (addr + bytes > mem.size()) {
        fault = true;
        return 0;
    }
    cycles_ += costs_.load_cycles;
    std::uint32_t v = 0;
    std::memcpy(&v, &mem[addr], bytes);
    if (sign_extend_result && bytes < 4)
        v = static_cast<std::uint32_t>(signExtend(v, bytes * 8));
    return v;
}

bool
Rv32Core::writeMem(std::uint32_t addr, std::uint32_t bytes,
                   std::uint32_t value)
{
    if (const MmioRange *range = findMmio(addr)) {
        cycles_ += costs_.mmio_access_cycles;
        range->handler(true, addr, value);
        return true;
    }
    if (addr + bytes > mem.size())
        return false;
    cycles_ += costs_.store_cycles;
    std::memcpy(&mem[addr], &value, bytes);
    return true;
}

StopReason
Rv32Core::executeQrch(Insn insn)
{
    if (!qrch) {
        lsd_warn("QRCH instruction without an attached hub");
        return StopReason::Fault;
    }
    const std::uint32_t funct3 = (insn >> 12) & 7;
    const std::uint32_t qid = (insn >> 25) & 0x7f;
    const auto rd = static_cast<Reg>((insn >> 7) & 0x1f);
    const auto rs1 = static_cast<Reg>((insn >> 15) & 0x1f);
    const auto rs2 = static_cast<Reg>((insn >> 20) & 0x1f);

    cycles_ += costs_.qrch_access_cycles;
    switch (funct3) {
      case 0: // qrch.enq
        if (!qrch->enqueue(qid, regs[rs1], regs[rs2]))
            return StopReason::StalledOnQueue;
        break;
      case 1: { // qrch.deq
        std::uint32_t value;
        if (!qrch->dequeue(qid, value))
            return StopReason::StalledOnQueue;
        setReg(rd, value);
        break;
      }
      case 2: // qrch.stat
        setReg(rd, qrch->occupancy(qid));
        break;
      default:
        return StopReason::Fault;
    }
    pc_ += 4;
    ++retired;
    return StopReason::Running;
}

StopReason
Rv32Core::step()
{
    if (pc_ + 4 > mem.size())
        return StopReason::Fault;
    const Insn insn = loadWord(pc_);
    const std::uint32_t opcode = insn & 0x7f;
    const auto rd = static_cast<Reg>((insn >> 7) & 0x1f);
    const auto rs1 = static_cast<Reg>((insn >> 15) & 0x1f);
    const auto rs2 = static_cast<Reg>((insn >> 20) & 0x1f);
    const std::uint32_t funct3 = (insn >> 12) & 7;
    const std::uint32_t funct7 = insn >> 25;

    ++cycles_; // base cost; memory/M-ext costs added below
    bool fault = false;

    switch (opcode) {
      case 0x37: // LUI
        setReg(rd, insn & 0xfffff000);
        break;
      case 0x17: // AUIPC
        setReg(rd, pc_ + (insn & 0xfffff000));
        break;
      case 0x6f: { // JAL
        std::uint32_t imm = (((insn >> 31) & 1) << 20) |
                            (((insn >> 21) & 0x3ff) << 1) |
                            (((insn >> 20) & 1) << 11) |
                            (((insn >> 12) & 0xff) << 12);
        setReg(rd, pc_ + 4);
        pc_ += static_cast<std::uint32_t>(signExtend(imm, 21));
        ++retired;
        return StopReason::Running;
      }
      case 0x67: { // JALR
        const std::uint32_t target =
            (regs[rs1] +
             static_cast<std::uint32_t>(signExtend(insn >> 20, 12))) &
            ~1u;
        setReg(rd, pc_ + 4);
        pc_ = target;
        ++retired;
        return StopReason::Running;
      }
      case 0x63: { // branches
        std::uint32_t imm = (((insn >> 31) & 1) << 12) |
                            (((insn >> 25) & 0x3f) << 5) |
                            (((insn >> 8) & 0xf) << 1) |
                            (((insn >> 7) & 1) << 11);
        const auto offset =
            static_cast<std::uint32_t>(signExtend(imm, 13));
        const auto lhs = regs[rs1];
        const auto rhs = regs[rs2];
        bool taken = false;
        switch (funct3) {
          case 0: taken = lhs == rhs; break;
          case 1: taken = lhs != rhs; break;
          case 4:
            taken = static_cast<std::int32_t>(lhs) <
                    static_cast<std::int32_t>(rhs);
            break;
          case 5:
            taken = static_cast<std::int32_t>(lhs) >=
                    static_cast<std::int32_t>(rhs);
            break;
          case 6: taken = lhs < rhs; break;
          case 7: taken = lhs >= rhs; break;
          default: return StopReason::Fault;
        }
        pc_ += taken ? offset : 4;
        ++retired;
        return StopReason::Running;
      }
      case 0x03: { // loads
        const std::uint32_t addr = regs[rs1] +
            static_cast<std::uint32_t>(signExtend(insn >> 20, 12));
        std::uint32_t value = 0;
        switch (funct3) {
          case 0: value = readMem(addr, 1, true, fault); break;
          case 1: value = readMem(addr, 2, true, fault); break;
          case 2: value = readMem(addr, 4, false, fault); break;
          case 4: value = readMem(addr, 1, false, fault); break;
          case 5: value = readMem(addr, 2, false, fault); break;
          default: return StopReason::Fault;
        }
        if (fault)
            return StopReason::Fault;
        setReg(rd, value);
        break;
      }
      case 0x23: { // stores
        std::uint32_t imm = ((insn >> 25) << 5) | ((insn >> 7) & 0x1f);
        const std::uint32_t addr = regs[rs1] +
            static_cast<std::uint32_t>(signExtend(imm, 12));
        const std::uint32_t bytes = funct3 == 0 ? 1
            : funct3 == 1 ? 2
            : funct3 == 2 ? 4 : 0;
        if (bytes == 0)
            return StopReason::Fault;
        if (!writeMem(addr, bytes, regs[rs2]))
            return StopReason::Fault;
        break;
      }
      case 0x13: { // OP-IMM
        const auto imm =
            static_cast<std::uint32_t>(signExtend(insn >> 20, 12));
        const std::uint32_t shamt = (insn >> 20) & 0x1f;
        switch (funct3) {
          case 0: setReg(rd, regs[rs1] + imm); break;
          case 1: setReg(rd, regs[rs1] << shamt); break;
          case 2:
            setReg(rd, static_cast<std::int32_t>(regs[rs1]) <
                       static_cast<std::int32_t>(imm));
            break;
          case 3: setReg(rd, regs[rs1] < imm); break;
          case 4: setReg(rd, regs[rs1] ^ imm); break;
          case 5:
            if (funct7 & 0x20)
                setReg(rd, static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(regs[rs1]) >> shamt));
            else
                setReg(rd, regs[rs1] >> shamt);
            break;
          case 6: setReg(rd, regs[rs1] | imm); break;
          case 7: setReg(rd, regs[rs1] & imm); break;
          default: return StopReason::Fault;
        }
        break;
      }
      case 0x33: { // OP
        if (funct7 == 1) { // M extension
            const std::uint64_t a = regs[rs1];
            const std::uint64_t b = regs[rs2];
            const auto sa = static_cast<std::int32_t>(regs[rs1]);
            const auto sb = static_cast<std::int32_t>(regs[rs2]);
            switch (funct3) {
              case 0:
                cycles_ += costs_.mul_cycles - 1;
                setReg(rd, regs[rs1] * regs[rs2]);
                break;
              case 1:
                cycles_ += costs_.mul_cycles - 1;
                setReg(rd, static_cast<std::uint32_t>(
                    (static_cast<std::int64_t>(sa) *
                     static_cast<std::int64_t>(sb)) >> 32));
                break;
              case 3:
                cycles_ += costs_.mul_cycles - 1;
                setReg(rd, static_cast<std::uint32_t>((a * b) >> 32));
                break;
              case 4:
                cycles_ += costs_.div_cycles - 1;
                setReg(rd, sb == 0 ? ~0u
                    : (sa == INT32_MIN && sb == -1)
                        ? static_cast<std::uint32_t>(INT32_MIN)
                        : static_cast<std::uint32_t>(sa / sb));
                break;
              case 5:
                cycles_ += costs_.div_cycles - 1;
                setReg(rd, regs[rs2] == 0 ? ~0u
                                          : regs[rs1] / regs[rs2]);
                break;
              case 6:
                cycles_ += costs_.div_cycles - 1;
                setReg(rd, sb == 0 ? regs[rs1]
                    : (sa == INT32_MIN && sb == -1)
                        ? 0
                        : static_cast<std::uint32_t>(sa % sb));
                break;
              case 7:
                cycles_ += costs_.div_cycles - 1;
                setReg(rd, regs[rs2] == 0 ? regs[rs1]
                                          : regs[rs1] % regs[rs2]);
                break;
              default: return StopReason::Fault;
            }
        } else {
            switch (funct3) {
              case 0:
                setReg(rd, funct7 & 0x20 ? regs[rs1] - regs[rs2]
                                         : regs[rs1] + regs[rs2]);
                break;
              case 1: setReg(rd, regs[rs1] << (regs[rs2] & 0x1f)); break;
              case 2:
                setReg(rd, static_cast<std::int32_t>(regs[rs1]) <
                           static_cast<std::int32_t>(regs[rs2]));
                break;
              case 3: setReg(rd, regs[rs1] < regs[rs2]); break;
              case 4: setReg(rd, regs[rs1] ^ regs[rs2]); break;
              case 5:
                if (funct7 & 0x20)
                    setReg(rd, static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(regs[rs1]) >>
                        (regs[rs2] & 0x1f)));
                else
                    setReg(rd, regs[rs1] >> (regs[rs2] & 0x1f));
                break;
              case 6: setReg(rd, regs[rs1] | regs[rs2]); break;
              case 7: setReg(rd, regs[rs1] & regs[rs2]); break;
              default: return StopReason::Fault;
            }
        }
        break;
      }
      case 0x73: // SYSTEM
        pc_ += 4;
        ++retired;
        return ((insn >> 20) & 0xfff) == 0 ? StopReason::Ecall
                                           : StopReason::Ebreak;
      case 0x0b: // custom-0: QRCH
        return executeQrch(insn);
      default:
        return StopReason::Fault;
    }

    pc_ += 4;
    ++retired;
    return StopReason::Running;
}

StopReason
Rv32Core::run(std::uint64_t max_steps)
{
    for (std::uint64_t i = 0; i < max_steps; ++i) {
        const StopReason reason = step();
        if (reason != StopReason::Running)
            return reason;
    }
    return StopReason::Running;
}

} // namespace riscv
} // namespace lsdgnn
