/**
 * @file
 * QRCH: queue-based RISC-V coprocessor communication hub.
 *
 * The hub owns a set of bounded word queues. The RISC-V side reaches
 * them through the custom-0 instructions (qrch.enq/deq/stat); the
 * accelerator side attaches a consumer callback per queue or polls.
 * This is the paper's middle point between MMIO (slow, coarse) and a
 * tightly-coupled ISA extension (fast but invasive): ~10-cycle
 * interaction, decent programmability, easy to extend — Table 7.
 */

#ifndef LSDGNN_RISCV_QRCH_HH
#define LSDGNN_RISCV_QRCH_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"

namespace lsdgnn {
namespace riscv {

/**
 * The queue hub shared by the RISC-V core and accelerator models.
 */
class QrchHub
{
  public:
    /** Consumer invoked when the core enqueues into a queue. */
    using Consumer = std::function<void(std::uint32_t lo,
                                        std::uint32_t hi)>;

    /**
     * @param num_queues Number of queues (command + response pairs).
     * @param depth Entries per queue.
     */
    explicit QrchHub(std::uint32_t num_queues = 8,
                     std::uint32_t depth = 16);

    std::uint32_t numQueues() const
    {
        return static_cast<std::uint32_t>(queues.size());
    }

    /**
     * Core-side enqueue of a (lo, hi) pair.
     * @return false when the queue is full (core must retry).
     */
    bool enqueue(std::uint32_t qid, std::uint32_t lo, std::uint32_t hi);

    /**
     * Core- or accelerator-side dequeue of one word.
     * @return false when empty.
     */
    bool dequeue(std::uint32_t qid, std::uint32_t &value);

    /** Words currently queued. */
    std::uint32_t occupancy(std::uint32_t qid) const;

    /** Accelerator-side push (responses back to the core). */
    bool push(std::uint32_t qid, std::uint32_t value);

    /**
     * Attach an accelerator consumer: every pair the core enqueues is
     * delivered immediately (the accelerator reads the queue head).
     */
    void setConsumer(std::uint32_t qid, Consumer consumer);

    /**
     * Provide simulated time for trace counter events. The hub lives
     * below the DES layer, so without a source the trace emission of
     * queue depths stays off (statistics still accumulate).
     */
    void setTickSource(std::function<Tick()> now) { clock = std::move(now); }

    std::uint64_t totalEnqueues() const { return enqueues.value(); }
    std::uint64_t totalDequeues() const { return dequeues.value(); }

    /** Queue-depth distribution observed at enqueue time. */
    const stats::Histogram &occupancyHistogram() const { return depths; }

    const stats::StatGroup &stats() const { return group; }

  private:
    void checkQid(std::uint32_t qid) const;
    void traceDepth(std::uint32_t qid) const;

    std::vector<std::deque<std::uint32_t>> queues;
    std::vector<Consumer> consumers;
    std::uint32_t depth_;
    std::function<Tick()> clock;
    stats::StatGroup group{"riscv.qrch"};
    stats::Counter enqueues;
    stats::Counter dequeues;
    stats::Histogram depths;
};

} // namespace riscv
} // namespace lsdgnn

#endif // LSDGNN_RISCV_QRCH_HH
