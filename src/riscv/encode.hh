/**
 * @file
 * RV32 instruction encoders.
 *
 * The repo carries no external toolchain, so control programs for the
 * RISC-V core are assembled in C++ with these helpers. Encodings
 * follow the RISC-V unprivileged spec; QRCH instructions live in the
 * custom-0 opcode space (0x0B), exactly where a vendor extension like
 * the Xuantie E906's would sit.
 */

#ifndef LSDGNN_RISCV_ENCODE_HH
#define LSDGNN_RISCV_ENCODE_HH

#include <cstdint>

namespace lsdgnn {
namespace riscv {

using Insn = std::uint32_t;

/** Register indices (x0..x31) with the usual ABI aliases. */
enum Reg : std::uint32_t {
    zero = 0, ra = 1, sp = 2, gp = 3, tp = 4,
    t0 = 5, t1 = 6, t2 = 7,
    s0 = 8, s1 = 9,
    a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
    a6 = 16, a7 = 17,
    s2 = 18, s3 = 19, s4 = 20, s5 = 21,
    t3 = 28, t4 = 29, t5 = 30, t6 = 31,
};

namespace encode {

Insn rType(std::uint32_t funct7, std::uint32_t rs2, std::uint32_t rs1,
           std::uint32_t funct3, std::uint32_t rd, std::uint32_t opcode);
Insn iType(std::int32_t imm, std::uint32_t rs1, std::uint32_t funct3,
           std::uint32_t rd, std::uint32_t opcode);
Insn sType(std::int32_t imm, std::uint32_t rs2, std::uint32_t rs1,
           std::uint32_t funct3, std::uint32_t opcode);
Insn bType(std::int32_t imm, std::uint32_t rs2, std::uint32_t rs1,
           std::uint32_t funct3, std::uint32_t opcode);
Insn uType(std::int32_t imm, std::uint32_t rd, std::uint32_t opcode);
Insn jType(std::int32_t imm, std::uint32_t rd, std::uint32_t opcode);

// RV32I
Insn lui(Reg rd, std::int32_t imm20);
Insn auipc(Reg rd, std::int32_t imm20);
Insn jal(Reg rd, std::int32_t offset);
Insn jalr(Reg rd, Reg rs1, std::int32_t offset);
Insn beq(Reg rs1, Reg rs2, std::int32_t offset);
Insn bne(Reg rs1, Reg rs2, std::int32_t offset);
Insn blt(Reg rs1, Reg rs2, std::int32_t offset);
Insn bge(Reg rs1, Reg rs2, std::int32_t offset);
Insn bltu(Reg rs1, Reg rs2, std::int32_t offset);
Insn bgeu(Reg rs1, Reg rs2, std::int32_t offset);
Insn lb(Reg rd, Reg rs1, std::int32_t offset);
Insn lh(Reg rd, Reg rs1, std::int32_t offset);
Insn lw(Reg rd, Reg rs1, std::int32_t offset);
Insn lbu(Reg rd, Reg rs1, std::int32_t offset);
Insn lhu(Reg rd, Reg rs1, std::int32_t offset);
Insn sb(Reg rs2, Reg rs1, std::int32_t offset);
Insn sh(Reg rs2, Reg rs1, std::int32_t offset);
Insn sw(Reg rs2, Reg rs1, std::int32_t offset);
Insn addi(Reg rd, Reg rs1, std::int32_t imm);
Insn slti(Reg rd, Reg rs1, std::int32_t imm);
Insn sltiu(Reg rd, Reg rs1, std::int32_t imm);
Insn xori(Reg rd, Reg rs1, std::int32_t imm);
Insn ori(Reg rd, Reg rs1, std::int32_t imm);
Insn andi(Reg rd, Reg rs1, std::int32_t imm);
Insn slli(Reg rd, Reg rs1, std::uint32_t shamt);
Insn srli(Reg rd, Reg rs1, std::uint32_t shamt);
Insn srai(Reg rd, Reg rs1, std::uint32_t shamt);
Insn add(Reg rd, Reg rs1, Reg rs2);
Insn sub(Reg rd, Reg rs1, Reg rs2);
Insn sll(Reg rd, Reg rs1, Reg rs2);
Insn slt(Reg rd, Reg rs1, Reg rs2);
Insn sltu(Reg rd, Reg rs1, Reg rs2);
Insn xor_(Reg rd, Reg rs1, Reg rs2);
Insn srl(Reg rd, Reg rs1, Reg rs2);
Insn sra(Reg rd, Reg rs1, Reg rs2);
Insn or_(Reg rd, Reg rs1, Reg rs2);
Insn and_(Reg rd, Reg rs1, Reg rs2);
Insn ecall();
Insn ebreak();

// RV32M
Insn mul(Reg rd, Reg rs1, Reg rs2);
Insn mulh(Reg rd, Reg rs1, Reg rs2);
Insn mulhu(Reg rd, Reg rs1, Reg rs2);
Insn div(Reg rd, Reg rs1, Reg rs2);
Insn divu(Reg rd, Reg rs1, Reg rs2);
Insn rem(Reg rd, Reg rs1, Reg rs2);
Insn remu(Reg rd, Reg rs1, Reg rs2);

/**
 * QRCH extension (custom-0 opcode 0x0B):
 *  - qrch.enq  qid, rs1, rs2 : push the (rs1, rs2) pair into queue qid
 *  - qrch.deq  rd, qid       : pop one word from queue qid into rd;
 *                              stalls the hart while the queue is empty
 *  - qrch.stat rd, qid       : queue occupancy into rd (non-blocking)
 */
Insn qrchEnq(std::uint32_t qid, Reg rs1, Reg rs2);
Insn qrchDeq(Reg rd, std::uint32_t qid);
Insn qrchStat(Reg rd, std::uint32_t qid);

/** Canonical nop (addi x0, x0, 0). */
Insn nop();

} // namespace encode
} // namespace riscv
} // namespace lsdgnn

#endif // LSDGNN_RISCV_ENCODE_HH
