/**
 * @file
 * Multi-endpoint fabric model.
 *
 * The MoF deployment connects F FPGA cards point-to-point (the PoC's
 * 4-card DAC mesh) or through a switch. FabricNetwork models N
 * endpoints where each endpoint owns an egress and an ingress port of
 * fixed bandwidth: a transfer from A to B serializes on A's egress,
 * flies for the fabric latency, then serializes on B's ingress. Port
 * contention — many peers bursting into one card — therefore emerges
 * naturally, which is what distinguishes scale-out behavior from the
 * single-link abstraction used inside one engine.
 */

#ifndef LSDGNN_FABRIC_NETWORK_HH
#define LSDGNN_FABRIC_NETWORK_HH

#include <functional>
#include <vector>

#include "common/stats.hh"
#include "sim/component.hh"

namespace lsdgnn {
namespace fabric {

/** Static parameters of the fabric. */
struct FabricParams {
    std::uint32_t endpoints = 4;
    /** Per-port bandwidth (each direction), bytes/s. */
    double port_bandwidth = 100e9 / 4; // PoC: 3xQSFP-DD shared 3 ways
    /** One-way flight latency. */
    Tick flight_latency = nanoseconds(300);
};

/**
 * Event-driven N-endpoint fabric.
 */
class FabricNetwork : public sim::Component
{
  public:
    using Callback = std::function<void()>;

    FabricNetwork(sim::EventQueue &eq, FabricParams params);

    std::uint32_t endpoints() const { return params_.endpoints; }

    /**
     * Transfer @p bytes from @p src to @p dst; @p done fires when the
     * last byte lands at the destination.
     */
    void transfer(std::uint32_t src, std::uint32_t dst,
                  std::uint64_t bytes, Callback done);

    /** Bytes delivered into @p endpoint. */
    std::uint64_t bytesInto(std::uint32_t endpoint) const;

    /** Bytes sent out of @p endpoint. */
    std::uint64_t bytesOutOf(std::uint32_t endpoint) const;

    /** Observed aggregate delivered bandwidth over the busy window. */
    double observedBandwidth() const;

  private:
    FabricParams params_;
    std::vector<Tick> egressFreeAt;
    std::vector<Tick> ingressFreeAt;
    std::vector<stats::Counter> inBytes;
    std::vector<stats::Counter> outBytes;
    Tick firstStart = max_tick;
    Tick lastEnd = 0;
    std::uint64_t totalDelivered = 0;
};

} // namespace fabric
} // namespace lsdgnn

#endif // LSDGNN_FABRIC_NETWORK_HH
