#include "network.hh"

#include <algorithm>

namespace lsdgnn {
namespace fabric {

FabricNetwork::FabricNetwork(sim::EventQueue &eq, FabricParams params)
    : sim::Component(eq, "fabric.network"),
      params_(params),
      egressFreeAt(params.endpoints, 0),
      ingressFreeAt(params.endpoints, 0),
      inBytes(params.endpoints),
      outBytes(params.endpoints)
{
    lsd_assert(params_.endpoints >= 2, "fabric needs >= 2 endpoints");
    lsd_assert(params_.port_bandwidth > 0, "ports need bandwidth");
}

void
FabricNetwork::transfer(std::uint32_t src, std::uint32_t dst,
                        std::uint64_t bytes, Callback done)
{
    lsd_assert(src < params_.endpoints && dst < params_.endpoints,
               "endpoint out of range");
    lsd_assert(src != dst, "local transfers never touch the fabric");
    lsd_assert(done, "transfer needs a completion callback");

    const auto serialize = static_cast<Tick>(
        static_cast<double>(bytes) / params_.port_bandwidth *
        static_cast<double>(tick_per_s));

    // Egress serialization at the source...
    const Tick egress_start = std::max(curTick(), egressFreeAt[src]);
    const Tick egress_end = egress_start + serialize;
    egressFreeAt[src] = egress_end;
    firstStart = std::min(firstStart, egress_start);

    // ...flight...
    const Tick arrival_front = egress_end + params_.flight_latency;

    // ...ingress serialization at the destination (a busy receive
    // port delays the landing further).
    const Tick ingress_start =
        std::max(arrival_front - serialize, ingressFreeAt[dst]);
    const Tick ingress_end = ingress_start + serialize;
    ingressFreeAt[dst] = ingress_end;

    outBytes[src].inc(bytes);
    eventq.schedule(ingress_end, [this, dst, bytes,
                                  done = std::move(done)]() mutable {
        inBytes[dst].inc(bytes);
        totalDelivered += bytes;
        lastEnd = std::max(lastEnd, curTick());
        done();
    });
}

std::uint64_t
FabricNetwork::bytesInto(std::uint32_t endpoint) const
{
    lsd_assert(endpoint < params_.endpoints, "endpoint out of range");
    return inBytes[endpoint].value();
}

std::uint64_t
FabricNetwork::bytesOutOf(std::uint32_t endpoint) const
{
    lsd_assert(endpoint < params_.endpoints, "endpoint out of range");
    return outBytes[endpoint].value();
}

double
FabricNetwork::observedBandwidth() const
{
    if (firstStart == max_tick || lastEnd <= firstStart)
        return 0.0;
    return static_cast<double>(totalDelivered) /
           toSeconds(lastEnd - firstStart);
}

} // namespace fabric
} // namespace lsdgnn
