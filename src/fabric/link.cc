#include "link.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lsdgnn {
namespace fabric {

Link::Link(LinkParams params) : params_(std::move(params))
{
    lsd_assert(params_.peak_bandwidth > 0, "link needs positive bandwidth");
    lsd_assert(params_.max_outstanding > 0,
               "link needs at least one outstanding slot");
}

Tick
Link::roundTripLatency(std::uint64_t bytes) const
{
    const double wire_bytes =
        static_cast<double>(bytes + params_.per_request_overhead);
    const double serialize_s = wire_bytes / params_.peak_bandwidth;
    return params_.base_latency +
        static_cast<Tick>(serialize_s * static_cast<double>(tick_per_s));
}

double
Link::achievedBandwidth(std::uint64_t bytes,
                        std::uint32_t outstanding) const
{
    lsd_assert(outstanding > 0, "need at least one outstanding request");
    const double latency_s = toSeconds(roundTripLatency(bytes));
    // Little's law: throughput = in-flight / latency, in requests/s.
    const double reqs_per_s =
        static_cast<double>(outstanding) / latency_s;
    const double payload_bw = reqs_per_s * static_cast<double>(bytes);
    // Serialization ceiling discounted by protocol efficiency.
    const double ceiling = params_.peak_bandwidth * efficiency(bytes);
    return std::min(payload_bw, ceiling);
}

double
Link::efficiency(std::uint64_t bytes) const
{
    const double wire =
        static_cast<double>(bytes + params_.per_request_overhead);
    return static_cast<double>(bytes) / wire;
}

double
Link::requiredOutstanding(double target_bandwidth,
                          std::uint64_t bytes) const
{
    return fabric::requiredOutstanding(target_bandwidth,
        roundTripLatency(bytes), {{bytes, 1.0}});
}

double
meanRequestBytes(const std::vector<AccessPattern> &mix)
{
    lsd_assert(!mix.empty(), "empty access-pattern mix");
    double mean = 0.0;
    double total_p = 0.0;
    for (const auto &pat : mix) {
        mean += static_cast<double>(pat.bytes) * pat.probability;
        total_p += pat.probability;
    }
    lsd_assert(total_p > 0.99 && total_p < 1.01,
               "pattern probabilities must sum to 1, got ", total_p);
    return mean;
}

double
requiredOutstanding(double effective_bandwidth, Tick latency,
                    const std::vector<AccessPattern> &mix)
{
    const double mean_bytes = meanRequestBytes(mix);
    lsd_assert(mean_bytes > 0, "mean request length must be positive");
    // Eq. 3: O = B / (sum_k C_k P_k) * L
    return effective_bandwidth / mean_bytes * toSeconds(latency);
}

namespace catalog {

Link
localDdr4Channel(std::uint32_t channels)
{
    lsd_assert(channels > 0, "need at least one DDR channel");
    LinkParams p;
    p.name = channels == 1 ? "local-ddr4"
                           : "local-ddr4-x" + std::to_string(channels);
    p.peak_bandwidth = 12.8e9 * channels; // DDR4-1600, 64-bit channel
    p.base_latency = nanoseconds(90);
    p.per_request_overhead = 8; // command/address bus share
    p.max_outstanding = 64 * channels;
    return Link(p);
}

Link
pcieHostDram()
{
    LinkParams p;
    p.name = "pcie-host-dram";
    p.peak_bandwidth = 16e9; // Gen3 x16 payload ceiling used in Table 8
    p.base_latency = nanoseconds(900);
    p.per_request_overhead = 24; // TLP header + framing
    p.max_outstanding = 64;
    return Link(p);
}

Link
rdmaRemoteDram()
{
    LinkParams p;
    p.name = "rdma-remote-dram";
    p.peak_bandwidth = 16e9; // PCIe->NIC->PCIe path of Table 8
    p.base_latency = microseconds(3.0);
    p.per_request_overhead = 90; // Ethernet+IB/RoCE headers
    p.max_outstanding = 256;
    return Link(p);
}

Link
mofFabric()
{
    LinkParams p;
    p.name = "mof-fabric";
    p.peak_bandwidth = 100e9; // Table 8: dedicated fabric, 100 GB/s
    p.base_latency = nanoseconds(600);
    p.per_request_overhead = 8; // MoF multi-request amortized header
    p.max_outstanding = 1024;
    return Link(p);
}

Link
onFpgaNic()
{
    LinkParams p;
    p.name = "on-fpga-nic";
    p.peak_bandwidth = 16e9; // same wire speed as the standalone NIC
    p.base_latency = microseconds(1.8); // skips one PCIe hop
    p.per_request_overhead = 90;
    p.max_outstanding = 256;
    return Link(p);
}

Link
gpuFastLink()
{
    LinkParams p;
    p.name = "gpu-fast-link";
    p.peak_bandwidth = 300e9; // Table 8: mem-opt.tc in-server fast link
    p.base_latency = nanoseconds(500);
    p.per_request_overhead = 16;
    p.max_outstanding = 512;
    return Link(p);
}

} // namespace catalog

} // namespace fabric
} // namespace lsdgnn
