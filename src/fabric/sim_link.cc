#include "sim_link.hh"

#include <algorithm>

namespace lsdgnn {
namespace fabric {

SimLink::SimLink(sim::EventQueue &eq, LinkParams params)
    : sim::Component(eq, "link." + params.name),
      params_(std::move(params))
{
    statGroup.addCounter("requests", &reqsDone, "completed requests");
    statGroup.addCounter("bytes", &bytesDone, "completed payload bytes");
    statGroup.addAverage("latency", &latency,
                         "round-trip latency in ticks");
    statGroup.addAverage("queue_wait", &queueWait,
                         "ticks spent waiting for an outstanding slot");
}

void
SimLink::request(std::uint64_t bytes, std::uint32_t dest, Callback done)
{
    (void)dest; // a single link has exactly one far end
    lsd_assert(done, "link request needs a completion callback");
    waitQueue.push_back(Pending{bytes, std::move(done), curTick()});
    tryIssue();
}

void
SimLink::tryIssue()
{
    while (!waitQueue.empty() && outstanding < params_.max_outstanding) {
        Pending req = std::move(waitQueue.front());
        waitQueue.pop_front();
        queueWait.sample(static_cast<double>(curTick() - req.enqueued));
        issue(std::move(req));
    }
}

void
SimLink::traceInFlight()
{
    if (!trace::Tracer::enabled())
        return;
    auto &tracer = trace::Tracer::instance();
    tracer.counter(0, name() + ".in_flight_bytes", curTick(),
                   static_cast<double>(outstandingBytes));
    tracer.counter(0, name() + ".queued", curTick(),
                   static_cast<double>(waitQueue.size()));
}

void
SimLink::issue(Pending req)
{
    ++outstanding;
    outstandingBytes += req.bytes;
    firstIssue = std::min(firstIssue, curTick());

    const double wire_bytes = static_cast<double>(
        req.bytes + params_.per_request_overhead);
    const auto serialize = static_cast<Tick>(
        wire_bytes / params_.peak_bandwidth *
        static_cast<double>(tick_per_s));

    // The wire is a shared serial resource: requests occupy it
    // back-to-back, and the flight latency rides on top.
    const Tick start = std::max(curTick(), wireFreeAt);
    wireFreeAt = start + serialize;
    const Tick complete = wireFreeAt + params_.base_latency;
    const Tick issued_at = curTick();

    traceInFlight();

    eventq.schedule(complete,
        [this, bytes = req.bytes, done = std::move(req.done),
         issued_at]() mutable {
            lsd_assert(outstanding > 0, "completion without outstanding");
            --outstanding;
            outstandingBytes -= bytes;
            reqsDone.inc();
            bytesDone.inc(bytes);
            latency.sample(static_cast<double>(curTick() - issued_at));
            lastComplete = std::max(lastComplete, curTick());
            traceInFlight();
            done();
            tryIssue();
        });
}

double
SimLink::observedBandwidth() const
{
    if (firstIssue == max_tick || lastComplete <= firstIssue)
        return 0.0;
    const double interval_s = toSeconds(lastComplete - firstIssue);
    return static_cast<double>(bytesDone.value()) / interval_s;
}

} // namespace fabric
} // namespace lsdgnn
