/**
 * @file
 * Abstract memory request port.
 *
 * The AxE load unit issues tagged reads against "somewhere that
 * returns data later": a direct link model (SimLink) inside one
 * engine, or a routed path across the multi-card fabric in the
 * scale-out system. MemoryPort is that seam.
 */

#ifndef LSDGNN_FABRIC_MEMORY_PORT_HH
#define LSDGNN_FABRIC_MEMORY_PORT_HH

#include <cstdint>
#include <functional>

namespace lsdgnn {
namespace fabric {

/**
 * Asynchronous read/write target.
 */
class MemoryPort
{
  public:
    using Callback = std::function<void()>;

    virtual ~MemoryPort() = default;

    /**
     * Issue a request moving @p bytes of payload toward endpoint
     * @p dest (meaningful for routed ports; single-link ports ignore
     * it); @p done runs at response time. Implementations must
     * accept unconditionally (backpressure is the caller's
     * scoreboard).
     */
    virtual void request(std::uint64_t bytes, std::uint32_t dest,
                         Callback done) = 0;

    /** Convenience for unrouted ports. */
    void
    request(std::uint64_t bytes, Callback done)
    {
        request(bytes, 0, std::move(done));
    }
};

} // namespace fabric
} // namespace lsdgnn

#endif // LSDGNN_FABRIC_MEMORY_PORT_HH
