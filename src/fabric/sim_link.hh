/**
 * @file
 * Discrete-event link component.
 *
 * While fabric::Link answers closed-form questions, SimLink carries
 * actual simulated traffic: requests serialize over a shared wire,
 * at most `max_outstanding` are in flight, and excess requests wait
 * in an issue queue. The AxE load unit and the MoF endpoints issue
 * against SimLinks, which is how queueing effects (the difference
 * between Eq. 3 and reality) appear in the measured results.
 */

#ifndef LSDGNN_FABRIC_SIM_LINK_HH
#define LSDGNN_FABRIC_SIM_LINK_HH

#include <deque>
#include <functional>

#include "fabric/link.hh"
#include "fabric/memory_port.hh"
#include "sim/component.hh"

namespace lsdgnn {
namespace fabric {

/**
 * Event-driven model of one request/response path.
 */
class SimLink : public sim::Component, public MemoryPort
{
  public:
    /** Completion callback; invoked at response arrival time. */
    using Callback = MemoryPort::Callback;

    SimLink(sim::EventQueue &eq, LinkParams params);

    const LinkParams &params() const { return params_; }

    /**
     * Issue a request for @p bytes of payload; @p done runs when the
     * response returns. Requests are accepted unconditionally (the
     * issue queue is unbounded); backpressure belongs to the caller's
     * scoreboard, mirroring the hardware split of concerns.
     */
    void request(std::uint64_t bytes, std::uint32_t dest,
                 Callback done) override;

    using MemoryPort::request;

    /** Requests currently in flight (issued, not yet completed). */
    std::uint32_t inFlight() const { return outstanding; }

    /** Payload bytes currently in flight. */
    std::uint64_t inFlightBytes() const { return outstandingBytes; }

    /** Requests waiting for an outstanding slot. */
    std::size_t queued() const { return waitQueue.size(); }

    /** Total payload bytes completed. */
    std::uint64_t bytesCompleted() const { return bytesDone.value(); }

    /** Total requests completed. */
    std::uint64_t requestsCompleted() const { return reqsDone.value(); }

    /** Mean round-trip latency (issue to completion) in ticks. */
    double meanLatency() const { return latency.mean(); }

    /** Payload throughput over the busy interval, bytes/second. */
    double observedBandwidth() const;

  private:
    struct Pending {
        std::uint64_t bytes;
        Callback done;
        Tick enqueued;
    };

    void tryIssue();
    void issue(Pending req);

    /** Emit in-flight trace counters (no-op when tracing is off). */
    void traceInFlight();

    LinkParams params_;
    std::uint32_t outstanding = 0;
    std::uint64_t outstandingBytes = 0;
    Tick wireFreeAt = 0;
    Tick firstIssue = max_tick;
    Tick lastComplete = 0;
    std::deque<Pending> waitQueue;

    stats::Counter reqsDone;
    stats::Counter bytesDone;
    stats::Average latency;
    stats::Average queueWait;
};

} // namespace fabric
} // namespace lsdgnn

#endif // LSDGNN_FABRIC_SIM_LINK_HH
