/**
 * @file
 * Analytical link models.
 *
 * A Link is characterized by a zero-byte round-trip latency, a peak
 * serialization bandwidth and a fixed per-request protocol overhead.
 * From those three numbers the model answers the questions behind
 * Fig. 2(d) (round-trip latency and achieved bandwidth per request
 * size) and Fig. 2(e)/Eq. 3 (outstanding requests needed to saturate
 * a target bandwidth).
 */

#ifndef LSDGNN_FABRIC_LINK_HH
#define LSDGNN_FABRIC_LINK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace lsdgnn {
namespace fabric {

/** Static parameters of one memory/interconnect path. */
struct LinkParams {
    std::string name;
    /** Peak serialization bandwidth in bytes/second. */
    double peak_bandwidth = 16e9;
    /** Round-trip latency of an empty request. */
    Tick base_latency = nanoseconds(1000);
    /** Protocol bytes added to every request (headers, DLLP, etc.). */
    std::uint64_t per_request_overhead = 64;
    /** Concurrent requests the initiating hardware can keep in flight. */
    std::uint32_t max_outstanding = 32;
};

/**
 * Analytical single-link model.
 */
class Link
{
  public:
    explicit Link(LinkParams params);

    const LinkParams &params() const { return params_; }
    const std::string &name() const { return params_.name; }

    /** Round-trip latency for a request moving @p bytes of payload. */
    Tick roundTripLatency(std::uint64_t bytes) const;

    /**
     * Bandwidth achieved with @p outstanding requests of @p bytes in
     * flight (Little's law, capped at the serialization peak and
     * discounted by protocol overhead).
     */
    double achievedBandwidth(std::uint64_t bytes,
                             std::uint32_t outstanding) const;

    /** Achieved bandwidth at the link's own outstanding limit. */
    double
    achievedBandwidth(std::uint64_t bytes) const
    {
        return achievedBandwidth(bytes, params_.max_outstanding);
    }

    /** Payload fraction of the wire traffic for @p bytes requests. */
    double efficiency(std::uint64_t bytes) const;

    /**
     * Outstanding requests needed to sustain @p target_bandwidth
     * (bytes/s of payload) with requests of @p bytes each — the
     * single-pattern specialization of Eq. 3.
     */
    double requiredOutstanding(double target_bandwidth,
                               std::uint64_t bytes) const;

  private:
    LinkParams params_;
};

/** One access pattern term of Eq. 3: length C_k with probability P_k. */
struct AccessPattern {
    std::uint64_t bytes;
    double probability;
};

/**
 * Eq. 3 of the paper: outstanding requests demanded to fill
 * @p effective_bandwidth on a path with round-trip latency
 * @p latency when the request mix is @p mix.
 *
 *   O = B / (sum_k C_k * P_k) * L
 */
double requiredOutstanding(double effective_bandwidth, Tick latency,
                           const std::vector<AccessPattern> &mix);

/** Mean request length of a pattern mix (sum C_k * P_k). */
double meanRequestBytes(const std::vector<AccessPattern> &mix);

/**
 * Catalog of the hardware paths used throughout the paper
 * (Fig. 2(d), Tables 8-10). All return value-constructed Links.
 */
namespace catalog {

/** Direct-attached local DDR4 channel (12.8 GB/s, ~90 ns). */
Link localDdr4Channel(std::uint32_t channels = 1);

/** PCIe Gen3 x16 path to host DRAM (16 GB/s, ~900 ns). */
Link pcieHostDram();

/** PCIe->NIC->PCIe RDMA path to a remote host's DRAM (~16 GB/s, us). */
Link rdmaRemoteDram();

/** The paper's customized MoF fabric (100 GB/s, sub-us). */
Link mofFabric();

/** On-FPGA NIC path of the cost-opt architecture (16 GB/s). */
Link onFpgaNic();

/** In-server high-speed FPGA<->GPU link of mem-opt.tc (300 GB/s). */
Link gpuFastLink();

} // namespace catalog

} // namespace fabric
} // namespace lsdgnn

#endif // LSDGNN_FABRIC_LINK_HH
