/**
 * @file
 * SamplingBackend: the seam between Session and its execution paths.
 *
 * Session used to branch on `config.backend` inline in
 * sampleBatchInto(). With the distributed path that switch would have
 * grown a third arm plus per-backend state, so the dispatch now goes
 * through one virtual interface: Software (CPU engine), AxeOffload
 * (Table 4 command decoder) and Distributed (sharded store over MoF
 * shard channels) each implement sampleInto() and are constructed by
 * makeBackend() from the dependencies Session already owns.
 *
 * Contract: sampleInto() must consume the caller's Rng in a
 * deterministic, backend-defined sequence — the golden-seed tests pin
 * the Software and AxeOffload sequences, so those backends replicate
 * the historical Session code paths exactly. The return Status is Ok,
 * or Degraded when part of the batch was answered from a fallback
 * (distributed remote failures); hard errors use the other codes.
 */

#ifndef LSDGNN_FRAMEWORK_BACKEND_HH
#define LSDGNN_FRAMEWORK_BACKEND_HH

#include <memory>
#include <string_view>

#include "common/rng.hh"
#include "common/status.hh"
#include "common/trace.hh"
#include "sampling/minibatch.hh"

namespace lsdgnn {

namespace axe {
class CommandDecoder;
}

namespace framework {

struct SessionConfig;
class DistributedStore;

/** Out-params a backend fills about one sampleInto() call. */
struct SampleTelemetry {
    /** Wall microseconds spent waiting on remote fabric rounds. */
    double remote_us = 0.0;
    /** Hot-vertex cache probes issued for would-be remote reads. */
    std::uint64_t cache_lookups = 0;
    /** Probes answered from the local replica (no fabric round). */
    std::uint64_t cache_hits = 0;
    /** Hedge re-issues the async fabric sent for this call. */
    std::uint64_t hedges = 0;
    /** Peak simultaneous in-flight remote reads during the call. */
    std::uint64_t inflight_peak = 0;
};

/** Per-call sampling options (beyond the structural SamplePlan). */
struct SampleOptions {
    /**
     * Draw roots from the backend's own shard instead of the whole
     * graph. Only the distributed backend distinguishes the two; the
     * single-store backends always sample the full node range.
     */
    bool local_roots = false;

    /**
     * Trace identity of the batch this call executes; hops and fabric
     * rounds derive child spans from it. Invalid (default) = untraced.
     */
    trace::TraceContext trace;

    /** Optional per-call telemetry sink (remote-stage wall time). */
    SampleTelemetry *telemetry = nullptr;

    /**
     * RNG stream override. Null (default) consumes the Session's own
     * stream; non-null draws the whole call — roots, neighbor picks,
     * batch nonce — from the caller's stream instead, leaving the
     * session stream untouched. Seeded service jobs use this to make
     * their draw independent of which worker executes them and of
     * whatever that worker sampled before.
     */
    Rng *rng = nullptr;
};

/**
 * One sampling execution path. Implementations are single-threaded
 * like the owning Session and may keep per-backend scratch state.
 */
class SamplingBackend
{
  public:
    virtual ~SamplingBackend() = default;

    /** Sample one mini-batch into @p out, reusing its capacity. */
    virtual Status sampleInto(const sampling::SamplePlan &plan,
                              const SampleOptions &options, Rng &rng,
                              sampling::SampleResult &out) = 0;

    /** Stable backend name ("software", "axe", "distributed"). */
    virtual std::string_view name() const = 0;
};

/** Everything a backend may borrow from its Session. */
struct BackendDeps {
    const SessionConfig &config;
    const graph::CsrGraph &graph;
    sampling::MiniBatchSampler &engine;
    const sampling::NeighborSampler &sampler;
    /** Non-null iff config.backend == AxeOffload. */
    axe::CommandDecoder *decoder = nullptr;
    /** Non-null iff config.backend == Distributed. */
    std::shared_ptr<const DistributedStore> store;
};

/** Build the backend selected by deps.config.backend. */
std::unique_ptr<SamplingBackend> makeBackend(const BackendDeps &deps);

} // namespace framework
} // namespace lsdgnn

#endif // LSDGNN_FRAMEWORK_BACKEND_HH
