#include "gather.hh"

namespace lsdgnn {
namespace framework {

void
AttributeGatherer::gatherLevel(std::span<const graph::NodeId> nodes,
                               gnn::Matrix &out,
                               GatherTelemetry *telemetry) const
{
    const std::size_t len = attrs_.attrLen();
    if (out.rows() != nodes.size() || out.cols() != len)
        out = gnn::Matrix(nodes.size(), len);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const graph::NodeId node = nodes[i];
        if (telemetry != nullptr && part_ != nullptr &&
            part_->serverOf(node) != home_) {
            ++telemetry->remote_rows;
            // Read-through probe: a resident replica answers the row
            // locally and never enters the modeled fabric transfer.
            if (tier_ != nullptr && tier_->lookupAttributes(node))
                ++telemetry->cache_hits;
        }
        attrs_.fetch(node, out.row(i));
    }
    if (telemetry != nullptr) {
        telemetry->rows += nodes.size();
        telemetry->bytes += nodes.size() * attrs_.bytesPerNode();
    }
}

void
AttributeGatherer::gather(const sampling::SampleResult &batch,
                          GatheredFeatures &out,
                          GatherTelemetry *telemetry) const
{
    out.levels.resize(batch.frontier.size() + 1);
    gatherLevel(batch.roots, out.levels[0], telemetry);
    for (std::size_t h = 0; h < batch.frontier.size(); ++h)
        gatherLevel(batch.frontier[h], out.levels[h + 1], telemetry);

    if (telemetry != nullptr && fabric_.gbps > 0.0) {
        const std::uint64_t residual =
            telemetry->remote_rows - telemetry->cache_hits;
        const double residual_bytes = static_cast<double>(
            residual * attrs_.bytesPerNode());
        telemetry->modeled_fabric_us =
            residual_bytes / (fabric_.gbps * 1e3) + fabric_.rtt_us;
    }
}

} // namespace framework
} // namespace lsdgnn
