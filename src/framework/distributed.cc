#include "distributed.hh"

#include <algorithm>
#include <cstring>
#include <span>
#include <string>

#include "common/flight_recorder.hh"

namespace lsdgnn {
namespace framework {

namespace {

std::uint32_t
effectiveShards(const SessionConfig &config)
{
    const std::uint32_t shards = config.distributed.num_shards != 0
                                     ? config.distributed.num_shards
                                     : config.num_servers;
    lsd_assert(shards > 0, "distributed store needs shards");
    return shards;
}

} // namespace

void
DistributedBackend::BatchDedup::begin(std::size_t expected)
{
    std::size_t want = 16;
    while (want < expected * 2)
        want <<= 1;
    if (table_.size() < want) {
        table_.assign(want, Entry{});
        epoch_ = 0;
    }
    mask_ = table_.size() - 1;
    ++epoch_;
    if (epoch_ == 0) { // u32 wrap: stale stamps would alias
        std::fill(table_.begin(), table_.end(), Entry{});
        epoch_ = 1;
    }
}

std::size_t
DistributedBackend::BatchDedup::probe(graph::NodeId key) const
{
    // Fibonacci hashing; high bits survive the mask.
    return static_cast<std::size_t>(
               (key * 0x9E3779B97F4A7C15ull) >> 17) &
           mask_;
}

mof::ShardChannel::Slot *
DistributedBackend::BatchDedup::acquire(graph::NodeId key,
                                        bool &found)
{
    std::size_t h = probe(key);
    for (; table_[h].epoch == epoch_; h = (h + 1) & mask_)
        if (table_[h].key == key) {
            found = true;
            return &table_[h].slot;
        }
    table_[h].key = key;
    table_[h].epoch = epoch_;
    found = false;
    return &table_[h].slot;
}

DistributedStore::DistributedStore(const SessionConfig &config)
    : graph_(graph::instantiate(graph::datasetByName(config.dataset),
                                config.scale_divisor, config.seed)),
      attrs_(graph::datasetByName(config.dataset).attr_len,
             config.seed),
      part_(graph_.numNodes(), effectiveShards(config))
{
    const std::uint32_t shards = part_.numServers();
    shards_.reserve(shards);
    for (std::uint32_t k = 0; k < shards; ++k)
        shards_.emplace_back(graph_, part_, k);
    if (config.distributed.cache_mb > 0.0)
        buildCaches(config);
}

void
DistributedStore::buildCaches(const SessionConfig &config)
{
    const auto budget = static_cast<std::uint64_t>(
        config.distributed.cache_mb * (1ull << 20));
    if (budget == 0)
        return;

    // The warm set is the same for every shard: all nodes by
    // descending degree (id ascending on ties, so the order — and
    // therefore the replicated hot set — is deterministic).
    std::vector<graph::NodeId> by_degree(graph_.numNodes());
    for (graph::NodeId n = 0; n < graph_.numNodes(); ++n)
        by_degree[n] = n;
    std::sort(by_degree.begin(), by_degree.end(),
              [this](graph::NodeId a, graph::NodeId b) {
                  const std::uint64_t da = graph_.degree(a);
                  const std::uint64_t db = graph_.degree(b);
                  return da != db ? da > db : a < b;
              });

    const std::uint32_t shards = part_.numServers();
    caches_.reserve(shards);
    for (std::uint32_t k = 0; k < shards; ++k) {
        cache::HotVertexCacheParams p;
        p.capacity_bytes = budget;
        p.attr_bytes = attrs_.bytesPerNode();
        p.stat_name = "cache.shard" + std::to_string(k);
        p.flight_gauges = true;
        p.entries_hint = std::max<std::size_t>(
            64, budget / (cache::HotVertexCache::entry_overhead_bytes +
                          attrs_.bytesPerNode() + 64));
        auto tier = std::make_unique<cache::HotVertexCache>(p);

        // Top-K-degree warmup: replicate the hottest *remote*
        // vertices (self-owned nodes are already local) until the
        // budget refuses the next admission. Warm entries carry the
        // degree prior so post-warmup traffic must out-score them.
        for (graph::NodeId n : by_degree) {
            if (part_.serverOf(n) == k)
                continue;
            if (!tier->admitAdjacency(n, graph_.neighbors(n)))
                break;
            tier->admitAttributes(n, graph_.degree(n));
        }
        caches_.push_back(std::move(tier));
    }
}

std::shared_ptr<const DistributedStore>
DistributedStore::create(const SessionConfig &config)
{
    return std::make_shared<const DistributedStore>(config);
}

DistributedBackend::DistributedBackend(
    const SessionConfig &config,
    std::shared_ptr<const DistributedStore> store,
    const sampling::NeighborSampler &sampler)
    : store_(std::move(store)),
      sampler_(sampler),
      self_(config.distributed.shard),
      cache_(store_->cache(self_)),
      asyncFabric_(config.distributed.async_fabric),
      maxInflightBound_(config.distributed.max_inflight_reads),
      group_("mof.remote.shard" + std::to_string(self_))
{
    const DistributedConfig &d = config.distributed;
    const std::uint32_t shards = store_->numShards();
    lsd_assert(self_ < shards, "shard id ", self_, " out of range (",
               shards, " shards)");

    channels_.resize(shards);
    books_.resize(shards);
    for (std::uint32_t peer = 0; peer < shards; ++peer) {
        if (peer == self_)
            continue;
        mof::ShardChannelParams p;
        p.wire.loss_probability = d.loss_probability;
        p.wire.ack_loss_probability = d.loss_probability;
        p.wire.max_retries = d.max_retries;
        // Distinct deterministic loss streams per directed pair.
        p.wire.seed = config.seed * 7919 + self_ * 2 * shards +
                      peer * 2 + 1;
        p.request_timeout = microseconds(d.request_timeout_us);
        p.stage_age = microseconds(d.stage_age_us);
        if (d.async_fabric && d.hedge_quantile > 0.0) {
            p.hedge_quantile = d.hedge_quantile;
            p.hedge_multiplier = d.hedge_multiplier;
            p.hedge_floor = microseconds(d.hedge_floor_us);
        }
        channels_[peer] = std::make_unique<mof::ShardChannel>(
            eq_, p, self_, peer);
        channels_[peer]->setCompletion(
            [this, peer](mof::ShardChannel &ch,
                         mof::ShardChannel::Slot first,
                         std::uint32_t count) {
                onSlotsSettled(peer, ch, first, count);
            });
        if (std::find(d.down_shards.begin(), d.down_shards.end(),
                      peer) != d.down_shards.end())
            channels_[peer]->markDown();
    }

    group_.addCounter("local", &localReads_,
                      "reads answered from the local shard");
    group_.addCounter("remote", &remoteReads_,
                      "reads that needed a remote shard");
    group_.addCounter("cached", &cached_,
                      "remote structure reads answered by the "
                      "hot-vertex cache tier");
    group_.addCounter("attr_cached", &attrCached_,
                      "remote attribute reads answered by the "
                      "hot-vertex cache tier");
    group_.addCounter("coalesced", &coalesced_,
                      "remote reads merged into an already-submitted "
                      "read of the same node");
    group_.addCounter("degraded", &degraded_,
                      "remote reads answered by the local fallback");
    group_.addCounter("batches", &batches_,
                      "mini-batches sampled on this shard");
    group_.addCounter("stall_trips", &stallTrips_,
                      "flight-recorder trips on the in-flight bound");

    auto &flight = trace::FlightRecorder::instance();
    const std::string shard_tag = "mof.shard" + std::to_string(self_);
    inflightGaugeHandle_ = flight.registerGauge(
        shard_tag + ".inflight_reads", [this] {
            return static_cast<double>(
                gaugeInflight_.load(std::memory_order_relaxed));
        });
    stageAgeGaugeHandle_ = flight.registerGauge(
        shard_tag + ".staging_age_us", [this] {
            return static_cast<double>(gaugeStageAgePs_.load(
                       std::memory_order_relaxed)) /
                   1e6;
        });

    if (cache_ != nullptr) {
        memoIndex_.assign(store_->graph().numNodes(), 0);
        memoEpoch_.assign(store_->graph().numNodes(), 0);
    }
}

DistributedBackend::~DistributedBackend()
{
    auto &flight = trace::FlightRecorder::instance();
    flight.unregisterGauge(inflightGaugeHandle_);
    flight.unregisterGauge(stageAgeGaugeHandle_);
}

DistributedBackend::CachedVertex &
DistributedBackend::memoProbe(graph::NodeId node)
{
    if (memoEpoch_[node] == memoCurrentEpoch_)
        return batchCachedRefs_[memoIndex_[node]];
    auto view = cache_->lookupVertex(node);
    memoEpoch_[node] = memoCurrentEpoch_;
    memoIndex_[node] =
        static_cast<std::uint32_t>(batchCachedRefs_.size());
    batchCachedRefs_.push_back(CachedVertex{
        std::move(view.adjacency), view.has_attrs, false});
    return batchCachedRefs_.back();
}

void
DistributedBackend::subscribe(std::uint32_t peer,
                              mof::ShardChannel::Slot slot,
                              std::uint32_t root)
{
    PeerBook &book = books_[peer];
    if (book.waiters.size() <= slot)
        book.waiters.resize(slot + 1);
    book.waiters[slot].push_back(root);
}

void
DistributedBackend::noteInFlight()
{
    std::uint32_t total = 0;
    Tick age = 0;
    for (const auto &ch : channels_) {
        if (!ch)
            continue;
        total += ch->inFlightReads();
        age = std::max(age, ch->stagingAge());
    }
    inflightPeak_ = std::max<std::uint64_t>(inflightPeak_, total);
    gaugeInflight_.store(total, std::memory_order_relaxed);
    gaugeStageAgePs_.store(age, std::memory_order_relaxed);
    if (maxInflightBound_ != 0 && total > maxInflightBound_ &&
        !stallTripped_) {
        stallTripped_ = true;
        stallTrips_.inc();
        auto &flight = trace::FlightRecorder::instance();
        flight.recordNow("mof.inflight.stall", batchCtx_.trace_id,
                         batchCtx_.span_id,
                         static_cast<double>(total),
                         static_cast<double>(maxInflightBound_));
        flight.trip("mof.inflight.stall");
    }
}

void
DistributedBackend::onSlotsSettled(std::uint32_t peer,
                                   mof::ShardChannel &ch,
                                   mof::ShardChannel::Slot first,
                                   std::uint32_t count)
{
    PeerBook &book = books_[peer];
    const graph::CsrGraph &g = store_->graph();
    for (mof::ShardChannel::Slot s = first; s < first + count; ++s) {
        if (s < book.is_attr.size() && book.is_attr[s] != 0) {
            if (ch.failed(s))
                ++attrFailedBatch_;
            else if (cache_ != nullptr)
                cache_->admitAttributes(book.node[s],
                                        g.degree(book.node[s]));
        }
        if (s < book.waiters.size() && !book.waiters[s].empty()) {
            for (std::uint32_t id : book.waiters[s]) {
                RootState &r = roots_[id];
                lsd_assert(r.outstanding > 0,
                           "waiter without outstanding reads");
                if (--r.outstanding == 0)
                    runnable_.push_back(id);
            }
            book.waiters[s].clear();
        }
    }
    gaugeInflight_.store(
        [this] {
            std::uint32_t total = 0;
            for (const auto &c : channels_)
                if (c)
                    total += c->inFlightReads();
            return total;
        }(),
        std::memory_order_relaxed);
    if (!pumping_)
        pump();
}

void
DistributedBackend::pump()
{
    lsd_assert(!pumping_, "pump re-entered");
    pumping_ = true;
    while (!runnable_.empty()) {
        const std::uint32_t id = runnable_.front();
        runnable_.pop_front();
        advanceRoot(id);
    }
    pumping_ = false;
}

void
DistributedBackend::advanceRoot(std::uint32_t root)
{
    RootState &r = roots_[root];
    for (;;) {
        // A stale runnable entry (a root that was woken synchronously
        // mid-advance and then parked again, or already retired) must
        // not re-enter the state machine.
        if (r.done || r.outstanding > 0)
            return;
        switch (r.phase) {
        case Phase::Expand:
            if (r.hop == plan_->hops()) {
                r.phase = plan_->fetch_attributes ? Phase::Attrs
                                                  : Phase::Finish;
                break;
            }
            expandSubmit(root);
            r.phase = Phase::Resolve;
            if (r.outstanding > 0)
                return; // parked; a completion resumes us
            break;
        case Phase::Resolve:
            expandResolve(root);
            r.phase = Phase::Expand;
            break;
        case Phase::Attrs:
            // Attr fetches are fire-and-forget (no subscriptions), so
            // the root retires immediately; the batch-level event
            // drain settles the reads before endBatch.
            submitAttrs(root);
            r.phase = Phase::Finish;
            break;
        case Phase::Finish:
            r.done = true;
            lsd_assert(liveRoots_ > 0, "live-root underflow");
            --liveRoots_;
            return;
        }
    }
}

void
DistributedBackend::expandSubmit(std::uint32_t root)
{
    RootState &r = roots_[root];
    const std::uint32_t hop = r.hop;
    const std::uint32_t fanout = plan_->fanouts[hop];
    const graph::NodeId *prev;
    std::uint32_t prev_size;
    std::uint32_t parent_base; // strided index of prev[0] (hop 0: the
                               // root's index into out.roots)
    if (hop == 0) {
        prev = &r.root;
        prev_size = 1;
        parent_base = root;
    } else {
        const std::uint32_t pstride = hopStride_[hop - 1];
        prev = batchOut_->frontier[hop - 1].data() +
               std::size_t(root) * pstride;
        prev_size = r.counts[hop - 1];
        parent_base = root * pstride;
    }
    // This root's segment of the shared result arrays. The stride is
    // the hop's worst case, so the write cursor can never cross into
    // a neighbour's segment; assemble() squeezes out the slack.
    graph::NodeId *dst = batchOut_->frontier[hop].data() +
                         std::size_t(root) * hopStride_[hop];
    std::uint32_t *par = batchOut_->parent[hop].data() +
                         std::size_t(root) * hopStride_[hop];
    std::uint32_t &cur = r.counts[hop];
    cur = 0;
    r.pending.clear();

    const graph::Partitioner &part = store_->partitioner();
    const graph::GraphShard &home = store_->shard(self_);
    for (std::uint32_t i = 0; i < prev_size; ++i) {
        const graph::NodeId node = prev[i];
        const graph::ServerId owner = part.serverOf(node);
        if (owner == self_) {
            localReads_.inc();
            const std::uint32_t got = sampler_.sampleInto(
                home.neighbors(node), fanout, r.rng, dst + cur,
                scratch_.sampler);
            std::fill_n(par + cur, got, parent_base + i);
            cur += got;
            continue;
        }
        // Read-through: a hot-vertex-cache hit is answered from the
        // local replica and never touches a channel. It still takes
        // its position in the root's pending list so the root draws
        // its RNG in discovery order — output stays byte-identical
        // with the tier on or off. The tier is probed once per unique
        // node per BATCH; every further read of that node resolves
        // through the lock-free memo.
        if (cache_ != nullptr) {
            ++batchCacheLookups_;
            if (memoProbe(node).adjacency != nullptr) {
                ++batchCacheHits_;
                cached_.inc();
                r.pending.push_back(PendingDraw{
                    i, node, owner, memoIndex_[node], true});
                continue;
            }
        }
        remoteReads_.inc();
        mof::ShardChannel &ch = *channels_[owner];
        // Batch-scoped coalescing: any earlier read of this node —
        // by any root, at any hop — shares its slot. A slot that has
        // already settled costs nothing more; an in-flight one parks
        // this root alongside the original submitter. One probe
        // serves both the hit and the claim.
        bool seen;
        mof::ShardChannel::Slot *entry =
            structDedup_.acquire(node, seen);
        if (seen) {
            coalesced_.inc();
            r.pending.push_back(
                PendingDraw{i, node, owner, *entry, false});
            if (!ch.settled(*entry)) {
                subscribe(owner, *entry, root);
                ++r.outstanding;
            }
            continue;
        }
        const graph::GraphShard &owner_shard = store_->shard(owner);
        const std::uint64_t deg = owner_shard.degree(node);
        const auto bytes = static_cast<std::uint32_t>(
            (1 + deg) * sampling::structure_word_bytes);
        const mof::ShardChannel::Slot slot = ch.submit(
            owner_shard.adjacencyByteOffset(node), bytes);
        *entry = slot;
        r.pending.push_back(
            PendingDraw{i, node, owner, slot, false});
        if (!ch.settled(slot)) {
            subscribe(owner, slot, root);
            ++r.outstanding;
        }
    }
    noteInFlight();
}

void
DistributedBackend::expandResolve(std::uint32_t root)
{
    RootState &r = roots_[root];
    const std::uint32_t hop = r.hop;
    const std::uint32_t fanout = plan_->fanouts[hop];
    const std::uint32_t parent_base =
        hop == 0 ? root : root * hopStride_[hop - 1];
    graph::NodeId *dst = batchOut_->frontier[hop].data() +
                         std::size_t(root) * hopStride_[hop];
    std::uint32_t *par = batchOut_->parent[hop].data() +
                         std::size_t(root) * hopStride_[hop];
    std::uint32_t &cur = r.counts[hop];
    const graph::GraphShard &home = store_->shard(self_);

    for (const PendingDraw &f : r.pending) {
        const std::uint32_t pv = parent_base + f.parent;
        if (f.cached) {
            // Cache hit: sample from the replicated adjacency —
            // byte-identical to the owner shard's slice, so the draw
            // matches what the remote read would produce.
            const std::uint32_t got = sampler_.sampleInto(
                std::span<const graph::NodeId>(
                    *batchCachedRefs_[f.slot].adjacency),
                fanout, r.rng, dst + cur, scratch_.sampler);
            std::fill_n(par + cur, got, pv);
            cur += got;
        } else if (!channels_[f.peer]->failed(f.slot)) {
            const graph::GraphShard &owner_shard =
                store_->shard(f.peer);
            const std::span<const graph::NodeId> nbrs =
                owner_shard.neighbors(f.node);
            const std::uint32_t got = sampler_.sampleInto(
                nbrs, fanout, r.rng, dst + cur, scratch_.sampler);
            std::fill_n(par + cur, got, pv);
            cur += got;
            // On-miss admission: the frame just paid for this
            // adjacency; let the tier decide if it beats a victim.
            // Offered once per batch — the memoized probe doubles as
            // the seen-set.
            if (cache_ != nullptr) {
                CachedVertex &cv = memoProbe(f.node);
                if (!cv.admit_tried) {
                    cv.admit_tried = true;
                    cache_->admitAdjacency(f.node, nbrs);
                }
            }
        } else {
            // Failed read: degrade gracefully — the fan-out is
            // answered by negative-resampling from the home shard,
            // so the hop keeps its shape and downstream layers never
            // see a hole.
            ++degradedBatch_;
            const auto &locals = home.localNodes();
            if (!locals.empty()) {
                for (std::uint32_t j = 0; j < fanout; ++j) {
                    dst[cur] = locals[r.rng.nextBounded(
                        locals.size())];
                    par[cur] = pv;
                    ++cur;
                }
            }
        }
    }
    r.pending.clear();
    ++r.hop;
}

void
DistributedBackend::submitAttrs(std::uint32_t root)
{
    // Attribute rows are positionally matched and carry no per-root
    // output — unlike structure reads, no draw depends on their
    // content. So roots never subscribe to attr slots: the stage just
    // streams each unique node's fetch into the staging buffers, and
    // failure counting plus cache admission ride on the channel
    // completion (batch-level, via PeerBook::is_attr). This keeps
    // the hot loop a single dedup probe for the ~90% duplicate
    // handles a skewed frontier produces.
    RootState &r = roots_[root];
    const graph::Partitioner &part = store_->partitioner();
    const std::uint64_t bytes_per_node =
        store_->attrs().bytesPerNode();

    const auto handle = [&](graph::NodeId node) {
        bool seen;
        attrDedup_.acquire(node, seen); // presence set; slot unused
        if (seen)
            return; // fetched (or classified) once per batch
        const graph::ServerId owner = part.serverOf(node);
        if (owner == self_) {
            localReads_.inc();
            return;
        }
        // Read-through: a replicated attribute row spares the fabric
        // one read.
        if (cache_ != nullptr) {
            ++batchCacheLookups_;
            if (memoProbe(node).has_attrs) {
                ++batchCacheHits_;
                attrCached_.inc();
                return;
            }
        }
        remoteReads_.inc();
        mof::ShardChannel &ch = *channels_[owner];
        const mof::ShardChannel::Slot slot =
            ch.submit(node * bytes_per_node,
                      static_cast<std::uint32_t>(bytes_per_node));
        PeerBook &book = books_[owner];
        if (book.is_attr.size() <= slot) {
            book.is_attr.resize(slot + 1, 0);
            book.node.resize(slot + 1, 0);
        }
        book.is_attr[slot] = 1;
        book.node[slot] = node;
        if (ch.settled(slot) && ch.failed(slot)) {
            // Settled synchronously (down peer / breaker inside this
            // submit) — the completion either never fires (born
            // failed) or fired before is_attr was set, so account
            // the failure here.
            ++attrFailedBatch_;
        }
    };

    handle(r.root);
    for (std::uint32_t h = 0; h < plan_->hops(); ++h) {
        const graph::NodeId *seg =
            batchOut_->frontier[h].data() +
            std::size_t(root) * hopStride_[h];
        for (std::uint32_t j = 0; j < r.counts[h]; ++j)
            handle(seg[j]);
    }
    noteInFlight();
}

void
DistributedBackend::sampleBarrier()
{
    // Lockstep round protocol, kept for A/B benchmarking against the
    // continuation engine: every root submits its current hop, the
    // staging buffers force-flush (one frame train per hop), the
    // event queue drains to the hop barrier, then every root draws.
    // Same per-root RNG streams and per-root code as the async path,
    // so the sampled output is byte-identical.
    pumping_ = true; // completions only decrement; no advancing
    const std::uint32_t hops = plan_->hops();
    for (std::uint32_t hop = 0; hop < hops; ++hop) {
        for (std::uint32_t i = 0; i < batchRoots_; ++i)
            expandSubmit(i);
        for (auto &ch : channels_)
            if (ch)
                ch->flushStaged();
        const Tick run_start = trace::wallNow();
        eq_.run();
        remoteWallPs_ += trace::wallNow() - run_start;
        runnable_.clear();
        for (std::uint32_t i = 0; i < batchRoots_; ++i) {
            lsd_assert(roots_[i].outstanding == 0,
                       "barrier hop ended with outstanding reads");
            expandResolve(i);
        }
    }
    if (plan_->fetch_attributes) {
        for (std::uint32_t i = 0; i < batchRoots_; ++i)
            submitAttrs(i);
        for (auto &ch : channels_)
            if (ch)
                ch->flushStaged();
        const Tick run_start = trace::wallNow();
        eq_.run();
        remoteWallPs_ += trace::wallNow() - run_start;
        runnable_.clear();
        for (std::uint32_t i = 0; i < batchRoots_; ++i)
            lsd_assert(roots_[i].outstanding == 0,
                       "attr stage ended with outstanding reads");
    }
    pumping_ = false;
}

void
DistributedBackend::assemble(const sampling::SamplePlan &plan,
                             sampling::SampleResult &out)
{
    // Roots wrote at fixed worst-case strides; squeeze the slack out
    // in place. A batch where every root filled its full fan-out
    // (degree >= fanout everywhere, nothing degraded) is already
    // contiguous: the loop below only sums counts and resizes. When
    // a hop did leave gaps, each root's segment slides left with one
    // memmove, and the NEXT hop's parent indices — written against
    // the strided layout — shift by a per-root constant.
    const std::uint32_t hops = plan.hops();
    std::vector<std::uint32_t> &shift = assemblePrev_;
    std::vector<std::uint32_t> &off = assembleCur_;
    bool prev_shifted = false;
    off.resize(batchRoots_);
    for (std::uint32_t h = 0; h < hops; ++h) {
        const std::uint32_t stride = hopStride_[h];
        std::size_t total = 0;
        bool shifted = false;
        for (std::uint32_t r = 0; r < batchRoots_; ++r) {
            off[r] = static_cast<std::uint32_t>(total);
            if (off[r] != std::size_t(r) * stride)
                shifted = true;
            total += roots_[r].counts[h];
        }
        std::vector<graph::NodeId> &fr = out.frontier[h];
        std::vector<std::uint32_t> &pa = out.parent[h];
        if (shifted || prev_shifted) {
            for (std::uint32_t r = 0; r < batchRoots_; ++r) {
                const std::uint32_t n = roots_[r].counts[h];
                if (n == 0)
                    continue;
                const std::size_t src = std::size_t(r) * stride;
                const std::size_t dst = off[r];
                if (prev_shifted) {
                    // Remap while sliding: all of this root's parents
                    // point into its own previous-hop segment, so the
                    // correction is one constant.
                    const std::uint32_t s = shift[r];
                    for (std::uint32_t j = 0; j < n; ++j)
                        pa[dst + j] = pa[src + j] - s;
                } else if (dst != src) {
                    std::memmove(pa.data() + dst, pa.data() + src,
                                 n * sizeof(std::uint32_t));
                }
                if (dst != src)
                    std::memmove(fr.data() + dst, fr.data() + src,
                                 n * sizeof(graph::NodeId));
            }
        }
        fr.resize(total);
        pa.resize(total);
        if (h + 1 < hops) {
            prev_shifted = shifted;
            if (shifted) {
                shift.resize(batchRoots_);
                for (std::uint32_t r = 0; r < batchRoots_; ++r)
                    shift[r] = static_cast<std::uint32_t>(
                        std::size_t(r) * stride - off[r]);
            }
        }
    }
}

void
DistributedBackend::emitStageTrace(const char *stage,
                                   std::size_t frontier,
                                   std::uint64_t degraded,
                                   Tick wall_start)
{
    if (degraded != 0)
        trace::FlightRecorder::instance().recordNow(
            "dist.degraded", batchCtx_.trace_id, batchCtx_.span_id,
            static_cast<double>(degraded),
            static_cast<double>(frontier));
    if (!trace::Tracer::enabled())
        return;
    auto &tracer = trace::Tracer::instance();
    std::string args;
    if (batchCtx_.valid())
        args = batchCtx_.argsJson() + ",";
    args += "\"frontier\":" + std::to_string(frontier) +
            ",\"degraded\":" + std::to_string(degraded);
    const Tick now = trace::wallNow();
    tracer.complete(
        trace::wall_pid,
        tracer.track(trace::wall_pid,
                     "mof.remote.shard" + std::to_string(self_)),
        stage, wall_start, now - wall_start, args);
}

Status
DistributedBackend::sampleInto(const sampling::SamplePlan &plan,
                               const SampleOptions &options, Rng &rng,
                               sampling::SampleResult &out)
{
    const graph::CsrGraph &g = store_->graph();
    const graph::GraphShard &home = store_->shard(self_);
    batches_.inc();
    trace_ = options.trace;
    batchCtx_ = trace_.valid() ? trace_.child() : trace::TraceContext{};
    plan_ = &plan;
    remoteWallPs_ = 0;
    batchCacheLookups_ = 0;
    batchCacheHits_ = 0;
    degradedBatch_ = 0;
    attrFailedBatch_ = 0;
    inflightPeak_ = 0;
    stallTripped_ = false;
    if (cache_ != nullptr) {
        ++memoCurrentEpoch_;
        if (memoCurrentEpoch_ == 0) { // u32 wrap: stale stamps linger
            std::fill(memoEpoch_.begin(), memoEpoch_.end(), 0);
            memoCurrentEpoch_ = 1;
        }
        batchCachedRefs_.clear();
    }

    std::uint64_t hedge_base = 0;
    for (const auto &ch : channels_)
        if (ch)
            hedge_base += ch->hedges();

    // Roots come from the caller's Rng — the same sequence the round
    // engine drew, so root selection is config-stable.
    out.roots.resize(plan.batch_size);
    if (options.local_roots && home.numLocalNodes() > 0) {
        const auto &locals = home.localNodes();
        for (graph::NodeId &r : out.roots)
            r = locals[rng.nextBounded(locals.size())];
    } else {
        for (graph::NodeId &r : out.roots)
            r = rng.nextBounded(g.numNodes());
    }
    // One extra draw forms the batch nonce every root's private RNG
    // stream derives from. Each root consumes only its own stream, in
    // root-local discovery order — the sampled content is therefore
    // independent of completion scheduling, which is what makes the
    // async and barrier fabrics byte-identical.
    const std::uint64_t nonce = rng();

    const std::uint32_t hops = plan.hops();
    batchRoots_ = static_cast<std::uint32_t>(out.roots.size());
    batchOut_ = &out;
    // Strided result layout: hop h grants every root a worst-case
    // segment of prod(fanouts[0..h]) slots, so a root knows its write
    // offsets the moment it becomes runnable — no coordination with
    // the other roots' (possibly unfinished) hops. In the common
    // full-fanout batch the strided layout IS the final layout and
    // assemble() has nothing to move.
    hopStride_.resize(hops);
    {
        std::uint64_t stride = 1;
        for (std::uint32_t h = 0; h < hops; ++h) {
            stride *= plan.fanouts[h];
            lsd_assert(stride * batchRoots_ <= 0xFFFFFFFFull,
                       "hop arena exceeds 32-bit parent indexing");
            hopStride_[h] = static_cast<std::uint32_t>(stride);
        }
    }
    out.frontier.resize(hops);
    out.parent.resize(hops);
    for (std::uint32_t h = 0; h < hops; ++h) {
        const std::size_t arena =
            std::size_t(batchRoots_) * hopStride_[h];
        out.frontier[h].resize(arena);
        out.parent[h].resize(arena);
    }
    if (roots_.size() < batchRoots_)
        roots_.resize(batchRoots_);
    for (std::uint32_t i = 0; i < batchRoots_; ++i) {
        RootState &r = roots_[i];
        r.rng = Rng(nonce ^ ((i + 1) * 0x9E3779B97F4A7C15ull));
        r.root = out.roots[i];
        r.hop = 0;
        r.outstanding = 0;
        r.phase = Phase::Expand;
        r.done = false;
        r.pending.clear();
        r.counts.assign(hops, 0);
    }
    structDedup_.begin(std::min<std::size_t>(plan.maxNodesPerBatch(),
                                             g.numNodes()));
    attrDedup_.begin(std::min<std::size_t>(plan.maxNodesPerBatch(),
                                           g.numNodes()));
    for (PeerBook &book : books_) {
        for (auto &w : book.waiters)
            w.clear();
        book.is_attr.clear();
        book.node.clear();
    }
    for (auto &ch : channels_) {
        if (!ch)
            continue;
        ch->setTrace(batchCtx_);
        ch->beginBatch();
    }

    const Tick wall_start = trace::wallNow();
    if (asyncFabric_) {
        liveRoots_ = batchRoots_;
        for (std::uint32_t i = 0; i < batchRoots_; ++i)
            runnable_.push_back(i);
        pump();
        // Every parked root holds an unsettled slot, and every
        // unsettled slot has a pending staging-age or deadline event
        // — the heap cannot drain while work remains, so one run()
        // completes the batch.
        const Tick run_start = trace::wallNow();
        eq_.run();
        remoteWallPs_ += trace::wallNow() - run_start;
        lsd_assert(runnable_.empty(), "runnable roots after drain");
        lsd_assert(liveRoots_ == 0,
                   "async batch ended with live roots");
    } else {
        sampleBarrier();
    }
    for (auto &ch : channels_)
        if (ch)
            ch->endBatch();

    assemble(plan, out);
    std::size_t total_frontier = 0;
    for (const auto &hop : out.frontier)
        total_frontier += hop.size();
    const std::uint64_t degraded_total =
        degradedBatch_ + attrFailedBatch_;
    emitStageTrace(asyncFabric_ ? "batch.async" : "batch.barrier",
                   total_frontier, degraded_total, wall_start);

    if (options.telemetry != nullptr) {
        options.telemetry->remote_us +=
            static_cast<double>(remoteWallPs_) / 1e6;
        options.telemetry->cache_lookups += batchCacheLookups_;
        options.telemetry->cache_hits += batchCacheHits_;
        std::uint64_t hedge_now = 0;
        for (const auto &ch : channels_)
            if (ch)
                hedge_now += ch->hedges();
        options.telemetry->hedges += hedge_now - hedge_base;
        options.telemetry->inflight_peak = std::max(
            options.telemetry->inflight_peak, inflightPeak_);
    }
    degraded_.inc(degraded_total);
    if (degraded_total != 0)
        return Status(StatusCode::Degraded,
                      std::to_string(degraded_total) +
                          " remote reads fell back to shard " +
                          std::to_string(self_));
    return StatusCode::Ok;
}

} // namespace framework
} // namespace lsdgnn
