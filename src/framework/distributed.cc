#include "distributed.hh"

#include <algorithm>
#include <span>
#include <string>

#include "common/flight_recorder.hh"

namespace lsdgnn {
namespace framework {

namespace {

std::uint32_t
effectiveShards(const SessionConfig &config)
{
    const std::uint32_t shards = config.distributed.num_shards != 0
                                     ? config.distributed.num_shards
                                     : config.num_servers;
    lsd_assert(shards > 0, "distributed store needs shards");
    return shards;
}

} // namespace

void
DistributedBackend::RoundDedup::begin(std::size_t expected)
{
    std::size_t want = 16;
    while (want < expected * 2)
        want <<= 1;
    if (table_.size() < want) {
        table_.assign(want, Entry{});
        epoch_ = 0;
    }
    mask_ = table_.size() - 1;
    ++epoch_;
}

std::size_t
DistributedBackend::RoundDedup::probe(graph::NodeId key) const
{
    // Fibonacci hashing; high bits survive the mask.
    return static_cast<std::size_t>(
               (key * 0x9E3779B97F4A7C15ull) >> 17) &
           mask_;
}

const mof::ShardChannel::Slot *
DistributedBackend::RoundDedup::find(graph::NodeId key) const
{
    for (std::size_t h = probe(key); table_[h].epoch == epoch_;
         h = (h + 1) & mask_)
        if (table_[h].key == key)
            return &table_[h].slot;
    return nullptr;
}

void
DistributedBackend::RoundDedup::insert(graph::NodeId key,
                                       mof::ShardChannel::Slot slot)
{
    std::size_t h = probe(key);
    while (table_[h].epoch == epoch_)
        h = (h + 1) & mask_;
    table_[h] = Entry{key, slot, epoch_};
}

DistributedStore::DistributedStore(const SessionConfig &config)
    : graph_(graph::instantiate(graph::datasetByName(config.dataset),
                                config.scale_divisor, config.seed)),
      attrs_(graph::datasetByName(config.dataset).attr_len,
             config.seed),
      part_(graph_.numNodes(), effectiveShards(config))
{
    const std::uint32_t shards = part_.numServers();
    shards_.reserve(shards);
    for (std::uint32_t k = 0; k < shards; ++k)
        shards_.emplace_back(graph_, part_, k);
    if (config.distributed.cache_mb > 0.0)
        buildCaches(config);
}

void
DistributedStore::buildCaches(const SessionConfig &config)
{
    const auto budget = static_cast<std::uint64_t>(
        config.distributed.cache_mb * (1ull << 20));
    if (budget == 0)
        return;

    // The warm set is the same for every shard: all nodes by
    // descending degree (id ascending on ties, so the order — and
    // therefore the replicated hot set — is deterministic).
    std::vector<graph::NodeId> by_degree(graph_.numNodes());
    for (graph::NodeId n = 0; n < graph_.numNodes(); ++n)
        by_degree[n] = n;
    std::sort(by_degree.begin(), by_degree.end(),
              [this](graph::NodeId a, graph::NodeId b) {
                  const std::uint64_t da = graph_.degree(a);
                  const std::uint64_t db = graph_.degree(b);
                  return da != db ? da > db : a < b;
              });

    const std::uint32_t shards = part_.numServers();
    caches_.reserve(shards);
    for (std::uint32_t k = 0; k < shards; ++k) {
        cache::HotVertexCacheParams p;
        p.capacity_bytes = budget;
        p.attr_bytes = attrs_.bytesPerNode();
        p.stat_name = "cache.shard" + std::to_string(k);
        p.flight_gauges = true;
        p.entries_hint = std::max<std::size_t>(
            64, budget / (cache::HotVertexCache::entry_overhead_bytes +
                          attrs_.bytesPerNode() + 64));
        auto tier = std::make_unique<cache::HotVertexCache>(p);

        // Top-K-degree warmup: replicate the hottest *remote*
        // vertices (self-owned nodes are already local) until the
        // budget refuses the next admission. Warm entries carry the
        // degree prior so post-warmup traffic must out-score them.
        for (graph::NodeId n : by_degree) {
            if (part_.serverOf(n) == k)
                continue;
            if (!tier->admitAdjacency(n, graph_.neighbors(n)))
                break;
            tier->admitAttributes(n, graph_.degree(n));
        }
        caches_.push_back(std::move(tier));
    }
}

std::shared_ptr<const DistributedStore>
DistributedStore::create(const SessionConfig &config)
{
    return std::make_shared<const DistributedStore>(config);
}

DistributedBackend::DistributedBackend(
    const SessionConfig &config,
    std::shared_ptr<const DistributedStore> store,
    const sampling::NeighborSampler &sampler)
    : store_(std::move(store)),
      sampler_(sampler),
      self_(config.distributed.shard),
      cache_(store_->cache(self_)),
      group_("mof.remote.shard" + std::to_string(self_))
{
    const DistributedConfig &d = config.distributed;
    const std::uint32_t shards = store_->numShards();
    lsd_assert(self_ < shards, "shard id ", self_, " out of range (",
               shards, " shards)");

    channels_.resize(shards);
    for (std::uint32_t peer = 0; peer < shards; ++peer) {
        if (peer == self_)
            continue;
        mof::ShardChannelParams p;
        p.wire.loss_probability = d.loss_probability;
        p.wire.ack_loss_probability = d.loss_probability;
        p.wire.max_retries = d.max_retries;
        // Distinct deterministic loss streams per directed pair.
        p.wire.seed = config.seed * 7919 + self_ * 2 * shards +
                      peer * 2 + 1;
        p.request_timeout = microseconds(d.request_timeout_us);
        channels_[peer] = std::make_unique<mof::ShardChannel>(
            eq_, p, self_, peer);
        if (std::find(d.down_shards.begin(), d.down_shards.end(),
                      peer) != d.down_shards.end())
            channels_[peer]->markDown();
    }

    group_.addCounter("local", &localReads_,
                      "reads answered from the local shard");
    group_.addCounter("remote", &remoteReads_,
                      "reads that needed a remote shard");
    group_.addCounter("cached", &cached_,
                      "remote structure reads answered by the "
                      "hot-vertex cache tier");
    group_.addCounter("attr_cached", &attrCached_,
                      "remote attribute reads answered by the "
                      "hot-vertex cache tier");
    group_.addCounter("coalesced", &coalesced_,
                      "remote reads merged into an already-staged "
                      "read of the same node");
    group_.addCounter("degraded", &degraded_,
                      "remote reads answered by the local fallback");
    group_.addCounter("batches", &batches_,
                      "mini-batches sampled on this shard");

    if (cache_ != nullptr) {
        memoIndex_.assign(store_->graph().numNodes(), 0);
        memoEpoch_.assign(store_->graph().numNodes(), 0);
    }
}

DistributedBackend::CachedVertex &
DistributedBackend::memoProbe(graph::NodeId node)
{
    if (memoEpoch_[node] == memoCurrentEpoch_)
        return batchCachedRefs_[memoIndex_[node]];
    auto view = cache_->lookupVertex(node);
    memoEpoch_[node] = memoCurrentEpoch_;
    memoIndex_[node] =
        static_cast<std::uint32_t>(batchCachedRefs_.size());
    batchCachedRefs_.push_back(CachedVertex{
        std::move(view.adjacency), view.has_attrs, false});
    return batchCachedRefs_.back();
}

void
DistributedBackend::beginRounds()
{
    pending_.clear();
    hopCtx_ = trace_.valid() ? trace_.child() : trace::TraceContext{};
    for (auto &ch : channels_) {
        if (!ch)
            continue;
        ch->setTrace(hopCtx_);
        ch->beginRound();
    }
}

void
DistributedBackend::flushAndRun()
{
    const Tick start = trace::wallNow();
    for (auto &ch : channels_)
        if (ch)
            ch->flush();
    eq_.run();
    for (auto &ch : channels_)
        if (ch)
            ch->endRound();
    remoteWallPs_ += trace::wallNow() - start;
}

void
DistributedBackend::emitStageTrace(const char *stage,
                                   std::size_t frontier,
                                   std::uint64_t degraded,
                                   Tick wall_start)
{
    if (degraded != 0)
        trace::FlightRecorder::instance().recordNow(
            "dist.degraded", hopCtx_.trace_id, hopCtx_.span_id,
            static_cast<double>(degraded),
            static_cast<double>(frontier));
    if (!trace::Tracer::enabled())
        return;
    auto &tracer = trace::Tracer::instance();
    std::string args;
    if (hopCtx_.valid())
        args = hopCtx_.argsJson() + ",";
    args += "\"frontier\":" + std::to_string(frontier) +
            ",\"degraded\":" + std::to_string(degraded);
    const Tick now = trace::wallNow();
    tracer.complete(
        trace::wall_pid,
        tracer.track(trace::wall_pid,
                     "mof.remote.shard" + std::to_string(self_)),
        stage, wall_start, now - wall_start, args);
}

Status
DistributedBackend::sampleInto(const sampling::SamplePlan &plan,
                               const SampleOptions &options, Rng &rng,
                               sampling::SampleResult &out)
{
    const graph::Partitioner &part = store_->partitioner();
    const graph::CsrGraph &g = store_->graph();
    const graph::GraphShard &home = store_->shard(self_);
    batches_.inc();
    trace_ = options.trace;
    remoteWallPs_ = 0;
    batchCacheLookups_ = 0;
    batchCacheHits_ = 0;
    if (cache_ != nullptr) {
        ++memoCurrentEpoch_;
        if (memoCurrentEpoch_ == 0) { // u32 wrap: stale stamps linger
            std::fill(memoEpoch_.begin(), memoEpoch_.end(), 0);
            memoCurrentEpoch_ = 1;
        }
        batchCachedRefs_.clear();
    }

    out.roots.resize(plan.batch_size);
    if (options.local_roots && home.numLocalNodes() > 0) {
        const auto &locals = home.localNodes();
        for (graph::NodeId &r : out.roots)
            r = locals[rng.nextBounded(locals.size())];
    } else {
        for (graph::NodeId &r : out.roots)
            r = rng.nextBounded(g.numNodes());
    }

    const std::uint32_t hops = plan.hops();
    out.frontier.resize(hops);
    out.parent.resize(hops);

    std::uint64_t degraded_batch = 0;
    const graph::NodeId *prev = out.roots.data();
    std::size_t prev_size = out.roots.size();

    for (std::uint32_t hop = 0; hop < hops; ++hop) {
        std::vector<graph::NodeId> &out_v = out.frontier[hop];
        std::vector<std::uint32_t> &par = out.parent[hop];
        const std::uint32_t fanout = plan.fanouts[hop];
        const std::size_t arena = prev_size * fanout;
        if (out_v.size() < arena)
            out_v.resize(arena);
        if (par.size() < arena)
            par.resize(arena);
        graph::NodeId *op = out_v.data();
        std::uint32_t *pp = par.data();
        std::size_t pos = 0;

        const Tick hop_wall_start = trace::wallNow();
        const std::uint64_t hop_degraded_base = degraded_batch;
        beginRounds();
        roundDedup_.begin(
            std::min<std::size_t>(prev_size, g.numNodes()));

        // Pass 1: sample locally-owned frontier nodes inline; stage a
        // packed structure read for every remote one. One read covers
        // the degree word plus the adjacency run — the response size
        // is known up front because the shard slice is binary CSR
        // (8-byte words, see structure_word_bytes). Parents wanting
        // the same remote node share one staged read (coalescing):
        // the slot fans its adjacency out to every subscriber, each
        // of which still draws its own samples from it.
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(prev_size); ++i) {
            const graph::NodeId node = prev[i];
            const graph::ServerId owner = part.serverOf(node);
            if (owner == self_) {
                localReads_.inc();
                const std::uint32_t got = sampler_.sampleInto(
                    home.neighbors(node), fanout, rng, op + pos,
                    scratch_.sampler);
                for (std::uint32_t j = 0; j < got; ++j)
                    pp[pos + j] = i;
                pos += got;
                continue;
            }
            // Read-through: a hot-vertex-cache hit is answered from
            // the local replica and never enters a channel round. It
            // still occupies its slot in pending_ so pass 2 draws the
            // sampling RNG in staged order — output stays
            // byte-identical with the tier on or off. The tier is
            // probed once per unique node per BATCH; every further
            // read of that node resolves through the lock-free memo,
            // mirroring roundDedup_'s staged-read coalescing.
            if (cache_ != nullptr) {
                ++batchCacheLookups_;
                if (memoProbe(node).adjacency != nullptr) {
                    ++batchCacheHits_;
                    cached_.inc();
                    pending_.push_back(PendingFetch{
                        i, node, owner, memoIndex_[node], true});
                    continue;
                }
            }
            remoteReads_.inc();
            if (const auto *shared = roundDedup_.find(node)) {
                coalesced_.inc();
                pending_.push_back(
                    PendingFetch{i, node, owner, *shared, false});
                continue;
            }
            const graph::GraphShard &owner_shard = store_->shard(owner);
            const std::uint64_t deg = owner_shard.degree(node);
            const auto bytes = static_cast<std::uint32_t>(
                (1 + deg) * sampling::structure_word_bytes);
            const mof::ShardChannel::Slot slot =
                channels_[owner]->stage(
                    owner_shard.adjacencyByteOffset(node), bytes);
            roundDedup_.insert(node, slot);
            pending_.push_back(
                PendingFetch{i, node, owner, slot, false});
        }

        flushAndRun();

        // Pass 2: answer the remote reads in staged order. Failed
        // slots degrade gracefully — the fan-out is answered by
        // negative-resampling from the home shard, so the hop keeps
        // its shape and downstream layers never see a hole.
        for (const PendingFetch &f : pending_) {
            if (f.cached) {
                // Cache hit: sample from the replicated adjacency —
                // byte-identical to the owner shard's slice, so the
                // draw matches what the remote read would produce.
                const std::uint32_t got = sampler_.sampleInto(
                    std::span<const graph::NodeId>(
                        *batchCachedRefs_[f.slot].adjacency),
                    fanout, rng, op + pos, scratch_.sampler);
                for (std::uint32_t j = 0; j < got; ++j)
                    pp[pos + j] = f.parent;
                pos += got;
            } else if (!channels_[f.peer]->roundFailed(f.slot)) {
                const graph::GraphShard &owner_shard =
                    store_->shard(f.peer);
                const std::span<const graph::NodeId> nbrs =
                    owner_shard.neighbors(f.node);
                const std::uint32_t got = sampler_.sampleInto(
                    nbrs, fanout, rng, op + pos, scratch_.sampler);
                for (std::uint32_t j = 0; j < got; ++j)
                    pp[pos + j] = f.parent;
                pos += got;
                // On-miss admission: the frame just paid for this
                // adjacency; let the tier decide if it beats a
                // victim. Offered once per batch — the memoized
                // probe doubles as the seen-set.
                if (cache_ != nullptr) {
                    CachedVertex &cv = memoProbe(f.node);
                    if (!cv.admit_tried) {
                        cv.admit_tried = true;
                        cache_->admitAdjacency(f.node, nbrs);
                    }
                }
            } else {
                ++degraded_batch;
                const auto &locals = home.localNodes();
                if (!locals.empty()) {
                    for (std::uint32_t j = 0; j < fanout; ++j) {
                        op[pos] = locals[rng.nextBounded(
                            locals.size())];
                        pp[pos] = f.parent;
                        ++pos;
                    }
                }
            }
        }

        out_v.resize(pos);
        par.resize(pos);
        prev = out_v.data();
        prev_size = pos;
        emitStageTrace("hop", prev_size,
                       degraded_batch - hop_degraded_base,
                       hop_wall_start);
    }

    if (plan.fetch_attributes)
        degraded_batch += fetchAttributes(plan, out);

    if (options.telemetry != nullptr) {
        options.telemetry->remote_us +=
            static_cast<double>(remoteWallPs_) / 1e6;
        options.telemetry->cache_lookups += batchCacheLookups_;
        options.telemetry->cache_hits += batchCacheHits_;
    }
    degraded_.inc(degraded_batch);
    if (degraded_batch != 0)
        return Status(StatusCode::Degraded,
                      std::to_string(degraded_batch) +
                          " remote reads fell back to shard " +
                          std::to_string(self_));
    return StatusCode::Ok;
}

std::uint64_t
DistributedBackend::fetchAttributes(const sampling::SamplePlan &plan,
                                    const sampling::SampleResult &out)
{
    const graph::Partitioner &part = store_->partitioner();
    const std::uint64_t bytes_per_node = store_->attrs().bytesPerNode();
    sampling::CoalescingSet &dedup = scratch_.dedup;
    dedup.reserveFor(std::min<std::uint64_t>(
        plan.maxNodesPerBatch(), store_->graph().numNodes()));
    dedup.beginBatch();
    for (graph::NodeId n : out.roots)
        dedup.insert(n);
    for (const auto &hop : out.frontier)
        for (graph::NodeId n : hop)
            dedup.insert(n);

    const Tick attrs_wall_start = trace::wallNow();
    beginRounds();
    dedup.forEach([&](graph::NodeId node, std::uint64_t) {
        const graph::ServerId owner = part.serverOf(node);
        if (owner == self_) {
            localReads_.inc();
            return;
        }
        // Read-through: a replicated attribute row spares the round
        // one frame. Attribute responses are positionally matched, so
        // hits simply never stage — unlike structure reads there is
        // no RNG draw whose order must be preserved. The hops already
        // probed nearly every node this batch, so the memo answers
        // almost all of these without touching the tier's lock.
        if (cache_ != nullptr) {
            ++batchCacheLookups_;
            if (memoProbe(node).has_attrs) {
                ++batchCacheHits_;
                attrCached_.inc();
                return;
            }
        }
        remoteReads_.inc();
        const mof::ShardChannel::Slot slot = channels_[owner]->stage(
            node * bytes_per_node,
            static_cast<std::uint32_t>(bytes_per_node));
        if (cache_ != nullptr)
            pending_.push_back(
                PendingFetch{0, node, owner, slot, false});
    });
    flushAndRun();

    std::uint64_t failed = 0;
    for (const auto &ch : channels_)
        if (ch)
            failed += ch->roundFailures();
    // On-miss admission for rows that actually arrived.
    if (cache_ != nullptr) {
        const graph::CsrGraph &g = store_->graph();
        for (const PendingFetch &f : pending_)
            if (!channels_[f.peer]->roundFailed(f.slot))
                cache_->admitAttributes(f.node, g.degree(f.node));
    }
    emitStageTrace("attrs", dedup.size(), failed, attrs_wall_start);
    return failed;
}

} // namespace framework
} // namespace lsdgnn
