#include "session.hh"

#include <algorithm>

#include "framework/distributed.hh"
#include "sampling/workload.hh"

namespace lsdgnn {
namespace framework {

namespace {

/** The shared store, if and only if the config wants one. */
std::shared_ptr<const DistributedStore>
resolveStore(const SessionConfig &config)
{
    if (config.backend != Backend::Distributed)
        return nullptr;
    if (config.distributed.store)
        return config.distributed.store;
    return DistributedStore::create(config);
}

/** The session's graph: aliased from the store, or privately built. */
std::shared_ptr<const graph::CsrGraph>
resolveGraph(const std::shared_ptr<const DistributedStore> &store,
             const graph::DatasetSpec &spec, const SessionConfig &config)
{
    if (store)
        return std::shared_ptr<const graph::CsrGraph>(store,
                                                      &store->graph());
    return std::make_shared<const graph::CsrGraph>(graph::instantiate(
        spec, config.scale_divisor, config.seed));
}

std::shared_ptr<const graph::AttributeStore>
resolveAttrs(const std::shared_ptr<const DistributedStore> &store,
             const graph::DatasetSpec &spec, const SessionConfig &config)
{
    if (store)
        return std::shared_ptr<const graph::AttributeStore>(
            store, &store->attrs());
    return std::make_shared<const graph::AttributeStore>(spec.attr_len,
                                                         config.seed);
}

} // namespace

Session::Session(SessionConfig config)
    : config_(std::move(config)),
      spec(graph::datasetByName(config_.dataset)),
      store_(resolveStore(config_)),
      graph_(resolveGraph(store_, spec, config_)),
      attrs(resolveAttrs(store_, spec, config_)),
      partitioner(graph_->numNodes(), config_.num_servers),
      sampler_(sampling::makeSampler(config_.sampler)),
      engine(*graph_, *attrs, *sampler_, &partitioner),
      negatives(*graph_, 0.35),
      modelRng(config_.seed + 101),
      model(spec.attr_len, config_.hidden_dim, 2, modelRng),
      rng_(config_.seed + 7 + config_.stream_seed_offset)
{
    lsd_assert(config_.num_servers > 0, "session needs servers");
    group.addCounter("batches", &batchCount, "mini-batches sampled");
    group.addAverage("batch_nodes", &batchNodes,
                     "nodes touched per mini-batch (roots + frontier)");
    if (config_.hot_cache_fraction > 0.0) {
        const auto capacity = static_cast<std::size_t>(
            std::max<double>(1.0, config_.hot_cache_fraction *
                static_cast<double>(graph_->numNodes())));
        hotCache.emplace(capacity);
    }
    if (config_.backend == Backend::AxeOffload)
        decoder.emplace(*graph_, *attrs, *sampler_);
    backend_ = makeBackend(BackendDeps{
        config_, *graph_, engine, *sampler_,
        decoder ? &*decoder : nullptr, store_});
}

sampling::SampleResult
Session::sampleBatch(const sampling::SamplePlan &plan)
{
    sampling::SampleResult result;
    const Status status = sampleBatchInto(plan, result);
    lsd_assert(status.hasPayload(), "sampleBatch failed: ",
               status.toString());
    return result;
}

Status
Session::sampleBatchInto(const sampling::SamplePlan &plan,
                         sampling::SampleResult &out,
                         const SampleOptions &options)
{
    lsd_assert(!plan.fanouts.empty(), "plan needs hops");
    batchCount.inc();

    const Status status = backend_->sampleInto(
        plan, options, options.rng != nullptr ? *options.rng : rng_,
        out);

    if (hotCache) {
        for (graph::NodeId n : out.roots)
            hotCache->access(n);
        for (const auto &hop : out.frontier)
            for (graph::NodeId n : hop)
                hotCache->access(n);
    }
    std::uint64_t nodes = out.roots.size();
    for (const auto &hop : out.frontier)
        nodes += hop.size();
    batchNodes.sample(static_cast<double>(nodes));
    return status;
}

std::vector<float>
Session::nodeAttributes(graph::NodeId node) const
{
    return attrs->fetch(node);
}

std::vector<graph::NodeId>
Session::negativeSample(graph::NodeId src, graph::NodeId dst,
                        std::uint32_t rate)
{
    return negatives.sample(src, dst, rate, rng_);
}

gnn::Matrix
Session::embed(const sampling::SampleResult &batch) const
{
    return model.embed(batch, *attrs);
}

const sampling::TrafficStats &
Session::traffic() const
{
    return engine.traffic();
}

double
Session::hotCacheHitRate() const
{
    return hotCache ? hotCache->hitRate() : 0.0;
}

double
Session::estimatedSamplesPerSecond(const sampling::SamplePlan &plan)
{
    const auto profile = sampling::profileWorkload(
        spec, plan, config_.scale_divisor, 2, config_.seed);
    if (config_.backend != Backend::AxeOffload) {
        // Software and Distributed both run on the CPU service model;
        // the distributed fabric costs show up in measured goodput
        // (bench_distributed), not this analytical estimate.
        baseline::CpuSamplerModel cpu;
        baseline::CpuClusterConfig cluster;
        cluster.num_servers = config_.num_servers;
        return cpu.evaluate(profile, cluster).samples_per_s;
    }
    axe::AxeConfig cfg = axe::AxeConfig::poc();
    cfg.num_nodes = config_.num_servers;
    const double hit = hotCache ? hotCache->hitRate() : 0.9;
    return axe::predictEngineRate(cfg, profile, hit).samples_per_s;
}

} // namespace framework
} // namespace lsdgnn
