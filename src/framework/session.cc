#include "session.hh"

#include <algorithm>

#include "sampling/workload.hh"

namespace lsdgnn {
namespace framework {

Session::Session(SessionConfig config)
    : config_(std::move(config)),
      spec(graph::datasetByName(config_.dataset)),
      graph_(graph::instantiate(spec, config_.scale_divisor,
                                config_.seed)),
      attrs(spec.attr_len, config_.seed),
      partitioner(graph_.numNodes(), config_.num_servers),
      sampler_(sampling::makeSampler(config_.sampler)),
      engine(graph_, attrs, *sampler_, &partitioner),
      negatives(graph_, 0.35),
      modelRng(config_.seed + 101),
      model(spec.attr_len, config_.hidden_dim, 2, modelRng),
      rng_(config_.seed + 7)
{
    lsd_assert(config_.num_servers > 0, "session needs servers");
    group.addCounter("batches", &batchCount, "mini-batches sampled");
    group.addAverage("batch_nodes", &batchNodes,
                     "nodes touched per mini-batch (roots + frontier)");
    if (config_.hot_cache_fraction > 0.0) {
        const auto capacity = static_cast<std::size_t>(
            std::max<double>(1.0, config_.hot_cache_fraction *
                static_cast<double>(graph_.numNodes())));
        hotCache.emplace(capacity);
    }
    if (config_.backend == Backend::AxeOffload)
        decoder.emplace(graph_, attrs, *sampler_);
}

sampling::SampleResult
Session::sampleBatch(const sampling::SamplePlan &plan)
{
    sampling::SampleResult result;
    sampleBatchInto(plan, result);
    return result;
}

void
Session::sampleBatchInto(const sampling::SamplePlan &plan,
                         sampling::SampleResult &out)
{
    lsd_assert(!plan.fanouts.empty(), "plan needs hops");
    batchCount.inc();

    if (config_.backend == Backend::AxeOffload) {
        // The Table 4 command path: uniform fan-out, contiguous root
        // window (the host enumerates roots into the command buffer).
        for (std::uint32_t f : plan.fanouts) {
            lsd_assert(f == plan.fanouts[0],
                       "AxE offload requires a uniform fan-out");
        }
        decoder->execute(axe::commands::setCsr(
            axe::CommandDecoder::csr_batch_size, plan.batch_size));
        const std::uint64_t span = graph_.numNodes() - plan.batch_size;
        const std::uint64_t root_base =
            span == 0 ? 0 : rng_.nextBounded(span);
        const auto resp = decoder->execute(axe::commands::sampleNHop(
            static_cast<std::uint8_t>(plan.hops()),
            static_cast<std::uint8_t>(plan.fanouts[0]), root_base));
        lsd_assert(resp.status == 0, "AxE sample command faulted");
        out = decoder->takeLastSample();
    } else {
        // No clearForReuse here: the engine fully defines roots,
        // frontier and parent, and keeping the stale sizes lets its
        // grow-only arenas skip re-initialization.
        engine.sampleBatchInto(plan, rng_, out);
    }

    if (hotCache) {
        for (graph::NodeId n : out.roots)
            hotCache->access(n);
        for (const auto &hop : out.frontier)
            for (graph::NodeId n : hop)
                hotCache->access(n);
    }
    std::uint64_t nodes = out.roots.size();
    for (const auto &hop : out.frontier)
        nodes += hop.size();
    batchNodes.sample(static_cast<double>(nodes));
}

std::vector<float>
Session::nodeAttributes(graph::NodeId node) const
{
    return attrs.fetch(node);
}

std::vector<graph::NodeId>
Session::negativeSample(graph::NodeId src, graph::NodeId dst,
                        std::uint32_t rate)
{
    return negatives.sample(src, dst, rate, rng_);
}

gnn::Matrix
Session::embed(const sampling::SampleResult &batch) const
{
    return model.embed(batch, attrs);
}

const sampling::TrafficStats &
Session::traffic() const
{
    return engine.traffic();
}

double
Session::hotCacheHitRate() const
{
    return hotCache ? hotCache->hitRate() : 0.0;
}

double
Session::estimatedSamplesPerSecond(const sampling::SamplePlan &plan)
{
    const auto profile = sampling::profileWorkload(
        spec, plan, config_.scale_divisor, 2, config_.seed);
    if (config_.backend == Backend::Software) {
        baseline::CpuSamplerModel cpu;
        baseline::CpuClusterConfig cluster;
        cluster.num_servers = config_.num_servers;
        return cpu.evaluate(profile, cluster).samples_per_s;
    }
    axe::AxeConfig cfg = axe::AxeConfig::poc();
    cfg.num_nodes = config_.num_servers;
    const double hit = hotCache ? hotCache->hitRate() : 0.9;
    return axe::predictEngineRate(cfg, profile, hit).samples_per_s;
}

} // namespace framework
} // namespace lsdgnn
