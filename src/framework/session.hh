/**
 * @file
 * AliGraph-style session facade (paper Section 5).
 *
 * The paper integrates the hardware behind the framework so "users
 * can write the same model code" while sampling is transparently
 * offloaded. Session is that integration layer in this repo: one
 * object owns the graph store (scaled dataset instance, partitioning,
 * hot-node cache), exposes the GNN-operator-level API (k-hop
 * sampling, attribute fetch, negative sampling, fixed-model
 * graphSAGE embedding), and executes it on one of three backends
 * behind the SamplingBackend interface — the CPU software path, the
 * AxE offload path (Table 4 commands through the command decoder),
 * or the distributed sharded store over MoF shard channels. The
 * single-store backends produce identical functional results; they
 * differ in the performance model attached, which
 * estimatedSamplesPerSecond() reports.
 */

#ifndef LSDGNN_FRAMEWORK_SESSION_HH
#define LSDGNN_FRAMEWORK_SESSION_HH

#include <memory>
#include <optional>
#include <string>

#include "axe/analytic.hh"
#include "axe/command.hh"
#include "baseline/cpu_sampler.hh"
#include "baseline/hot_cache.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "framework/backend.hh"
#include "gnn/graphsage.hh"
#include "graph/datasets.hh"
#include "graph/partition.hh"
#include "sampling/minibatch.hh"

namespace lsdgnn {
namespace framework {

class DistributedStore;

/** Execution backend for the sampling stage. */
enum class Backend {
    /** CPU software path (the AliGraph baseline). */
    Software,
    /** AxE offload through Table 4 commands. */
    AxeOffload,
    /** Sharded store; remote hops cross MoF shard channels. */
    Distributed,
};

/** Options for the Distributed backend (ignored by the others). */
struct DistributedConfig {
    /** Shard count; 0 defers to SessionConfig::num_servers. */
    std::uint32_t num_shards = 0;
    /** Which shard this session's backend plays. */
    std::uint32_t shard = 0;
    /** Package/ACK loss probability on every shard channel. */
    double loss_probability = 0.0;
    /**
     * Per-round remote-read deadline, microseconds (simulated time).
     * A merged service batch can stage tens of thousands of remote
     * reads per hop, so the default is sized for the round's full
     * response serialization plus several ARQ recoveries — not for a
     * single package round trip.
     */
    double request_timeout_us = 1000.0;
    /**
     * Consecutive ARQ timeouts before a peer is declared down. Each
     * recovery cycle survives an independent package loss, so the
     * false-trip probability at loss p is ~p^retries: 8 keeps a 5%
     * lossy-but-alive fabric from being declared dead (0.05^8) while
     * still detecting a hard-down peer in bounded simulated time.
     */
    std::uint32_t max_retries = 8;
    /** Peers to mark administratively down at construction. */
    std::vector<std::uint32_t> down_shards;
    /**
     * Per-shard hot-vertex cache budget in MiB; 0 disables the tier.
     * When enabled, every shard of the store replicates the
     * highest-degree remote vertices (adjacency + attribute rows) at
     * load time and keeps admitting hotter-than-victim vertices from
     * returned frames (src/cache). Cache hits never enter a shard
     * channel round; the sampled output stays byte-identical with the
     * tier on or off.
     */
    double cache_mb = 0.0;
    /**
     * Continuation-driven async fabric (default). Remote reads stream
     * into per-peer staging buffers as roots discover them, pack
     * across hops/stages, and completions resume only the waiting
     * roots. `false` restores the hop-synchronous round barrier
     * (pass-1/stage-all, flush, pass-2) — same per-root RNG streams,
     * so the sampled output is byte-identical between the two modes.
     */
    bool async_fabric = true;
    /**
     * Staging-buffer age bound, microseconds (simulated): a partially
     * filled per-peer buffer flushes this long after its oldest read
     * arrived. Trades per-read (simulated) latency for pack occupancy;
     * 8 us lets late-hop and attribute reads ride the same frame train
     * without measurably moving the wall-clock batch time.
     */
    double stage_age_us = 8.0;
    /**
     * Hedged reads: when a package outlives this quantile of observed
     * package RTTs (times hedge_multiplier), re-issue it and take the
     * first answer. 0 disables hedging. Only the async fabric hedges.
     */
    double hedge_quantile = 0.95;
    /** Safety margin over the measured hedge quantile. */
    double hedge_multiplier = 2.0;
    /** Minimum hedge delay, microseconds (also pre-RTT-history). */
    double hedge_floor_us = 25.0;
    /**
     * Flight-recorder stall trip: fires when a batch's total
     * in-flight remote reads exceed this bound (0 disables).
     */
    std::uint32_t max_inflight_reads = 1u << 16;
    /**
     * Pre-built shared store. When null the Session builds a private
     * one; the service layer injects a single store so its workers
     * share one graph instance instead of instantiating per thread.
     */
    std::shared_ptr<const DistributedStore> store;
};

/** Session construction options. */
struct SessionConfig {
    /** Table 2 dataset name. */
    std::string dataset = "ls";
    /** Functional scale divisor for the in-memory instance. */
    std::uint64_t scale_divisor = 500'000;
    /** Logical storage servers the store is partitioned over. */
    std::uint32_t num_servers = 5;
    /** Sampling algorithm ("streaming-step", "standard", ...). */
    std::string sampler = "streaming-step";
    /** Sampling backend. */
    Backend backend = Backend::Software;
    /** Hot-node cache capacity as a fraction of nodes (0 = off). */
    double hot_cache_fraction = 0.0;
    /** GNN hidden width for the fixed-model embedding API. */
    std::uint32_t hidden_dim = 128;
    std::uint64_t seed = 1;
    /**
     * Extra offset folded into the *sampling stream* seed only — the
     * graph instance, attribute store and fixed model still derive
     * from `seed` alone. The service's worker pool sets this to the
     * worker id: every worker then serves the identical graph (as one
     * service must) while drawing from a decorrelated stream.
     */
    std::uint64_t stream_seed_offset = 0;
    /** Distributed-backend options. */
    DistributedConfig distributed;
};

/**
 * One LSD-GNN serving/training session.
 *
 * Thread-safety contract: a Session is NOT thread-safe. Sampling and
 * the modeled-throughput query mutate internal state (the RNG stream,
 * traffic accounting, the hot-node cache, stat counters) without any
 * locking, so all calls on one instance must come from a single
 * thread — the service layer (src/service) gives each worker thread
 * its own Session shard for exactly this reason, offsetting the seed
 * per worker to decorrelate streams.
 *
 * The exceptions are the pure const accessors over immutable
 * post-construction state — config(), graph(), dataset(),
 * nodeAttributes() and embed() — which may be called concurrently
 * with each other (but not with the mutating calls). traffic(),
 * hotCacheHitRate() and batchesSampled() are const but read state
 * written by sampleBatch(), so they are only safe once the sampling
 * thread has quiesced.
 */
class Session
{
  public:
    explicit Session(SessionConfig config);

    const SessionConfig &config() const { return config_; }
    const graph::CsrGraph &graph() const { return *graph_; }
    const graph::DatasetSpec &dataset() const { return spec; }

    /** GNN-operator level: sample one mini-batch. */
    sampling::SampleResult sampleBatch(const sampling::SamplePlan &plan);

    /**
     * Hot-path variant: sample into @p out, reusing its capacity.
     * Zero steady-state allocation on the Software backend; the AxE
     * backend moves the decoder read-back into @p out.
     *
     * Returns Ok, or Degraded when the distributed backend answered
     * part of the batch from its local fallback — @p out is a full,
     * usable batch either way (Status::hasPayload()).
     */
    Status sampleBatchInto(const sampling::SamplePlan &plan,
                           sampling::SampleResult &out,
                           const SampleOptions &options = {});

    /** The execution path sampleBatchInto() dispatches through. */
    const SamplingBackend &backend() const { return *backend_; }

    /** Shared sharded store; null unless Backend::Distributed. */
    const std::shared_ptr<const DistributedStore> &
    distributedStore() const
    {
        return store_;
    }

    /** GNN-operator level: fetch one node's attribute vector. */
    std::vector<float> nodeAttributes(graph::NodeId node) const;

    /**
     * The session's attribute store (immutable, thread-safe). The
     * service's gather stage reads rows through this from its own
     * pipeline thread.
     */
    const graph::AttributeStore &attributeStore() const
    {
        return *attrs;
    }

    /** Node-placement map (immutable after construction). */
    const graph::Partitioner &nodePartitioner() const
    {
        return partitioner;
    }

    /** GNN-operator level: negatives for a positive pair. */
    std::vector<graph::NodeId> negativeSample(graph::NodeId src,
                                              graph::NodeId dst,
                                              std::uint32_t rate);

    /** Fixed-model API: graphSAGE-max embeddings for a batch. */
    gnn::Matrix embed(const sampling::SampleResult &batch) const;

    /** Accumulated traffic accounting of the software path. */
    const sampling::TrafficStats &traffic() const;

    /**
     * Modeled sampling throughput of the configured backend on this
     * session's workload (samples/second): the CPU service model for
     * Software, the AxE analytical model (PoC configuration) for
     * AxeOffload.
     */
    double estimatedSamplesPerSecond(const sampling::SamplePlan &plan);

    /** Hot-cache hit rate so far (0 when the cache is off). */
    double hotCacheHitRate() const;

    /** Attribute-coalescing hit rate of the software engine. */
    double coalesceHitRate() const { return engine.coalesceHitRate(); }

    /** Batches sampled so far. */
    std::uint64_t batchesSampled() const { return batchCount.value(); }

    /** Session-level statistics ("framework.session.*"). */
    const stats::StatGroup &stats() const { return group; }

  private:
    SessionConfig config_;
    const graph::DatasetSpec &spec;
    /** Non-null iff the Distributed backend is selected. */
    std::shared_ptr<const DistributedStore> store_;
    /** Aliases store_'s graph when distributed, else privately owned. */
    std::shared_ptr<const graph::CsrGraph> graph_;
    std::shared_ptr<const graph::AttributeStore> attrs;
    graph::Partitioner partitioner;
    std::unique_ptr<sampling::NeighborSampler> sampler_;
    sampling::MiniBatchSampler engine;
    sampling::NegativeSampler negatives;
    std::optional<baseline::HotNodeCache> hotCache;
    std::optional<axe::CommandDecoder> decoder;
    Rng modelRng; ///< consumed while building the fixed model
    gnn::GraphSageModel model; ///< fixed 2-layer graphSAGE-max API
    Rng rng_;
    stats::StatGroup group{"framework.session"};
    stats::Counter batchCount;
    stats::Average batchNodes;
    /** Declared last: may borrow any of the members above. */
    std::unique_ptr<SamplingBackend> backend_;
};

} // namespace framework
} // namespace lsdgnn

#endif // LSDGNN_FRAMEWORK_SESSION_HH
