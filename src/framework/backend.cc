#include "backend.hh"

#include "axe/command.hh"
#include "framework/distributed.hh"
#include "framework/session.hh"

namespace lsdgnn {
namespace framework {

namespace {

/** The CPU engine path (AliGraph baseline). */
class SoftwareBackend final : public SamplingBackend
{
  public:
    explicit SoftwareBackend(sampling::MiniBatchSampler &engine)
        : engine_(engine)
    {
    }

    Status
    sampleInto(const sampling::SamplePlan &plan, const SampleOptions &,
               Rng &rng, sampling::SampleResult &out) override
    {
        // No clearForReuse here: the engine fully defines roots,
        // frontier and parent, and keeping the stale sizes lets its
        // grow-only arenas skip re-initialization.
        engine_.sampleBatchInto(plan, rng, out);
        return StatusCode::Ok;
    }

    std::string_view name() const override { return "software"; }

  private:
    sampling::MiniBatchSampler &engine_;
};

/** The Table 4 command path through the AxE decoder. */
class AxeBackend final : public SamplingBackend
{
  public:
    AxeBackend(axe::CommandDecoder &decoder,
               const graph::CsrGraph &graph)
        : decoder_(decoder), graph_(graph)
    {
    }

    Status
    sampleInto(const sampling::SamplePlan &plan, const SampleOptions &,
               Rng &rng, sampling::SampleResult &out) override
    {
        // Uniform fan-out, contiguous root window (the host
        // enumerates roots into the command buffer).
        for (std::uint32_t f : plan.fanouts) {
            lsd_assert(f == plan.fanouts[0],
                       "AxE offload requires a uniform fan-out");
        }
        decoder_.execute(axe::commands::setCsr(
            axe::CommandDecoder::csr_batch_size, plan.batch_size));
        const std::uint64_t span = graph_.numNodes() - plan.batch_size;
        const std::uint64_t root_base =
            span == 0 ? 0 : rng.nextBounded(span);
        const auto resp = decoder_.execute(axe::commands::sampleNHop(
            static_cast<std::uint8_t>(plan.hops()),
            static_cast<std::uint8_t>(plan.fanouts[0]), root_base));
        lsd_assert(resp.status == 0, "AxE sample command faulted");
        out = decoder_.takeLastSample();
        return StatusCode::Ok;
    }

    std::string_view name() const override { return "axe"; }

  private:
    axe::CommandDecoder &decoder_;
    const graph::CsrGraph &graph_;
};

} // namespace

std::unique_ptr<SamplingBackend>
makeBackend(const BackendDeps &deps)
{
    switch (deps.config.backend) {
      case Backend::Software:
        return std::make_unique<SoftwareBackend>(deps.engine);
      case Backend::AxeOffload:
        lsd_assert(deps.decoder != nullptr,
                   "AxeOffload backend needs a decoder");
        return std::make_unique<AxeBackend>(*deps.decoder, deps.graph);
      case Backend::Distributed:
        lsd_assert(deps.store != nullptr,
                   "Distributed backend needs a store");
        return std::make_unique<DistributedBackend>(
            deps.config, deps.store, deps.sampler);
    }
    lsd_panic("unknown sampling backend");
}

} // namespace framework
} // namespace lsdgnn
