/**
 * @file
 * Distributed sharded sampling backend over the MoF fabric.
 *
 * The paper's deployment splits the graph store over many FPGA cards;
 * a sampling hop touching a node owned by another card crosses the
 * Memory-over-Fabric network as a packed multi-read request. This
 * module models that split:
 *
 *  - DistributedStore: the full graph instance plus one GraphShard
 *    per storage server, built once and shared read-only by every
 *    worker (each worker's Session aliases the store's graph and
 *    attributes instead of instantiating its own copy).
 *
 *  - DistributedBackend: one shard's sampling engine, now
 *    continuation-driven. Every root of a batch is an independent
 *    little state machine (RootState) with its own RNG stream: it
 *    expands hop by hop, sampling locally-owned frontier nodes inline
 *    and submitting remote ones into per-peer ShardChannels, then
 *    *parks* until the channel completions for exactly its reads
 *    arrive. Reads stream into the channels' staging buffers as they
 *    are discovered — across roots, across hops, and across the
 *    structure/attribute stages — so frames pack far fuller than the
 *    old one-flush-per-hop protocol, and a fast root races ahead
 *    through its hops while a slow one still awaits the wire. There
 *    is no hop barrier any more; one event-queue drain runs the whole
 *    batch. (DistributedConfig::async_fabric = false restores the
 *    lockstep round protocol for A/B benchmarking — same per-root
 *    RNG streams, so the sampled output is byte-identical.)
 *
 *  - Degradation: a read that missed its per-package deadline or hit
 *    a down peer is answered by negative-resampling from the local
 *    shard and the batch Status comes back Degraded instead of
 *    failing.
 *
 *  - Hot-vertex cache tier (src/cache, DistributedConfig::cache_mb):
 *    each shard consults its replicated hot set before submitting any
 *    remote read. A hit is answered from local memory and never
 *    enters a shard channel; it still occupies its slot in the root's
 *    pending order, so the sampled output is byte-identical with the
 *    tier on or off.
 *
 * Determinism: roots are drawn with the caller's Rng (unchanged
 * sequence), then one extra draw forms a batch nonce from which every
 * root derives a private RNG stream. Each root consumes its own
 * stream in root-local discovery order, so the sampled *content* is
 * independent of completion scheduling; the output arrays are
 * assembled root-major from per-root blocks, making the *layout*
 * schedule-independent too. For a fixed config and seed the whole
 * schedule — sampling RNG, packing, simulated losses, retries,
 * hedges — replays exactly, because every random stream is seeded
 * from the config and the event-driven fabric is single-threaded per
 * backend.
 */

#ifndef LSDGNN_FRAMEWORK_DISTRIBUTED_HH
#define LSDGNN_FRAMEWORK_DISTRIBUTED_HH

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "cache/hot_vertex_cache.hh"
#include "framework/backend.hh"
#include "framework/session.hh"
#include "graph/partition.hh"
#include "mof/shard_channel.hh"
#include "sampling/scratch.hh"
#include "sim/event_queue.hh"

namespace lsdgnn {
namespace framework {

/**
 * The sharded graph store: one instance of the scaled dataset plus
 * its per-server CSR slices. Immutable after construction; share one
 * across every worker of a service (std::shared_ptr<const ...>).
 */
class DistributedStore
{
  public:
    /** Build from the session config (dataset, scale, shard count). */
    explicit DistributedStore(const SessionConfig &config);

    static std::shared_ptr<const DistributedStore>
    create(const SessionConfig &config);

    const graph::CsrGraph &graph() const { return graph_; }
    const graph::AttributeStore &attrs() const { return attrs_; }
    const graph::Partitioner &partitioner() const { return part_; }

    std::uint32_t
    numShards() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    const graph::GraphShard &
    shard(std::uint32_t k) const
    {
        lsd_assert(k < shards_.size(), "shard id out of range");
        return shards_[k];
    }

    /**
     * Shard @p k's hot-vertex cache tier, or nullptr when the tier is
     * disabled (DistributedConfig::cache_mb == 0). The cache is
     * internally thread-safe and mutable through the const store —
     * replicas are derived state, not graph data.
     */
    cache::HotVertexCache *
    cache(std::uint32_t k) const
    {
        lsd_assert(k < shards_.size(), "shard id out of range");
        return caches_.empty() ? nullptr : caches_[k].get();
    }

  private:
    /** Build + top-K-degree-warm the per-shard caches (cache_mb > 0). */
    void buildCaches(const SessionConfig &config);

    graph::CsrGraph graph_;
    graph::AttributeStore attrs_;
    graph::Partitioner part_;
    std::vector<graph::GraphShard> shards_;
    /** One tier per shard; empty when the tier is disabled. */
    std::vector<std::unique_ptr<cache::HotVertexCache>> caches_;
};

/**
 * One shard's sampling path against a shared DistributedStore.
 * Single-threaded; owns its EventQueue and per-peer ShardChannels.
 */
class DistributedBackend : public SamplingBackend
{
  public:
    DistributedBackend(const SessionConfig &config,
                       std::shared_ptr<const DistributedStore> store,
                       const sampling::NeighborSampler &sampler);
    ~DistributedBackend() override;

    Status sampleInto(const sampling::SamplePlan &plan,
                      const SampleOptions &options, Rng &rng,
                      sampling::SampleResult &out) override;

    std::string_view name() const override { return "distributed"; }

    std::uint32_t shard() const { return self_; }
    std::uint32_t numShards() const { return store_->numShards(); }

    /** Channel toward @p peer; nullptr for the home shard. */
    const mof::ShardChannel *
    channel(std::uint32_t peer) const
    {
        lsd_assert(peer < channels_.size(), "peer out of range");
        return channels_[peer].get();
    }

    /** Reads answered from the local shard. */
    std::uint64_t localReads() const { return localReads_.value(); }
    /** Reads that crossed the fabric (submitted onto a channel). */
    std::uint64_t remoteReads() const { return remoteReads_.value(); }
    /** Remote structure reads answered by the hot-vertex cache. */
    std::uint64_t cachedReads() const { return cached_.value(); }
    /** Remote attribute reads answered by the hot-vertex cache. */
    std::uint64_t attrCachedReads() const { return attrCached_.value(); }
    /** Remote reads served by another subscriber's submitted read. */
    std::uint64_t coalescedReads() const { return coalesced_.value(); }
    /** Remote reads answered by the degradation fallback. */
    std::uint64_t degradedReads() const { return degraded_.value(); }
    /** Flight-recorder trips on the in-flight read bound. */
    std::uint64_t stallTrips() const { return stallTrips_.value(); }
    /** Hedge re-issues across all channels, lifetime. */
    std::uint64_t
    hedges() const
    {
        std::uint64_t total = 0;
        for (const auto &ch : channels_)
            if (ch)
                total += ch->hedges();
        return total;
    }

    /**
     * Fraction of reads that actually crossed the fabric, over the
     * lifetime. Cache hits count toward the denominator but not the
     * numerator — the tier's whole point is pulling this below the
     * hash-partitioned (S-1)/S.
     */
    double
    remoteFraction() const
    {
        const double total = static_cast<double>(
            localReads_.value() + remoteReads_.value() +
            cached_.value() + attrCached_.value());
        return total == 0.0
                   ? 0.0
                   : static_cast<double>(remoteReads_.value()) / total;
    }

    /** The shard's cache tier; nullptr when disabled. */
    const cache::HotVertexCache *vertexCache() const { return cache_; }

  private:
    /**
     * One remote read a root is waiting to draw from. Either it was
     * submitted onto a channel (cached == false, slot is the channel
     * slot) or the hot-vertex cache answered it (cached == true, slot
     * indexes batchCachedRefs_). Cache hits keep their position in
     * the root's pending list so the root draws its RNG in exactly
     * discovery order — the sampled output is byte-identical with the
     * cache tier on or off.
     */
    struct PendingDraw {
        std::uint32_t parent; ///< local index into root's prev block
        graph::NodeId node;
        std::uint32_t peer;
        mof::ShardChannel::Slot slot;
        bool cached = false;
    };

    /** Continuation phases of one root's expansion. */
    enum class Phase : std::uint8_t {
        Expand,  ///< submit the current hop's reads
        Resolve, ///< pending settled; draw and advance the hop
        Attrs,   ///< structure done; submit attribute reads
        Finish,  ///< attribute reads settled; retire the root
    };

    /**
     * One root's continuation: private RNG stream, the current hop's
     * pending draws, and the count of unsettled channel slots the
     * root is parked on. The root owns no sample storage — it writes
     * straight into the caller's result arrays at a fixed worst-case
     * stride per hop (see assemble()), so completing out of order
     * never moves anybody else's bytes. Pooled across batches.
     */
    struct RootState {
        Rng rng{0};
        graph::NodeId root = 0;
        std::uint32_t hop = 0;
        std::uint32_t outstanding = 0;
        Phase phase = Phase::Expand;
        bool done = false;
        std::vector<PendingDraw> pending;
        std::vector<std::uint32_t> counts; ///< [hop] samples written
    };

    /** One batch-memoized tier probe (see batchCacheMemo_). */
    struct CachedVertex {
        cache::HotVertexCache::AdjacencyRef adjacency;
        bool has_attrs = false;
        bool admit_tried = false; ///< one admission offer per batch
    };

    /**
     * Epoch-stamped open-addressing node -> channel-slot map, the
     * structure-read twin of sampling::CoalescingSet. Now scoped to
     * the whole batch instead of one hop: any root, at any hop (and
     * the attribute stage through its own instance), that re-visits a
     * node some earlier read already covered shares that read's slot
     * — cross-root, cross-hop coalescing. Epoch stamping makes
     * begin() O(1) in steady state — no clearing.
     */
    class BatchDedup
    {
      public:
        /** Start a batch expecting at most @p expected inserts. */
        void begin(std::size_t expected);
        /**
         * One-probe find-or-claim: if @p key was seen this batch,
         * @p found is true and the returned pointer is its recorded
         * slot. Otherwise the key is claimed in place and the caller
         * must write the slot through the returned pointer (the hot
         * paths learn the slot only after submitting the read).
         */
        mof::ShardChannel::Slot *acquire(graph::NodeId key,
                                         bool &found);

      private:
        // 16-byte entries: the table covers every node instance a
        // batch touches (tens of thousands), so halving the footprint
        // versus a 64-bit stamp measurably cuts probe misses.
        struct Entry {
            graph::NodeId key = 0;
            mof::ShardChannel::Slot slot = 0;
            std::uint32_t epoch = 0;
        };
        std::size_t probe(graph::NodeId key) const;

        std::vector<Entry> table_;
        std::uint32_t epoch_ = 0;
        std::size_t mask_ = 0;
    };

    /** Per-peer slot-indexed bookkeeping for the current batch. */
    struct PeerBook {
        /** Roots parked on each slot (cleared as slots settle). */
        std::vector<std::vector<std::uint32_t>> waiters;
        /** True for attribute slots (failure accounting + admit). */
        std::vector<std::uint8_t> is_attr;
        /** Node behind each attribute slot (admission on arrival). */
        std::vector<graph::NodeId> node;
    };

    /** Continuation engine: run @p root until it parks or finishes. */
    void advanceRoot(std::uint32_t root);
    /** Drain the runnable worklist (trampoline; no re-entry). */
    void pump();
    /** Phase::Expand — inline local draws, submit remote reads. */
    void expandSubmit(std::uint32_t root);
    /** Phase::Resolve — draw the pending list in discovery order. */
    void expandResolve(std::uint32_t root);
    /** Phase::Attrs — submit this root's unseen attribute reads. */
    void submitAttrs(std::uint32_t root);
    /** Channel completion: wake roots parked on [first, first+n). */
    void onSlotsSettled(std::uint32_t peer, mof::ShardChannel &ch,
                        mof::ShardChannel::Slot first,
                        std::uint32_t count);
    /** Park @p root on @p slot of @p peer (slot must be unsettled). */
    void subscribe(std::uint32_t peer, mof::ShardChannel::Slot slot,
                   std::uint32_t root);
    /** Track the in-flight gauge/peak; trip the stall bound once. */
    void noteInFlight();
    /** Lockstep round-barrier driver (async_fabric = false). */
    void sampleBarrier();

    /** Emit one wall-clock stage slice for the span just run. */
    void emitStageTrace(const char *stage, std::size_t frontier,
                        std::uint64_t degraded, Tick wall_start);

    /** Compact the strided per-root segments of @p out in place. */
    void assemble(const sampling::SamplePlan &plan,
                  sampling::SampleResult &out);

    std::shared_ptr<const DistributedStore> store_;
    const sampling::NeighborSampler &sampler_;
    std::uint32_t self_;
    cache::HotVertexCache *cache_; ///< store's tier; null = disabled
    bool asyncFabric_;
    std::uint32_t maxInflightBound_;
    sim::EventQueue eq_;
    std::vector<std::unique_ptr<mof::ShardChannel>> channels_;
    std::vector<PeerBook> books_;

    std::vector<RootState> roots_;   ///< pooled continuations
    std::deque<std::uint32_t> runnable_;
    bool pumping_ = false;
    std::uint32_t liveRoots_ = 0;
    std::uint32_t batchRoots_ = 0;   ///< roots in the current batch
    const sampling::SamplePlan *plan_ = nullptr; ///< current batch
    sampling::SampleResult *batchOut_ = nullptr; ///< current batch
    /** Worst-case samples per root per hop: prod(fanouts[0..h]). */
    std::vector<std::uint32_t> hopStride_;
    std::vector<std::uint32_t> assemblePrev_; ///< assembly scratch
    std::vector<std::uint32_t> assembleCur_;  ///< assembly scratch
    BatchDedup structDedup_;
    BatchDedup attrDedup_;
    std::uint64_t degradedBatch_ = 0;
    std::uint64_t attrFailedBatch_ = 0;
    std::uint64_t inflightPeak_ = 0;
    bool stallTripped_ = false;

    /**
     * Batch-scoped memo of tier probes (node -> batchCachedRefs_
     * index). A batch revisits the same hot nodes thousands of times
     * across its hops and attribute stage; the tier is probed ONCE
     * per unique node per batch and every further read resolves
     * through this direct-mapped, epoch-stamped array — one L1 load,
     * no lock — so the mutexed cache is never on the per-read path.
     * Residency is sampled at first touch: a replica evicted
     * mid-batch is still served from the memoized ref (the slice is
     * an immutable snapshot, byte-identical to the owner's), and a
     * mid-batch admission is first visible to the next batch. The
     * arrays cost 8 bytes per graph node and are only allocated when
     * the tier is enabled.
     */
    std::vector<std::uint32_t> memoIndex_; ///< node -> refs index
    std::vector<std::uint32_t> memoEpoch_; ///< node -> batch stamp
    std::uint32_t memoCurrentEpoch_ = 0;
    std::vector<CachedVertex> batchCachedRefs_;

    /** Memoized probe of @p node, probing the tier on first touch. */
    CachedVertex &memoProbe(graph::NodeId node);
    sampling::SampleScratch scratch_;

    trace::TraceContext trace_;    ///< batch context (current call)
    trace::TraceContext batchCtx_; ///< child span of this batch
    Tick remoteWallPs_ = 0;     ///< wall ps in the event-queue drain
    std::uint64_t batchCacheLookups_ = 0; ///< this call's tier lookups
    std::uint64_t batchCacheHits_ = 0;    ///< this call's tier hits

    /**
     * Flight-recorder gauges ("mof.shard<k>.inflight_reads" /
     * ".staging_age_us"): dumps sample these from arbitrary threads
     * while the worker is mid-batch, so the backend mirrors the
     * values into atomics at submit/settle points instead of letting
     * the gauge walk live channel state.
     */
    std::atomic<std::uint32_t> gaugeInflight_{0};
    std::atomic<std::uint64_t> gaugeStageAgePs_{0};
    std::uint64_t inflightGaugeHandle_ = 0;
    std::uint64_t stageAgeGaugeHandle_ = 0;

    stats::StatGroup group_;
    stats::Counter localReads_;
    stats::Counter remoteReads_;
    stats::Counter cached_;
    stats::Counter attrCached_;
    stats::Counter coalesced_;
    stats::Counter degraded_;
    stats::Counter batches_;
    stats::Counter stallTrips_;
};

} // namespace framework
} // namespace lsdgnn

#endif // LSDGNN_FRAMEWORK_DISTRIBUTED_HH
