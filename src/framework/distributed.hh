/**
 * @file
 * Distributed sharded sampling backend over the MoF fabric.
 *
 * The paper's deployment splits the graph store over many FPGA cards;
 * a sampling hop touching a node owned by another card crosses the
 * Memory-over-Fabric network as a packed multi-read request. This
 * module models that split:
 *
 *  - DistributedStore: the full graph instance plus one GraphShard
 *    per storage server, built once and shared read-only by every
 *    worker (each worker's Session aliases the store's graph and
 *    attributes instead of instantiating its own copy).
 *
 *  - DistributedBackend: one shard's sampling engine. Each hop runs
 *    two passes — pass 1 samples locally-owned frontier nodes inline
 *    and stages the remote ones into per-peer ShardChannels (MoF
 *    packages, up to 64 reads each, BDI-compressed addresses); the
 *    channels flush, the shared EventQueue drains, and pass 2 answers
 *    the remote reads in staged order. A read that missed its
 *    deadline or hit a down peer degrades gracefully: the fan-out is
 *    answered by negative-resampling from the local shard and the
 *    batch Status comes back Degraded instead of failing.
 *
 *  - Hot-vertex cache tier (src/cache, DistributedConfig::cache_mb):
 *    each shard consults its replicated hot set before staging any
 *    remote read. A hit is answered from local memory and never
 *    enters a shard-channel round — fewer frames, fewer rounds, a
 *    remote fraction well below the hash-partitioned (S-1)/S. The
 *    tier is warmed with the top-degree vertices at store build and
 *    refilled on miss from returned frames; cache hits keep their
 *    pass-2 position, so the sampled RNG sequence (and therefore the
 *    output) is byte-identical with the tier on or off.
 *
 * Determinism: for a fixed config and seed the whole schedule —
 * sampling RNG, packing, simulated losses, retries — replays exactly,
 * because every random stream is seeded from the config and the
 * event-driven fabric is single-threaded per backend.
 */

#ifndef LSDGNN_FRAMEWORK_DISTRIBUTED_HH
#define LSDGNN_FRAMEWORK_DISTRIBUTED_HH

#include <memory>
#include <vector>

#include "cache/hot_vertex_cache.hh"
#include "framework/backend.hh"
#include "framework/session.hh"
#include "graph/partition.hh"
#include "mof/shard_channel.hh"
#include "sampling/scratch.hh"
#include "sim/event_queue.hh"

namespace lsdgnn {
namespace framework {

/**
 * The sharded graph store: one instance of the scaled dataset plus
 * its per-server CSR slices. Immutable after construction; share one
 * across every worker of a service (std::shared_ptr<const ...>).
 */
class DistributedStore
{
  public:
    /** Build from the session config (dataset, scale, shard count). */
    explicit DistributedStore(const SessionConfig &config);

    static std::shared_ptr<const DistributedStore>
    create(const SessionConfig &config);

    const graph::CsrGraph &graph() const { return graph_; }
    const graph::AttributeStore &attrs() const { return attrs_; }
    const graph::Partitioner &partitioner() const { return part_; }

    std::uint32_t
    numShards() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    const graph::GraphShard &
    shard(std::uint32_t k) const
    {
        lsd_assert(k < shards_.size(), "shard id out of range");
        return shards_[k];
    }

    /**
     * Shard @p k's hot-vertex cache tier, or nullptr when the tier is
     * disabled (DistributedConfig::cache_mb == 0). The cache is
     * internally thread-safe and mutable through the const store —
     * replicas are derived state, not graph data.
     */
    cache::HotVertexCache *
    cache(std::uint32_t k) const
    {
        lsd_assert(k < shards_.size(), "shard id out of range");
        return caches_.empty() ? nullptr : caches_[k].get();
    }

  private:
    /** Build + top-K-degree-warm the per-shard caches (cache_mb > 0). */
    void buildCaches(const SessionConfig &config);

    graph::CsrGraph graph_;
    graph::AttributeStore attrs_;
    graph::Partitioner part_;
    std::vector<graph::GraphShard> shards_;
    /** One tier per shard; empty when the tier is disabled. */
    std::vector<std::unique_ptr<cache::HotVertexCache>> caches_;
};

/**
 * One shard's sampling path against a shared DistributedStore.
 * Single-threaded; owns its EventQueue and per-peer ShardChannels.
 */
class DistributedBackend : public SamplingBackend
{
  public:
    DistributedBackend(const SessionConfig &config,
                       std::shared_ptr<const DistributedStore> store,
                       const sampling::NeighborSampler &sampler);

    Status sampleInto(const sampling::SamplePlan &plan,
                      const SampleOptions &options, Rng &rng,
                      sampling::SampleResult &out) override;

    std::string_view name() const override { return "distributed"; }

    std::uint32_t shard() const { return self_; }
    std::uint32_t numShards() const { return store_->numShards(); }

    /** Channel toward @p peer; nullptr for the home shard. */
    const mof::ShardChannel *
    channel(std::uint32_t peer) const
    {
        lsd_assert(peer < channels_.size(), "peer out of range");
        return channels_[peer].get();
    }

    /** Reads answered from the local shard. */
    std::uint64_t localReads() const { return localReads_.value(); }
    /** Reads that crossed the fabric (staged onto a channel round). */
    std::uint64_t remoteReads() const { return remoteReads_.value(); }
    /** Remote structure reads answered by the hot-vertex cache. */
    std::uint64_t cachedReads() const { return cached_.value(); }
    /** Remote attribute reads answered by the hot-vertex cache. */
    std::uint64_t attrCachedReads() const { return attrCached_.value(); }
    /** Remote reads served by another parent's staged read. */
    std::uint64_t coalescedReads() const { return coalesced_.value(); }
    /** Remote reads answered by the degradation fallback. */
    std::uint64_t degradedReads() const { return degraded_.value(); }

    /**
     * Fraction of reads that actually crossed the fabric, over the
     * lifetime. Cache hits count toward the denominator but not the
     * numerator — the tier's whole point is pulling this below the
     * hash-partitioned (S-1)/S.
     */
    double
    remoteFraction() const
    {
        const double total = static_cast<double>(
            localReads_.value() + remoteReads_.value() +
            cached_.value() + attrCached_.value());
        return total == 0.0
                   ? 0.0
                   : static_cast<double>(remoteReads_.value()) / total;
    }

    /** The shard's cache tier; nullptr when disabled. */
    const cache::HotVertexCache *vertexCache() const { return cache_; }

  private:
    /**
     * One remote read awaiting pass 2. Either it was staged onto a
     * channel round (cached == false, slot is the channel slot) or
     * the hot-vertex cache answered it (cached == true, slot indexes
     * batchCachedRefs_). Cache hits keep their position in this
     * vector so pass 2 consumes the sampling RNG in exactly the
     * staged order — the sampled output is byte-identical with the
     * cache tier on or off.
     */
    struct PendingFetch {
        std::uint32_t parent; ///< index into the previous frontier
        graph::NodeId node;
        std::uint32_t peer;
        mof::ShardChannel::Slot slot;
        bool cached = false;
    };

    /** One batch-memoized tier probe (see batchCacheMemo_). */
    struct CachedVertex {
        cache::HotVertexCache::AdjacencyRef adjacency;
        bool has_attrs = false;
        bool admit_tried = false; ///< one admission offer per batch
    };

    /**
     * Epoch-stamped open-addressing node -> channel-slot map, the
     * structure-read twin of sampling::CoalescingSet: a frontier
     * re-visits the same remote node many times per hop (the scaled
     * graphs are small relative to batch * fanout), and one staged
     * read serves every parent that wants that adjacency list. Epoch
     * stamping makes begin() O(1) in steady state — no clearing.
     */
    class RoundDedup
    {
      public:
        /** Start a round expecting at most @p expected inserts. */
        void begin(std::size_t expected);
        /** Slot previously inserted for @p key this round, or null. */
        const mof::ShardChannel::Slot *find(graph::NodeId key) const;
        /** Record @p slot for @p key (key must be absent). */
        void insert(graph::NodeId key, mof::ShardChannel::Slot slot);

      private:
        struct Entry {
            graph::NodeId key = 0;
            mof::ShardChannel::Slot slot = 0;
            std::uint64_t epoch = 0;
        };
        std::size_t probe(graph::NodeId key) const;

        std::vector<Entry> table_;
        std::uint64_t epoch_ = 0;
        std::size_t mask_ = 0;
    };

    void beginRounds();
    void flushAndRun();

    /** Emit one wall-clock hop/stage slice for the round just run. */
    void emitStageTrace(const char *stage, std::size_t frontier,
                        std::uint64_t degraded, Tick wall_start);

    /** Attribute fetch round; returns degraded read count. */
    std::uint64_t fetchAttributes(const sampling::SamplePlan &plan,
                                  const sampling::SampleResult &out);

    std::shared_ptr<const DistributedStore> store_;
    const sampling::NeighborSampler &sampler_;
    std::uint32_t self_;
    cache::HotVertexCache *cache_; ///< store's tier; null = disabled
    sim::EventQueue eq_;
    std::vector<std::unique_ptr<mof::ShardChannel>> channels_;
    std::vector<PendingFetch> pending_;
    RoundDedup roundDedup_;
    /**
     * Batch-scoped memo of tier probes (node -> batchCachedRefs_
     * index). A batch revisits the same hot nodes thousands of times
     * across its hops and attribute round; the tier is probed ONCE
     * per unique node per batch and every further read resolves
     * through this direct-mapped, epoch-stamped array — one L1 load,
     * no lock — so the mutexed cache is never on the per-read path.
     * Residency is sampled at first touch: a replica evicted
     * mid-batch is still served from the memoized ref (the slice is
     * an immutable snapshot, byte-identical to the owner's), and a
     * mid-batch admission is first visible to the next batch. The
     * arrays cost 8 bytes per graph node and are only allocated when
     * the tier is enabled.
     */
    std::vector<std::uint32_t> memoIndex_; ///< node -> refs index
    std::vector<std::uint32_t> memoEpoch_; ///< node -> batch stamp
    std::uint32_t memoCurrentEpoch_ = 0;
    std::vector<CachedVertex> batchCachedRefs_;

    /** Memoized probe of @p node, probing the tier on first touch. */
    CachedVertex &memoProbe(graph::NodeId node);
    sampling::SampleScratch scratch_;

    trace::TraceContext trace_;  ///< batch context (current call)
    trace::TraceContext hopCtx_; ///< child span of the round in flight
    Tick remoteWallPs_ = 0;      ///< wall ps spent in flushAndRun
    std::uint64_t batchCacheLookups_ = 0; ///< this call's tier lookups
    std::uint64_t batchCacheHits_ = 0;    ///< this call's tier hits

    stats::StatGroup group_;
    stats::Counter localReads_;
    stats::Counter remoteReads_;
    stats::Counter cached_;
    stats::Counter attrCached_;
    stats::Counter coalesced_;
    stats::Counter degraded_;
    stats::Counter batches_;
};

} // namespace framework
} // namespace lsdgnn

#endif // LSDGNN_FRAMEWORK_DISTRIBUTED_HH
