/**
 * @file
 * Attribute-row gather: the middle stage of the end-to-end pipeline.
 *
 * The paper's Fig. 3 pipeline is sample -> gather -> NN compute; this
 * stage materializes the dense per-level feature matrices the GNN
 * forward pass consumes from the sampled subgraph. It reuses the two
 * storage tiers the sampling substrate already has:
 *
 *  - the AttributeStore itself (procedural, thread-safe) supplies the
 *    functional row contents,
 *  - the shard's HotVertexCache tier (when the distributed backend is
 *    configured with one) is probed read-through for every
 *    remote-owned row, so the gather's fabric accounting matches what
 *    a real disaggregated store would transfer: rows resident in the
 *    local replica never cross the fabric.
 *
 * The gatherer is stateless per call and safe to invoke from a
 * pipeline stage thread: AttributeStore::fetch is const and the cache
 * tier is internally thread-safe. Telemetry reports the modeled
 * fabric time of the residual remote bytes (bytes / gather_gbps +
 * RTT), which the worker pool can use to pace the stage like a real
 * DMA wait — the repo's event-simulated fabric is wall-clock cheap,
 * so without pacing the gather stage would be pure CPU.
 */

#ifndef LSDGNN_FRAMEWORK_GATHER_HH
#define LSDGNN_FRAMEWORK_GATHER_HH

#include <cstdint>
#include <vector>

#include "cache/hot_vertex_cache.hh"
#include "gnn/tensor.hh"
#include "graph/attributes.hh"
#include "graph/partition.hh"
#include "sampling/minibatch.hh"

namespace lsdgnn {
namespace framework {

/** What one gather() call touched and what it would have moved. */
struct GatherTelemetry {
    /** Attribute rows materialized (roots + every frontier entry). */
    std::uint64_t rows = 0;
    /** Bytes of those rows (rows * AttributeStore::bytesPerNode). */
    std::uint64_t bytes = 0;
    /** Rows owned by a server other than the gatherer's home. */
    std::uint64_t remote_rows = 0;
    /** Remote rows answered by the hot-vertex cache tier. */
    std::uint64_t cache_hits = 0;
    /**
     * Modeled fabric transfer time of the residual remote rows
     * (post-cache), zero when the gatherer has no bandwidth model.
     */
    double modeled_fabric_us = 0.0;
};

/**
 * Per-level dense feature matrices of one sampled batch:
 * levels[0] = root rows, levels[h + 1] = frontier[h] rows. Row i of a
 * level is the attribute vector of that level's i-th node, so the
 * SampleResult's parent indices address rows directly.
 */
struct GatheredFeatures {
    std::vector<gnn::Matrix> levels;
};

/** Fabric model of the gather stage (0 = no modeled time). */
struct GatherFabricModel {
    /** Modeled gather bandwidth, GB/s; 0 disables the model. */
    double gbps = 0.0;
    /** Fixed per-batch fabric latency, microseconds. */
    double rtt_us = 0.0;
};

/** Gathers attribute rows for sampled batches. */
class AttributeGatherer
{
  public:
    /** Legacy nested-name spelling. */
    using FabricModel = GatherFabricModel;

    /**
     * @param attrs Functional row source.
     * @param partitioner Row-ownership map; null = everything local.
     * @param tier Home shard's hot-vertex cache; null = no tier.
     * @param home_server Server the gatherer is colocated with.
     */
    AttributeGatherer(const graph::AttributeStore &attrs,
                      const graph::Partitioner *partitioner,
                      cache::HotVertexCache *tier,
                      std::uint32_t home_server,
                      GatherFabricModel fabric = {})
        : attrs_(attrs), part_(partitioner), tier_(tier),
          home_(home_server), fabric_(fabric)
    {}

    /**
     * Materialize every level's feature matrix for @p batch into
     * @p out (level matrices are reused when shapes repeat, so a
     * steady-state worker re-gathers into the same heap blocks).
     */
    void gather(const sampling::SampleResult &batch,
                GatheredFeatures &out,
                GatherTelemetry *telemetry = nullptr) const;

    const graph::AttributeStore &attrs() const { return attrs_; }

  private:
    void gatherLevel(std::span<const graph::NodeId> nodes,
                     gnn::Matrix &out, GatherTelemetry *telemetry) const;

    const graph::AttributeStore &attrs_;
    const graph::Partitioner *part_;
    cache::HotVertexCache *tier_;
    std::uint32_t home_;
    GatherFabricModel fabric_;
};

} // namespace framework
} // namespace lsdgnn

#endif // LSDGNN_FRAMEWORK_GATHER_HH
