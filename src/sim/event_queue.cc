#include "event_queue.hh"

#include "common/trace.hh"

namespace lsdgnn {
namespace sim {

EventQueue::EventHandle
EventQueue::schedule(Tick when, std::function<void()> fn, Priority prio)
{
    lsd_assert(when >= currentTick,
               "cannot schedule into the past: when=", when,
               " now=", currentTick);
    lsd_assert(fn, "cannot schedule an empty callback");
    const EventHandle handle = nextHandle++;
    heap.push(Entry{when, static_cast<int>(prio), handle});
    callbacks.emplace(handle, std::move(fn));
    return handle;
}

void
EventQueue::deschedule(EventHandle handle)
{
    // The heap entry stays behind as a tombstone and is skipped when
    // popped; only the callback map decides liveness.
    callbacks.erase(handle);
}

bool
EventQueue::step()
{
    while (!heap.empty()) {
        const Entry top = heap.top();
        auto it = callbacks.find(top.handle);
        if (it == callbacks.end()) {
            heap.pop(); // cancelled tombstone
            continue;
        }
        std::function<void()> fn = std::move(it->second);
        callbacks.erase(it);
        heap.pop();
        lsd_assert(top.when >= currentTick, "event queue time went backward");
        currentTick = top.when;
        ++executedCount;
        if (trace::Tracer::enabled()) {
            auto &tracer = trace::Tracer::instance();
            if (traceTid == 0)
                traceTid = tracer.track(0, "sim.eventq");
            tracer.begin(0, traceTid, "dispatch", currentTick);
            fn();
            // Simulated time cannot advance inside a callback, so the
            // slice closes at its own tick (a zero-duration span).
            tracer.end(0, traceTid, currentTick);
        } else {
            fn();
        }
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t ran = 0;
    while (!heap.empty()) {
        // Skim tombstones so the limit check sees a live event.
        while (!heap.empty() && !callbacks.count(heap.top().handle))
            heap.pop();
        if (heap.empty() || heap.top().when > limit)
            break;
        if (step())
            ++ran;
    }
    return ran;
}

} // namespace sim
} // namespace lsdgnn
