#include "stat_sampler.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stat_registry.hh"
#include "common/trace.hh"

namespace lsdgnn {
namespace sim {

StatSampler::StatSampler(EventQueue &eq, Tick period)
    : eventq(eq), period_(period)
{
    lsd_assert(period > 0, "sampler period must be positive");
}

void
StatSampler::watch(const stats::StatGroup &group)
{
    lsd_assert(!running, "cannot add groups to a running sampler");
    if (std::find(watched.begin(), watched.end(), &group) ==
        watched.end())
        watched.push_back(&group);
}

void
StatSampler::watchAll()
{
    for (const stats::StatGroup *group :
         stats::StatRegistry::instance().groups())
        watch(*group);
}

void
StatSampler::start()
{
    lsd_assert(!running, "sampler already started");
    lsd_assert(!watched.empty(), "sampler has nothing to watch");
    columns_.clear();
    rows_.clear();
    for (const stats::StatGroup *group : watched) {
        group->visitCounters([&](const std::string &name,
                                 const stats::Counter &,
                                 const std::string &) {
            columns_.push_back(group->name() + "." + name);
        });
        group->visitAverages([&](const std::string &name,
                                 const stats::Average &,
                                 const std::string &) {
            columns_.push_back(group->name() + "." + name);
        });
    }
    running = true;
    sample();
    arm();
}

void
StatSampler::stop()
{
    if (armed) {
        eventq.deschedule(handle);
        armed = false;
    }
    running = false;
}

void
StatSampler::arm()
{
    armed = true;
    handle = eventq.scheduleAfter(period_, [this] {
        armed = false;
        sample();
        // Reschedule only while the simulation has other work: the
        // sampler must not keep the queue alive forever by itself.
        if (eventq.pending() > 0)
            arm();
        else
            running = false;
    }, Priority::Low);
}

void
StatSampler::sample()
{
    Row row;
    row.tick = eventq.now();
    row.values.reserve(columns_.size());
    for (const stats::StatGroup *group : watched) {
        group->visitCounters([&](const std::string &,
                                 const stats::Counter &c,
                                 const std::string &) {
            row.values.push_back(static_cast<double>(c.value()));
        });
        group->visitAverages([&](const std::string &,
                                 const stats::Average &a,
                                 const std::string &) {
            row.values.push_back(a.mean());
        });
    }
    if (trace::Tracer::enabled()) {
        auto &tracer = trace::Tracer::instance();
        for (std::size_t i = 0; i < columns_.size(); ++i)
            tracer.counter(0, columns_[i], row.tick, row.values[i]);
    }
    rows_.push_back(std::move(row));
}

void
StatSampler::exportCsv(std::ostream &os) const
{
    os << "tick";
    for (const std::string &col : columns_)
        os << "," << col;
    os << "\n";
    char buf[48];
    for (const Row &row : rows_) {
        os << row.tick;
        for (double v : row.values) {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            os << "," << buf;
        }
        os << "\n";
    }
}

void
StatSampler::exportJson(std::ostream &os) const
{
    os << "{\"columns\":[";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        std::string escaped;
        trace::appendEscaped(escaped, columns_[i]);
        os << (i ? "," : "") << "\"" << escaped << "\"";
    }
    os << "],\"rows\":[";
    char buf[48];
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << (r ? "," : "") << "[" << rows_[r].tick;
        for (double v : rows_[r].values) {
            if (std::isfinite(v)) {
                std::snprintf(buf, sizeof(buf), "%.17g", v);
                os << "," << buf;
            } else {
                os << ",null";
            }
        }
        os << "]";
    }
    os << "]}";
}

} // namespace sim
} // namespace lsdgnn
