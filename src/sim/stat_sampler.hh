/**
 * @file
 * Periodic statistics sampler.
 *
 * Snapshots registered statistics every N simulated ticks into
 * time-series rows — the raw material for pipeline-occupancy and
 * utilization curves (Fig. 7-style analysis) that end-of-run totals
 * cannot show. Counters sample their running value, averages their
 * running mean. When tracing is on, every sample also lands in the
 * trace as a counter event, so Perfetto renders the same curves.
 *
 * The sampler rides the EventQueue it observes and stops itself when
 * it finds the queue otherwise empty, so it never keeps a simulation
 * alive on its own.
 */

#ifndef LSDGNN_SIM_STAT_SAMPLER_HH
#define LSDGNN_SIM_STAT_SAMPLER_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/event_queue.hh"

namespace lsdgnn {
namespace sim {

/**
 * Time-series snapshotter over a set of StatGroups.
 */
class StatSampler
{
  public:
    /**
     * @param eq Event queue to ride (and source of sample times).
     * @param period Ticks between snapshots.
     */
    StatSampler(EventQueue &eq, Tick period);

    ~StatSampler() { stop(); }

    StatSampler(const StatSampler &) = delete;
    StatSampler &operator=(const StatSampler &) = delete;

    /**
     * Add one group's counters and averages to the column set. The
     * group must outlive the sampler's last sample.
     */
    void watch(const stats::StatGroup &group);

    /** Watch every group currently in the StatRegistry. */
    void watchAll();

    /**
     * Take an immediate first snapshot and schedule the periodic
     * ones. Columns are frozen at this point.
     */
    void start();

    /** Cancel the pending snapshot event, keeping collected rows. */
    void stop();

    /** Column names, "group.stat" form. */
    const std::vector<std::string> &columns() const { return columns_; }

    /** One row per snapshot: the tick plus one value per column. */
    struct Row {
        Tick tick;
        std::vector<double> values;
    };

    const std::vector<Row> &rows() const { return rows_; }

    /** "tick,col,..." header plus one line per row. */
    void exportCsv(std::ostream &os) const;

    /** {"columns":[...],"rows":[[tick,v...],...]} */
    void exportJson(std::ostream &os) const;

  private:
    void sample();
    void arm();

    EventQueue &eventq;
    Tick period_;
    bool running = false;
    bool armed = false;
    EventQueue::EventHandle handle = 0;
    std::vector<const stats::StatGroup *> watched;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

} // namespace sim
} // namespace lsdgnn

#endif // LSDGNN_SIM_STAT_SAMPLER_HH
