/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, insertion
 * sequence) and drains them in order. All timing models in this
 * library (AxE pipelines, MoF links, the CPU baseline) are built on
 * this kernel, so one run produces one coherent timeline.
 */

#ifndef LSDGNN_SIM_EVENT_QUEUE_HH
#define LSDGNN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"

namespace lsdgnn {
namespace sim {

/** Scheduling priority; lower values execute first within a tick. */
enum class Priority : int {
    High = 0,
    Default = 50,
    Low = 100,
};

/**
 * Time-ordered callback queue.
 *
 * Events are plain std::function callbacks; components capture
 * whatever state they need. Cancellation is supported through the
 * EventHandle returned by schedule().
 */
class EventQueue
{
  public:
    /** Opaque handle identifying a scheduled event. */
    using EventHandle = std::uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /**
     * Schedule @p fn at absolute time @p when.
     *
     * @pre when >= now() — the past cannot be scheduled.
     * @return Handle usable with deschedule().
     */
    EventHandle schedule(Tick when, std::function<void()> fn,
                         Priority prio = Priority::Default);

    /** Schedule @p fn @p delay ticks after now. */
    EventHandle
    scheduleAfter(Tick delay, std::function<void()> fn,
                  Priority prio = Priority::Default)
    {
        return schedule(currentTick + delay, std::move(fn), prio);
    }

    /** Cancel a pending event; no-op if it already ran. */
    void deschedule(EventHandle handle);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return callbacks.size(); }

    bool empty() const { return pending() == 0; }

    /**
     * Run events until the queue drains or @p limit is reached.
     *
     * @param limit Stop once the next event would run after this time.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = max_tick);

    /** Execute exactly one event, if any. @return true if one ran. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executedCount; }

  private:
    struct Entry {
        Tick when;
        int prio;
        EventHandle handle;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return handle > o.handle;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::unordered_map<EventHandle, std::function<void()>> callbacks;
    std::uint64_t nextHandle = 0;
    std::uint64_t executedCount = 0;
    Tick currentTick = 0;
    std::uint32_t traceTid = 0; ///< lazily registered dispatch track
};

} // namespace sim
} // namespace lsdgnn

#endif // LSDGNN_SIM_EVENT_QUEUE_HH
