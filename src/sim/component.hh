/**
 * @file
 * Base class for simulated hardware components.
 */

#ifndef LSDGNN_SIM_COMPONENT_HH
#define LSDGNN_SIM_COMPONENT_HH

#include <string>

#include "common/stats.hh"
#include "common/trace.hh"
#include "sim/event_queue.hh"

namespace lsdgnn {
namespace sim {

/**
 * A named component attached to an event queue, with its own stat
 * group. Components are non-copyable identity objects.
 */
class Component
{
  public:
    /**
     * @param eq Event queue shared by the whole simulated system.
     * @param name Hierarchical component name ("axe.core0.loadunit").
     */
    Component(EventQueue &eq, std::string name)
        : eventq(eq), statGroup(name), componentName(std::move(name))
    {}

    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    const std::string &name() const { return componentName; }
    stats::StatGroup &stats() { return statGroup; }
    const stats::StatGroup &stats() const { return statGroup; }

    Tick curTick() const { return eventq.now(); }

  protected:
    /**
     * This component's trace track, registered on first use. Only
     * meaningful while tracing is enabled; callers guard emission
     * with trace::Tracer::enabled().
     */
    trace::TrackId
    traceTrack() const
    {
        if (traceTid == 0)
            traceTid = trace::Tracer::instance().track(0, componentName);
        return traceTid;
    }

    EventQueue &eventq;
    stats::StatGroup statGroup;

  private:
    std::string componentName;
    mutable trace::TrackId traceTid = 0;
};

} // namespace sim
} // namespace lsdgnn

#endif // LSDGNN_SIM_COMPONENT_HH
