/**
 * @file
 * Bounded FIFO used to connect producer/consumer pipeline stages.
 *
 * AxE's "fine-grained FIFO-connected asynchronous producer-consumer
 * streaming architecture" (paper Section 4.2, Tech-1) is modeled with
 * these queues: a stage may push only when the FIFO has space, giving
 * natural backpressure, and occupancy statistics feed the pipeline
 * depth study (Fig. 7).
 */

#ifndef LSDGNN_SIM_FIFO_HH
#define LSDGNN_SIM_FIFO_HH

#include <deque>

#include "common/logging.hh"
#include "common/stats.hh"

namespace lsdgnn {
namespace sim {

/**
 * Bounded queue with occupancy stats.
 *
 * @tparam T Element type (moved in/out).
 */
template <typename T>
class Fifo
{
  public:
    /** @param capacity Maximum number of buffered elements (>0). */
    explicit Fifo(std::size_t capacity) : cap(capacity)
    {
        lsd_assert(capacity > 0, "FIFO capacity must be positive");
    }

    bool full() const { return buf.size() >= cap; }
    bool empty() const { return buf.empty(); }
    std::size_t size() const { return buf.size(); }
    std::size_t capacity() const { return cap; }

    /** Space left before the FIFO refuses pushes. */
    std::size_t free() const { return cap - buf.size(); }

    /**
     * Append an element.
     * @pre !full() — callers must respect backpressure.
     */
    void
    push(T value)
    {
        lsd_assert(!full(), "push to full FIFO");
        buf.push_back(std::move(value));
        occupancy.sample(static_cast<double>(buf.size()));
        pushes.inc();
    }

    /** @return false instead of asserting when full. */
    bool
    tryPush(T value)
    {
        if (full())
            return false;
        push(std::move(value));
        return true;
    }

    /** Peek at the head element. @pre !empty(). */
    const T &
    front() const
    {
        lsd_assert(!empty(), "front of empty FIFO");
        return buf.front();
    }

    /** Remove and return the head element. @pre !empty(). */
    T
    pop()
    {
        lsd_assert(!empty(), "pop from empty FIFO");
        T value = std::move(buf.front());
        buf.pop_front();
        return value;
    }

    /** Register occupancy/pushes stats with @p group under @p prefix. */
    void
    addStats(stats::StatGroup &group, const std::string &prefix)
    {
        group.addCounter(prefix + ".pushes", &pushes,
                         "elements pushed into the FIFO");
        group.addAverage(prefix + ".occupancy", &occupancy,
                         "queue depth sampled at each push");
    }

    double meanOccupancy() const { return occupancy.mean(); }

  private:
    std::size_t cap;
    std::deque<T> buf;
    stats::Counter pushes;
    stats::Average occupancy;
};

} // namespace sim
} // namespace lsdgnn

#endif // LSDGNN_SIM_FIFO_HH
