/**
 * @file
 * Analytical FaaS performance model.
 *
 * This is the "in-house performance analytical model" of Section 7.2:
 * it captures FPGA datapath behavior, memory accesses and inter-FPGA
 * communication as steady-state byte flows over the architecture's
 * paths, and reports the binding bottleneck. Fig. 15 validates it
 * against the AxE discrete-event model; Figs. 17-21 are produced by
 * sweeping it over the eight architectures.
 *
 * Flow accounting per emitted sample (symmetric FPGAs, hash
 * partitioning over all graph-holding FPGAs):
 *  - memory reads: every byte the workload reads is some FPGA's local
 *    read, so each FPGA's local memory carries the full per-sample
 *    read volume at its own sampling rate;
 *  - remote link: a fraction r = (F-1)/F of reads leave the FPGA; per
 *    direction the link carries r * (data + request overhead) for the
 *    FPGA's own samples plus the symmetric share it serves for peers;
 *  - output: every sample ships (node id + attributes) to the GPU,
 *    over the in-server path (tc) or the shared NIC (decp).
 */

#ifndef LSDGNN_FAAS_PERF_MODEL_HH
#define LSDGNN_FAAS_PERF_MODEL_HH

#include <cstdint>
#include <string>

#include "faas/arch.hh"
#include "faas/instance.hh"
#include "sampling/workload.hh"

namespace lsdgnn {
namespace faas {

/** Which constraint binds the throughput. */
enum class Bottleneck {
    LocalMemory,
    RemoteLink,
    Output,
    CoreWindow, ///< outstanding-request window (Eq. 3 territory)
    CoreClock,
};

const char *bottleneckName(Bottleneck b);

/** Model knobs that are architecture-independent. */
struct PerfModelParams {
    /** Scoreboard entries per AxE core. */
    std::uint32_t scoreboard_entries = 128;
    /** AxE datapath clock. */
    double clock_hz = 250e6;
    /** Datapath cycles consumed per memory request (streaming). */
    double cycles_per_request = 1.0;
    /**
     * Wire overhead per packed request on the remote path (MoF
     * multi-request packing: 4 B segment offset + amortized header).
     */
    double packed_request_overhead = 5.0;
};

/** Result for one (arch, instance, dataset) point. */
struct FpgaPerfReport {
    /** Samples per second one FPGA chip sustains. */
    double samples_per_s = 0;
    Bottleneck bottleneck = Bottleneck::Output;
    /** Fraction of reads that are remote. */
    double remote_fraction = 0;
    /** Output bytes/second this rate implies (GPU feed). */
    double output_bytes_per_s = 0;
    /** Per-constraint rates (diagnostics / tests). */
    double local_limit = 0;
    double remote_limit = 0;
    double output_limit = 0;
    double window_limit = 0;
    double clock_limit = 0;
};

/**
 * Evaluate one FPGA chip of an architecture.
 *
 * @param arch Architecture under test.
 * @param instance Instance shape (NIC/MoF allocations).
 * @param profile Workload profile (per-batch request statistics).
 * @param total_fpgas FPGA chips holding graph partitions, across all
 *        instances of the service.
 */
FpgaPerfReport evaluateFpga(const FaasArch &arch,
                            const InstanceConfig &instance,
                            const sampling::WorkloadProfile &profile,
                            std::uint32_t total_fpgas,
                            const PerfModelParams &params =
                                PerfModelParams{});

} // namespace faas
} // namespace lsdgnn

#endif // LSDGNN_FAAS_PERF_MODEL_HH
