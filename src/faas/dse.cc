#include "dse.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace lsdgnn {
namespace faas {

double
geomean(const std::vector<double> &values)
{
    lsd_assert(!values.empty(), "geomean of nothing");
    double log_sum = 0;
    for (double v : values) {
        lsd_assert(v > 0, "geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

DseExplorer::DseExplorer(std::uint64_t profile_target_nodes)
    : cost(CostModel::fitDefault())
{
    lsd_assert(profile_target_nodes >= 1000,
               "profile instances below 1k nodes are too noisy");
    sampling::SamplePlan plan; // Table 2 model column defaults
    for (const auto &spec : graph::paperDatasets()) {
        const std::uint64_t divisor = std::max<std::uint64_t>(
            1, spec.nodes / profile_target_nodes);
        profiles.emplace(spec.name,
            sampling::profileWorkload(spec, plan, divisor, 4, 1));
    }
}

const sampling::WorkloadProfile &
DseExplorer::profileFor(const std::string &dataset) const
{
    auto it = profiles.find(dataset);
    if (it == profiles.end())
        lsd_fatal("no profile for dataset '", dataset, "'");
    return it->second;
}

std::uint32_t
DseExplorer::instancesFor(const std::string &dataset,
                          InstanceSize size) const
{
    const graph::FootprintModel footprint;
    const auto &spec = graph::datasetByName(dataset);
    const std::uint64_t bytes = footprint.totalBytes(spec);
    const std::uint64_t capacity = faasInstance(size).memoryBytes();
    return static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, (bytes + capacity - 1) / capacity));
}

CpuPoint
DseExplorer::cpuBaseline(const std::string &dataset,
                         InstanceSize size) const
{
    CpuPoint point;
    point.dataset = dataset;
    point.size = size;
    point.instances = instancesFor(dataset, size);

    const InstanceConfig shape = cpuInstance(size);
    baseline::CpuClusterConfig cluster;
    cluster.num_servers = point.instances;
    cluster.vcpus_per_server = shape.vcpus;
    cluster.nic_bandwidth = shape.nicBytesPerSecond();

    const auto &profile = profileFor(dataset);
    const auto rep = cpuModel.evaluate(profile, cluster);
    point.service_samples_per_s = rep.samples_per_s;
    point.samples_per_s_per_vcpu = rep.samples_per_s_per_vcpu;

    const double out_bytes =
        8.0 + static_cast<double>(profile.attr_bytes_per_node);
    point.gpus = rep.samples_per_s * out_bytes / gpu_feed_bytes_per_s;
    point.service_cost = point.instances * cost.price(shape) +
        point.gpus * cost.gpuCoeff();
    point.perf_per_dollar =
        point.service_samples_per_s / point.service_cost;
    return point;
}

DsePoint
DseExplorer::evaluate(const std::string &dataset, const FaasArch &arch,
                      InstanceSize size) const
{
    DsePoint point;
    point.dataset = dataset;
    point.arch = arch;
    point.size = size;
    point.instances = instancesFor(dataset, size);

    const InstanceConfig shape = faasInstance(size);
    point.total_fpgas = point.instances * shape.fpga_chips;

    const auto &profile = profileFor(dataset);
    const FpgaPerfReport rep =
        evaluateFpga(arch, shape, profile, point.total_fpgas);
    point.per_fpga_samples_per_s = rep.samples_per_s;
    point.service_samples_per_s =
        rep.samples_per_s * point.total_fpgas;
    point.bottleneck = rep.bottleneck;

    // vCPU equivalence against the CPU baseline in the same setting.
    const CpuPoint cpu = cpuBaseline(dataset, size);
    if (cpu.samples_per_s_per_vcpu > 0) {
        point.vcpu_equivalent =
            rep.samples_per_s / cpu.samples_per_s_per_vcpu;
    }

    point.gpus = point.service_samples_per_s *
        (8.0 + static_cast<double>(profile.attr_bytes_per_node)) /
        gpu_feed_bytes_per_s;
    point.service_cost = point.instances * cost.price(shape) +
        point.gpus * cost.gpuCoeff();
    point.perf_per_dollar =
        point.service_samples_per_s / point.service_cost;
    return point;
}

double
DseExplorer::cpuPerfPerDollarGeomean(InstanceSize size) const
{
    std::vector<double> values;
    for (const auto &spec : graph::paperDatasets())
        values.push_back(cpuBaseline(spec.name, size).perf_per_dollar);
    return geomean(values);
}

} // namespace faas
} // namespace lsdgnn
