#include "cost_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace lsdgnn {
namespace faas {

const std::vector<PriceListEntry> &
syntheticPriceList()
{
    // Shaped like the public ECS catalog rows of Fig. 16: general
    // purpose, compute, memory, FPGA (f3-class) and GPU (gn6-class)
    // instances. Underlying structure is linear in {vCPU, memory,
    // FPGA, GPU} — except the 906 GiB memory flagship, which carries
    // a premium the linear model cannot see (the paper observes the
    // same under-estimation on ecs-ram-e).
    auto base_price = [](double v, double m, double f, double g) {
        return 0.032 * v + 0.0045 * m + 1.10 * f + 2.20 * g + 0.02;
    };
    static const std::vector<PriceListEntry> list = {
        {"ecs-g-small", 2, 8, 0, 0, base_price(2, 8, 0, 0)},
        {"ecs-g-large", 8, 32, 0, 0, base_price(8, 32, 0, 0) * 1.02},
        {"ecs-c-xlarge", 16, 32, 0, 0, base_price(16, 32, 0, 0) * 0.99},
        {"ecs-r-2xlarge", 8, 64, 0, 0, base_price(8, 64, 0, 0) * 1.01},
        {"ecs-r-4xlarge", 16, 128, 0, 0,
         base_price(16, 128, 0, 0) * 0.98},
        {"ecs-r-8xlarge", 32, 256, 0, 0,
         base_price(32, 256, 0, 0) * 1.01},
        {"ecs-re-512", 16, 512, 0, 0, base_price(16, 512, 0, 0) * 0.99},
        {"ecs-f3-fpga", 4, 16, 1, 0, base_price(4, 16, 1, 0) * 1.03},
        {"ecs-f3-2fpga", 8, 64, 2, 0, base_price(8, 64, 2, 0) * 0.97},
        {"ecs-gn6-gpu", 8, 32, 0, 1, base_price(8, 32, 0, 1) * 1.01},
        {"ecs-ram-e", 32, 906, 0, 0, base_price(32, 906, 0, 0) * 1.30},
    };
    return list;
}

namespace {

/** Solve the 5x5 system a*x = b with partial-pivot elimination. */
std::array<double, 5>
solve5(std::array<std::array<double, 5>, 5> a, std::array<double, 5> b)
{
    constexpr int n = 5;
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int row = col + 1; row < n; ++row)
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        lsd_assert(std::fabs(a[col][col]) > 1e-12,
                   "singular normal equations — price list degenerate");
        for (int row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / a[col][col];
            for (int k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }
    std::array<double, 5> x{};
    for (int row = n - 1; row >= 0; --row) {
        double acc = b[row];
        for (int k = row + 1; k < n; ++k)
            acc -= a[row][k] * x[k];
        x[row] = acc / a[row][row];
    }
    return x;
}

} // namespace

CostModel
CostModel::fit(const std::vector<PriceListEntry> &entries)
{
    lsd_assert(entries.size() >= 5,
               "need at least five rows to fit five parameters");
    std::array<std::array<double, 5>, 5> ata{};
    std::array<double, 5> atb{};
    for (const auto &e : entries) {
        lsd_assert(e.listed_price > 0, "listed price must be positive");
        const std::array<double, 5> x = {e.vcpus, e.memory_gib, e.fpgas,
                                         e.gpus, 1.0};
        // Weight by 1/price^2: the catalog spans three orders of
        // magnitude, and the paper's validation plot (Fig. 16) shows
        // small *relative* errors — a plain OLS would let the most
        // expensive row dominate everything else.
        const double weight = 1.0 / (e.listed_price * e.listed_price);
        for (int i = 0; i < 5; ++i) {
            atb[i] += weight * x[i] * e.listed_price;
            for (int j = 0; j < 5; ++j)
                ata[i][j] += weight * x[i] * x[j];
        }
    }
    CostModel model;
    model.w = solve5(ata, atb);
    return model;
}

CostModel
CostModel::fitDefault()
{
    return fit(syntheticPriceList());
}

double
CostModel::predict(double vcpus, double memory_gib, double fpgas,
                   double gpus) const
{
    return w[0] * vcpus + w[1] * memory_gib + w[2] * fpgas +
           w[3] * gpus + w[4];
}

double
CostModel::price(const InstanceConfig &instance, double gpus) const
{
    return predict(instance.vcpus, instance.memory_gib,
                   instance.fpga_chips, gpus);
}

double
CostModel::relativeError(const PriceListEntry &entry) const
{
    const double predicted = predict(entry.vcpus, entry.memory_gib,
                                     entry.fpgas, entry.gpus);
    return (predicted - entry.listed_price) / entry.listed_price;
}

} // namespace faas
} // namespace lsdgnn
