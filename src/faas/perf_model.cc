#include "perf_model.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace lsdgnn {
namespace faas {

const char *
bottleneckName(Bottleneck b)
{
    switch (b) {
      case Bottleneck::LocalMemory: return "local-mem";
      case Bottleneck::RemoteLink: return "remote-link";
      case Bottleneck::Output: return "output";
      case Bottleneck::CoreWindow: return "core-window";
      case Bottleneck::CoreClock: return "core-clock";
    }
    lsd_panic("unknown bottleneck");
}

FpgaPerfReport
evaluateFpga(const FaasArch &arch, const InstanceConfig &instance,
             const sampling::WorkloadProfile &profile,
             std::uint32_t total_fpgas, const PerfModelParams &params)
{
    lsd_assert(total_fpgas > 0, "need at least one FPGA");
    lsd_assert(profile.samples_per_batch > 0, "profile has no samples");

    FpgaPerfReport rep;
    const double samples = profile.samples_per_batch;
    const double mem_bytes = profile.totalBytesPerBatch() / samples;
    const double requests = profile.totalRequestsPerBatch() / samples;
    const double out_bytes =
        8.0 + static_cast<double>(profile.attr_bytes_per_node);
    const double r = total_fpgas == 1
        ? 0.0
        : static_cast<double>(total_fpgas - 1) /
          static_cast<double>(total_fpgas);
    rep.remote_fraction = r;

    const PathSpec local = arch.localMem(instance);
    const PathSpec remote = arch.remoteMem(instance);
    const PathSpec out = arch.gpuPath(instance);

    // 1. Local memory: own local reads plus the symmetric share served
    //    to peers add up to the full read volume per own sample.
    rep.local_limit = local.bandwidth / mem_bytes;

    // 2. Remote link, per direction. Outbound carries the FPGA's own
    //    read requests (packed) plus response data served to peers;
    //    inbound carries response data plus peers' requests. Both
    //    directions therefore see r * (data + request overhead).
    const double remote_dir_bytes =
        r * (mem_bytes + requests * params.packed_request_overhead);
    // Output over the NIC (decp) shares the same outbound direction.
    double nic_outbound_extra = 0.0;
    if (out.uses_nic)
        nic_outbound_extra = out_bytes;
    if (remote_dir_bytes + (remote.uses_nic ? nic_outbound_extra : 0) >
        0) {
        const double shared_out = remote.uses_nic
            ? remote_dir_bytes + nic_outbound_extra
            : remote_dir_bytes;
        const double per_dir = std::max(shared_out, remote_dir_bytes);
        rep.remote_limit = per_dir > 0
            ? remote.bandwidth / per_dir
            : std::numeric_limits<double>::infinity();
    } else {
        rep.remote_limit = std::numeric_limits<double>::infinity();
    }

    // 3. Output path. When the output rides the NIC and the remote
    //    path does too, constraint 2 already covers the sharing; the
    //    dedicated-output case is a plain bandwidth bound.
    if (out.uses_nic && remote.uses_nic) {
        rep.output_limit = rep.remote_limit;
    } else if (out.uses_nic) {
        // NIC carries only results (comm/mem-opt decp).
        rep.output_limit = out.bandwidth / out_bytes;
    } else {
        rep.output_limit = out.bandwidth / out_bytes;
        // Host-DRAM local memory shares the PCIe with the in-server
        // output stream (base/cost/comm-opt tc).
        if (arch.coupling == Coupling::Tc &&
            arch.constraint != Constraint::MemOpt) {
            const double pcie_bytes = mem_bytes + out_bytes;
            rep.output_limit =
                std::min(rep.output_limit, out.bandwidth / pcie_bytes);
            rep.local_limit =
                std::min(rep.local_limit, local.bandwidth / pcie_bytes);
        }
    }

    // 4. Outstanding-request window (Eq. 3 inverted): the cores can
    //    keep cores*scoreboard requests in flight; each request holds
    //    its slot for the path's round-trip latency.
    const double avg_latency_s = (1.0 - r) * toSeconds(local.latency) +
        r * toSeconds(remote.latency);
    const double window = static_cast<double>(arch.axeCores()) *
        params.scoreboard_entries;
    rep.window_limit = avg_latency_s > 0
        ? window / avg_latency_s / requests
        : std::numeric_limits<double>::infinity();

    // 5. Datapath clock.
    rep.clock_limit = static_cast<double>(arch.axeCores()) *
        params.clock_hz / (params.cycles_per_request * requests);

    rep.samples_per_s = rep.local_limit;
    rep.bottleneck = Bottleneck::LocalMemory;
    const auto consider = [&rep](double limit, Bottleneck which) {
        if (limit < rep.samples_per_s) {
            rep.samples_per_s = limit;
            rep.bottleneck = which;
        }
    };
    consider(rep.remote_limit, Bottleneck::RemoteLink);
    consider(rep.output_limit, Bottleneck::Output);
    consider(rep.window_limit, Bottleneck::CoreWindow);
    consider(rep.clock_limit, Bottleneck::CoreClock);

    rep.output_bytes_per_s = rep.samples_per_s * out_bytes;
    return rep;
}

} // namespace faas
} // namespace lsdgnn
