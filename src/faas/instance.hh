/**
 * @file
 * FaaS instance configurations (paper Table 12) and the matching
 * CPU-only instance shapes used as the cost/performance baseline.
 */

#ifndef LSDGNN_FAAS_INSTANCE_HH
#define LSDGNN_FAAS_INSTANCE_HH

#include <array>
#include <cstdint>
#include <string>

namespace lsdgnn {
namespace faas {

/** Table 12 row id. */
enum class InstanceSize {
    Small,
    Medium,
    Large,
};

/** One rentable instance shape. */
struct InstanceConfig {
    InstanceSize size;
    const char *name;
    std::uint32_t vcpus;
    /** DRAM quota in GiB. */
    std::uint32_t memory_gib;
    /** FPGA chips on the instance (0 for the CPU baseline shape). */
    std::uint32_t fpga_chips;
    /** Virtual NIC allocation in Gbit/s. */
    double nic_gbps;
    /** Dedicated MoF fabric allocation in Gbit/s (0 if absent). */
    double mof_gbps;

    double nicBytesPerSecond() const { return nic_gbps * 1e9 / 8.0; }
    double mofBytesPerSecond() const { return mof_gbps * 1e9 / 8.0; }
    std::uint64_t
    memoryBytes() const
    {
        return static_cast<std::uint64_t>(memory_gib) << 30;
    }
};

/** The three Table 12 FaaS shapes. */
const std::array<InstanceConfig, 3> &faasInstances();

/** FaaS shape by size. */
const InstanceConfig &faasInstance(InstanceSize size);

/**
 * CPU-only twin of a FaaS shape: same memory and network, no FPGA,
 * and the vCPU count a storage/sampling server of that memory class
 * actually ships with (the paper's vCPU-heavy baseline).
 */
InstanceConfig cpuInstance(InstanceSize size);

/** Display name ("small"/"medium"/"large"). */
const char *sizeName(InstanceSize size);

} // namespace faas
} // namespace lsdgnn

#endif // LSDGNN_FAAS_INSTANCE_HH
