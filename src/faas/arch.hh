/**
 * @file
 * The eight FaaS architectures of the design-space exploration
 * (paper Table 8): {base, cost-opt, comm-opt, mem-opt} x {tc, decp}.
 *
 * An architecture decides four paths — FPGA-FPGA connection, local
 * memory access, remote memory access and FPGA-GPU connection — plus
 * the AxE core provisioning derived from Eq. 3.
 */

#ifndef LSDGNN_FAAS_ARCH_HH
#define LSDGNN_FAAS_ARCH_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/units.hh"
#include "faas/instance.hh"

namespace lsdgnn {
namespace faas {

/** Primary design constraint (first taxonomy level). */
enum class Constraint {
    Base,    ///< off-the-shelf FaaS
    CostOpt, ///< on-FPGA integrated NIC
    CommOpt, ///< dedicated inter-FPGA MoF fabric
    MemOpt,  ///< FPGA local DRAM (+ fast GPU link when tc)
};

/** FPGA/GPU coupling (second taxonomy level). */
enum class Coupling {
    Tc,   ///< tightly coupled: FPGA and GPU share one server
    Decp, ///< decoupled: all-FPGA and all-GPU servers over network
};

/** One resolved memory/IO path of an architecture. */
struct PathSpec {
    /** Bandwidth in bytes/second (full duplex per direction). */
    double bandwidth = 0;
    /** Round-trip latency. */
    Tick latency = 0;
    /** True when the path rides the instance's shared virtual NIC. */
    bool uses_nic = false;
};

/** One of the eight architectures. */
struct FaasArch {
    Constraint constraint;
    Coupling coupling;

    std::string name() const;

    /** Local memory path (Table 8 column "Local Mem Access"). */
    PathSpec localMem(const InstanceConfig &instance) const;

    /** Remote memory path (Table 8 column "Remote Mem Access"). */
    PathSpec remoteMem(const InstanceConfig &instance) const;

    /** Result path toward the GPU (Table 8 "FPGA-GPU Connection"). */
    PathSpec gpuPath(const InstanceConfig &instance) const;

    /**
     * AxE cores provisioned for this architecture — the paper's
     * Eq.-3-derived choices (Sections 6.2-6.5): base 3, cost-opt 2,
     * comm-opt 2, mem-opt.decp 2, mem-opt.tc 10.
     */
    std::uint32_t axeCores() const;

    /**
     * Eq. 3 core sizing recomputed from first principles for the
     * given request mix: ceil(sum_i B_i*L_i/meanbytes / scoreboard).
     */
    std::uint32_t eq3SuggestedCores(const InstanceConfig &instance,
                                    double mean_request_bytes,
                                    std::uint32_t scoreboard_entries)
        const;
};

/** All eight architectures in the paper's presentation order. */
const std::array<FaasArch, 8> &allArchitectures();

/** Display helpers. */
const char *constraintName(Constraint constraint);
const char *couplingName(Coupling coupling);

} // namespace faas
} // namespace lsdgnn

#endif // LSDGNN_FAAS_ARCH_HH
