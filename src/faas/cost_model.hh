/**
 * @file
 * FaaS instance cost model (paper Section 7.2, Fig. 16).
 *
 * The paper fits a linear regression over the public price calculator
 * with features {vCPU count, DRAM capacity, FPGA cards, GPU cards}.
 * The same methodology is reproduced here: a synthetic price list
 * with the structure of the public ECS catalog (including the
 * high-memory outlier the paper's model under-estimates) is fitted by
 * ordinary least squares, and Fig. 16's validation compares fitted
 * vs. listed prices.
 */

#ifndef LSDGNN_FAAS_COST_MODEL_HH
#define LSDGNN_FAAS_COST_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "faas/instance.hh"

namespace lsdgnn {
namespace faas {

/** One catalog row: features plus listed price. */
struct PriceListEntry {
    std::string product_id;
    double vcpus;
    double memory_gib;
    double fpgas;
    double gpus;
    /** Listed price, $/hour. */
    double listed_price;
};

/** The synthetic public price list used for fitting/validation. */
const std::vector<PriceListEntry> &syntheticPriceList();

/** Fitted linear model: price = w . features + intercept. */
class CostModel
{
  public:
    /** Fit by OLS over @p entries. */
    static CostModel fit(const std::vector<PriceListEntry> &entries);

    /** Fit over the built-in synthetic catalog. */
    static CostModel fitDefault();

    /** Predicted $/hour for raw features. */
    double predict(double vcpus, double memory_gib, double fpgas,
                   double gpus) const;

    /** Predicted $/hour for an instance shape (+ attached GPUs). */
    double price(const InstanceConfig &instance, double gpus = 0) const;

    /** Relative error against one catalog row. */
    double relativeError(const PriceListEntry &entry) const;

    double vcpuCoeff() const { return w[0]; }
    double memoryCoeff() const { return w[1]; }
    double fpgaCoeff() const { return w[2]; }
    double gpuCoeff() const { return w[3]; }
    double intercept() const { return w[4]; }

  private:
    /** w[0..3] feature weights, w[4] intercept. */
    std::array<double, 5> w{};
};

} // namespace faas
} // namespace lsdgnn

#endif // LSDGNN_FAAS_COST_MODEL_HH
