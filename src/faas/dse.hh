/**
 * @file
 * FaaS design-space-exploration driver.
 *
 * Ties the whole stack together for Figs. 17-21: for every
 * (dataset, architecture, instance size) point it sizes the service
 * (instances to hold the graph), evaluates per-FPGA sampling
 * throughput with the analytical model, attaches GPUs per the paper's
 * 12 GB/s-per-V100 coupling rule (Limitation-2), prices the service
 * with the fitted cost model, and reports performance and
 * performance-per-dollar against the CPU baseline.
 */

#ifndef LSDGNN_FAAS_DSE_HH
#define LSDGNN_FAAS_DSE_HH

#include <map>
#include <string>
#include <vector>

#include "baseline/cpu_sampler.hh"
#include "faas/arch.hh"
#include "faas/cost_model.hh"
#include "faas/perf_model.hh"
#include "graph/datasets.hh"

namespace lsdgnn {
namespace faas {

/** One FaaS evaluation point. */
struct DsePoint {
    std::string dataset;
    FaasArch arch;
    InstanceSize size = InstanceSize::Small;
    /** Instances needed to hold the graph. */
    std::uint32_t instances = 0;
    std::uint32_t total_fpgas = 0;
    double per_fpga_samples_per_s = 0;
    double service_samples_per_s = 0;
    /** One FPGA expressed in CPU-baseline vCPUs (Fig. 14 style). */
    double vcpu_equivalent = 0;
    /** V100-equivalents the sampling rate demands (fractional). */
    double gpus = 0;
    /** Service $/hour including the GPU share. */
    double service_cost = 0;
    /** Raw samples/s per $/hour. */
    double perf_per_dollar = 0;
    Bottleneck bottleneck = Bottleneck::Output;
};

/** The CPU-baseline point for the same dataset/size. */
struct CpuPoint {
    std::string dataset;
    InstanceSize size = InstanceSize::Small;
    std::uint32_t instances = 0;
    double service_samples_per_s = 0;
    double samples_per_s_per_vcpu = 0;
    double gpus = 0;
    double service_cost = 0;
    double perf_per_dollar = 0;
};

/** Geometric mean helper (Figs. 19/21 aggregate this way). */
double geomean(const std::vector<double> &values);

/**
 * Explorer carrying cached workload profiles and models.
 */
class DseExplorer
{
  public:
    /**
     * @param profile_target_nodes Functional-instance size used when
     *        profiling datasets (speed/fidelity knob).
     */
    explicit DseExplorer(std::uint64_t profile_target_nodes = 30'000);

    /** GPU coupling rule: bytes/s of sampling output one V100 absorbs. */
    static constexpr double gpu_feed_bytes_per_s = 12e9;

    /** Evaluate one FaaS point. */
    DsePoint evaluate(const std::string &dataset, const FaasArch &arch,
                      InstanceSize size) const;

    /** Evaluate the CPU baseline for a dataset/size. */
    CpuPoint cpuBaseline(const std::string &dataset,
                         InstanceSize size) const;

    /** Instances needed to hold @p dataset at @p size. */
    std::uint32_t instancesFor(const std::string &dataset,
                               InstanceSize size) const;

    /** Normalization constant: CPU perf/$ geomean across datasets. */
    double cpuPerfPerDollarGeomean(InstanceSize size) const;

    /** The cached profile for a dataset (tests / benches). */
    const sampling::WorkloadProfile &
    profileFor(const std::string &dataset) const;

    const CostModel &costModel() const { return cost; }

  private:
    std::map<std::string, sampling::WorkloadProfile> profiles;
    CostModel cost;
    baseline::CpuSamplerModel cpuModel;
};

} // namespace faas
} // namespace lsdgnn

#endif // LSDGNN_FAAS_DSE_HH
