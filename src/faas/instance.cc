#include "instance.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace faas {

const std::array<InstanceConfig, 3> &
faasInstances()
{
    // Table 12 verbatim: 2 vCPUs manage the card; memory is the host
    // DRAM quota the FPGA-attached graph partition lives in; NIC/MoF
    // are the virtual network allocations of the instance class.
    static const std::array<InstanceConfig, 3> rows = {{
        {InstanceSize::Small, "small", 2, 8, 1, 10.0, 100.0},
        {InstanceSize::Medium, "medium", 2, 384, 1, 20.0, 200.0},
        {InstanceSize::Large, "large", 2, 512, 2, 50.0, 800.0},
    }};
    return rows;
}

const InstanceConfig &
faasInstance(InstanceSize size)
{
    for (const auto &row : faasInstances())
        if (row.size == size)
            return row;
    lsd_panic("unknown instance size");
}

InstanceConfig
cpuInstance(InstanceSize size)
{
    InstanceConfig cfg = faasInstance(size);
    cfg.fpga_chips = 0;
    cfg.mof_gbps = 0;
    // The CPU baseline replaces the FPGA with sampling vCPUs: the
    // service grows the vCPU allocation with the memory class, the
    // way storage/sampling servers are actually provisioned.
    switch (size) {
      case InstanceSize::Small: cfg.vcpus = 2; break;
      case InstanceSize::Medium: cfg.vcpus = 32; break;
      case InstanceSize::Large: cfg.vcpus = 64; break;
    }
    return cfg;
}

const char *
sizeName(InstanceSize size)
{
    return faasInstance(size).name;
}

} // namespace faas
} // namespace lsdgnn
