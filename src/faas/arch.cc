#include "arch.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace lsdgnn {
namespace faas {

namespace {

constexpr double pcie_bw = 16e9;          // Gen3 x16 (Table 8)
constexpr double fpga_ddr_bw = 102.4e9;   // Table 8 mem-opt local DRAM
constexpr double gpu_fast_link_bw = 300e9; // Table 8 mem-opt.tc

} // namespace

std::string
FaasArch::name() const
{
    return std::string(constraintName(constraint)) + "." +
           couplingName(coupling);
}

PathSpec
FaasArch::localMem(const InstanceConfig &instance) const
{
    (void)instance;
    if (constraint == Constraint::MemOpt) {
        // FPGA-attached multi-channel DDR4.
        return PathSpec{fpga_ddr_bw, nanoseconds(90), false};
    }
    // PCIe -> host DRAM for everything else.
    return PathSpec{pcie_bw, nanoseconds(900), false};
}

PathSpec
FaasArch::remoteMem(const InstanceConfig &instance) const
{
    switch (constraint) {
      case Constraint::Base:
        // PCIe -> standalone NIC -> PCIe -> host DRAM: instance NIC
        // bandwidth, microseconds of software-free RDMA latency.
        return PathSpec{instance.nicBytesPerSecond(), microseconds(3.0),
                        true};
      case Constraint::CostOpt:
        // On-FPGA NIC: same wire, one PCIe hop less.
        return PathSpec{instance.nicBytesPerSecond(), microseconds(1.8),
                        true};
      case Constraint::CommOpt:
      case Constraint::MemOpt:
        // Dedicated MoF fabric at the instance's fabric allocation.
        return PathSpec{instance.mofBytesPerSecond(), nanoseconds(600),
                        false};
    }
    lsd_panic("unknown constraint");
}

PathSpec
FaasArch::gpuPath(const InstanceConfig &instance) const
{
    if (coupling == Coupling::Tc) {
        if (constraint == Constraint::MemOpt) {
            // In-server high-speed GPU link (NVLink-class).
            return PathSpec{gpu_fast_link_bw, nanoseconds(500), false};
        }
        // In-server PCIe P2P.
        return PathSpec{pcie_bw, nanoseconds(900), false};
    }
    // Decoupled: results cross the already busy instance NIC.
    return PathSpec{instance.nicBytesPerSecond(), microseconds(3.0),
                    true};
}

std::uint32_t
FaasArch::axeCores() const
{
    switch (constraint) {
      case Constraint::Base:
        return 3;
      case Constraint::CostOpt:
      case Constraint::CommOpt:
        return 2;
      case Constraint::MemOpt:
        return coupling == Coupling::Tc ? 10 : 2;
    }
    lsd_panic("unknown constraint");
}

std::uint32_t
FaasArch::eq3SuggestedCores(const InstanceConfig &instance,
                            double mean_request_bytes,
                            std::uint32_t scoreboard_entries) const
{
    lsd_assert(mean_request_bytes > 0, "mean request size must be > 0");
    lsd_assert(scoreboard_entries > 0, "scoreboard must have entries");
    (void)instance;
    // Core provisioning is a hardware decision, so Eq. 3 is evaluated
    // at the Table 8 *wire* rates of each path (16 GB/s NIC/PCIe, 100
    // GB/s MoF, ...), not at an instance's virtualized allocation.
    const PathSpec local = localMem(faasInstance(InstanceSize::Large));
    PathSpec remote = remoteMem(faasInstance(InstanceSize::Large));
    if (remote.uses_nic)
        remote.bandwidth = 16e9; // physical NIC wire speed
    else
        remote.bandwidth = 100e9; // MoF fabric wire speed
    // Effective bandwidth per Eq. 3 is capped by the system's result
    // drain (PCIe, or the fast GPU link in mem-opt.tc).
    const double drain =
        (constraint == Constraint::MemOpt && coupling == Coupling::Tc)
            ? gpu_fast_link_bw
            : pcie_bw;
    const double eff_local = std::min(local.bandwidth, drain);
    const double eff_remote = std::min(remote.bandwidth, drain);
    const double o_local =
        eff_local / mean_request_bytes * toSeconds(local.latency);
    const double o_remote =
        eff_remote / mean_request_bytes * toSeconds(remote.latency);
    const double total = o_local + o_remote;
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
        std::ceil(total / scoreboard_entries)));
}

const std::array<FaasArch, 8> &
allArchitectures()
{
    static const std::array<FaasArch, 8> archs = {{
        {Constraint::Base, Coupling::Decp},
        {Constraint::CostOpt, Coupling::Decp},
        {Constraint::CommOpt, Coupling::Decp},
        {Constraint::MemOpt, Coupling::Decp},
        {Constraint::Base, Coupling::Tc},
        {Constraint::CostOpt, Coupling::Tc},
        {Constraint::CommOpt, Coupling::Tc},
        {Constraint::MemOpt, Coupling::Tc},
    }};
    return archs;
}

const char *
constraintName(Constraint constraint)
{
    switch (constraint) {
      case Constraint::Base: return "base";
      case Constraint::CostOpt: return "cost-opt";
      case Constraint::CommOpt: return "comm-opt";
      case Constraint::MemOpt: return "mem-opt";
    }
    lsd_panic("unknown constraint");
}

const char *
couplingName(Coupling coupling)
{
    return coupling == Coupling::Tc ? "tc" : "decp";
}

} // namespace faas
} // namespace lsdgnn
