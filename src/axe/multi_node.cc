#include "multi_node.hh"

namespace lsdgnn {
namespace axe {

void
MultiNodeSystem::RemoteFabricPort::request(std::uint64_t bytes,
                                           std::uint32_t dest,
                                           Callback done)
{
    lsd_assert(dest < system_.nodes_.size(),
               "remote request to unknown card");
    lsd_assert(dest != self_, "remote port used for a local read");
    auto &system = system_;
    const std::uint32_t self = self_;
    const std::uint32_t req_bytes = system.config_.request_packet_bytes;

    // 1. Request packet rides the fabric to the home card.
    system.net->transfer(self, dest, req_bytes,
        [&system, self, dest, bytes, done = std::move(done)]() mutable {
            // 2. The home card's DDR serves the read — in line with
            //    that card's own local traffic.
            system.nodes_[dest].ddr->request(bytes,
                [&system, self, dest, bytes,
                 done = std::move(done)]() mutable {
                    // 3. Response payload returns over the fabric.
                    system.net->transfer(dest, self, bytes,
                                         std::move(done));
                });
        });
}

MultiNodeSystem::MultiNodeSystem(MultiNodeConfig config,
                                 const graph::CsrGraph &graph,
                                 std::uint64_t attr_bytes_per_node,
                                 std::uint64_t seed)
    : config_(std::move(config)),
      graph_(graph),
      map_(graph, attr_bytes_per_node),
      rootRng(seed)
{
    lsd_assert(config_.nodes >= 2, "scale-out needs at least 2 cards");
    config_.fabric.endpoints = config_.nodes;
    net = std::make_unique<fabric::FabricNetwork>(eventq,
                                                  config_.fabric);

    nodes_.resize(config_.nodes);
    for (std::uint32_t n = 0; n < config_.nodes; ++n) {
        Node &node = nodes_[n];
        node.ddr = std::make_unique<fabric::SimLink>(eventq,
            config_.card.localMemLink());
        node.output = std::make_unique<fabric::SimLink>(eventq,
            config_.card.outputLink());
        node.remote = std::make_unique<RemoteFabricPort>(*this, n);
        for (std::uint32_t c = 0; c < config_.card.num_cores; ++c) {
            node.cores.push_back(std::make_unique<AxeCore>(eventq,
                "node" + std::to_string(n) + ".core" +
                    std::to_string(c),
                config_.card, *node.ddr, *node.remote, *node.output,
                rootRng.fork(), n));
        }
    }
}

std::uint32_t
MultiNodeSystem::homeOf(graph::NodeId node) const
{
    return static_cast<std::uint32_t>(
        (node * 0x9e3779b97f4a7c15ull >> 32) % config_.nodes);
}

MultiRunResult
MultiNodeSystem::run(const sampling::SamplePlan &plan,
                     std::uint32_t batches_per_node)
{
    lsd_assert(batches_per_node > 0, "need at least one batch");

    const HomeFunction home = [this](graph::NodeId n) {
        return homeOf(n);
    };

    // Per-node batch streams, pre-drawn for determinism.
    struct NodeRun {
        std::vector<std::vector<graph::NodeId>> batches;
        std::uint32_t next = 0;
    };
    std::vector<NodeRun> runs(config_.nodes);
    for (auto &run : runs) {
        run.batches.resize(batches_per_node);
        for (auto &roots : run.batches) {
            roots.resize(plan.batch_size);
            for (auto &r : roots)
                r = rootRng.nextBounded(graph_.numNodes());
        }
    }

    std::function<void(std::uint32_t, std::uint32_t)> feed =
        [&](std::uint32_t node, std::uint32_t core) {
            NodeRun &run = runs[node];
            if (run.next >= run.batches.size())
                return;
            const std::uint32_t mine = run.next++;
            nodes_[node].cores[core]->startBatch(graph_, map_, home,
                plan, std::move(run.batches[mine]),
                [&, node, core] { feed(node, core); });
        };
    for (std::uint32_t n = 0; n < config_.nodes; ++n)
        for (std::uint32_t c = 0;
             c < nodes_[n].cores.size() &&
             runs[n].next < batches_per_node; ++c)
            feed(n, c);

    const Tick start = eventq.now();
    eventq.run();

    MultiRunResult result;
    result.sim_time = eventq.now() - start;
    result.per_node_samples.resize(config_.nodes, 0);
    for (std::uint32_t n = 0; n < config_.nodes; ++n) {
        for (const auto &core : nodes_[n].cores)
            result.per_node_samples[n] += core->samplesEmitted();
        result.samples += result.per_node_samples[n];
    }
    const double seconds = toSeconds(result.sim_time);
    if (seconds > 0)
        result.samples_per_s =
            static_cast<double>(result.samples) / seconds;
    result.fabric_bandwidth = net->observedBandwidth();
    return result;
}

} // namespace axe
} // namespace lsdgnn
