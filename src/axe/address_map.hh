/**
 * @file
 * Address-space layout of a stored graph partition.
 *
 * The load unit works on byte addresses so the coalescing cache and
 * the MoF packer see realistic locality. The map places the CSR
 * offsets array, the adjacency (targets) array and the attribute
 * table at disjoint base addresses, exactly as the PoC firmware lays
 * a partition out in DDR.
 */

#ifndef LSDGNN_AXE_ADDRESS_MAP_HH
#define LSDGNN_AXE_ADDRESS_MAP_HH

#include <cstdint>

#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace axe {

/** Byte-address layout for one graph. */
class GraphAddressMap
{
  public:
    /**
     * @param graph Graph whose arrays are being addressed.
     * @param attr_bytes_per_node Attribute record size.
     */
    GraphAddressMap(const graph::CsrGraph &graph,
                    std::uint64_t attr_bytes_per_node)
        : graph_(graph), attrBytes(attr_bytes_per_node)
    {
        offsetsBase = 0;
        targetsBase = offsetsBase +
            (graph.numNodes() + 1) * sizeof(std::uint64_t);
        attrsBase = targetsBase +
            graph.numEdges() * sizeof(graph::NodeId);
        // Round the attribute table up to a fresh 4 KiB page.
        attrsBase = (attrsBase + 4095) & ~std::uint64_t(4095);
    }

    /** Address of the CSR offsets entry for @p node (degree read). */
    std::uint64_t
    degreeAddress(graph::NodeId node) const
    {
        return offsetsBase + node * sizeof(std::uint64_t);
    }

    /** Address of adjacency slot @p k of @p node. */
    std::uint64_t
    neighborAddress(graph::NodeId node, std::uint64_t k) const
    {
        return targetsBase + graph_.adjacencyByteOffset(node) +
            k * sizeof(graph::NodeId);
    }

    /** Address of @p node's attribute record. */
    std::uint64_t
    attributeAddress(graph::NodeId node) const
    {
        return attrsBase + node * attrBytes;
    }

    std::uint64_t attrBytesPerNode() const { return attrBytes; }

  private:
    const graph::CsrGraph &graph_;
    std::uint64_t attrBytes;
    std::uint64_t offsetsBase;
    std::uint64_t targetsBase;
    std::uint64_t attrsBase;
};

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_ADDRESS_MAP_HH
