#include "config.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace axe {

fabric::LinkParams
AxeConfig::localMemLink() const
{
    switch (local_mem) {
      case LocalMemKind::PcieHostDram:
        return fabric::catalog::pcieHostDram().params();
      case LocalMemKind::FpgaDdr:
        return fabric::catalog::localDdr4Channel(ddr_channels).params();
    }
    lsd_panic("unknown local memory kind");
}

fabric::LinkParams
AxeConfig::remoteMemLink() const
{
    switch (remote_mem) {
      case RemoteMemKind::PcieNic:
        return fabric::catalog::rdmaRemoteDram().params();
      case RemoteMemKind::OnFpgaNic:
        return fabric::catalog::onFpgaNic().params();
      case RemoteMemKind::MofFabric:
        return fabric::catalog::mofFabric().params();
    }
    lsd_panic("unknown remote memory kind");
}

fabric::LinkParams
AxeConfig::outputLink() const
{
    if (fast_output_link)
        return fabric::catalog::gpuFastLink().params();
    return fabric::catalog::pcieHostDram().params();
}

AxeConfig
AxeConfig::poc()
{
    AxeConfig cfg;
    cfg.num_cores = 2;
    cfg.clock_mhz = 250.0;
    cfg.pipeline_depth = 5;
    cfg.ooo_enabled = true;
    cfg.scoreboard_entries = 64;
    cfg.cache_bytes = 8 * 1024;
    cfg.local_mem = LocalMemKind::FpgaDdr;
    cfg.ddr_channels = 4;
    cfg.remote_mem = RemoteMemKind::MofFabric;
    cfg.num_nodes = 4;
    return cfg;
}

AxeConfig
AxeConfig::pocHostMem()
{
    AxeConfig cfg = poc();
    cfg.local_mem = LocalMemKind::PcieHostDram;
    return cfg;
}

} // namespace axe
} // namespace lsdgnn
