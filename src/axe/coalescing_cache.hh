/**
 * @file
 * The 8 KB coalescing cache (paper Tech-4).
 *
 * LSD-GNN has essentially no temporal reuse (a 512-node batch against
 * ten billion nodes), so the paper rejects big caches and provisions
 * only enough SRAM to coalesce spatially adjacent fine-grained reads:
 * adjacency slots and attribute words that share a line. This is a
 * set-associative, LRU, line-granular cache with hit/miss accounting.
 */

#ifndef LSDGNN_AXE_COALESCING_CACHE_HH
#define LSDGNN_AXE_COALESCING_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace lsdgnn {
namespace axe {

/**
 * Functional coalescing cache over byte addresses.
 */
class CoalescingCache
{
  public:
    /**
     * @param size_bytes Total capacity (paper: 8 KB).
     * @param line_bytes Line size (64 B).
     * @param ways Associativity.
     */
    CoalescingCache(std::uint32_t size_bytes, std::uint32_t line_bytes,
                    std::uint32_t ways = 4);

    /**
     * Access one address; fills the line on miss.
     * @return true on hit (request coalesced, no memory traffic).
     */
    bool access(std::uint64_t address);

    /** Invalidate everything (between batches / tasks). */
    void flush();

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    double
    hitRate() const
    {
        const auto total = hits() + misses();
        return total == 0 ? 0.0
            : static_cast<double>(hits()) / static_cast<double>(total);
    }

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t numSets() const { return sets; }

    /**
     * Line-reuse distance distribution: accesses between two touches
     * of the same resident line. Mass near zero is exactly the
     * spatial coalescing the 8 KB provisioning bets on; a long tail
     * would argue for a bigger cache.
     */
    const stats::Histogram &reuseDistance() const { return reuse; }

    /** Register hit/miss counters and the reuse histogram. */
    void addStats(stats::StatGroup &group, const std::string &prefix);

  private:
    struct Line {
        std::uint64_t tag = ~0ull;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint32_t lineBytes_;
    std::uint32_t ways_;
    std::uint32_t sets;
    std::uint64_t tick = 0;
    std::vector<Line> lines; // sets * ways
    stats::Counter hits_;
    stats::Counter misses_;
    stats::Histogram reuse{0.0, 1024.0, 64};
};

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_COALESCING_CACHE_HH
