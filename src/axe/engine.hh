/**
 * @file
 * The Access Engine: decoder/scheduler plus N homogeneous cores
 * sharing the memory links and the command/data IO (paper Fig. 5).
 *
 * The engine is also the measurement harness for the PoC experiments:
 * run() executes a stream of batch tasks against a graph and reports
 * the achieved sampling rate, which the Fig. 7 / Fig. 14 / Fig. 15 /
 * Tech-3 benches consume.
 */

#ifndef LSDGNN_AXE_ENGINE_HH
#define LSDGNN_AXE_ENGINE_HH

#include <memory>
#include <vector>

#include "axe/core.hh"
#include "graph/attributes.hh"
#include "graph/partition.hh"
#include "mof/endpoint.hh"

namespace lsdgnn {
namespace axe {

/** Result of one engine run. */
struct EngineRunResult {
    /** Samples fully emitted over the run. */
    std::uint64_t samples = 0;
    /** Batches completed. */
    std::uint64_t batches = 0;
    /** Simulated wall time of the run. */
    Tick sim_time = 0;
    /** Achieved sampling rate, samples/second. */
    double samples_per_s = 0;
    /** Achieved batch rate, batches/second. */
    double batches_per_s = 0;
    /** Coalescing-cache hit rate over all cores. */
    double cache_hit_rate = 0;
    /** Mean outstanding-window occupancy proxy: loads per core. */
    double loads_per_core = 0;
};

/**
 * Multi-core access engine bound to one graph partition layout.
 */
class AccessEngine
{
  public:
    /**
     * @param config Engine configuration (Table 10 defaults).
     * @param graph Graph to sample.
     * @param attr_bytes_per_node Attribute record size.
     * @param seed Random seed for root selection and sampling.
     */
    AccessEngine(AxeConfig config, const graph::CsrGraph &graph,
                 std::uint64_t attr_bytes_per_node,
                 std::uint64_t seed = 1);

    /**
     * Execute @p num_batches sampling tasks of @p plan with uniformly
     * random roots, distributing tasks over the cores round-robin.
     */
    EngineRunResult run(const sampling::SamplePlan &plan,
                        std::uint32_t num_batches);

    const AxeConfig &config() const { return config_; }

    /** Per-link observed stats (tests / deeper reporting). */
    const fabric::SimLink &localLink() const { return *local; }
    const fabric::SimLink &remoteLink() const { return *remote; }
    const fabric::SimLink &outputIo() const { return *output; }

    /** Packing endpoint; non-null when config.mof_packing is set. */
    const mof::MofEndpoint *packingEndpoint() const
    {
        return packer.get();
    }

    /** The engine's event queue (periodic samplers attach here). */
    sim::EventQueue &eventQueue() { return eventq; }

    /**
     * Dump every component's statistics in gem5 "name.stat value"
     * form: links, per-core counters, load units and caches.
     */
    void reportStats(std::ostream &os) const;

  private:
    std::uint32_t homeOf(graph::NodeId node) const;

    AxeConfig config_;
    const graph::CsrGraph &graph_;
    GraphAddressMap map_;
    Rng rootRng;
    sim::EventQueue eventq;
    std::unique_ptr<fabric::SimLink> local;
    std::unique_ptr<fabric::SimLink> remote;
    std::unique_ptr<mof::MofEndpoint> packer;
    std::unique_ptr<fabric::SimLink> output;
    std::vector<std::unique_ptr<AxeCore>> cores;
};

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_ENGINE_HH
