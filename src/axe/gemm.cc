#include "gemm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lsdgnn {
namespace axe {

GemmEngine::GemmEngine(std::uint32_t rows, std::uint32_t cols,
                       double clock_mhz)
    : rows_(rows), cols_(cols), clock(clock_mhz)
{
    lsd_assert(rows > 0 && cols > 0, "array must have PEs");
}

double
GemmEngine::peakFlops() const
{
    // Each PE does one MAC (2 FLOPs) per cycle.
    return 2.0 * rows_ * cols_ * clock.frequencyHz();
}

ComputeResult
GemmEngine::matmul(std::span<const float> a, std::span<const float> b,
                   std::span<float> c, std::uint32_t m, std::uint32_t k,
                   std::uint32_t n) const
{
    lsd_assert(a.size() == static_cast<std::size_t>(m) * k,
               "A shape mismatch");
    lsd_assert(b.size() == static_cast<std::size_t>(k) * n,
               "B shape mismatch");
    lsd_assert(c.size() == static_cast<std::size_t>(m) * n,
               "C shape mismatch");

    // Functional result.
    std::fill(c.begin(), c.end(), 0.0f);
    for (std::uint32_t i = 0; i < m; ++i)
        for (std::uint32_t kk = 0; kk < k; ++kk) {
            const float aik = a[static_cast<std::size_t>(i) * k + kk];
            if (aik == 0.0f)
                continue;
            const std::size_t arow = static_cast<std::size_t>(i) * n;
            const std::size_t brow = static_cast<std::size_t>(kk) * n;
            for (std::uint32_t j = 0; j < n; ++j)
                c[arow + j] += aik * b[brow + j];
        }

    // Timing: output-stationary tiling — each (rows x cols) output
    // tile streams K partial sums plus the array fill/drain latency.
    const std::uint64_t tiles =
        ((m + rows_ - 1) / rows_) *
        static_cast<std::uint64_t>((n + cols_ - 1) / cols_);
    const std::uint64_t fill = rows_ + cols_;
    ComputeResult result;
    result.cycles = tiles * (k + fill);
    result.time = clock.cycles(result.cycles);
    const double flops = 2.0 * m * n * static_cast<double>(k);
    result.flops_per_s = flops / toSeconds(result.time);
    return result;
}

VpuEngine::VpuEngine(std::uint32_t lanes, double clock_mhz)
    : lanes_(lanes), clock(clock_mhz)
{
    lsd_assert(lanes > 0, "VPU must have lanes");
}

ComputeResult
VpuEngine::reduce(std::span<const float> input, std::span<float> output,
                  std::uint32_t groups, std::uint32_t group_size,
                  std::uint32_t dim, VpuReduceOp op) const
{
    lsd_assert(group_size > 0, "group must contain vectors");
    lsd_assert(input.size() ==
               static_cast<std::size_t>(groups) * group_size * dim,
               "input shape mismatch");
    lsd_assert(output.size() == static_cast<std::size_t>(groups) * dim,
               "output shape mismatch");

    for (std::uint32_t g = 0; g < groups; ++g) {
        const std::size_t out_base = static_cast<std::size_t>(g) * dim;
        const std::size_t in_base =
            static_cast<std::size_t>(g) * group_size * dim;
        for (std::uint32_t d = 0; d < dim; ++d) {
            float acc = input[in_base + d];
            for (std::uint32_t v = 1; v < group_size; ++v) {
                const float x = input[in_base +
                    static_cast<std::size_t>(v) * dim + d];
                acc = op == VpuReduceOp::Max ? std::max(acc, x)
                                             : acc + x;
            }
            if (op == VpuReduceOp::Mean)
                acc /= static_cast<float>(group_size);
            output[out_base + d] = acc;
        }
    }

    // Timing: every input element passes a lane once.
    const std::uint64_t elements =
        static_cast<std::uint64_t>(groups) * group_size * dim;
    ComputeResult result;
    result.cycles = (elements + lanes_ - 1) / lanes_;
    result.time = clock.cycles(result.cycles);
    result.flops_per_s =
        static_cast<double>(elements) / toSeconds(result.time);
    return result;
}

ReductionSaving
reductionSaving(std::uint32_t fanout, std::uint32_t attr_bytes,
                std::uint32_t record_header)
{
    lsd_assert(fanout > 0, "fanout must be positive");
    ReductionSaving s;
    s.raw_bytes = static_cast<std::uint64_t>(fanout) *
        (record_header + attr_bytes);
    s.reduced_bytes = record_header + attr_bytes;
    s.factor = static_cast<double>(s.raw_bytes) /
        static_cast<double>(s.reduced_bytes);
    return s;
}

} // namespace axe
} // namespace lsdgnn
