/**
 * @file
 * AxE command interface (paper Table 4).
 *
 * The engine is driven by commands arriving from the RISC-V
 * controller (via QRCH) or the host (via PCIe): set/read CSR,
 * sample n-hop, read node attributes, read edge attributes, negative
 * sample. Commands are fixed 64-bit words so they fit one QRCH
 * enqueue; the decoder validates and dispatches them against a bound
 * graph + engine, and posts completions to a response queue.
 *
 * This is the programmability layer that lets AliGraph offload its
 * sampling operators without knowing anything about the hardware
 * underneath (Section 5's "accelerator operator-level" interface).
 */

#ifndef LSDGNN_AXE_COMMAND_HH
#define LSDGNN_AXE_COMMAND_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "axe/gemm.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "graph/csr_graph.hh"
#include "sampling/minibatch.hh"
#include "sampling/negative.hh"

namespace lsdgnn {
namespace axe {

/** Command opcodes (Table 4, plus the algebra-operator level). */
enum class CommandOp : std::uint8_t {
    SetCsr = 0,
    ReadCsr = 1,
    SampleNHop = 2,
    ReadNodeAttr = 3,
    ReadEdgeAttr = 4,
    NegativeSample = 5,
    /**
     * Algebra-operator level (paper Section 5, level 3): run the
     * optional GEMM engine on the shared on-chip RAM. Dimensions come
     * from CSRs (csr_gemm_m/k/n); operands are the attribute records
     * of a node window starting at the operand (A) and the decoder's
     * persistent weight buffer (B).
     */
    Gemm = 6,
};

/**
 * One 64-bit command word.
 *
 * Layout: [63:56] opcode, [55:48] arg0 (hops / CSR index),
 * [47:40] arg1 (sample rate / batch log2), [39:0] operand (root
 * node base, node ID, or CSR value depending on the opcode).
 */
class CommandWord
{
  public:
    CommandWord() = default;

    CommandWord(CommandOp op, std::uint8_t arg0, std::uint8_t arg1,
                std::uint64_t operand)
    {
        lsd_assert(operand < (1ull << 40), "command operand overflow");
        word = (static_cast<std::uint64_t>(op) << 56) |
               (static_cast<std::uint64_t>(arg0) << 48) |
               (static_cast<std::uint64_t>(arg1) << 40) | operand;
    }

    explicit CommandWord(std::uint64_t raw) : word(raw) {}

    CommandOp op() const
    {
        return static_cast<CommandOp>(word >> 56);
    }
    std::uint8_t arg0() const
    {
        return static_cast<std::uint8_t>(word >> 48);
    }
    std::uint8_t arg1() const
    {
        return static_cast<std::uint8_t>(word >> 40);
    }
    std::uint64_t operand() const
    {
        return word & ((1ull << 40) - 1);
    }
    std::uint64_t raw() const { return word; }

    std::uint32_t lo() const
    {
        return static_cast<std::uint32_t>(word);
    }
    std::uint32_t hi() const
    {
        return static_cast<std::uint32_t>(word >> 32);
    }

    /** Reassemble from the two QRCH words. */
    static CommandWord
    fromHalves(std::uint32_t lo, std::uint32_t hi)
    {
        return CommandWord((static_cast<std::uint64_t>(hi) << 32) | lo);
    }

  private:
    std::uint64_t word = 0;
};

/** Table 4 command helpers. */
namespace commands {

/** set CSR[idx] = value (40-bit). */
CommandWord setCsr(std::uint8_t idx, std::uint64_t value);
/** read CSR[idx] (value returned in the response). */
CommandWord readCsr(std::uint8_t idx);
/** sample `hops` hops at `rate` fan-out from `batch` roots starting
 *  at node `root_base` (roots are root_base..root_base+batch-1). */
CommandWord sampleNHop(std::uint8_t hops, std::uint8_t rate,
                       std::uint64_t root_base);
/** read the attribute record of `node`. */
CommandWord readNodeAttr(std::uint64_t node);
/** read the edge attribute of the pair packed in the operand. */
CommandWord readEdgeAttr(std::uint32_t src, std::uint8_t k);
/** draw `rate` negatives for pair (src, dst packed via CSR). */
CommandWord negativeSample(std::uint8_t rate, std::uint64_t src);
/** run the GEMM engine over the node window starting at `node_base`
 *  (dimensions from CSRs). */
CommandWord gemm(std::uint64_t node_base);

} // namespace commands

/** Completion record the decoder posts per finished command. */
struct CommandResponse {
    CommandOp op;
    /** CSR value, sampled-node count, or first payload word. */
    std::uint64_t value = 0;
    /** OK=0, error codes otherwise. */
    std::uint32_t status = 0;
};

/**
 * Functional command decoder bound to one graph partition.
 *
 * The decoder owns the engine-visible CSR file (32 x 32-bit as in
 * Table 10) and executes Table 4 commands against the bound graph.
 * Batch size for SampleNHop comes from CSR[csr_batch_size]; the
 * negative-sample destination comes from CSR[csr_neg_dst].
 */
class CommandDecoder
{
  public:
    static constexpr std::uint32_t num_csrs = 32;
    /** CSR indices with architectural meaning. */
    static constexpr std::uint8_t csr_batch_size = 0;
    static constexpr std::uint8_t csr_neg_dst = 1;
    static constexpr std::uint8_t csr_seed = 2;
    static constexpr std::uint8_t csr_gemm_m = 3;
    static constexpr std::uint8_t csr_gemm_n = 4;

    /**
     * @param graph Bound graph partition.
     * @param attrs Attribute store of the partition.
     * @param sampler Sampling algorithm for SampleNHop.
     */
    CommandDecoder(const graph::CsrGraph &graph,
                   const graph::AttributeStore &attrs,
                   const sampling::NeighborSampler &sampler);

    /** Execute one command; returns the completion record. */
    CommandResponse execute(CommandWord cmd);

    /** Result of the most recent SampleNHop (frontiers per hop). */
    const sampling::SampleResult &lastSample() const
    {
        return lastSample_;
    }

    /**
     * Move the most recent SampleNHop result out of the decoder
     * (avoids one deep copy on the host read-back path). The decoder's
     * stored result is left empty-but-valid; the next SampleNHop
     * refills it.
     */
    sampling::SampleResult takeLastSample()
    {
        return std::move(lastSample_);
    }

    /** Attribute payload of the most recent ReadNodeAttr. */
    const std::vector<float> &lastAttributes() const
    {
        return lastAttrs;
    }

    /** Negatives of the most recent NegativeSample. */
    const std::vector<graph::NodeId> &lastNegatives() const
    {
        return lastNegs;
    }

    /**
     * Load the persistent GEMM weight matrix (K = attr_len rows,
     * csr_gemm_n columns) — the host writes it once per model.
     */
    void loadGemmWeights(std::vector<float> weights);

    /** Result matrix of the most recent Gemm command (row major). */
    const std::vector<float> &lastGemmResult() const
    {
        return gemmResult;
    }

    std::uint32_t csr(std::uint8_t idx) const;

    /** Commands executed (by status). */
    std::uint64_t completed() const { return completed_; }
    std::uint64_t faulted() const { return faulted_; }

  private:
    const graph::CsrGraph &graph_;
    const graph::AttributeStore &attrs_;
    const sampling::NeighborSampler &sampler_;
    sampling::NegativeSampler negSampler;
    /** Persistent sampling engine: its scratch arenas model the AxE
     *  pipeline's on-chip buffers, which live across commands. */
    sampling::MiniBatchSampler engine_;
    std::vector<std::uint32_t> csrs;
    Rng rng_;
    std::vector<graph::NodeId> rootScratch;
    sampling::SampleResult lastSample_;
    std::vector<float> lastAttrs;
    std::vector<graph::NodeId> lastNegs;
    GemmEngine gemmEngine;
    std::vector<float> gemmWeights;
    std::vector<float> gemmResult;
    std::uint64_t completed_ = 0;
    std::uint64_t faulted_ = 0;
};

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_COMMAND_HH
