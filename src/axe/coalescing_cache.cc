#include "coalescing_cache.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace axe {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CoalescingCache::CoalescingCache(std::uint32_t size_bytes,
                                 std::uint32_t line_bytes,
                                 std::uint32_t ways)
    : lineBytes_(line_bytes), ways_(ways)
{
    lsd_assert(isPowerOfTwo(line_bytes), "line size must be a power of 2");
    lsd_assert(ways > 0, "cache needs at least one way");
    lsd_assert(size_bytes >= line_bytes * ways,
               "cache smaller than one set");
    sets = size_bytes / (line_bytes * ways);
    lsd_assert(isPowerOfTwo(sets), "set count must be a power of 2");
    lines.assign(static_cast<std::size_t>(sets) * ways, Line{});
}

bool
CoalescingCache::access(std::uint64_t address)
{
    const std::uint64_t line_addr = address / lineBytes_;
    const std::uint32_t set = static_cast<std::uint32_t>(
        line_addr & (sets - 1));
    const std::uint64_t tag = line_addr >> __builtin_ctz(sets);
    Line *base = &lines[static_cast<std::size_t>(set) * ways_];
    ++tick;

    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            // line.lru is the access sequence number of the previous
            // touch, so the gap is the reuse distance in accesses.
            reuse.sample(static_cast<double>(tick - line.lru));
            line.lru = tick;
            hits_.inc();
            return true;
        }
    }
    // Miss: evict an invalid way if any, otherwise the LRU way.
    Line *victim = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    misses_.inc();
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick;
    return false;
}

void
CoalescingCache::flush()
{
    for (auto &line : lines)
        line.valid = false;
}

void
CoalescingCache::addStats(stats::StatGroup &group,
                          const std::string &prefix)
{
    group.addCounter(prefix + ".hits", &hits_, "coalesced accesses");
    group.addCounter(prefix + ".misses", &misses_, "line fills");
    group.addHistogram(prefix + ".reuse", &reuse,
                       "accesses between touches of a resident line");
}

} // namespace axe
} // namespace lsdgnn
