/**
 * @file
 * Access Engine configuration.
 *
 * Mirrors Table 10 (PoC configuration) by default: dual-core AxE at
 * 250 MHz, 4-channel DDR4-1600 local memory, MoF as remote memory IO
 * and PCIe Gen3 x16 as command/result IO. Every knob the paper turns
 * (core count, memory channels, OoO window, pipeline depth, cache
 * size, sampler flavor) is a field here.
 */

#ifndef LSDGNN_AXE_CONFIG_HH
#define LSDGNN_AXE_CONFIG_HH

#include <cstdint>
#include <string>

#include "fabric/link.hh"

namespace lsdgnn {
namespace axe {

/** Where the engine's local graph partition lives. */
enum class LocalMemKind {
    /** PCIe-attached host DRAM (base/cost/comm-opt FaaS). */
    PcieHostDram,
    /** FPGA-attached DDR4 channels (mem-opt FaaS, PoC option). */
    FpgaDdr,
};

/** How remote partitions are reached. */
enum class RemoteMemKind {
    /** PCIe -> standalone NIC -> remote host (base FaaS). */
    PcieNic,
    /** On-FPGA NIC (cost-opt FaaS). */
    OnFpgaNic,
    /** Dedicated MoF fabric (comm-opt / mem-opt FaaS, PoC). */
    MofFabric,
};

/** Full engine configuration. */
struct AxeConfig {
    /** Number of homogeneous AxE cores. */
    std::uint32_t num_cores = 2;
    /** Datapath clock in MHz (paper: 250 MHz). */
    double clock_mhz = 250.0;
    /**
     * Depth of the producer/consumer FIFO pipeline inside each stage
     * (paper Fig. 7 sweeps this; 5 is the GetNeighbor sub-module
     * depth of Fig. 6).
     */
    std::uint32_t pipeline_depth = 5;
    /** Out-of-order load unit enabled (Tech-3). */
    bool ooo_enabled = true;
    /** Scoreboard entries = max outstanding requests per core. */
    std::uint32_t scoreboard_entries = 64;
    /** Coalescing cache size in bytes (paper Tech-4: 8 KB). */
    std::uint32_t cache_bytes = 8 * 1024;
    /** Cache line size in bytes. */
    std::uint32_t cache_line_bytes = 64;
    /** Local memory attachment. */
    LocalMemKind local_mem = LocalMemKind::FpgaDdr;
    /** FPGA DDR channels when local_mem == FpgaDdr (12.8 GB/s each). */
    std::uint32_t ddr_channels = 4;
    /** Remote memory attachment. */
    RemoteMemKind remote_mem = RemoteMemKind::MofFabric;
    /** Number of FPGA nodes holding graph partitions (1 = all local). */
    std::uint32_t num_nodes = 1;
    /**
     * Front the remote link with a dynamic MoF packing endpoint
     * (staging buffer + aging timer) instead of issuing each remote
     * read as its own package. Off by default: the aggregate-link
     * model already prices packed traffic into its parameters.
     */
    bool mof_packing = false;
    /**
     * Result output is serialized over the command IO (PCIe) unless
     * a faster data path exists (mem-opt.tc's GPU fast link).
     */
    bool fast_output_link = false;
    /** Sampler implementing GetSample ("streaming-step" default). */
    std::string sampler = "streaming-step";

    /** Link parameters of the configured local memory path. */
    fabric::LinkParams localMemLink() const;
    /** Link parameters of the configured remote memory path. */
    fabric::LinkParams remoteMemLink() const;
    /** Link parameters of the result output path. */
    fabric::LinkParams outputLink() const;

    /** Table 10 PoC configuration, FPGA-local-DRAM flavor. */
    static AxeConfig poc();
    /** PoC flavor with PCIe host memory as local storage. */
    static AxeConfig pocHostMem();
};

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_CONFIG_HH
