/**
 * @file
 * AxE load unit (paper Tech-3).
 *
 * The load unit is the component that turns AxE into a latency-hiding
 * machine: it keeps a scoreboard of outstanding tagged requests,
 * issues them out of order against the local and remote memory links,
 * and completes them whenever responses return — the 128-bit context
 * tag, not a thread, carries everything needed to resume. Disabling
 * OoO collapses the scoreboard to a single entry (issue, wait,
 * retire), which is the configuration the paper's "30x" comparison
 * uses as its baseline.
 *
 * An 8 KB coalescing cache (Tech-4) sits in front of the links:
 * accesses that hit a resident line complete next cycle and generate
 * no memory traffic.
 */

#ifndef LSDGNN_AXE_LOAD_UNIT_HH
#define LSDGNN_AXE_LOAD_UNIT_HH

#include <deque>
#include <functional>
#include <memory>

#include "axe/coalescing_cache.hh"
#include "axe/config.hh"
#include "fabric/sim_link.hh"
#include "mof/tag.hh"
#include "sim/component.hh"

namespace lsdgnn {
namespace axe {

/** A tagged load the pipeline hands to the load unit. */
struct Load {
    std::uint64_t address = 0;
    std::uint32_t bytes = 8;
    bool remote = false;
    /** Owning endpoint when remote (routed fabrics use it). */
    std::uint32_t dest = 0;
    mof::ContextTag tag;
    /** Invoked at completion time with the original tag. */
    std::function<void(const mof::ContextTag &)> done;
};

/**
 * Scoreboarded, optionally out-of-order load unit.
 */
class LoadUnit : public sim::Component
{
  public:
    /**
     * @param eq Shared event queue.
     * @param name Component name.
     * @param local Local memory link (shared across the engine).
     * @param remote Remote memory link (shared across the engine).
     * @param config Engine configuration (OoO flag, scoreboard size,
     *        cache geometry, clock).
     */
    LoadUnit(sim::EventQueue &eq, const std::string &name,
             fabric::MemoryPort &local, fabric::MemoryPort &remote,
             const AxeConfig &config);

    /**
     * Submit a load. Accepted unconditionally into the issue queue;
     * the scoreboard gates actual issue.
     */
    void submit(Load load);

    /** True when no loads are queued or in flight. */
    bool idle() const { return inflight == 0 && issueQueue.empty(); }

    /** Outstanding (issued, incomplete) loads. */
    std::uint32_t outstanding() const { return inflight; }

    /** Cache behind this load unit (stats access). */
    const CoalescingCache &cache() const { return cache_; }

    std::uint64_t loadsCompleted() const { return completed.value(); }

  private:
    void tryIssue();
    void finish(const Load &load);

    fabric::MemoryPort &localLink;
    fabric::MemoryPort &remoteLink;
    CoalescingCache cache_;
    Clock clock;
    std::uint32_t window; ///< scoreboard entries (1 when in-order)
    std::uint32_t inflight = 0;
    std::deque<Load> issueQueue;

    stats::Counter completed;
    stats::Counter cacheBypassed;
    stats::Counter localIssued;
    stats::Counter remoteIssued;
};

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_LOAD_UNIT_HH
