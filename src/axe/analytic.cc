#include "analytic.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace lsdgnn {
namespace axe {

AnalyticPrediction
predictEngineRate(const AxeConfig &config,
                  const sampling::WorkloadProfile &profile,
                  double cache_hit_rate)
{
    lsd_assert(profile.samples_per_batch > 0, "profile has no samples");
    lsd_assert(cache_hit_rate >= 0.0 && cache_hit_rate <= 1.0,
               "hit rate must be a fraction");

    const double samples = profile.samples_per_batch;
    const double s_req = profile.structure_requests_per_batch / samples;
    const double a_req = profile.attribute_requests_per_batch / samples;
    const double attr_b =
        static_cast<double>(profile.attr_bytes_per_node);
    const double line = config.cache_line_bytes;

    const double r = config.num_nodes <= 1
        ? 0.0
        : static_cast<double>(config.num_nodes - 1) /
          static_cast<double>(config.num_nodes);

    const fabric::LinkParams local = config.localMemLink();
    const fabric::LinkParams remote = config.remoteMemLink();
    const fabric::LinkParams out = config.outputLink();

    // Local path: structure misses fill whole lines, hits are free;
    // attribute records move at their true size. Each issued request
    // pays the link's protocol overhead.
    const double local_sreq = (1.0 - r) * s_req * (1.0 - cache_hit_rate);
    const double local_areq = (1.0 - r) * a_req;
    const double local_bytes = local_sreq * line + local_areq * attr_b +
        (local_sreq + local_areq) *
        static_cast<double>(local.per_request_overhead);

    // Remote path: fine-grained reads keep their true size (packing
    // happens in MoF); requests pay the remote overhead.
    const double remote_reqs = r * (s_req + a_req);
    const double remote_bytes = r * (s_req * 8.0 + a_req * attr_b) +
        remote_reqs * static_cast<double>(remote.per_request_overhead);

    // Output: one result record per sample.
    const double out_bytes = 8.0 + attr_b +
        static_cast<double>(out.per_request_overhead);

    AnalyticPrediction pred;
    pred.local_limit = local_bytes > 0
        ? local.peak_bandwidth / local_bytes
        : std::numeric_limits<double>::infinity();
    pred.remote_limit = remote_bytes > 0
        ? remote.peak_bandwidth / remote_bytes
        : std::numeric_limits<double>::infinity();
    pred.output_limit = out.peak_bandwidth / out_bytes;

    // Outstanding window (Eq. 3): issued requests hold scoreboard
    // slots for the path round-trip.
    const double issued = local_sreq + local_areq + remote_reqs;
    const double local_share =
        issued > 0 ? (local_sreq + local_areq) / issued : 0.0;
    const double avg_latency =
        local_share * toSeconds(local.base_latency) +
        (1.0 - local_share) * toSeconds(remote.base_latency);
    const double window = static_cast<double>(config.num_cores) *
        (config.ooo_enabled ? config.scoreboard_entries : 1);
    pred.window_limit = (avg_latency > 0 && issued > 0)
        ? window / (avg_latency * issued)
        : std::numeric_limits<double>::infinity();

    // Datapath clock: one request per cycle per core.
    const Clock clock(config.clock_mhz);
    pred.clock_limit = static_cast<double>(config.num_cores) *
        clock.frequencyHz() / std::max(issued, 1e-9);

    pred.samples_per_s = pred.local_limit;
    pred.bottleneck = "local-mem";
    const auto consider = [&pred](double limit, const char *name) {
        if (limit < pred.samples_per_s) {
            pred.samples_per_s = limit;
            pred.bottleneck = name;
        }
    };
    consider(pred.remote_limit, "remote-link");
    consider(pred.output_limit, "output");
    consider(pred.window_limit, "core-window");
    consider(pred.clock_limit, "core-clock");
    return pred;
}

} // namespace axe
} // namespace lsdgnn
