/**
 * @file
 * Multi-card scale-out simulation (the PoC's 4-card P2P system of
 * Fig. 13, generalized to N endpoints).
 *
 * Unlike AccessEngine — which folds "remote" into one aggregate link
 * — MultiNodeSystem instantiates every card: each node owns its DDR
 * link, its PCIe output and its AxE cores, and remote reads route
 * through the shared FabricNetwork as an explicit request packet to
 * the home card, a read against *that card's* DDR (contending with
 * its own traffic), and a response transfer back. Port contention,
 * victim-node hot-spots and the MoF bandwidth ceiling all emerge
 * from first principles.
 */

#ifndef LSDGNN_AXE_MULTI_NODE_HH
#define LSDGNN_AXE_MULTI_NODE_HH

#include <memory>
#include <vector>

#include "axe/core.hh"
#include "fabric/network.hh"

namespace lsdgnn {
namespace axe {

/** Scale-out configuration. */
struct MultiNodeConfig {
    /** Per-card engine configuration (num_nodes is ignored). */
    AxeConfig card = AxeConfig::poc();
    /** Number of cards. */
    std::uint32_t nodes = 4;
    /** Shared fabric (per-port bandwidth, flight latency). */
    fabric::FabricParams fabric;
    /** Wire bytes of one packed read request on the fabric. */
    std::uint32_t request_packet_bytes = 16;

    MultiNodeConfig()
    {
        fabric.endpoints = nodes;
        fabric.port_bandwidth = 25e9; // 200 Gb/s QSFP-DD per card
        fabric.flight_latency = nanoseconds(300);
    }
};

/** Result of one scale-out run. */
struct MultiRunResult {
    std::uint64_t samples = 0;
    Tick sim_time = 0;
    double samples_per_s = 0;
    /** Per-node emitted samples (load-balance check). */
    std::vector<std::uint64_t> per_node_samples;
    /** Aggregate fabric bandwidth observed. */
    double fabric_bandwidth = 0;
};

/**
 * N cards sampling one hash-partitioned graph over a shared fabric.
 */
class MultiNodeSystem
{
  public:
    /**
     * @param config System shape.
     * @param graph Shared graph (hash-partitioned across cards).
     * @param attr_bytes_per_node Attribute record size.
     * @param seed Determinism seed.
     */
    MultiNodeSystem(MultiNodeConfig config, const graph::CsrGraph &graph,
                    std::uint64_t attr_bytes_per_node,
                    std::uint64_t seed = 1);

    /**
     * Run @p batches_per_node batches on every card concurrently.
     */
    MultiRunResult run(const sampling::SamplePlan &plan,
                       std::uint32_t batches_per_node);

    std::uint32_t homeOf(graph::NodeId node) const;

    const fabric::FabricNetwork &fabricNetwork() const { return *net; }

  private:
    /**
     * Routed remote port of one card: request packet out, read at the
     * home card's DDR, response payload back.
     */
    class RemoteFabricPort : public fabric::MemoryPort
    {
      public:
        RemoteFabricPort(MultiNodeSystem &system, std::uint32_t self)
            : system_(system), self_(self)
        {}

        void request(std::uint64_t bytes, std::uint32_t dest,
                     Callback done) override;

      private:
        MultiNodeSystem &system_;
        std::uint32_t self_;
    };

    struct Node {
        std::unique_ptr<fabric::SimLink> ddr;
        std::unique_ptr<fabric::SimLink> output;
        std::unique_ptr<RemoteFabricPort> remote;
        std::vector<std::unique_ptr<AxeCore>> cores;
    };

    MultiNodeConfig config_;
    const graph::CsrGraph &graph_;
    GraphAddressMap map_;
    Rng rootRng;
    sim::EventQueue eventq;
    std::unique_ptr<fabric::FabricNetwork> net;
    std::vector<Node> nodes_;
};

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_MULTI_NODE_HH
