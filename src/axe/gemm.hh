/**
 * @file
 * Optional FP32 GEMM engine and vector processing unit (VPU).
 *
 * Paper Section 4.1: "an optional FP32 general matrix-multiplication
 * engine and an optional vector processing unit can be added to the
 * design... the FPGA compute units are preferable for reductions in
 * the sampling stages in order to reduce communication overhead,
 * such as the case for GCN."
 *
 * Both engines are functional (they compute real results) with a
 * cycle model matching a systolic array / SIMD lane datapath, so the
 * reduction ablation can quantify the communication win of
 * aggregating attributes on-FPGA before shipping them to the GPU.
 */

#ifndef LSDGNN_AXE_GEMM_HH
#define LSDGNN_AXE_GEMM_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hh"

namespace lsdgnn {
namespace axe {

/** Result of one offloaded operation. */
struct ComputeResult {
    /** Datapath cycles consumed. */
    std::uint64_t cycles = 0;
    /** Simulated time at the engine clock. */
    Tick time = 0;
    /** Achieved arithmetic rate, FLOP/s. */
    double flops_per_s = 0;
};

/**
 * Output-stationary systolic GEMM array.
 */
class GemmEngine
{
  public:
    /**
     * @param rows Systolic array rows (PE grid).
     * @param cols Systolic array columns.
     * @param clock_mhz Datapath clock.
     */
    GemmEngine(std::uint32_t rows = 32, std::uint32_t cols = 32,
               double clock_mhz = 250.0);

    /**
     * c[MxN] = a[MxK] * b[KxN], row major. @p c is overwritten.
     */
    ComputeResult matmul(std::span<const float> a,
                         std::span<const float> b, std::span<float> c,
                         std::uint32_t m, std::uint32_t k,
                         std::uint32_t n) const;

    /** Peak FP32 rate of this configuration. */
    double peakFlops() const;

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }

  private:
    std::uint32_t rows_;
    std::uint32_t cols_;
    Clock clock;
};

/** Elementwise reduction kinds the VPU supports. */
enum class VpuReduceOp {
    Max,
    Sum,
    Mean,
};

/**
 * SIMD vector unit: lane-parallel elementwise reductions over groups
 * of attribute vectors (the GCN/GraphSAGE aggregation).
 */
class VpuEngine
{
  public:
    /**
     * @param lanes SIMD lanes (FP32 each).
     * @param clock_mhz Datapath clock.
     */
    explicit VpuEngine(std::uint32_t lanes = 16,
                       double clock_mhz = 250.0);

    /**
     * Reduce @p group_size consecutive vectors of @p dim floats from
     * @p input into one vector per group in @p output.
     *
     * @pre input.size() == groups * group_size * dim.
     * @pre output.size() == groups * dim.
     */
    ComputeResult reduce(std::span<const float> input,
                         std::span<float> output, std::uint32_t groups,
                         std::uint32_t group_size, std::uint32_t dim,
                         VpuReduceOp op) const;

    std::uint32_t lanes() const { return lanes_; }

  private:
    std::uint32_t lanes_;
    Clock clock;
};

/**
 * Communication saving of in-fabric aggregation: shipping one reduced
 * vector per parent instead of `fanout` raw vectors shrinks the
 * output stream by ~fanout (modulo the per-record header).
 *
 * @return Output bytes per parent with/without reduction.
 */
struct ReductionSaving {
    std::uint64_t raw_bytes;
    std::uint64_t reduced_bytes;
    double factor;
};
ReductionSaving reductionSaving(std::uint32_t fanout,
                                std::uint32_t attr_bytes,
                                std::uint32_t record_header = 8);

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_GEMM_HH
