#include "engine.hh"

#include <ostream>

namespace lsdgnn {
namespace axe {

AccessEngine::AccessEngine(AxeConfig config, const graph::CsrGraph &graph,
                           std::uint64_t attr_bytes_per_node,
                           std::uint64_t seed)
    : config_(std::move(config)),
      graph_(graph),
      map_(graph, attr_bytes_per_node),
      rootRng(seed)
{
    lsd_assert(config_.num_cores > 0, "engine needs at least one core");
    lsd_assert(config_.num_nodes > 0, "engine needs at least one node");
    local = std::make_unique<fabric::SimLink>(eventq,
        config_.localMemLink());
    remote = std::make_unique<fabric::SimLink>(eventq,
        config_.remoteMemLink());
    if (config_.mof_packing)
        packer = std::make_unique<mof::MofEndpoint>(eventq, *remote,
            mof::EndpointParams{}, "mof.endpoint");
    output = std::make_unique<fabric::SimLink>(eventq,
        config_.outputLink());
    fabric::MemoryPort &remotePort =
        packer ? static_cast<fabric::MemoryPort &>(*packer) : *remote;
    for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
        cores.push_back(std::make_unique<AxeCore>(eventq,
            "axe.core" + std::to_string(c), config_, *local, remotePort,
            *output, rootRng.fork()));
    }
}

void
AccessEngine::reportStats(std::ostream &os) const
{
    local->stats().report(os);
    remote->stats().report(os);
    if (packer)
        packer->stats().report(os);
    output->stats().report(os);
    for (const auto &core : cores) {
        core->stats().report(os);
        core->loadUnit().stats().report(os);
    }
}

std::uint32_t
AccessEngine::homeOf(graph::NodeId node) const
{
    if (config_.num_nodes == 1)
        return 0;
    return static_cast<std::uint32_t>(
        (node * 0x9e3779b97f4a7c15ull >> 32) % config_.num_nodes);
}

EngineRunResult
AccessEngine::run(const sampling::SamplePlan &plan,
                  std::uint32_t num_batches)
{
    lsd_assert(num_batches > 0, "need at least one batch");

    // Pre-draw the batches so randomness is independent of timing.
    std::vector<std::vector<graph::NodeId>> batches(num_batches);
    for (auto &roots : batches) {
        roots.resize(plan.batch_size);
        for (auto &r : roots)
            r = rootRng.nextBounded(graph_.numNodes());
    }

    const HomeFunction home = [this](graph::NodeId n) {
        return homeOf(n);
    };

    // Round-robin dispatch: each core pulls its next batch when the
    // previous one drains, which is how the top scheduler distributes
    // independent tasks over homogeneous cores.
    std::uint32_t next_batch = 0;
    std::uint64_t batches_done = 0;
    std::function<void(std::uint32_t)> feed =
        [&](std::uint32_t core_idx) {
            if (next_batch >= batches.size())
                return;
            const std::uint32_t mine = next_batch++;
            cores[core_idx]->startBatch(graph_, map_, home, plan,
                std::move(batches[mine]), [&, core_idx] {
                    ++batches_done;
                    feed(core_idx);
                });
        };
    for (std::uint32_t c = 0;
         c < cores.size() && next_batch < batches.size(); ++c) {
        feed(c);
    }

    const Tick start = eventq.now();
    eventq.run();

    EngineRunResult result;
    result.batches = batches_done;
    result.sim_time = eventq.now() - start;
    std::uint64_t cache_hits = 0, cache_total = 0;
    for (const auto &core : cores) {
        result.samples += core->samplesEmitted();
        cache_hits += core->loadUnit().cache().hits();
        cache_total += core->loadUnit().cache().hits() +
            core->loadUnit().cache().misses();
        result.loads_per_core +=
            static_cast<double>(core->loadUnit().loadsCompleted());
    }
    result.loads_per_core /= static_cast<double>(cores.size());
    if (cache_total > 0)
        result.cache_hit_rate = static_cast<double>(cache_hits) /
            static_cast<double>(cache_total);
    const double seconds = toSeconds(result.sim_time);
    if (seconds > 0) {
        result.samples_per_s =
            static_cast<double>(result.samples) / seconds;
        result.batches_per_s =
            static_cast<double>(result.batches) / seconds;
    }
    lsd_assert(batches_done == num_batches,
               "engine finished ", batches_done, " of ", num_batches,
               " batches — pipeline deadlock?");
    return result;
}

} // namespace axe
} // namespace lsdgnn
