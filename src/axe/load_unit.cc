#include "load_unit.hh"

namespace lsdgnn {
namespace axe {

LoadUnit::LoadUnit(sim::EventQueue &eq, const std::string &name,
                   fabric::MemoryPort &local, fabric::MemoryPort &remote,
                   const AxeConfig &config)
    : sim::Component(eq, name),
      localLink(local),
      remoteLink(remote),
      cache_(config.cache_bytes, config.cache_line_bytes),
      clock(config.clock_mhz),
      window(config.ooo_enabled ? config.scoreboard_entries : 1)
{
    lsd_assert(window > 0, "scoreboard needs at least one entry");
    statGroup.addCounter("completed", &completed, "loads retired");
    statGroup.addCounter("coalesced", &cacheBypassed,
                         "loads served by the coalescing cache");
    statGroup.addCounter("local", &localIssued, "loads to local memory");
    statGroup.addCounter("remote", &remoteIssued,
                         "loads to remote memory");
    cache_.addStats(statGroup, "cache");
}

void
LoadUnit::submit(Load load)
{
    lsd_assert(load.done, "load needs a completion callback");
    issueQueue.push_back(std::move(load));
    tryIssue();
}

void
LoadUnit::tryIssue()
{
    const bool tracing = trace::Tracer::enabled();
    while (!issueQueue.empty() && inflight < window) {
        Load load = std::move(issueQueue.front());
        issueQueue.pop_front();

        // The coalescing cache fronts the local memory controller and
        // only for fine-grained (sub-line) reads: that is the spatial
        // coalescing Tech-4 provisions it for. Remote requests
        // coalesce in the MoF packer instead, and attribute records
        // are full-line bursts with nothing to coalesce.
        const bool cacheable = !load.remote &&
            load.bytes < cache_.lineBytes();
        const bool hit = cacheable && cache_.access(load.address);
        if (tracing && cacheable) {
            trace::Tracer::instance().counter(0,
                name() + ".cache.hit_rate", curTick(),
                cache_.hitRate());
        }
        if (hit) {
            cacheBypassed.inc();
            ++inflight;
            // Hit: completes on the next datapath cycle.
            eventq.scheduleAfter(clock.cycles(1),
                [this, load = std::move(load)]() {
                    --inflight;
                    finish(load);
                    tryIssue();
                });
            continue;
        }

        ++inflight;
        fabric::MemoryPort &link = load.remote ? remoteLink : localLink;
        (load.remote ? remoteIssued : localIssued).inc();
        // Cacheable misses fill a whole line; everything else moves
        // its true size.
        const std::uint32_t bytes = cacheable
            ? cache_.lineBytes()
            : load.bytes;
        const std::uint32_t dest = load.dest;
        link.request(bytes, dest, [this, load = std::move(load)]() {
            --inflight;
            finish(load);
            tryIssue();
        });
    }
    if (tracing) {
        // Scoreboard occupancy: the Tech-3 latency-hiding signal.
        trace::Tracer::instance().counter(0, name() + ".outstanding",
            curTick(), static_cast<double>(inflight));
    }
}

void
LoadUnit::finish(const Load &load)
{
    completed.inc();
    load.done(load.tag);
}

} // namespace axe
} // namespace lsdgnn
