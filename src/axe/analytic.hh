/**
 * @file
 * Closed-form throughput prediction for an AccessEngine configuration.
 *
 * This is the same steady-state bottleneck analysis the FaaS DSE uses
 * (faas/perf_model), specialized to an AxeConfig so it can be
 * validated against the discrete-event engine — the paper's Fig. 15,
 * where the analytical model tracks PoC measurements within 1 %.
 */

#ifndef LSDGNN_AXE_ANALYTIC_HH
#define LSDGNN_AXE_ANALYTIC_HH

#include "axe/config.hh"
#include "sampling/workload.hh"

namespace lsdgnn {
namespace axe {

/** Closed-form prediction for one engine. */
struct AnalyticPrediction {
    double samples_per_s = 0;
    /** Name of the binding constraint. */
    const char *bottleneck = "";
    double local_limit = 0;
    double remote_limit = 0;
    double output_limit = 0;
    double window_limit = 0;
    double clock_limit = 0;
};

/**
 * Predict the sampling rate of @p config on @p profile.
 *
 * @param config Engine configuration (cores, links, nodes).
 * @param profile Workload profile of the dataset/plan.
 * @param cache_hit_rate Expected coalescing-cache hit rate on local
 *        fine-grained reads (reduces local structure traffic); pass a
 *        measured value to tighten the prediction, 0 for worst case.
 */
AnalyticPrediction predictEngineRate(
    const AxeConfig &config, const sampling::WorkloadProfile &profile,
    double cache_hit_rate = 0.0);

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_ANALYTIC_HH
