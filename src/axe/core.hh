/**
 * @file
 * One AxE core: the GetNeighbor -> GetSample -> GetAttribute pipeline.
 *
 * Each core processes one sampling task (a batch of root nodes) at a
 * time, walking the multi-hop plan:
 *
 *  - GetNeighbor reads the node's degree (CSR offsets) and, once it
 *    returns, lets GetSample choose fan-out many adjacency positions;
 *    each chosen slot becomes one fine-grained neighbor load.
 *  - GetSample is the streaming step sampler by default (Tech-2): it
 *    picks positions in arrival order, so no candidate buffer exists.
 *  - GetAttribute issues the sampled node's feature-record read and,
 *    when it completes, streams the result out of the command/data IO.
 *
 * The pipeline is asynchronous and FIFO-connected (Tech-1): up to
 * `pipeline_depth` traversal items can be between degree-read and
 * last-neighbor-issued simultaneously, and all loads share the core's
 * OoO load unit (Tech-3), so responses interleave freely. Per-root
 * and per-neighbor ordering is re-established by two scoreboards just
 * as in Fig. 6 — here represented by the completion bookkeeping that
 * releases a batch only when every root's subtree has fully drained.
 */

#ifndef LSDGNN_AXE_CORE_HH
#define LSDGNN_AXE_CORE_HH

#include <deque>
#include <functional>
#include <memory>

#include "axe/address_map.hh"
#include "axe/load_unit.hh"
#include "common/rng.hh"
#include "graph/csr_graph.hh"
#include "sampling/minibatch.hh"
#include "sampling/sampler.hh"
#include "sim/component.hh"

namespace lsdgnn {
namespace axe {

/** Decides which FPGA node holds a graph node (0 = this engine). */
using HomeFunction = std::function<std::uint32_t(graph::NodeId)>;

/**
 * One sampling core.
 */
class AxeCore : public sim::Component
{
  public:
    /**
     * @param eq Shared event queue.
     * @param name Component name ("axe.core0").
     * @param config Engine configuration.
     * @param local Local memory link (shared).
     * @param remote Remote memory link (shared).
     * @param output Result output link (shared).
     * @param rng Core-private random stream.
     * @param self_node This engine's endpoint id: loads whose home
     *        (per the HomeFunction) equals it are local.
     */
    AxeCore(sim::EventQueue &eq, const std::string &name,
            const AxeConfig &config, fabric::MemoryPort &local,
            fabric::MemoryPort &remote, fabric::SimLink &output,
            Rng rng, std::uint32_t self_node = 0);

    /**
     * Start one batch task.
     *
     * @param graph Graph to traverse.
     * @param map Address layout of the stored partition.
     * @param home Node-to-FPGA placement.
     * @param plan Fan-outs per hop.
     * @param roots Batch roots.
     * @param on_done Called when every sample has been emitted.
     * @pre The core must be idle.
     */
    void startBatch(const graph::CsrGraph &graph,
                    const GraphAddressMap &map, const HomeFunction &home,
                    const sampling::SamplePlan &plan,
                    std::vector<graph::NodeId> roots,
                    std::function<void()> on_done);

    bool busy() const { return active; }

    /** Samples fully emitted (attribute fetched + result streamed). */
    std::uint64_t samplesEmitted() const { return emitted.value(); }

    const LoadUnit &loadUnit() const { return loads; }

  private:
    /** One node waiting for / in GetNeighbor. */
    struct TraversalItem {
        graph::NodeId node;
        std::uint32_t hop;
    };

    void pump();
    void onDegree(const TraversalItem &item);
    void onNeighbor(const TraversalItem &item, std::uint64_t position);
    void onAttribute();
    void maybeFinish();

    const AxeConfig &config_;
    fabric::SimLink &outputLink;
    LoadUnit loads;
    Clock clock;
    std::unique_ptr<sampling::NeighborSampler> sampler;
    Rng rng_;
    std::uint32_t selfNode;

    // Per-batch state.
    const graph::CsrGraph *graph_ = nullptr;
    const GraphAddressMap *map_ = nullptr;
    HomeFunction home_;
    sampling::SamplePlan plan_;
    std::function<void()> onDone;
    std::deque<TraversalItem> workQueue;
    std::uint32_t activeItems = 0;   ///< items inside GetNeighbor
    std::uint64_t openLoads = 0;     ///< degree+neighbor+attr in flight
    std::uint64_t openOutputs = 0;   ///< result writes in flight
    bool active = false;
    Tick batchStart = 0;             ///< startBatch() time of this batch

    /** Trace counters for pipeline occupancy (no-op when disabled). */
    void traceOccupancy();

    stats::Counter emitted;
    stats::Counter traversed;
    stats::Average batchTicks;
};

} // namespace axe
} // namespace lsdgnn

#endif // LSDGNN_AXE_CORE_HH
