#include "command.hh"

#include <cstring>

namespace lsdgnn {
namespace axe {

namespace commands {

CommandWord
setCsr(std::uint8_t idx, std::uint64_t value)
{
    return CommandWord(CommandOp::SetCsr, idx, 0, value);
}

CommandWord
readCsr(std::uint8_t idx)
{
    return CommandWord(CommandOp::ReadCsr, idx, 0, 0);
}

CommandWord
sampleNHop(std::uint8_t hops, std::uint8_t rate,
           std::uint64_t root_base)
{
    return CommandWord(CommandOp::SampleNHop, hops, rate, root_base);
}

CommandWord
readNodeAttr(std::uint64_t node)
{
    return CommandWord(CommandOp::ReadNodeAttr, 0, 0, node);
}

CommandWord
readEdgeAttr(std::uint32_t src, std::uint8_t k)
{
    return CommandWord(CommandOp::ReadEdgeAttr, k, 0, src);
}

CommandWord
negativeSample(std::uint8_t rate, std::uint64_t src)
{
    return CommandWord(CommandOp::NegativeSample, 0, rate, src);
}

CommandWord
gemm(std::uint64_t node_base)
{
    return CommandWord(CommandOp::Gemm, 0, 0, node_base);
}

} // namespace commands

CommandDecoder::CommandDecoder(const graph::CsrGraph &graph,
                               const graph::AttributeStore &attrs,
                               const sampling::NeighborSampler &sampler)
    : graph_(graph),
      attrs_(attrs),
      sampler_(sampler),
      negSampler(graph, 0.35),
      engine_(graph, attrs, sampler),
      csrs(num_csrs, 0),
      rng_(1)
{
    csrs[csr_batch_size] = 64;
}

void
CommandDecoder::loadGemmWeights(std::vector<float> weights)
{
    gemmWeights = std::move(weights);
}

std::uint32_t
CommandDecoder::csr(std::uint8_t idx) const
{
    lsd_assert(idx < num_csrs, "CSR index out of range");
    return csrs[idx];
}

CommandResponse
CommandDecoder::execute(CommandWord cmd)
{
    CommandResponse resp;
    resp.op = cmd.op();

    switch (cmd.op()) {
      case CommandOp::SetCsr: {
        const std::uint8_t idx = cmd.arg0();
        if (idx >= num_csrs) {
            resp.status = 1;
            break;
        }
        csrs[idx] = static_cast<std::uint32_t>(cmd.operand());
        if (idx == csr_seed)
            rng_ = Rng(csrs[idx]);
        resp.value = csrs[idx];
        break;
      }
      case CommandOp::ReadCsr: {
        const std::uint8_t idx = cmd.arg0();
        if (idx >= num_csrs) {
            resp.status = 1;
            break;
        }
        resp.value = csrs[idx];
        break;
      }
      case CommandOp::SampleNHop: {
        const std::uint8_t hops = cmd.arg0();
        const std::uint8_t rate = cmd.arg1();
        const std::uint64_t root_base = cmd.operand();
        const std::uint32_t batch = csrs[csr_batch_size];
        if (hops == 0 || rate == 0 || batch == 0 ||
            root_base + batch > graph_.numNodes()) {
            resp.status = 2;
            break;
        }
        sampling::SamplePlan plan;
        plan.batch_size = batch;
        plan.fanouts.assign(hops, rate);
        rootScratch.resize(batch);
        for (std::uint32_t i = 0; i < batch; ++i)
            rootScratch[i] = root_base + i;
        lastSample_.clearForReuse();
        engine_.sampleBatchInto(plan, rootScratch, rng_, lastSample_);
        resp.value = lastSample_.totalSampled();
        break;
      }
      case CommandOp::ReadNodeAttr: {
        const graph::NodeId node = cmd.operand();
        if (node >= graph_.numNodes()) {
            resp.status = 2;
            break;
        }
        lastAttrs = attrs_.fetch(node);
        // First payload word rides in the response (the rest streams
        // through the data IO in hardware).
        std::uint32_t bits;
        static_assert(sizeof(bits) == sizeof(float));
        std::memcpy(&bits, &lastAttrs[0], sizeof(bits));
        resp.value = bits;
        break;
      }
      case CommandOp::ReadEdgeAttr: {
        const graph::NodeId src = cmd.operand();
        const std::uint8_t k = cmd.arg0();
        if (src >= graph_.numNodes() || k >= graph_.degree(src)) {
            resp.status = 2;
            break;
        }
        // Edge attributes are procedurally derived from the endpoint
        // pair (the store keeps them beside the adjacency list).
        const graph::NodeId dst = graph_.neighbor(src, k);
        lastAttrs = attrs_.fetch(dst);
        resp.value = dst;
        break;
      }
      case CommandOp::Gemm: {
        const std::uint32_t m = csrs[csr_gemm_m];
        const std::uint32_t n = csrs[csr_gemm_n];
        const std::uint32_t k = attrs_.attrLen();
        const graph::NodeId base = cmd.operand();
        if (m == 0 || n == 0 ||
            base + m > graph_.numNodes() ||
            gemmWeights.size() !=
                static_cast<std::size_t>(k) * n) {
            resp.status = 2;
            break;
        }
        // A: the attribute records of the node window (the shared
        // RAM contents after a GetAttribute burst).
        std::vector<float> a(static_cast<std::size_t>(m) * k);
        for (std::uint32_t i = 0; i < m; ++i)
            attrs_.fetch(base + i,
                         std::span<float>(a).subspan(
                             static_cast<std::size_t>(i) * k, k));
        gemmResult.assign(static_cast<std::size_t>(m) * n, 0.0f);
        const auto run = gemmEngine.matmul(a, gemmWeights, gemmResult,
                                           m, k, n);
        resp.value = run.cycles;
        break;
      }
      case CommandOp::NegativeSample: {
        const graph::NodeId src = cmd.operand();
        const std::uint8_t rate = cmd.arg1();
        if (src >= graph_.numNodes() || rate == 0) {
            resp.status = 2;
            break;
        }
        const graph::NodeId dst = csrs[csr_neg_dst] %
            graph_.numNodes();
        lastNegs = negSampler.sample(src, dst, rate, rng_);
        resp.value = lastNegs.size();
        break;
      }
      default:
        resp.status = 0xff;
        break;
    }

    if (resp.status == 0)
        ++completed_;
    else
        ++faulted_;
    return resp;
}

} // namespace axe
} // namespace lsdgnn
