#include "core.hh"

#include <numeric>

namespace lsdgnn {
namespace axe {

AxeCore::AxeCore(sim::EventQueue &eq, const std::string &name,
                 const AxeConfig &config, fabric::MemoryPort &local,
                 fabric::MemoryPort &remote, fabric::SimLink &output,
                 Rng rng, std::uint32_t self_node)
    : sim::Component(eq, name),
      config_(config),
      outputLink(output),
      loads(eq, name + ".loadunit", local, remote, config),
      clock(config.clock_mhz),
      sampler(sampling::makeSampler(config.sampler)),
      rng_(rng),
      selfNode(self_node)
{
    statGroup.addCounter("samples", &emitted, "samples emitted");
    statGroup.addCounter("traversed", &traversed,
                         "traversal items processed");
    statGroup.addAverage("batch_ticks", &batchTicks,
                         "ticks from batch start to full drain");
}

void
AxeCore::traceOccupancy()
{
    if (!trace::Tracer::enabled())
        return;
    auto &tracer = trace::Tracer::instance();
    tracer.counter(0, name() + ".active_items", curTick(),
                   static_cast<double>(activeItems));
    tracer.counter(0, name() + ".open_loads", curTick(),
                   static_cast<double>(openLoads));
}

void
AxeCore::startBatch(const graph::CsrGraph &graph,
                    const GraphAddressMap &map, const HomeFunction &home,
                    const sampling::SamplePlan &plan,
                    std::vector<graph::NodeId> roots,
                    std::function<void()> on_done)
{
    lsd_assert(!active, "core ", name(), " already busy");
    lsd_assert(!plan.fanouts.empty(), "plan needs at least one hop");
    graph_ = &graph;
    map_ = &map;
    home_ = home;
    plan_ = plan;
    onDone = std::move(on_done);
    active = true;
    activeItems = 0;
    openLoads = 0;
    openOutputs = 0;
    batchStart = curTick();
    workQueue.clear();
    for (graph::NodeId r : roots)
        workQueue.push_back(TraversalItem{r, 0});
    if (trace::Tracer::enabled())
        trace::Tracer::instance().begin(0, traceTrack(), "batch",
                                        curTick());
    // Kick the pipeline on the next cycle (command decode latency).
    eventq.scheduleAfter(clock.cycles(1), [this] { pump(); });
}

void
AxeCore::pump()
{
    // GetNeighbor admits up to pipeline_depth items concurrently: this
    // is the Tech-1 knob — a deeper FIFO pipeline keeps more degree
    // reads in flight and hides more latency.
    while (!workQueue.empty() && activeItems < config_.pipeline_depth) {
        const TraversalItem item = workQueue.front();
        workQueue.pop_front();
        ++activeItems;
        ++openLoads;
        traversed.inc();

        Load load;
        load.address = map_->degreeAddress(item.node);
        load.bytes = 8;
        load.dest = home_(item.node);
        load.remote = load.dest != selfNode;
        load.tag = mof::ContextTag(0, static_cast<std::uint8_t>(item.hop),
                                   mof::RequestKind::Degree, 0, 0, 0);
        const Tick issued = curTick();
        load.done = [this, item, issued](const mof::ContextTag &) {
            --openLoads;
            if (trace::Tracer::enabled())
                trace::Tracer::instance().complete(0, traceTrack(),
                    "GetNeighbor", issued, curTick() - issued);
            onDegree(item);
        };
        loads.submit(std::move(load));
    }
    traceOccupancy();
    maybeFinish();
}

void
AxeCore::onDegree(const TraversalItem &item)
{
    const std::uint64_t deg = graph_->degree(item.node);
    const std::uint32_t fanout = plan_.fanouts[item.hop];

    if (deg == 0) {
        --activeItems;
        pump();
        return;
    }

    // GetSample: choose fan-out many positions inside the adjacency
    // list. The sampler works on the position sequence so that the
    // chosen slots map 1:1 to fine-grained neighbor addresses.
    std::vector<graph::NodeId> positions(deg);
    std::iota(positions.begin(), positions.end(), 0);
    std::vector<graph::NodeId> picks;
    sampler->sample(positions, fanout, rng_, picks);

    for (graph::NodeId pos : picks) {
        ++openLoads;
        Load load;
        load.address = map_->neighborAddress(item.node, pos);
        load.bytes = 8;
        load.dest = home_(item.node);
        load.remote = load.dest != selfNode;
        load.tag = mof::ContextTag(0,
            static_cast<std::uint8_t>(item.hop),
            mof::RequestKind::Neighbor, 0,
            static_cast<std::uint16_t>(pos & 0x3fff), 0);
        const Tick issued = curTick();
        load.done = [this, item, pos, issued](const mof::ContextTag &) {
            --openLoads;
            if (trace::Tracer::enabled())
                trace::Tracer::instance().complete(0, traceTrack(),
                    "GetSample", issued, curTick() - issued);
            onNeighbor(item, pos);
        };
        loads.submit(std::move(load));
    }

    // The item leaves GetNeighbor once its slot reads are issued; the
    // next item can enter the sub-pipeline.
    --activeItems;
    pump();
}

void
AxeCore::onNeighbor(const TraversalItem &item, std::uint64_t position)
{
    const graph::NodeId child = graph_->neighbor(item.node, position);

    // Multi-hop: sampled nodes are written back to the buffer and
    // re-enter GetNeighbor for the next hop.
    if (item.hop + 1 < plan_.hops()) {
        workQueue.push_back(TraversalItem{child, item.hop + 1});
        pump();
    }

    // GetAttribute: fetch the sampled node's feature record.
    ++openLoads;
    Load load;
    load.address = map_->attributeAddress(child);
    load.bytes = static_cast<std::uint32_t>(map_->attrBytesPerNode());
    load.dest = home_(child);
    load.remote = load.dest != selfNode;
    load.tag = mof::ContextTag(0, static_cast<std::uint8_t>(item.hop),
                               mof::RequestKind::Attribute, 0, 0, 0);
    const Tick issued = curTick();
    load.done = [this, issued](const mof::ContextTag &) {
        --openLoads;
        if (trace::Tracer::enabled())
            trace::Tracer::instance().complete(0, traceTrack(),
                "GetAttribute", issued, curTick() - issued);
        onAttribute();
    };
    loads.submit(std::move(load));
}

void
AxeCore::onAttribute()
{
    // Stream the result (node ID + attributes) out of the command/
    // data IO. The write completion closes the sample.
    ++openOutputs;
    const auto bytes = static_cast<std::uint64_t>(
        8 + map_->attrBytesPerNode());
    outputLink.request(bytes, [this] {
        --openOutputs;
        emitted.inc();
        maybeFinish();
    });
}

void
AxeCore::maybeFinish()
{
    if (!active)
        return;
    if (workQueue.empty() && activeItems == 0 && openLoads == 0 &&
        openOutputs == 0) {
        active = false;
        batchTicks.sample(static_cast<double>(curTick() - batchStart));
        if (trace::Tracer::enabled())
            trace::Tracer::instance().end(0, traceTrack(), curTick());
        auto done = std::move(onDone);
        onDone = nullptr;
        if (done)
            done();
    }
}

} // namespace axe
} // namespace lsdgnn
