/**
 * @file
 * Unit helpers for bytes, time, bandwidth and clock frequencies.
 *
 * Simulation time is kept in integer picoseconds (Tick) so that
 * multi-clock-domain systems (e.g. the 250 MHz AxE datapath next to a
 * 100 MHz RISC-V core) compose without rounding drift.
 */

#ifndef LSDGNN_COMMON_UNITS_HH
#define LSDGNN_COMMON_UNITS_HH

#include <cstdint>
#include <string>

namespace lsdgnn {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Marker for "no tick" / unscheduled. */
inline constexpr Tick max_tick = ~Tick(0);

inline constexpr Tick tick_per_ns = 1000;
inline constexpr Tick tick_per_us = 1000 * tick_per_ns;
inline constexpr Tick tick_per_ms = 1000 * tick_per_us;
inline constexpr Tick tick_per_s = 1000 * tick_per_ms;

/** Convert nanoseconds to ticks. */
constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tick_per_ns));
}

/** Convert microseconds to ticks. */
constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * static_cast<double>(tick_per_us));
}

/** Convert ticks to seconds (lossy, for reporting). */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tick_per_s);
}

/** Convert ticks to nanoseconds (lossy, for reporting). */
constexpr double
toNanoseconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tick_per_ns);
}

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;
inline constexpr std::uint64_t TiB = 1024 * GiB;

/** Gigabytes (decimal) per second expressed as bytes/second. */
constexpr double
gbps(double gigabytes_per_second)
{
    return gigabytes_per_second * 1e9;
}

/**
 * Clock domain: converts between cycles and ticks.
 *
 * Constructed from a frequency in MHz; period is rounded to whole
 * picoseconds which is exact for every frequency used in the paper
 * (100, 250, 322 MHz and the like need sub-ps only above 10 GHz).
 */
class Clock
{
  public:
    explicit constexpr Clock(double freq_mhz)
        : periodTicks(static_cast<Tick>(1e6 / freq_mhz))
    {}

    constexpr Tick period() const { return periodTicks; }

    constexpr Tick cycles(std::uint64_t n) const { return n * periodTicks; }

    /** Number of whole cycles elapsed at time @p t. */
    constexpr std::uint64_t
    cycleAt(Tick t) const
    {
        return t / periodTicks;
    }

    /** Frequency in Hz implied by the (rounded) period. */
    constexpr double
    frequencyHz() const
    {
        return 1e12 / static_cast<double>(periodTicks);
    }

  private:
    Tick periodTicks;
};

/** Human-readable byte count ("1.5 GiB"). */
std::string formatBytes(std::uint64_t bytes);

/** Human-readable tick count ("12.3 us"). */
std::string formatTime(Tick t);

} // namespace lsdgnn

#endif // LSDGNN_COMMON_UNITS_HH
