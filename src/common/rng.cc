#include "rng.hh"

#include "logging.hh"

namespace lsdgnn {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state)
        word = splitMix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    lsd_assert(bound > 0, "nextBounded requires a positive bound");
    // Lemire's nearly-divisionless bounded rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    lsd_assert(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace lsdgnn
