#include "table.hh"

#include <algorithm>
#include <cstdio>

namespace lsdgnn {

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    body.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : body)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };

    if (!head.empty()) {
        emit(head);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : body)
        emit(r);
}

} // namespace lsdgnn
