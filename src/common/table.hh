/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * the rows/series of each paper table and figure.
 */

#ifndef LSDGNN_COMMON_TABLE_HH
#define LSDGNN_COMMON_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace lsdgnn {

/**
 * Column-aligned text table. Collect a header plus rows of cells, then
 * print() computes column widths and writes an aligned table.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (cell count may differ from the header). */
    void row(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format integers. */
    static std::string num(std::uint64_t v);

    /** Write the aligned table to @p os. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

} // namespace lsdgnn

#endif // LSDGNN_COMMON_TABLE_HH
