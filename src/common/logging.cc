#include "logging.hh"

#include <exception>

namespace lsdgnn {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, std::string_view where, std::string_view msg)
{
    if (level == LogLevel::Warn)
        ++warnings;
    if (static_cast<int>(level) < static_cast<int>(threshold))
        return;

    const char *tag = "info";
    switch (level) {
      case LogLevel::Inform: tag = "info"; break;
      case LogLevel::Warn: tag = "warn"; break;
      case LogLevel::Fatal: tag = "fatal"; break;
      case LogLevel::Panic: tag = "panic"; break;
    }
    std::cerr << tag << ": " << msg << " (" << where << ")\n";
}

namespace detail {

namespace {

std::string
location(const char *file, int line)
{
    std::ostringstream os;
    os << file << ":" << line;
    return os.str();
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().log(LogLevel::Panic, location(file, line), msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().log(LogLevel::Fatal, location(file, line), msg);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, location(file, line), msg);
}

void
informImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().log(LogLevel::Inform, location(file, line), msg);
}

} // namespace detail

} // namespace lsdgnn
