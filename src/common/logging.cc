#include "logging.hh"

#include <exception>

namespace lsdgnn {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

Logger::Logger()
{
    const char *env = std::getenv("LSDGNN_LOG");
    if (env != nullptr && *env != '\0')
        setThreshold(parseLevel(env, LogLevel::Inform));
}

LogLevel
Logger::parseLevel(std::string_view name, LogLevel fallback)
{
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "fatal")
        return LogLevel::Fatal;
    if (name == "panic")
        return LogLevel::Panic;
    return fallback;
}

void
Logger::log(LogLevel level, std::string_view where, std::string_view msg)
{
    if (level == LogLevel::Warn)
        warnings.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<int>(level) < static_cast<int>(getThreshold()))
        return;

    const char *tag = "info";
    switch (level) {
      case LogLevel::Inform: tag = "info"; break;
      case LogLevel::Warn: tag = "warn"; break;
      case LogLevel::Fatal: tag = "fatal"; break;
      case LogLevel::Panic: tag = "panic"; break;
    }
    // One formatted line per message, never interleaved.
    std::ostringstream line;
    line << tag << ": " << msg << " (" << where << ")\n";
    const std::lock_guard<std::mutex> lock(writeMutex);
    std::cerr << line.str();
}

namespace detail {

namespace {

std::string
location(const char *file, int line)
{
    std::ostringstream os;
    os << file << ":" << line;
    return os.str();
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().log(LogLevel::Panic, location(file, line), msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().log(LogLevel::Fatal, location(file, line), msg);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, location(file, line), msg);
}

void
informImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().log(LogLevel::Inform, location(file, line), msg);
}

} // namespace detail

} // namespace lsdgnn
