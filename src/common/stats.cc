#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "stat_registry.hh"

namespace lsdgnn {
namespace stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      invWidth_(static_cast<double>(buckets) / (hi - lo)),
      counts(buckets, 0)
{
    lsd_assert(hi > lo, "histogram range must be non-empty");
    lsd_assert(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    using detail::loadRelaxed;
    using detail::storeRelaxed;
    storeRelaxed(total, loadRelaxed(total) + weight);
    if (v < lo_) {
        storeRelaxed(under, loadRelaxed(under) + weight);
        return;
    }
    if (v >= hi_) {
        storeRelaxed(over, loadRelaxed(over) + weight);
        return;
    }
    auto idx = static_cast<std::size_t>((v - lo_) * invWidth_);
    idx = std::min(idx, counts.size() - 1);
    storeRelaxed(counts[idx], loadRelaxed(counts[idx]) + weight);
}

double
bucketPercentile(double lo, double hi,
                 const std::vector<std::uint64_t> &counts,
                 std::uint64_t under, std::uint64_t over,
                 std::uint64_t total, double q)
{
    lsd_assert(q >= 0.0 && q <= 1.0, "percentile requires q in [0,1]");
    if (total == 0)
        return lo;
    if (over == total)
        return hi; // everything sits above the tracked range
    const double width = (hi - lo) / static_cast<double>(counts.size());
    if (q == 0.0) {
        // Lower edge of the first populated bin.
        if (under > 0)
            return lo;
        for (std::size_t i = 0; i < counts.size(); ++i)
            if (counts[i] > 0)
                return lo + width * static_cast<double>(i);
        return hi; // unreachable: over < total and buckets empty
    }
    const double target = q * static_cast<double>(total);
    double seen = static_cast<double>(under);
    if (under > 0 && seen >= target)
        return lo;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double next = seen + static_cast<double>(counts[i]);
        if (next >= target && counts[i] > 0) {
            const double frac =
                (target - seen) / static_cast<double>(counts[i]);
            return lo + width * (static_cast<double>(i) + frac);
        }
        seen = next;
    }
    return hi;
}

double
Histogram::percentile(double q) const
{
    // Snapshot the buckets with relaxed loads so a live reader never
    // races a concurrent sample(); the result is approximate under
    // concurrent mutation, exactly like every other live export.
    std::vector<std::uint64_t> snap(counts.size());
    std::uint64_t in_range = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        snap[i] = detail::loadRelaxed(counts[i]);
        in_range += snap[i];
    }
    const std::uint64_t u = detail::loadRelaxed(under);
    const std::uint64_t o = detail::loadRelaxed(over);
    // Recompute the total from the parts: the independently-loaded
    // `total` cell may be ahead of a bucket that sample() has not
    // written yet, and bucketPercentile expects them to agree.
    return bucketPercentile(lo_, hi_, snap, u, o, u + o + in_range, q);
}

void
Histogram::reset()
{
    for (auto &c : counts)
        detail::storeRelaxed(c, std::uint64_t{0});
    detail::storeRelaxed(under, std::uint64_t{0});
    detail::storeRelaxed(over, std::uint64_t{0});
    detail::storeRelaxed(total, std::uint64_t{0});
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
    StatRegistry::instance().add(this);
}

StatGroup::~StatGroup()
{
    StatRegistry::instance().remove(this);
}

void
StatGroup::addCounter(const std::string &name, Counter *c,
                      const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    lsd_assert(c != nullptr, "null counter registered as ", name);
    const bool inserted = counters.emplace(name,
        CounterEntry{c, desc}).second;
    lsd_assert(inserted, "duplicate counter name: ", name);
}

void
StatGroup::addAverage(const std::string &name, Average *a,
                      const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    lsd_assert(a != nullptr, "null average registered as ", name);
    const bool inserted = averages.emplace(name,
        AverageEntry{a, desc}).second;
    lsd_assert(inserted, "duplicate average name: ", name);
}

void
StatGroup::addHistogram(const std::string &name, Histogram *h,
                        const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    lsd_assert(h != nullptr, "null histogram registered as ", name);
    const bool inserted = histograms.emplace(name,
        HistogramEntry{h, desc}).second;
    lsd_assert(inserted, "duplicate histogram name: ", name);
}

const Counter &
StatGroup::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters.find(name);
    if (it == counters.end())
        lsd_panic("unknown counter '", name, "' in group '", name_, "'");
    return *it->second.stat;
}

const Average &
StatGroup::average(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = averages.find(name);
    if (it == averages.end())
        lsd_panic("unknown average '", name, "' in group '", name_, "'");
    return *it->second.stat;
}

const Histogram &
StatGroup::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms.find(name);
    if (it == histograms.end())
        lsd_panic("unknown histogram '", name, "' in group '", name_, "'");
    return *it->second.stat;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters.count(name) > 0;
}

bool
StatGroup::hasHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return histograms.count(name) > 0;
}

void
StatGroup::report(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, entry] : counters) {
        os << name_ << "." << name << " " << entry.stat->value();
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << "\n";
    }
    for (const auto &[name, entry] : averages) {
        os << name_ << "." << name << " mean=" << entry.stat->mean()
           << " min=" << entry.stat->min()
           << " max=" << entry.stat->max()
           << " n=" << entry.stat->samples();
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << "\n";
    }
    for (const auto &[name, entry] : histograms) {
        const Histogram &h = *entry.stat;
        os << name_ << "." << name << " n=" << h.samples()
           << " p50=" << h.percentile(0.5)
           << " p90=" << h.percentile(0.9)
           << " p99=" << h.percentile(0.99)
           << " under=" << h.underflow() << " over=" << h.overflow();
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << "\n";
    }
}

void
StatGroup::visitCounters(
    const std::function<void(const std::string &, const Counter &,
                             const std::string &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, entry] : counters)
        fn(name, *entry.stat, entry.desc);
}

void
StatGroup::visitAverages(
    const std::function<void(const std::string &, const Average &,
                             const std::string &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, entry] : averages)
        fn(name, *entry.stat, entry.desc);
}

void
StatGroup::visitHistograms(
    const std::function<void(const std::string &, const Histogram &,
                             const std::string &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, entry] : histograms)
        fn(name, *entry.stat, entry.desc);
}

} // namespace stats
} // namespace lsdgnn
