/**
 * @file
 * Process-wide statistics registry.
 *
 * Every StatGroup registers itself here on construction and leaves on
 * destruction, so benches, examples and the periodic StatSampler can
 * enumerate all live statistics without plumbing component references
 * through every layer. On top of enumeration the registry offers
 * structured export: JSON (machine-readable bench output, including
 * histogram percentiles) and CSV, alongside the classic gem5-style
 * text report.
 */

#ifndef LSDGNN_COMMON_STAT_REGISTRY_HH
#define LSDGNN_COMMON_STAT_REGISTRY_HH

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace lsdgnn {
namespace stats {

/**
 * Registry of all live StatGroups, in registration order.
 *
 * Group names may repeat (two engines in one process both build an
 * "axe.core0"); consumers disambiguate by order or scope their
 * measurement windows.
 *
 * Registration, removal and enumeration are serialized by an internal
 * mutex, so StatGroups may be constructed and destroyed concurrently
 * from worker threads (the service layer builds one group per worker
 * in the worker's own thread). The *values* inside a group stay
 * owner-synchronized: exporting while another thread mutates a
 * counter yields a torn-but-harmless snapshot, so quiesce writers
 * (join workers) before exporting when exact numbers matter.
 */
class StatRegistry
{
  public:
    /** The process-wide registry. */
    static StatRegistry &instance();

    /** Snapshot of the live groups, oldest first. */
    std::vector<StatGroup *> groups() const;

    /** Invoke @p fn on every live group. */
    void forEach(const std::function<void(const StatGroup &)> &fn) const;

    /**
     * Write one JSON object:
     * {"groups":[{"name":...,"counters":{...},"averages":{...},
     *             "histograms":{...}}, ...]}
     * Histograms carry sample counts, tails and p50/p90/p95/p99.
     */
    void exportJson(std::ostream &os) const;

    /** Write "group,stat,kind,value" rows with a header line. */
    void exportCsv(std::ostream &os) const;

    /** gem5-style "group.stat value # desc" dump of every group. */
    void reportAll(std::ostream &os) const;

    // Called from StatGroup's constructor/destructor only.
    void add(StatGroup *group);
    void remove(StatGroup *group);

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

  private:
    StatRegistry() = default;

    mutable std::mutex mutex_;
    std::vector<StatGroup *> groups_;
};

/** Serialize one group as a JSON object (shared by registry/benches). */
void exportGroupJson(const StatGroup &group, std::ostream &os);

/**
 * One histogram's per-window delta: the bucket counts accumulated
 * since the previous collect(). Same-named histograms from same-named
 * groups (e.g. two workers' identically-named groups) are summed.
 */
struct WindowedHistogram {
    std::string group;
    std::string stat;
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t n = 0; ///< samples this window
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::vector<std::uint64_t> buckets;

    /** Percentile over this window's samples only. */
    double
    percentile(double q) const
    {
        return bucketPercentile(lo, hi, buckets, under, over, n, q);
    }
};

/** One counter's per-window delta. */
struct WindowedCounter {
    std::string group;
    std::string stat;
    std::uint64_t delta = 0;
};

/** Everything one collect() produced. */
struct WindowReport {
    double window_s = 0.0; ///< wall time since the previous collect
    std::vector<WindowedCounter> counters;
    std::vector<WindowedHistogram> histograms;

    /** Histogram delta by (group, stat); nullptr when absent. */
    const WindowedHistogram *findHistogram(const std::string &group,
                                           const std::string &stat) const;

    /** Counter delta by (group, stat); 0 when absent. */
    std::uint64_t counterDelta(const std::string &group,
                               const std::string &stat) const;

    /**
     * {"window_s":...,"counters":{"group.stat":delta,...},
     *  "histograms":{"group.stat":{"n":...,"p50":...,"p90":...,
     *                "p99":...,"p999":...},...}}
     */
    void exportJson(std::ostream &os) const;

    /** "group,stat,kind,value" rows (kind: delta/p50/p99/p999). */
    void exportCsv(std::ostream &os) const;
};

/**
 * Rolling time-window aggregator over the StatRegistry.
 *
 * Each collect() call reports the *delta* accumulated since the
 * previous collect() (the first call baselines against construction),
 * computed by snapshot subtraction against a private baseline — never
 * by resetting the underlying stats. Any number of WindowedStats
 * instances may therefore window the same registry concurrently and
 * each sees every sample exactly once per window; see
 * Histogram::reset() for why reset-based windowing cannot do this.
 *
 * Groups are selected by name prefix ("service", "mof.remote").
 * Same-named groups are summed (histograms only when their bucket
 * layout matches). A group that dies mid-window simply stops
 * contributing: deltas are clamped at zero, never negative.
 *
 * Thread-safety: one WindowedStats instance is single-owner. The
 * registry enumeration is thread-safe, but reading stat *values*
 * while their owner mutates them is a torn-but-harmless snapshot —
 * quiesce writers (or accept approximate windows) exactly as with
 * every other exporter.
 */
class WindowedStats
{
  public:
    /** @param prefixes Group-name prefixes to watch; empty = all. */
    explicit WindowedStats(std::vector<std::string> prefixes = {});
    ~WindowedStats(); // out-of-line: Totals is incomplete here

    /** Delta since the previous collect (or since construction). */
    WindowReport collect();

  private:
    struct Totals; ///< summed current values, keyed "group\x1fstat"

    std::vector<std::string> prefixes_;
    std::unique_ptr<Totals> baseline_;
    std::chrono::steady_clock::time_point baselineAt_;
};

} // namespace stats
} // namespace lsdgnn

#endif // LSDGNN_COMMON_STAT_REGISTRY_HH
