/**
 * @file
 * Process-wide statistics registry.
 *
 * Every StatGroup registers itself here on construction and leaves on
 * destruction, so benches, examples and the periodic StatSampler can
 * enumerate all live statistics without plumbing component references
 * through every layer. On top of enumeration the registry offers
 * structured export: JSON (machine-readable bench output, including
 * histogram percentiles) and CSV, alongside the classic gem5-style
 * text report.
 */

#ifndef LSDGNN_COMMON_STAT_REGISTRY_HH
#define LSDGNN_COMMON_STAT_REGISTRY_HH

#include <functional>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/stats.hh"

namespace lsdgnn {
namespace stats {

/**
 * Registry of all live StatGroups, in registration order.
 *
 * Group names may repeat (two engines in one process both build an
 * "axe.core0"); consumers disambiguate by order or scope their
 * measurement windows.
 *
 * Registration, removal and enumeration are serialized by an internal
 * mutex, so StatGroups may be constructed and destroyed concurrently
 * from worker threads (the service layer builds one group per worker
 * in the worker's own thread). The *values* inside a group stay
 * owner-synchronized: exporting while another thread mutates a
 * counter yields a torn-but-harmless snapshot, so quiesce writers
 * (join workers) before exporting when exact numbers matter.
 */
class StatRegistry
{
  public:
    /** The process-wide registry. */
    static StatRegistry &instance();

    /** Snapshot of the live groups, oldest first. */
    std::vector<StatGroup *> groups() const;

    /** Invoke @p fn on every live group. */
    void forEach(const std::function<void(const StatGroup &)> &fn) const;

    /**
     * Write one JSON object:
     * {"groups":[{"name":...,"counters":{...},"averages":{...},
     *             "histograms":{...}}, ...]}
     * Histograms carry sample counts, tails and p50/p90/p95/p99.
     */
    void exportJson(std::ostream &os) const;

    /** Write "group,stat,kind,value" rows with a header line. */
    void exportCsv(std::ostream &os) const;

    /** gem5-style "group.stat value # desc" dump of every group. */
    void reportAll(std::ostream &os) const;

    // Called from StatGroup's constructor/destructor only.
    void add(StatGroup *group);
    void remove(StatGroup *group);

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

  private:
    StatRegistry() = default;

    mutable std::mutex mutex_;
    std::vector<StatGroup *> groups_;
};

/** Serialize one group as a JSON object (shared by registry/benches). */
void exportGroupJson(const StatGroup &group, std::ostream &os);

} // namespace stats
} // namespace lsdgnn

#endif // LSDGNN_COMMON_STAT_REGISTRY_HH
