#include "stat_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "common/trace.hh"

namespace lsdgnn {
namespace stats {

namespace {

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    trace::appendEscaped(out, s);
    out += "\"";
    return out;
}

} // namespace

StatRegistry &
StatRegistry::instance()
{
    // Deliberately leaked: StatGroups with static storage duration
    // unregister during exit, which must never touch a destroyed
    // registry regardless of construction order across TUs.
    static StatRegistry *registry = new StatRegistry;
    return *registry;
}

void
StatRegistry::add(StatGroup *group)
{
    lsd_assert(group != nullptr, "null group registered");
    std::lock_guard<std::mutex> lock(mutex_);
    groups_.push_back(group);
}

void
StatRegistry::remove(StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find(groups_.begin(), groups_.end(), group);
    if (it != groups_.end())
        groups_.erase(it);
}

std::vector<StatGroup *>
StatRegistry::groups() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return groups_;
}

void
StatRegistry::forEach(
    const std::function<void(const StatGroup &)> &fn) const
{
    // Snapshot first: fn may take arbitrarily long, and holding the
    // lock across it would stall group construction on worker threads.
    for (const StatGroup *group : groups())
        fn(*group);
}

void
exportGroupJson(const StatGroup &group, std::ostream &os)
{
    os << "{\"name\":" << jsonString(group.name());

    os << ",\"counters\":{";
    bool first = true;
    group.visitCounters([&](const std::string &name, const Counter &c,
                            const std::string &) {
        os << (first ? "" : ",") << jsonString(name) << ":" << c.value();
        first = false;
    });
    os << "}";

    os << ",\"averages\":{";
    first = true;
    group.visitAverages([&](const std::string &name, const Average &a,
                            const std::string &) {
        os << (first ? "" : ",") << jsonString(name) << ":{"
           << "\"mean\":" << jsonNumber(a.mean())
           << ",\"min\":" << jsonNumber(a.min())
           << ",\"max\":" << jsonNumber(a.max())
           << ",\"n\":" << a.samples() << "}";
        first = false;
    });
    os << "}";

    os << ",\"histograms\":{";
    first = true;
    group.visitHistograms([&](const std::string &name,
                              const Histogram &h, const std::string &) {
        os << (first ? "" : ",") << jsonString(name) << ":{"
           << "\"n\":" << h.samples()
           << ",\"lo\":" << jsonNumber(h.lo())
           << ",\"hi\":" << jsonNumber(h.hi())
           << ",\"under\":" << h.underflow()
           << ",\"over\":" << h.overflow()
           << ",\"p50\":" << jsonNumber(h.percentile(0.5))
           << ",\"p90\":" << jsonNumber(h.percentile(0.9))
           << ",\"p95\":" << jsonNumber(h.percentile(0.95))
           << ",\"p99\":" << jsonNumber(h.percentile(0.99))
           << ",\"buckets\":[";
        for (std::size_t i = 0; i < h.buckets(); ++i)
            os << (i ? "," : "") << h.bucketCount(i);
        os << "]}";
        first = false;
    });
    os << "}}";
}

void
StatRegistry::exportJson(std::ostream &os) const
{
    os << "{\"groups\":[";
    bool first = true;
    for (const StatGroup *group : groups()) {
        if (!first)
            os << ",";
        exportGroupJson(*group, os);
        first = false;
    }
    os << "]}";
}

void
StatRegistry::exportCsv(std::ostream &os) const
{
    os << "group,stat,kind,value\n";
    for (const StatGroup *group : groups()) {
        group->visitCounters([&](const std::string &name,
                                 const Counter &c, const std::string &) {
            os << group->name() << "," << name << ",counter,"
               << c.value() << "\n";
        });
        group->visitAverages([&](const std::string &name,
                                 const Average &a, const std::string &) {
            os << group->name() << "," << name << ",mean,"
               << jsonNumber(a.mean()) << "\n";
        });
        group->visitHistograms([&](const std::string &name,
                                   const Histogram &h,
                                   const std::string &) {
            os << group->name() << "," << name << ",p50,"
               << jsonNumber(h.percentile(0.5)) << "\n";
            os << group->name() << "," << name << ",p95,"
               << jsonNumber(h.percentile(0.95)) << "\n";
            os << group->name() << "," << name << ",p99,"
               << jsonNumber(h.percentile(0.99)) << "\n";
        });
    }
}

void
StatRegistry::reportAll(std::ostream &os) const
{
    for (const StatGroup *group : groups())
        group->report(os);
}

// ---------------------------------------------------------------------
// Windowed (delta) aggregation
// ---------------------------------------------------------------------

namespace {

// Composite key for baseline lookup; \x1f cannot appear in stat names.
std::string
statKey(const std::string &group, const std::string &stat)
{
    return group + '\x1f' + stat;
}

struct HistTotal {
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t n = 0;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::vector<std::uint64_t> buckets;
};

} // namespace

struct WindowedStats::Totals {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, HistTotal> histograms;
};

WindowedStats::~WindowedStats() = default;

WindowedStats::WindowedStats(std::vector<std::string> prefixes)
    : prefixes_(std::move(prefixes)),
      baseline_(std::make_unique<Totals>()),
      baselineAt_(std::chrono::steady_clock::now())
{
    // Baseline = the registry's state right now, so the first
    // collect() reports only what accumulates after construction.
    collect();
}

WindowReport
WindowedStats::collect()
{
    const auto now = std::chrono::steady_clock::now();
    Totals current;

    const auto wanted = [this](const std::string &name) {
        if (prefixes_.empty())
            return true;
        for (const std::string &p : prefixes_)
            if (name.compare(0, p.size(), p) == 0)
                return true;
        return false;
    };

    StatRegistry::instance().forEach([&](const StatGroup &g) {
        if (!wanted(g.name()))
            return;
        g.visitCounters([&](const std::string &stat, const Counter &c,
                            const std::string &) {
            current.counters[statKey(g.name(), stat)] += c.value();
        });
        g.visitHistograms([&](const std::string &stat,
                              const Histogram &h, const std::string &) {
            HistTotal &t = current.histograms[statKey(g.name(), stat)];
            if (t.buckets.empty()) {
                t.lo = h.lo();
                t.hi = h.hi();
                t.buckets.assign(h.buckets(), 0);
            } else if (t.buckets.size() != h.buckets() ||
                       t.lo != h.lo() || t.hi != h.hi()) {
                return; // same-named histogram, different layout: skip
            }
            t.n += h.samples();
            t.under += h.underflow();
            t.over += h.overflow();
            for (std::size_t i = 0; i < h.buckets(); ++i)
                t.buckets[i] += h.bucketCount(i);
        });
    });

    WindowReport report;
    report.window_s =
        std::chrono::duration<double>(now - baselineAt_).count();

    const auto splitKey = [](const std::string &key, std::string &group,
                             std::string &stat) {
        const auto sep = key.find('\x1f');
        group = key.substr(0, sep);
        stat = key.substr(sep + 1);
    };
    // Clamped subtraction: a group that died mid-window makes the
    // current total drop below the baseline — report zero, not a
    // huge unsigned wraparound.
    const auto sub = [](std::uint64_t cur, std::uint64_t base) {
        return cur > base ? cur - base : std::uint64_t{0};
    };

    for (const auto &[key, cur] : current.counters) {
        const auto it = baseline_->counters.find(key);
        const std::uint64_t base =
            it == baseline_->counters.end() ? 0 : it->second;
        WindowedCounter wc;
        splitKey(key, wc.group, wc.stat);
        wc.delta = sub(cur, base);
        report.counters.push_back(std::move(wc));
    }

    for (const auto &[key, cur] : current.histograms) {
        const auto it = baseline_->histograms.find(key);
        const HistTotal *base =
            it == baseline_->histograms.end() ? nullptr : &it->second;
        const bool comparable =
            base != nullptr && base->buckets.size() == cur.buckets.size();
        WindowedHistogram wh;
        splitKey(key, wh.group, wh.stat);
        wh.lo = cur.lo;
        wh.hi = cur.hi;
        wh.n = sub(cur.n, comparable ? base->n : 0);
        wh.under = sub(cur.under, comparable ? base->under : 0);
        wh.over = sub(cur.over, comparable ? base->over : 0);
        wh.buckets.resize(cur.buckets.size());
        for (std::size_t i = 0; i < cur.buckets.size(); ++i)
            wh.buckets[i] =
                sub(cur.buckets[i], comparable ? base->buckets[i] : 0);
        report.histograms.push_back(std::move(wh));
    }

    *baseline_ = std::move(current);
    baselineAt_ = now;
    return report;
}

const WindowedHistogram *
WindowReport::findHistogram(const std::string &group,
                            const std::string &stat) const
{
    for (const WindowedHistogram &h : histograms)
        if (h.group == group && h.stat == stat)
            return &h;
    return nullptr;
}

std::uint64_t
WindowReport::counterDelta(const std::string &group,
                           const std::string &stat) const
{
    for (const WindowedCounter &c : counters)
        if (c.group == group && c.stat == stat)
            return c.delta;
    return 0;
}

void
WindowReport::exportJson(std::ostream &os) const
{
    os << "{\"window_s\":" << jsonNumber(window_s) << ",\"counters\":{";
    bool first = true;
    for (const WindowedCounter &c : counters) {
        os << (first ? "" : ",") << jsonString(c.group + "." + c.stat)
           << ":" << c.delta;
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const WindowedHistogram &h : histograms) {
        os << (first ? "" : ",") << jsonString(h.group + "." + h.stat)
           << ":{\"n\":" << h.n
           << ",\"p50\":" << jsonNumber(h.percentile(0.5))
           << ",\"p90\":" << jsonNumber(h.percentile(0.9))
           << ",\"p99\":" << jsonNumber(h.percentile(0.99))
           << ",\"p999\":" << jsonNumber(h.percentile(0.999)) << "}";
        first = false;
    }
    os << "}}";
}

void
WindowReport::exportCsv(std::ostream &os) const
{
    os << "group,stat,kind,value\n";
    for (const WindowedCounter &c : counters)
        os << c.group << "," << c.stat << ",delta," << c.delta << "\n";
    for (const WindowedHistogram &h : histograms) {
        os << h.group << "," << h.stat << ",n," << h.n << "\n";
        os << h.group << "," << h.stat << ",p50,"
           << jsonNumber(h.percentile(0.5)) << "\n";
        os << h.group << "," << h.stat << ",p99,"
           << jsonNumber(h.percentile(0.99)) << "\n";
        os << h.group << "," << h.stat << ",p999,"
           << jsonNumber(h.percentile(0.999)) << "\n";
    }
}

} // namespace stats
} // namespace lsdgnn
