#include "stat_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "common/trace.hh"

namespace lsdgnn {
namespace stats {

namespace {

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    trace::appendEscaped(out, s);
    out += "\"";
    return out;
}

} // namespace

StatRegistry &
StatRegistry::instance()
{
    // Deliberately leaked: StatGroups with static storage duration
    // unregister during exit, which must never touch a destroyed
    // registry regardless of construction order across TUs.
    static StatRegistry *registry = new StatRegistry;
    return *registry;
}

void
StatRegistry::add(StatGroup *group)
{
    lsd_assert(group != nullptr, "null group registered");
    std::lock_guard<std::mutex> lock(mutex_);
    groups_.push_back(group);
}

void
StatRegistry::remove(StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find(groups_.begin(), groups_.end(), group);
    if (it != groups_.end())
        groups_.erase(it);
}

std::vector<StatGroup *>
StatRegistry::groups() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return groups_;
}

void
StatRegistry::forEach(
    const std::function<void(const StatGroup &)> &fn) const
{
    // Snapshot first: fn may take arbitrarily long, and holding the
    // lock across it would stall group construction on worker threads.
    for (const StatGroup *group : groups())
        fn(*group);
}

void
exportGroupJson(const StatGroup &group, std::ostream &os)
{
    os << "{\"name\":" << jsonString(group.name());

    os << ",\"counters\":{";
    bool first = true;
    group.visitCounters([&](const std::string &name, const Counter &c,
                            const std::string &) {
        os << (first ? "" : ",") << jsonString(name) << ":" << c.value();
        first = false;
    });
    os << "}";

    os << ",\"averages\":{";
    first = true;
    group.visitAverages([&](const std::string &name, const Average &a,
                            const std::string &) {
        os << (first ? "" : ",") << jsonString(name) << ":{"
           << "\"mean\":" << jsonNumber(a.mean())
           << ",\"min\":" << jsonNumber(a.min())
           << ",\"max\":" << jsonNumber(a.max())
           << ",\"n\":" << a.samples() << "}";
        first = false;
    });
    os << "}";

    os << ",\"histograms\":{";
    first = true;
    group.visitHistograms([&](const std::string &name,
                              const Histogram &h, const std::string &) {
        os << (first ? "" : ",") << jsonString(name) << ":{"
           << "\"n\":" << h.samples()
           << ",\"lo\":" << jsonNumber(h.lo())
           << ",\"hi\":" << jsonNumber(h.hi())
           << ",\"under\":" << h.underflow()
           << ",\"over\":" << h.overflow()
           << ",\"p50\":" << jsonNumber(h.percentile(0.5))
           << ",\"p90\":" << jsonNumber(h.percentile(0.9))
           << ",\"p95\":" << jsonNumber(h.percentile(0.95))
           << ",\"p99\":" << jsonNumber(h.percentile(0.99))
           << ",\"buckets\":[";
        for (std::size_t i = 0; i < h.buckets(); ++i)
            os << (i ? "," : "") << h.bucketCount(i);
        os << "]}";
        first = false;
    });
    os << "}}";
}

void
StatRegistry::exportJson(std::ostream &os) const
{
    os << "{\"groups\":[";
    bool first = true;
    for (const StatGroup *group : groups()) {
        if (!first)
            os << ",";
        exportGroupJson(*group, os);
        first = false;
    }
    os << "]}";
}

void
StatRegistry::exportCsv(std::ostream &os) const
{
    os << "group,stat,kind,value\n";
    for (const StatGroup *group : groups()) {
        group->visitCounters([&](const std::string &name,
                                 const Counter &c, const std::string &) {
            os << group->name() << "," << name << ",counter,"
               << c.value() << "\n";
        });
        group->visitAverages([&](const std::string &name,
                                 const Average &a, const std::string &) {
            os << group->name() << "," << name << ",mean,"
               << jsonNumber(a.mean()) << "\n";
        });
        group->visitHistograms([&](const std::string &name,
                                   const Histogram &h,
                                   const std::string &) {
            os << group->name() << "," << name << ",p50,"
               << jsonNumber(h.percentile(0.5)) << "\n";
            os << group->name() << "," << name << ",p95,"
               << jsonNumber(h.percentile(0.95)) << "\n";
            os << group->name() << "," << name << ",p99,"
               << jsonNumber(h.percentile(0.99)) << "\n";
        });
    }
}

void
StatRegistry::reportAll(std::ostream &os) const
{
    for (const StatGroup *group : groups())
        group->report(os);
}

} // namespace stats
} // namespace lsdgnn
