/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named scalar counters, averages and histograms
 * with a StatGroup; benches and tests read them back by name. Modeled
 * on (a small subset of) the gem5 stats framework.
 */

#ifndef LSDGNN_COMMON_STATS_HH
#define LSDGNN_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace lsdgnn {
namespace stats {

/** Monotonically increasing scalar counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { count_ += n; }
    std::uint64_t value() const { return count_; }
    void reset() { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/** Running mean/min/max of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
        if (v < min_ || n_ == 1)
            min_ = v;
        if (v > max_ || n_ == 1)
            max_ = v;
    }

    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    std::uint64_t samples() const { return n_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        min_ = 0.0;
        max_ = 0.0;
        n_ = 0;
    }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t n_ = 0;
};

/** Fixed-bucket linear histogram over [lo, hi) with under/overflow. */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 10) {}

    /**
     * @param lo Lower bound of the tracked range.
     * @param hi Upper bound (exclusive) of the tracked range.
     * @param buckets Number of equal-width buckets.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }
    std::size_t buckets() const { return counts.size(); }
    std::uint64_t underflow() const { return under; }
    std::uint64_t overflow() const { return over; }
    std::uint64_t samples() const { return total; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /**
     * Value below which fraction @p q of samples fall (approximate,
     * linearly interpolated inside a bucket).
     *
     * Edge semantics: an empty histogram reports lo() for every q;
     * q=0 reports the lower edge of the first populated bucket (lo()
     * when the underflow bin is populated); q=1 reports the upper
     * edge of the last populated bucket (hi() when the overflow bin
     * is populated); a histogram whose samples all sit in the
     * overflow bin reports hi() for every q > 0.
     */
    double percentile(double q) const;

    void reset();

  private:
    double lo_;
    double hi_;
    double invWidth_; ///< buckets / (hi - lo), hoisted off sample()
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t total = 0;
};

/**
 * Named collection of statistics.
 *
 * Ownership of the underlying stat objects stays with the registering
 * component; the group stores pointers and formats a report. Every
 * group announces itself to the process-wide StatRegistry for its
 * lifetime, which is how benches export machine-readable results
 * without holding component references.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void addCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");
    void addAverage(const std::string &name, Average *a,
                    const std::string &desc = "");
    void addHistogram(const std::string &name, Histogram *h,
                      const std::string &desc = "");

    /** Look up a registered counter; panics when missing. */
    const Counter &counter(const std::string &name) const;
    /** Look up a registered average; panics when missing. */
    const Average &average(const std::string &name) const;
    /** Look up a registered histogram; panics when missing. */
    const Histogram &histogram(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    /** Write "group.stat value # desc" lines, gem5 style. */
    void report(std::ostream &os) const;

    /** Visit stats by kind, in name order (registry/sampler export). */
    void visitCounters(
        const std::function<void(const std::string &, const Counter &,
                                 const std::string &)> &fn) const;
    void visitAverages(
        const std::function<void(const std::string &, const Average &,
                                 const std::string &)> &fn) const;
    void visitHistograms(
        const std::function<void(const std::string &, const Histogram &,
                                 const std::string &)> &fn) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    struct CounterEntry { Counter *stat; std::string desc; };
    struct AverageEntry { Average *stat; std::string desc; };
    struct HistogramEntry { Histogram *stat; std::string desc; };
    std::map<std::string, CounterEntry> counters;
    std::map<std::string, AverageEntry> averages;
    std::map<std::string, HistogramEntry> histograms;
};

} // namespace stats
} // namespace lsdgnn

#endif // LSDGNN_COMMON_STATS_HH
