/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named scalar counters, averages and histograms
 * with a StatGroup; benches and tests read them back by name. Modeled
 * on (a small subset of) the gem5 stats framework.
 *
 * Concurrency model: every stat is *single-writer* (the owning
 * component mutates it from one thread, or under its own lock), but
 * may be read at any time by live exporters — the flight recorder
 * dumps stat deltas mid-anomaly, by definition while writers are
 * running. All value cells are therefore accessed through relaxed
 * atomic loads/stores (plain moves on x86 — no read-modify-write, no
 * fence, no hot-path cost), which makes concurrent reads race-free
 * without promising cross-stat consistency: a reader may see an
 * Average whose sum is newer than its count. Quiesce writers when
 * exact numbers matter, exactly as before.
 */

#ifndef LSDGNN_COMMON_STATS_HH
#define LSDGNN_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace lsdgnn {
namespace stats {

namespace detail {

/** Relaxed atomic load of a single-writer stat cell. */
template <typename T>
inline T
loadRelaxed(const T &cell)
{
    return std::atomic_ref<T>(const_cast<T &>(cell))
        .load(std::memory_order_relaxed);
}

/** Relaxed atomic store to a single-writer stat cell. */
template <typename T>
inline void
storeRelaxed(T &cell, T v)
{
    std::atomic_ref<T>(cell).store(v, std::memory_order_relaxed);
}

} // namespace detail

/** Monotonically increasing scalar counter. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        detail::storeRelaxed(count_, detail::loadRelaxed(count_) + n);
    }

    std::uint64_t value() const { return detail::loadRelaxed(count_); }
    void reset() { detail::storeRelaxed(count_, std::uint64_t{0}); }

  private:
    std::uint64_t count_ = 0;
};

/** Running mean/min/max of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        using detail::loadRelaxed;
        using detail::storeRelaxed;
        const std::uint64_t n = loadRelaxed(n_) + 1;
        storeRelaxed(sum_, loadRelaxed(sum_) + v);
        if (v < loadRelaxed(min_) || n == 1)
            storeRelaxed(min_, v);
        if (v > loadRelaxed(max_) || n == 1)
            storeRelaxed(max_, v);
        storeRelaxed(n_, n);
    }

    double
    mean() const
    {
        const auto n = samples();
        return n ? sum() / static_cast<double>(n) : 0.0;
    }

    double min() const { return samples() ? detail::loadRelaxed(min_) : 0.0; }
    double max() const { return samples() ? detail::loadRelaxed(max_) : 0.0; }
    std::uint64_t samples() const { return detail::loadRelaxed(n_); }
    double sum() const { return detail::loadRelaxed(sum_); }

    void
    reset()
    {
        detail::storeRelaxed(sum_, 0.0);
        detail::storeRelaxed(min_, 0.0);
        detail::storeRelaxed(max_, 0.0);
        detail::storeRelaxed(n_, std::uint64_t{0});
    }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t n_ = 0;
};

/** Fixed-bucket linear histogram over [lo, hi) with under/overflow. */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 10) {}

    /**
     * @param lo Lower bound of the tracked range.
     * @param hi Upper bound (exclusive) of the tracked range.
     * @param buckets Number of equal-width buckets.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return detail::loadRelaxed(counts.at(i));
    }

    std::size_t buckets() const { return counts.size(); }
    std::uint64_t underflow() const { return detail::loadRelaxed(under); }
    std::uint64_t overflow() const { return detail::loadRelaxed(over); }
    std::uint64_t samples() const { return detail::loadRelaxed(total); }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /**
     * Value below which fraction @p q of samples fall (approximate,
     * linearly interpolated inside a bucket).
     *
     * Edge semantics: an empty histogram reports lo() for every q;
     * q=0 reports the lower edge of the first populated bucket (lo()
     * when the underflow bin is populated); q=1 reports the upper
     * edge of the last populated bucket (hi() when the overflow bin
     * is populated); a histogram whose samples all sit in the
     * overflow bin reports hi() for every q > 0.
     */
    double percentile(double q) const;

    /**
     * Zero every bucket. Prefer snapshot-delta windowing
     * (stats::WindowedStats) over reset(): reset is *destructive and
     * global* — two exporters windowing the same histogram by
     * resetting it race each other (one window swallows the other's
     * samples, or both see them). Snapshot-delta readers each keep a
     * private baseline and subtract, so any number of concurrent
     * exporters see every sample exactly once per window.
     */
    void reset();

  private:
    double lo_;
    double hi_;
    double invWidth_; ///< buckets / (hi - lo), hoisted off sample()
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t total = 0;
};

/**
 * Percentile over an explicit bucket vector (the shared engine behind
 * Histogram::percentile and windowed-delta percentiles). Semantics
 * match Histogram::percentile exactly; @p total must equal under +
 * over + sum(counts).
 */
double bucketPercentile(double lo, double hi,
                        const std::vector<std::uint64_t> &counts,
                        std::uint64_t under, std::uint64_t over,
                        std::uint64_t total, double q);

/**
 * Named collection of statistics.
 *
 * Ownership of the underlying stat objects stays with the registering
 * component; the group stores pointers and formats a report. Every
 * group announces itself to the process-wide StatRegistry for its
 * lifetime, which is how benches export machine-readable results
 * without holding component references.
 *
 * The entry maps are guarded by an internal mutex: a component may
 * still be add*()-ing stats in its own thread when a live exporter
 * (flight-recorder dump, windowed collect) visits the group through
 * the registry.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void addCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");
    void addAverage(const std::string &name, Average *a,
                    const std::string &desc = "");
    void addHistogram(const std::string &name, Histogram *h,
                      const std::string &desc = "");

    /** Look up a registered counter; panics when missing. */
    const Counter &counter(const std::string &name) const;
    /** Look up a registered average; panics when missing. */
    const Average &average(const std::string &name) const;
    /** Look up a registered histogram; panics when missing. */
    const Histogram &histogram(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    /** Write "group.stat value # desc" lines, gem5 style. */
    void report(std::ostream &os) const;

    /** Visit stats by kind, in name order (registry/sampler export). */
    void visitCounters(
        const std::function<void(const std::string &, const Counter &,
                                 const std::string &)> &fn) const;
    void visitAverages(
        const std::function<void(const std::string &, const Average &,
                                 const std::string &)> &fn) const;
    void visitHistograms(
        const std::function<void(const std::string &, const Histogram &,
                                 const std::string &)> &fn) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    mutable std::mutex mutex_; ///< guards the entry maps below
    struct CounterEntry { Counter *stat; std::string desc; };
    struct AverageEntry { Average *stat; std::string desc; };
    struct HistogramEntry { Histogram *stat; std::string desc; };
    std::map<std::string, CounterEntry> counters;
    std::map<std::string, AverageEntry> averages;
    std::map<std::string, HistogramEntry> histograms;
};

} // namespace stats
} // namespace lsdgnn

#endif // LSDGNN_COMMON_STATS_HH
