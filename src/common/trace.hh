/**
 * @file
 * Chrome/Perfetto trace-event emitter.
 *
 * Produces the JSON array flavor of the Trace Event Format
 * (https://ui.perfetto.dev loads it directly): duration slices
 * ("B"/"E"), complete slices ("X"), counter series ("C") and track
 * metadata ("M"). Simulated components map onto tracks — "pid" is the
 * simulated node, "tid" is the component — and timestamps are the
 * simulator's picosecond ticks converted to microseconds.
 *
 * Tracing is off by default and costs one branch per emission site
 * when disabled. It turns on either through the LSDGNN_TRACE=<path>
 * environment variable (checked before main) or programmatically via
 * Tracer::instance().open(path).
 */

#ifndef LSDGNN_COMMON_TRACE_HH
#define LSDGNN_COMMON_TRACE_HH

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/units.hh"

namespace lsdgnn {
namespace trace {

/** Track identifier ("tid" in the trace); 0 means unassigned. */
using TrackId = std::uint32_t;

/**
 * Process-wide trace sink.
 *
 * Emission is thread-safe: the simulator emits from its single event
 * loop, but the wall-clock service layer emits from worker threads, so
 * every event write (and track registration) is serialized by an
 * internal mutex. open()/close() must not race with in-flight
 * emission from other threads — open before starting workers, close
 * after joining them.
 */
class Tracer
{
  public:
    /** The process-wide tracer. */
    static Tracer &instance();

    /**
     * Cheap global enable check; every emission site guards on this
     * so a disabled tracer costs one predictable branch.
     */
    static bool enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Start writing a trace to @p path (truncates). Re-opening closes
     * the previous file first; previously issued TrackIds are invalid
     * afterwards.
     */
    void open(const std::string &path);

    /** Finish the JSON document and stop tracing. Idempotent. */
    void close();

    /** Path of the currently open trace file ("" when closed). */
    const std::string &path() const { return path_; }

    /**
     * Register (or look up) a named track under simulated node @p pid
     * and emit its thread_name metadata. Stable for the lifetime of
     * one open file.
     */
    TrackId track(std::uint32_t pid, const std::string &name);

    /** Open a duration slice on a track. Must be closed by end(). */
    void begin(std::uint32_t pid, TrackId tid, std::string_view name,
               Tick ts);

    /** Close the innermost open slice on a track. */
    void end(std::uint32_t pid, TrackId tid, Tick ts);

    /**
     * Emit a complete slice (begin + duration in one event). The
     * natural shape for async hardware spans whose end is only known
     * at completion time.
     *
     * @param args Optional pre-rendered JSON object members, e.g.
     *        "\"requests\":12" — caller guarantees well-formedness.
     */
    void complete(std::uint32_t pid, TrackId tid, std::string_view name,
                  Tick ts, Tick dur, std::string_view args = {});

    /** Emit one point of a named counter series. */
    void counter(std::uint32_t pid, std::string_view name, Tick ts,
                 double value);

    /** Events written to the current file so far. */
    std::uint64_t eventsEmitted() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return emitted;
    }

    ~Tracer() { close(); }

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

  private:
    Tracer() = default;

    void header(char ph, std::uint32_t pid, Tick ts);
    void field(std::string_view key, std::string_view value);
    void finish();
    void closeLocked();

    // Defined in trace.cc; see note there.
    static std::atomic<bool> enabled_;

    mutable std::mutex mutex_; ///< serializes emission across threads
    std::ofstream out;
    std::string path_;
    bool first = true;
    std::uint64_t emitted = 0;
    TrackId nextTrack = 1;
    std::map<std::pair<std::uint32_t, std::string>, TrackId> tracks;
};

/** Append @p s to @p out with JSON string escaping (no quotes). */
void appendEscaped(std::string &out, std::string_view s);

} // namespace trace
} // namespace lsdgnn

#endif // LSDGNN_COMMON_TRACE_HH
