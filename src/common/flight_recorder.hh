/**
 * @file
 * Anomaly flight recorder: always-on, lock-light evidence capture.
 *
 * Tracing answers "what happened in the window I chose to record";
 * the flight recorder answers "what just happened" when something
 * goes wrong in a run where tracing was off. Every thread appends
 * compact FlightEvents to its own fixed-size ring (one uncontended
 * mutex per ring, no allocation on the record path); an anomaly
 * trigger — a request deadline miss, an ARQ circuit-breaker trip, a
 * shed-rate spike — snapshots a bounded JSON dump containing:
 *
 *  - the most recent events of every thread ring (spans with trace
 *    ids, so the dump names the requests that were in flight),
 *  - stat *deltas* since the previous dump (via WindowedStats, so
 *    concurrent dumps never double-count),
 *  - live gauges (queue depths and anything else registered).
 *
 * The dump goes to the path configured via LSDGNN_FLIGHT=<path> (or
 * setDumpPath()); without a path the snapshot is kept in memory and
 * readable through lastDumpJson(). Trips are rate-limited
 * (minTripInterval) so a storm of deadline misses produces one dump,
 * not thousands.
 *
 * Thread-safety: record() may be called from any thread; trip() and
 * dump accessors are serialized by the recorder's dump mutex. Event
 * names must be string literals (or otherwise immortal) — the ring
 * stores the pointer.
 */

#ifndef LSDGNN_COMMON_FLIGHT_RECORDER_HH
#define LSDGNN_COMMON_FLIGHT_RECORDER_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.hh"

namespace lsdgnn {
namespace trace {

/** One compact recorded event. POD; name must be immortal. */
struct FlightEvent {
    Tick ts = 0;                  ///< wallTick timestamp
    std::uint64_t trace_id = 0;   ///< owning request (0 = none)
    std::uint64_t span_id = 0;    ///< owning span (0 = none)
    const char *name = "";        ///< static event label
    double a = 0.0;               ///< event-defined payload
    double b = 0.0;               ///< event-defined payload
};

/** Process-wide flight recorder. */
class FlightRecorder
{
  public:
    static FlightRecorder &instance();

    /**
     * Append one event to the calling thread's ring. Cheap: one
     * uncontended mutex lock plus a slot write.
     */
    void record(const FlightEvent &event);

    /** record() with the timestamp filled from wallNow(). */
    void recordNow(const char *name, std::uint64_t trace_id = 0,
                   std::uint64_t span_id = 0, double a = 0.0,
                   double b = 0.0);

    /**
     * Register a live gauge sampled into every dump ("queue depth").
     * Returns a handle for unregisterGauge(); the function must stay
     * callable until then and be safe to call from any thread.
     */
    std::uint64_t registerGauge(std::string name,
                                std::function<double()> fn);
    void unregisterGauge(std::uint64_t handle);

    /**
     * Anomaly trigger: snapshot a dump, honoring the rate limit.
     * Returns true when a dump was actually produced (false =
     * rate-limited). Safe from any thread, including threads holding
     * ring locks of *other* rings.
     */
    bool trip(const std::string &reason);

    /** Unconditional dump (no rate limit). Returns the JSON text. */
    std::string dumpJson(const std::string &reason);

    /** Where trip() writes dumps; "" keeps them in memory only. */
    void setDumpPath(std::string path);
    const std::string pathForTest() const;

    /** Minimum wall time between trip() dumps (default 1 s). */
    void setMinTripInterval(std::chrono::milliseconds interval);

    /** Dumps produced so far (rate-limited trips not counted). */
    std::uint64_t trips() const;

    /**
     * trip() calls whose reason starts with @p prefix, including
     * rate-limited ones — the deterministic way for tests to assert
     * "this anomaly fired" without depending on dump pacing. A ""
     * prefix counts every trip() call.
     */
    std::uint64_t tripCount(const std::string &prefix) const;

    /** The last dump's JSON ("" before the first trip). */
    std::string lastDumpJson() const;

    /** Per-thread ring capacity (events). */
    static constexpr std::size_t ring_capacity = 512;
    /** Rings allocated before late threads share the overflow ring. */
    static constexpr std::size_t max_rings = 256;

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

  private:
    FlightRecorder() = default;

    struct Ring {
        mutable std::mutex mutex;
        std::uint64_t thread_key = 0;
        std::uint64_t written = 0; ///< events ever recorded
        std::vector<FlightEvent> events{ring_capacity};
    };

    struct Gauge {
        std::uint64_t handle;
        std::string name;
        std::function<double()> fn;
    };

    Ring *ringForThisThread();

    mutable std::mutex ringsMutex_;
    std::vector<std::unique_ptr<Ring>> rings_;

    mutable std::mutex gaugesMutex_;
    std::vector<Gauge> gauges_;
    std::uint64_t nextGauge_ = 1;

    mutable std::mutex dumpMutex_;
    std::string path_;
    std::string lastDump_;
    std::uint64_t trips_ = 0;
    /** Every trip() reason ever seen -> call count (not rate-limited). */
    std::vector<std::pair<std::string, std::uint64_t>> tripReasons_;
    std::chrono::milliseconds minInterval_{1000};
    std::chrono::steady_clock::time_point lastTrip_{};
    bool tripped_ = false;

    // Baselines for the per-dump stat deltas, keyed "group\x1fstat".
    struct StatBaselines;
    std::unique_ptr<StatBaselines> baselines_;
};

} // namespace trace
} // namespace lsdgnn

#endif // LSDGNN_COMMON_FLIGHT_RECORDER_HH
