/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for user errors that
 * make continuing impossible, warn()/inform() report conditions that
 * do not stop execution.
 */

#ifndef LSDGNN_COMMON_LOGGING_HH
#define LSDGNN_COMMON_LOGGING_HH

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace lsdgnn {

/** Severity classes understood by the logger. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Process-wide logger. Messages at or above the verbosity threshold are
 * written to stderr; Fatal exits, Panic aborts.
 *
 * Warning counting and threshold access are atomic, so components
 * running on helper threads (bench drivers, future parallel sweeps)
 * can log concurrently; stderr writes are serialized by a mutex so
 * messages never interleave mid-line.
 *
 * The initial threshold honors the LSDGNN_LOG environment variable
 * ("inform"/"warn"/"fatal"/"panic", case-sensitive lowercase), so
 * benches can silence inform spam without code changes.
 */
class Logger
{
  public:
    /** Return the process-wide logger instance. */
    static Logger &instance();

    /** Suppress messages below the given level. */
    void setThreshold(LogLevel level)
    {
        threshold.store(level, std::memory_order_relaxed);
    }

    LogLevel getThreshold() const
    {
        return threshold.load(std::memory_order_relaxed);
    }

    /**
     * Emit one message.
     *
     * @param level Message severity.
     * @param where Source location string ("file:line").
     * @param msg Message body.
     */
    void log(LogLevel level, std::string_view where, std::string_view msg);

    /** Count of warnings emitted so far (used by tests). */
    uint64_t warnCount() const
    {
        return warnings.load(std::memory_order_relaxed);
    }

    /**
     * Parse a level name ("warn", ...); @p fallback on no match.
     * Exposed for testability of the LSDGNN_LOG handling.
     */
    static LogLevel parseLevel(std::string_view name, LogLevel fallback);

  private:
    Logger();

    std::atomic<LogLevel> threshold{LogLevel::Inform};
    std::atomic<uint64_t> warnings{0};
    std::mutex writeMutex;
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const char *file, int line, const std::string &msg);

/** Join a variadic argument pack into a single message string. */
template <typename... Args>
std::string
joinMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace lsdgnn

/** Abort with a message; use for library-internal invariant failures. */
#define lsd_panic(...)                                                     \
    ::lsdgnn::detail::panicImpl(__FILE__, __LINE__,                        \
        ::lsdgnn::detail::joinMessage(__VA_ARGS__))

/** Exit with a message; use for unrecoverable user/configuration error. */
#define lsd_fatal(...)                                                     \
    ::lsdgnn::detail::fatalImpl(__FILE__, __LINE__,                        \
        ::lsdgnn::detail::joinMessage(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define lsd_warn(...)                                                      \
    ::lsdgnn::detail::warnImpl(__FILE__, __LINE__,                         \
        ::lsdgnn::detail::joinMessage(__VA_ARGS__))

/** Report normal operating status. */
#define lsd_inform(...)                                                    \
    ::lsdgnn::detail::informImpl(__FILE__, __LINE__,                       \
        ::lsdgnn::detail::joinMessage(__VA_ARGS__))

/** Panic unless the condition holds. */
#define lsd_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::lsdgnn::detail::panicImpl(__FILE__, __LINE__,                \
                ::lsdgnn::detail::joinMessage("assertion '" #cond          \
                    "' failed. ", ##__VA_ARGS__));                         \
        }                                                                  \
    } while (0)

#endif // LSDGNN_COMMON_LOGGING_HH
