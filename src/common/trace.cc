#include "trace.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace lsdgnn {
namespace trace {

// Deliberately an out-of-line definition: every emission site that
// checks Tracer::enabled() then references this translation unit, so
// the static initializer below (the LSDGNN_TRACE env hook) is linked
// into any binary that can trace at all. Atomic because service-layer
// worker threads read it while the main thread opens/closes traces.
std::atomic<bool> Tracer::enabled_{false};

namespace {

// Activate tracing before main() when the environment asks for it.
const bool env_activated = [] {
    const char *path = std::getenv("LSDGNN_TRACE");
    if (path != nullptr && *path != '\0')
        Tracer::instance().open(path);
    return true;
}();

std::string
tsString(Tick t)
{
    // Ticks are picoseconds; the trace format wants microseconds.
    // Six fractional digits keep full single-ps precision.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f",
                  static_cast<double>(t) / 1e6);
    return buf;
}

// Span ids start at 1; auto trace ids start at 2^32 so they cannot
// collide with small client-chosen ids (see TraceContext docs).
std::atomic<std::uint64_t> next_span_id{1};
std::atomic<std::uint64_t> next_trace_id{std::uint64_t{1} << 32};

} // namespace

Tick
wallTick(std::chrono::steady_clock::time_point tp)
{
    // Function-local static: the epoch is the first instant anything
    // asked for a wall tick (thread-safe magic static).
    static const auto epoch = std::chrono::steady_clock::now();
    if (tp < epoch)
        return 0;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        tp - epoch).count();
    return static_cast<Tick>(ns) * 1000; // ns -> ps
}

Tick
wallNow()
{
    return wallTick(std::chrono::steady_clock::now());
}

std::uint64_t
TraceContext::nextSpanId()
{
    return next_span_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
TraceContext::nextTraceId()
{
    return next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

std::string
TraceContext::argsJson() const
{
    std::string out = "\"trace_id\":";
    out += std::to_string(trace_id);
    out += ",\"span_id\":";
    out += std::to_string(span_id);
    out += ",\"parent_span_id\":";
    out += std::to_string(parent_span_id);
    return out;
}

void
appendEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    closeLocked();
    out.open(path, std::ios::trunc);
    if (!out) {
        lsd_warn("cannot open trace file '", path, "'; tracing stays off");
        return;
    }
    path_ = path;
    first = true;
    emitted = 0;
    nextTrack = 1;
    tracks.clear();
    out << "[";
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closeLocked();
}

void
Tracer::closeLocked()
{
    if (!out.is_open())
        return;
    out << "\n]\n";
    out.close();
    path_.clear();
    enabled_.store(false, std::memory_order_relaxed);
}

TrackId
Tracer::track(std::uint32_t pid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out.is_open())
        return 0;
    const auto key = std::make_pair(pid, name);
    auto it = tracks.find(key);
    if (it != tracks.end())
        return it->second;
    const TrackId tid = nextTrack++;
    tracks.emplace(key, tid);

    // Name the track (and its process, the first time we see it).
    std::string args = "\"name\":\"";
    appendEscaped(args, name);
    args += "\"";
    finish();
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{" << args << "}}";
    ++emitted;
    return tid;
}

void
Tracer::finish()
{
    if (!first)
        out << ",";
    out << "\n";
    first = false;
}

void
Tracer::begin(std::uint32_t pid, TrackId tid, std::string_view name,
              Tick ts)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out.is_open())
        return;
    std::string escaped;
    appendEscaped(escaped, name);
    finish();
    out << "{\"ph\":\"B\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"ts\":" << tsString(ts) << ",\"name\":\"" << escaped
        << "\"}";
    ++emitted;
}

void
Tracer::end(std::uint32_t pid, TrackId tid, Tick ts)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out.is_open())
        return;
    finish();
    out << "{\"ph\":\"E\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"ts\":" << tsString(ts) << "}";
    ++emitted;
}

void
Tracer::complete(std::uint32_t pid, TrackId tid, std::string_view name,
                 Tick ts, Tick dur, std::string_view args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out.is_open())
        return;
    std::string escaped;
    appendEscaped(escaped, name);
    finish();
    out << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"ts\":" << tsString(ts) << ",\"dur\":" << tsString(dur)
        << ",\"name\":\"" << escaped << "\"";
    if (!args.empty())
        out << ",\"args\":{" << args << "}";
    out << "}";
    ++emitted;
}

void
Tracer::instant(std::uint32_t pid, TrackId tid, std::string_view name,
                Tick ts, std::string_view args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out.is_open())
        return;
    std::string escaped;
    appendEscaped(escaped, name);
    finish();
    out << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":"
        << tid << ",\"ts\":" << tsString(ts) << ",\"name\":\""
        << escaped << "\"";
    if (!args.empty())
        out << ",\"args\":{" << args << "}";
    out << "}";
    ++emitted;
}

void
Tracer::flowEvent(char ph, std::uint32_t pid, TrackId tid,
                  std::string_view name, Tick ts, std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out.is_open())
        return;
    std::string escaped;
    appendEscaped(escaped, name);
    finish();
    out << "{\"ph\":\"" << ph << "\",\"cat\":\"flow\",\"id\":" << id
        << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":"
        << tsString(ts) << ",\"name\":\"" << escaped << "\"";
    if (ph == 'f')
        out << ",\"bp\":\"e\""; // bind to the enclosing slice
    out << "}";
    ++emitted;
}

void
Tracer::flowStart(std::uint32_t pid, TrackId tid, std::string_view name,
                  Tick ts, std::uint64_t id)
{
    flowEvent('s', pid, tid, name, ts, id);
}

void
Tracer::flowStep(std::uint32_t pid, TrackId tid, std::string_view name,
                 Tick ts, std::uint64_t id)
{
    flowEvent('t', pid, tid, name, ts, id);
}

void
Tracer::flowEnd(std::uint32_t pid, TrackId tid, std::string_view name,
                Tick ts, std::uint64_t id)
{
    flowEvent('f', pid, tid, name, ts, id);
}

void
Tracer::counter(std::uint32_t pid, std::string_view name, Tick ts,
                double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out.is_open())
        return;
    std::string escaped;
    appendEscaped(escaped, name);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    finish();
    out << "{\"ph\":\"C\",\"pid\":" << pid << ",\"ts\":" << tsString(ts)
        << ",\"name\":\"" << escaped << "\",\"args\":{\"value\":" << buf
        << "}}";
    ++emitted;
}

} // namespace trace
} // namespace lsdgnn
