/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component (graph generator, samplers, the AxE
 * hardware RNG) draws from an explicitly seeded Rng so that runs are
 * reproducible. The generator is xoshiro256** seeded via SplitMix64,
 * matching the construction recommended by its authors.
 */

#ifndef LSDGNN_COMMON_RNG_HH
#define LSDGNN_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace lsdgnn {

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also
 * feed <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded with SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

    /**
     * Fork an independent stream; used to give each simulated server /
     * AxE core its own decorrelated generator.
     */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state;
};

/** SplitMix64 step; exposed for seeding schemes and tests. */
std::uint64_t splitMix64(std::uint64_t &state);

} // namespace lsdgnn

#endif // LSDGNN_COMMON_RNG_HH
