/**
 * @file
 * Canonical error vocabulary of the repo.
 *
 * Before this header existed, the layers each spoke their own
 * dialect: the service layer had ReplyStatus, the MoF reliability
 * layer reported failures through booleans and counters, and the
 * framework asserted. Status unifies them: one enum of terminal
 * codes, an optional human-readable message, and a Result<T> for
 * functions that either produce a value or explain why they could
 * not.
 *
 * Two codes deserve a note:
 *  - Degraded is a *success with an asterisk*: the reply still
 *    carries a payload, but part of it was produced by a fallback
 *    (e.g. local negative-resampling after a remote shard timed
 *    out). Callers that only check ok() treat it as a failure;
 *    callers that check hasPayload() keep the batch.
 *  - RemoteTimeout is the transport-level cause (a ShardChannel
 *    request exhausted its retries); Degraded is the service-level
 *    effect.
 */

#ifndef LSDGNN_COMMON_STATUS_HH
#define LSDGNN_COMMON_STATUS_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "common/logging.hh"

namespace lsdgnn {

/** Terminal outcome codes shared by every layer. */
enum class StatusCode : std::uint8_t {
    Ok = 0,           ///< full success
    Rejected,         ///< shed at admission (queue full/closed)
    DeadlineExceeded, ///< deadline expired before execution
    Cancelled,        ///< aborted by shutdown
    RemoteTimeout,    ///< remote request exhausted its retries
    Degraded,         ///< executed, but with a fallback somewhere
    Unavailable,      ///< target marked down; not attempted
    InvalidArgument,  ///< malformed request
};

/** Stable lower-case code name (tables, logs, JSON). */
constexpr std::string_view
toString(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::Rejected: return "rejected";
      case StatusCode::DeadlineExceeded: return "deadline-exceeded";
      case StatusCode::Cancelled: return "cancelled";
      case StatusCode::RemoteTimeout: return "remote-timeout";
      case StatusCode::Degraded: return "degraded";
      case StatusCode::Unavailable: return "unavailable";
      case StatusCode::InvalidArgument: return "invalid-argument";
    }
    return "?";
}

/**
 * One outcome: a code plus an optional message. Cheap to copy for
 * the common Ok case (empty message, no allocation).
 */
class Status
{
  public:
    /** Default: Ok. */
    Status() = default;

    /** Implicit from a bare code, so `return StatusCode::Ok;` works. */
    Status(StatusCode code) : code_(code) {}

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    StatusCode code() const { return code_; }

    /** Strict success — Degraded is NOT ok. */
    bool ok() const { return code_ == StatusCode::Ok; }

    /** True when the reply still carries a usable payload. */
    bool
    hasPayload() const
    {
        return code_ == StatusCode::Ok || code_ == StatusCode::Degraded;
    }

    const std::string &message() const { return message_; }

    /** "code" or "code: message". */
    std::string
    toString() const
    {
        std::string out{lsdgnn::toString(code_)};
        if (!message_.empty()) {
            out += ": ";
            out += message_;
        }
        return out;
    }

    friend bool
    operator==(const Status &s, StatusCode code)
    {
        return s.code_ == code;
    }

    friend bool
    operator==(const Status &a, const Status &b)
    {
        return a.code_ == b.code_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** Stream as toString() (logs, gtest failure messages). */
inline std::ostream &
operator<<(std::ostream &os, const Status &status)
{
    return os << status.toString();
}

inline std::ostream &
operator<<(std::ostream &os, StatusCode code)
{
    return os << toString(code);
}

/**
 * Either a value or a non-Ok Status. Accessing value() on an error
 * (or status() saying Ok while holding a value) is a programming
 * error, enforced by lsd_assert.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}

    Result(Status status) : status_(std::move(status))
    {
        lsd_assert(!status_.ok(),
                   "Result built from an Ok status without a value");
    }

    Result(StatusCode code) : Result(Status(code)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    const Status &status() const { return status_; }

    T &
    value()
    {
        lsd_assert(ok(), "Result::value() on error: ",
                   status_.toString());
        return *value_;
    }

    const T &
    value() const
    {
        lsd_assert(ok(), "Result::value() on error: ",
                   status_.toString());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }

    /** Move the value out (consumes the result). */
    T
    take()
    {
        lsd_assert(ok(), "Result::take() on error: ",
                   status_.toString());
        return std::move(*value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace lsdgnn

#endif // LSDGNN_COMMON_STATUS_HH
