#include "flight_recorder.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "common/stat_registry.hh"
#include "common/trace.hh"

namespace lsdgnn {
namespace trace {

namespace {

// Stable small integer per thread for the dump (std::thread::id has
// no portable numeric form).
std::uint64_t
threadKey()
{
    static std::atomic<std::uint64_t> next{1};
    thread_local const std::uint64_t key =
        next.fetch_add(1, std::memory_order_relaxed);
    return key;
}

std::string
jsonNum(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// Configure the dump path before main() when the environment asks.
const bool env_configured = [] {
    const char *path = std::getenv("LSDGNN_FLIGHT");
    if (path != nullptr && *path != '\0')
        FlightRecorder::instance().setDumpPath(path);
    return true;
}();

} // namespace

// Pimpl around WindowedStats so the header stays free of the
// stat-registry dependency.
struct FlightRecorder::StatBaselines {
    stats::WindowedStats window{{}};
};

FlightRecorder &
FlightRecorder::instance()
{
    // Leaked for the same reason as StatRegistry: worker threads may
    // record during process exit, which must never touch a destroyed
    // recorder.
    static FlightRecorder *recorder = new FlightRecorder;
    return *recorder;
}

FlightRecorder::Ring *
FlightRecorder::ringForThisThread()
{
    thread_local Ring *ring = [this] {
        std::lock_guard<std::mutex> lock(ringsMutex_);
        if (rings_.size() >= max_rings)
            return rings_.front().get(); // shared overflow ring
        rings_.push_back(std::make_unique<Ring>());
        rings_.back()->thread_key = threadKey();
        return rings_.back().get();
    }();
    return ring;
}

void
FlightRecorder::record(const FlightEvent &event)
{
    Ring *ring = ringForThisThread();
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->events[ring->written % ring_capacity] = event;
    ++ring->written;
}

void
FlightRecorder::recordNow(const char *name, std::uint64_t trace_id,
                          std::uint64_t span_id, double a, double b)
{
    FlightEvent ev;
    ev.ts = wallNow();
    ev.trace_id = trace_id;
    ev.span_id = span_id;
    ev.name = name;
    ev.a = a;
    ev.b = b;
    record(ev);
}

std::uint64_t
FlightRecorder::registerGauge(std::string name,
                              std::function<double()> fn)
{
    lsd_assert(fn != nullptr, "flight gauge needs a sampler");
    std::lock_guard<std::mutex> lock(gaugesMutex_);
    const std::uint64_t handle = nextGauge_++;
    gauges_.push_back(Gauge{handle, std::move(name), std::move(fn)});
    return handle;
}

void
FlightRecorder::unregisterGauge(std::uint64_t handle)
{
    std::lock_guard<std::mutex> lock(gaugesMutex_);
    for (auto it = gauges_.begin(); it != gauges_.end(); ++it) {
        if (it->handle == handle) {
            gauges_.erase(it);
            return;
        }
    }
}

void
FlightRecorder::setDumpPath(std::string path)
{
    std::lock_guard<std::mutex> lock(dumpMutex_);
    path_ = std::move(path);
}

const std::string
FlightRecorder::pathForTest() const
{
    std::lock_guard<std::mutex> lock(dumpMutex_);
    return path_;
}

void
FlightRecorder::setMinTripInterval(std::chrono::milliseconds interval)
{
    std::lock_guard<std::mutex> lock(dumpMutex_);
    minInterval_ = interval;
}

std::uint64_t
FlightRecorder::trips() const
{
    std::lock_guard<std::mutex> lock(dumpMutex_);
    return trips_;
}

std::string
FlightRecorder::lastDumpJson() const
{
    std::lock_guard<std::mutex> lock(dumpMutex_);
    return lastDump_;
}

bool
FlightRecorder::trip(const std::string &reason)
{
    {
        std::lock_guard<std::mutex> lock(dumpMutex_);
        // Count every attempt, rate-limited or not: tripCount() is
        // the deterministic assertion surface for tests.
        bool counted = false;
        for (auto &[name, count] : tripReasons_)
            if (name == reason) {
                ++count;
                counted = true;
                break;
            }
        if (!counted)
            tripReasons_.emplace_back(reason, 1);
        const auto now = std::chrono::steady_clock::now();
        if (tripped_ && now - lastTrip_ < minInterval_)
            return false;
        tripped_ = true;
        lastTrip_ = now;
    }
    dumpJson(reason);
    return true;
}

std::uint64_t
FlightRecorder::tripCount(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(dumpMutex_);
    std::uint64_t total = 0;
    for (const auto &[name, count] : tripReasons_)
        if (name.compare(0, prefix.size(), prefix) == 0)
            total += count;
    return total;
}

std::string
FlightRecorder::dumpJson(const std::string &reason)
{
    std::ostringstream os;
    os << "{\"reason\":\"";
    {
        std::string escaped;
        appendEscaped(escaped, reason);
        os << escaped;
    }
    os << "\",\"wall_us\":" << jsonNum(static_cast<double>(wallNow()) /
                                       1e6);

    // Live gauges (queue depths etc.). Sampled outside the dump lock:
    // a gauge may itself take its owner's lock.
    os << ",\"gauges\":{";
    {
        std::vector<Gauge> gauges;
        {
            std::lock_guard<std::mutex> lock(gaugesMutex_);
            gauges = gauges_;
        }
        bool first = true;
        for (const Gauge &g : gauges) {
            std::string escaped;
            appendEscaped(escaped, g.name);
            os << (first ? "" : ",") << "\"" << escaped
               << "\":" << jsonNum(g.fn());
            first = false;
        }
    }
    os << "}";

    // Recent events, oldest first, per thread ring.
    os << ",\"threads\":[";
    {
        std::vector<Ring *> rings;
        {
            std::lock_guard<std::mutex> lock(ringsMutex_);
            rings.reserve(rings_.size());
            for (const auto &r : rings_)
                rings.push_back(r.get());
        }
        bool first_ring = true;
        for (Ring *ring : rings) {
            std::lock_guard<std::mutex> lock(ring->mutex);
            os << (first_ring ? "" : ",") << "{\"thread\":"
               << ring->thread_key << ",\"recorded\":" << ring->written
               << ",\"events\":[";
            const std::uint64_t count =
                std::min<std::uint64_t>(ring->written, ring_capacity);
            const std::uint64_t start = ring->written - count;
            for (std::uint64_t i = 0; i < count; ++i) {
                const FlightEvent &ev =
                    ring->events[(start + i) % ring_capacity];
                std::string escaped;
                appendEscaped(escaped, ev.name);
                os << (i ? "," : "") << "{\"ts_us\":"
                   << jsonNum(static_cast<double>(ev.ts) / 1e6)
                   << ",\"name\":\"" << escaped << "\"";
                if (ev.trace_id != 0)
                    os << ",\"trace_id\":" << ev.trace_id;
                if (ev.span_id != 0)
                    os << ",\"span_id\":" << ev.span_id;
                if (ev.a != 0.0)
                    os << ",\"a\":" << jsonNum(ev.a);
                if (ev.b != 0.0)
                    os << ",\"b\":" << jsonNum(ev.b);
                os << "}";
            }
            os << "]}";
            first_ring = false;
        }
    }
    os << "]";

    // Stat deltas since the previous dump. The recorder's private
    // WindowedStats baseline means concurrent exporters elsewhere
    // never lose or double-count samples because of this dump.
    os << ",\"stats_delta\":";
    {
        std::lock_guard<std::mutex> lock(dumpMutex_);
        if (!baselines_)
            baselines_ = std::make_unique<StatBaselines>();
        baselines_->window.collect().exportJson(os);

        ++trips_;
        lastDump_ = os.str() + "}";
        if (!path_.empty()) {
            std::ofstream file(path_, std::ios::trunc);
            if (file)
                file << lastDump_ << "\n";
            else
                lsd_warn("flight recorder cannot write '", path_, "'");
        }
        return lastDump_;
    }
}

} // namespace trace
} // namespace lsdgnn
