#include "units.hh"

#include <array>
#include <cstdio>

namespace lsdgnn {

std::string
formatBytes(std::uint64_t bytes)
{
    static constexpr std::array<const char *, 5> suffix = {
        "B", "KiB", "MiB", "GiB", "TiB"
    };
    double value = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < suffix.size()) {
        value /= 1024.0;
        ++idx;
    }
    char buf[48];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix[idx]);
    return buf;
}

std::string
formatTime(Tick t)
{
    char buf[48];
    if (t < tick_per_ns) {
        std::snprintf(buf, sizeof(buf), "%llu ps",
                      static_cast<unsigned long long>(t));
    } else if (t < tick_per_us) {
        std::snprintf(buf, sizeof(buf), "%.2f ns", toNanoseconds(t));
    } else if (t < tick_per_ms) {
        std::snprintf(buf, sizeof(buf), "%.2f us",
                      static_cast<double>(t) / tick_per_us);
    } else if (t < tick_per_s) {
        std::snprintf(buf, sizeof(buf), "%.2f ms",
                      static_cast<double>(t) / tick_per_ms);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f s", toSeconds(t));
    }
    return buf;
}

} // namespace lsdgnn
