/**
 * @file
 * The canonical request vocabulary of the service: Job.
 *
 * One submission API covers every workload the paper's FaaS frontier
 * mixes. A Job is a variant of per-kind payloads plus the uniform
 * SubmitOptions (deadline, tenant, lane, trace, routing, seed):
 *
 *  - SampleJob    sample a mini-batch subgraph and return it
 *                 (the historical SampleRequest).
 *  - EmbedJob     sample, gather attribute rows, and run the
 *                 GraphSAGE forward pass — the reply carries one
 *                 embedding row per root.
 *  - TrainStepJob EmbedJob plus the in-batch link-prediction loss
 *                 over the produced root embeddings (the data-parallel
 *                 reference step; gradient application is the
 *                 trainer's responsibility).
 *
 * Every kind rides the same admission queue, EDF lanes, micro-batcher
 * and brown-out policy; kinds never share a micro-batch (the merged
 * execution must be stage-homogeneous), which batchCompatible()
 * enforces.
 */

#ifndef LSDGNN_SERVICE_JOB_HH
#define LSDGNN_SERVICE_JOB_HH

#include <variant>

#include "service/request.hh"

namespace lsdgnn {
namespace service {

/** Sample-only job: the reply carries the sampled subgraph. */
struct SampleJob {
    sampling::SamplePlan plan;
};

/**
 * End-to-end inference job: sample -> gather -> GraphSAGE forward.
 * plan.hops() must equal the service's configured model depth
 * (PipelineConfig::layers); submit() rejects the mismatch with
 * StatusCode::InvalidArgument.
 */
struct EmbedJob {
    sampling::SamplePlan plan;
};

/**
 * Training reference step: EmbedJob plus the in-batch loss over the
 * root embeddings (positive pair = adjacent roots, negative pair =
 * roots half a batch apart). The reply reports the loss; the shared
 * service model is immutable — applying gradients is the distributed
 * trainer's job, not the serving tier's.
 */
struct TrainStepJob {
    sampling::SamplePlan plan;
};

/**
 * One canonical submission: what to run, and how to treat it. The
 * JobKind discriminator (request.hh) indexes the variant order.
 */
struct Job {
    std::variant<SampleJob, EmbedJob, TrainStepJob> op = SampleJob{};
    SubmitOptions options;

    JobKind kind() const { return static_cast<JobKind>(op.index()); }

    const sampling::SamplePlan &
    plan() const
    {
        return std::visit(
            [](const auto &j) -> const sampling::SamplePlan & {
                return j.plan;
            },
            op);
    }

    /** Convenience factories (the idiomatic construction path). */
    static Job
    sample(sampling::SamplePlan plan, SubmitOptions options = {})
    {
        return Job{SampleJob{std::move(plan)}, options};
    }

    static Job
    embed(sampling::SamplePlan plan, SubmitOptions options = {})
    {
        return Job{EmbedJob{std::move(plan)}, options};
    }

    static Job
    trainStep(sampling::SamplePlan plan, SubmitOptions options = {})
    {
        return Job{TrainStepJob{std::move(plan)}, options};
    }

    /** Kind-dispatched construction (load generators, drivers). */
    static Job
    of(JobKind kind, sampling::SamplePlan plan,
       SubmitOptions options = {})
    {
        switch (kind) {
          case JobKind::Embed:
            return embed(std::move(plan), options);
          case JobKind::TrainStep:
            return trainStep(std::move(plan), options);
          case JobKind::Sample:
            break;
        }
        return sample(std::move(plan), options);
    }
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_JOB_HH
