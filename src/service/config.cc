#include "config.hh"

#include <cstdlib>
#include <string>

namespace lsdgnn {
namespace service {

namespace {

Status
invalid(std::string message)
{
    return Status(StatusCode::InvalidArgument, std::move(message));
}

bool
inUnitInterval(double v)
{
    return v > 0.0 && v <= 1.0;
}

const char *
envStr(const char *name)
{
    return std::getenv(name);
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = envStr(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double
envDouble(const char *name, double fallback)
{
    const char *v = envStr(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    return (end != nullptr && *end == '\0') ? parsed : fallback;
}

bool
envBool(const char *name, bool fallback)
{
    return envU64(name, fallback ? 1 : 0) != 0;
}

} // namespace

Status
ServiceConfig::validate() const
{
    if (num_workers == 0)
        return invalid("num_workers must be > 0");
    if (queue_capacity == 0)
        return invalid("queue_capacity must be > 0");
    if (session.dataset.empty())
        return invalid("session.dataset must name a Table 2 dataset");
    if (session.scale_divisor == 0)
        return invalid("session.scale_divisor must be > 0");
    if (session.num_servers == 0)
        return invalid("session.num_servers must be > 0");
    if (batcher.max_requests == 0)
        return invalid("batcher.max_requests must be > 0");
    if (batcher.max_roots == 0)
        return invalid("batcher.max_roots must be > 0");
    if (batcher.window.count() < 0)
        return invalid("batcher.window must be >= 0");
    if (default_deadline.count() < 0)
        return invalid("default_deadline must be >= 0");
    if (qos.interactive_weight == 0 || qos.batch_weight == 0)
        return invalid("qos lane weights must be > 0");
    const BrownOutConfig &bo = qos.brownout;
    if (bo.enabled) {
        if (!(bo.release_fill <= bo.engage_fill &&
              bo.engage_fill <= bo.shed_fill))
            return invalid("brown-out fills must order "
                           "release <= engage <= shed");
        if (!inUnitInterval(bo.fanout_scale))
            return invalid("brownout.fanout_scale must be in (0, 1]");
        if (!inUnitInterval(bo.compute_width_scale))
            return invalid(
                "brownout.compute_width_scale must be in (0, 1]");
    }
    if (pipeline.hidden_dim == 0)
        return invalid("pipeline.hidden_dim must be > 0");
    if (pipeline.layers == 0)
        return invalid("pipeline.layers must be > 0");
    if (pipeline.gather_gbps < 0.0 || pipeline.gather_rtt_us < 0.0)
        return invalid("pipeline gather fabric model must be >= 0");
    if (pipeline.gemm_rows == 0 || pipeline.gemm_cols == 0)
        return invalid("pipeline GEMM geometry must be > 0");
    if (pipeline.gemm_clock_mhz <= 0.0)
        return invalid("pipeline.gemm_clock_mhz must be > 0");
    return StatusCode::Ok;
}

ServiceConfig
ServiceConfig::fromEnv()
{
    ServiceConfig config;
    if (const char *dataset = envStr("LSDGNN_SERVICE_DATASET"))
        config.session.dataset = dataset;
    config.session.scale_divisor = envU64(
        "LSDGNN_SERVICE_SCALE", config.session.scale_divisor);
    config.num_workers = static_cast<std::uint32_t>(
        envU64("LSDGNN_SERVICE_WORKERS", config.num_workers));
    config.queue_capacity = static_cast<std::size_t>(
        envU64("LSDGNN_SERVICE_QUEUE", config.queue_capacity));
    config.qos.enabled =
        envBool("LSDGNN_SERVICE_QOS", config.qos.enabled);
    config.pipeline.enabled =
        envBool("LSDGNN_SERVICE_PIPELINE", config.pipeline.enabled);
    config.pipeline.hidden_dim = static_cast<std::uint32_t>(
        envU64("LSDGNN_SERVICE_HIDDEN", config.pipeline.hidden_dim));
    config.pipeline.layers = static_cast<std::uint32_t>(
        envU64("LSDGNN_SERVICE_LAYERS", config.pipeline.layers));
    config.pipeline.gather_gbps = envDouble(
        "LSDGNN_SERVICE_GATHER_GBPS", config.pipeline.gather_gbps);
    const Status status = config.validate();
    lsd_assert(status.ok(), "LSDGNN_SERVICE_* environment invalid: ",
               status.toString());
    return config;
}

ServiceConfig
ServiceConfig::Builder::build() const
{
    const Status status = config_.validate();
    lsd_assert(status.ok(),
               "invalid ServiceConfig: ", status.toString());
    return config_;
}

} // namespace service
} // namespace lsdgnn
