/**
 * @file
 * Dynamic micro-batching of compatible sampling requests.
 *
 * The software analogue of MoF's Tech-1 request packing, applied one
 * layer up: where the MoF endpoint coalesces memory requests into one
 * fabric package inside a staging/aging window, the Batcher coalesces
 * *service* requests with the same plan shape into one backend
 * execution inside a wall-clock aging window. One merged
 * `sampleBatch` call amortizes per-command overhead (and, on the
 * AxeOffload backend, per-Table-4-command cost) across every rider.
 *
 * A micro-batch closes when any of three limits is hit:
 *   - `max_requests` riders collected,
 *   - `max_roots` total merged batch size reached,
 *   - the aging `window` since the first (oldest) rider expired.
 *
 * Merging concatenates root ranges; splitting walks the merged
 * result's parent chains and hands every frontier entry back to the
 * request that owns its root, with parent indices remapped into the
 * per-request sub-frontier. Requests therefore receive exactly the
 * SampleResult they would have gotten from a lone execution with the
 * same root draw.
 */

#ifndef LSDGNN_SERVICE_BATCHER_HH
#define LSDGNN_SERVICE_BATCHER_HH

#include <chrono>
#include <vector>

#include "service/request_queue.hh"

namespace lsdgnn {
namespace service {

/**
 * Reusable buffers for Batcher::splitInto: per-rider range boundaries
 * for the contiguous fast path, the owner/remap chains that thread
 * parent indices through the hop levels on the general path, plus
 * per-rider counts doubling as write cursors. Single-owner, like
 * SampleScratch.
 */
struct SplitScratch {
    std::vector<std::uint32_t> bounds;
    std::vector<std::uint32_t> owner;
    std::vector<std::uint32_t> remap;
    std::vector<std::uint32_t> next_owner;
    std::vector<std::uint32_t> next_remap;
    std::vector<std::uint32_t> counts;
};

/** Micro-batching knobs. */
struct BatcherConfig {
    /** Max requests coalesced into one backend execution. */
    std::uint32_t max_requests = 8;
    /** Cap on the merged batch_size (sum of rider batch sizes). */
    std::uint64_t max_roots = 4096;
    /** Aging window: how long the first rider waits for company. */
    std::chrono::microseconds window{200};
    /**
     * Deadline-aware (EDF) batch formation. The first rider popped is
     * the lane's earliest deadline, and its deadline becomes the
     * batch's *drop-dead point*: the aging window never stretches past
     * it, riders due before it are never merged in (the queue's
     * straddle rule), and riders found expired when the batch closes
     * are shed instead of executed — a formed batch never carries an
     * already-expired request. false restores the pre-QoS FIFO
     * batcher exactly (the service wires this to QosConfig::enabled).
     */
    bool deadline_aware = true;
};

/** Collects, merges and splits micro-batches. Stateless per batch. */
class Batcher
{
  public:
    explicit Batcher(BatcherConfig config);

    const BatcherConfig &config() const { return config_; }

    /**
     * Blocking: collect one micro-batch from @p queue into @p out
     * (cleared first). Returns false only when the queue is closed
     * and drained; otherwise at least one request is delivered.
     *
     * @param first_pop Optional out-param: when the first rider was
     *        popped — the start of the batch-forming (aging) stage,
     *        for per-stage latency attribution.
     */
    bool collect(RequestQueue &queue, std::vector<Request> &out,
                 Clock::time_point *first_pop = nullptr) const;

    /** One plan covering every rider (batch_size = sum of riders). */
    static sampling::SamplePlan merge(const std::vector<Request> &batch);

    /**
     * Partition @p merged back into per-rider results.
     *
     * @param merged Result of executing the merged plan.
     * @param root_counts batch_size of each rider, in merge order;
     *        must sum to merged.roots.size().
     */
    static std::vector<sampling::SampleResult>
    split(const sampling::SampleResult &merged,
          const std::vector<std::uint32_t> &root_counts);

    /**
     * Hot-path split: like split(), but reuses @p scratch and the
     * capacity already held by the elements of @p out (resized to one
     * result per rider, cleared first). Each rider's sub-frontiers are
     * sized exactly in a counting pass before any element is written,
     * so steady-state execution performs no heap allocation.
     */
    static void splitInto(const sampling::SampleResult &merged,
                          const std::vector<std::uint32_t> &root_counts,
                          SplitScratch &scratch,
                          std::vector<sampling::SampleResult> &out);

  private:
    BatcherConfig config_;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_BATCHER_HH
