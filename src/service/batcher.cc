#include "batcher.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace lsdgnn {
namespace service {

Batcher::Batcher(BatcherConfig config) : config_(config)
{
    lsd_assert(config_.max_requests > 0, "batcher needs max_requests");
    lsd_assert(config_.max_roots > 0, "batcher needs max_roots");
}

bool
Batcher::collect(RequestQueue &queue, std::vector<Request> &out,
                 Clock::time_point *first_pop) const
{
    while (true) {
        out.clear();
        auto first = queue.pop();
        if (!first)
            return false;
        const auto popped_at = Clock::now();
        if (first_pop != nullptr)
            *first_pop = popped_at;
        std::uint64_t roots = first->plan.batch_size;
        // EDF mode: the queue pops earliest-deadline-first, so the
        // first rider's deadline is the batch's drop-dead point. The
        // aging window never waits past it, and the queue's straddle
        // rule keeps riders due before it out of this batch.
        const auto dropdead = config_.deadline_aware
                                  ? first->deadline
                                  : Clock::time_point::max();
        const auto window_end =
            std::min(popped_at + config_.window, dropdead);
        out.push_back(std::move(*first));

        while (out.size() < config_.max_requests &&
               roots < config_.max_roots) {
            // Snapshot the arrival counter *before* scanning so an
            // arrival racing with the scan wakes the wait immediately.
            const std::uint64_t seen = queue.arrivals();
            if (auto rider = queue.popCompatible(
                    out.front(), config_.max_roots - roots, dropdead)) {
                roots += rider->plan.batch_size;
                out.push_back(std::move(*rider));
                continue;
            }
            if (config_.window.count() == 0 ||
                Clock::now() >= window_end)
                break;
            if (!queue.waitForArrival(seen, window_end))
                break; // aged out, or the queue closed
        }

        if (config_.deadline_aware) {
            // Final expiry sweep: a request whose deadline passed
            // while the batch formed must not ride into execution —
            // shed it now (through the queue's accounting) instead of
            // spending backend time on a dead answer.
            const auto now = Clock::now();
            for (auto it = out.begin(); it != out.end();) {
                if (it->deadline > now) {
                    ++it;
                    continue;
                }
                queue.shed(std::move(*it),
                           Status(StatusCode::DeadlineExceeded,
                                  "expired at batch close"),
                           ShedCause::DeadlineDrop);
                it = out.erase(it);
            }
        }
        if (!out.empty())
            return true;
        // Every rider expired while aging; form the next batch.
    }
}

sampling::SamplePlan
Batcher::merge(const std::vector<Request> &batch)
{
    lsd_assert(!batch.empty(), "cannot merge an empty batch");
    sampling::SamplePlan plan = batch.front().plan;
    std::uint64_t roots = plan.batch_size;
    // Compatibility binds riders to the front, not the front to
    // itself: a seeded request is never *merge*-compatible (not even
    // with an identical twin) yet forms a perfectly valid solo batch.
    for (std::size_t i = 1; i < batch.size(); ++i) {
        lsd_assert(batchCompatible(batch[i], batch.front()),
                   "incompatible rider in micro-batch");
        roots += batch[i].plan.batch_size;
    }
    plan.batch_size = static_cast<std::uint32_t>(roots);
    return plan;
}

std::vector<sampling::SampleResult>
Batcher::split(const sampling::SampleResult &merged,
               const std::vector<std::uint32_t> &root_counts)
{
    SplitScratch scratch;
    std::vector<sampling::SampleResult> out;
    splitInto(merged, root_counts, scratch, out);
    return out;
}

void
Batcher::splitInto(const sampling::SampleResult &merged,
                   const std::vector<std::uint32_t> &root_counts,
                   SplitScratch &scratch,
                   std::vector<sampling::SampleResult> &out)
{
    const std::size_t parts = root_counts.size();
    lsd_assert(parts > 0, "split needs at least one part");

    const std::uint64_t total_roots = std::accumulate(
        root_counts.begin(), root_counts.end(), std::uint64_t{0});
    lsd_assert(total_roots == merged.roots.size(),
               "root counts (", total_roots, ") do not cover merged roots (",
               merged.roots.size(), ")");

    const std::size_t hops = merged.frontier.size();
    out.resize(parts);
    for (auto &sub : out) {
        // No clearForReuse: every level of every rider is fully
        // defined below (roots/fast path by assign, general path by
        // exact-size resize + cursor writes), so stale sizes are
        // harmless and save re-initialization.
        sub.frontier.resize(hops);
        sub.parent.resize(hops);
    }

    // Roots: rider i owns the contiguous slice [offset_i, offset_i+n_i).
    // As long as every level keeps that shape — each rider's entries
    // form one contiguous range, in rider order — the whole mapping is
    // described by parts+1 boundary offsets: owner(p) is the range
    // containing p and remap(p) = p - bounds[owner(p)]. The sampling
    // engine emits children in parent order, which preserves the shape
    // hop over hop, so the contiguous mode is the steady-state path;
    // the owner/remap arrays are only materialized if a caller hands
    // in a merged result with out-of-order parents.
    auto &bounds = scratch.bounds;
    bounds.resize(parts + 1);
    bounds[0] = 0;
    for (std::size_t i = 0; i < parts; ++i) {
        bounds[i + 1] = bounds[i] + root_counts[i];
        const auto base = merged.roots.begin() +
                          static_cast<std::ptrdiff_t>(bounds[i]);
        out[i].roots.assign(base, base + root_counts[i]);
    }
    bool contiguous = true;

    auto &owner = scratch.owner;
    auto &remap = scratch.remap;
    auto &counts = scratch.counts;
    for (std::size_t h = 0; h < hops; ++h) {
        const auto &frontier = merged.frontier[h];
        const auto &parent = merged.parent[h];
        lsd_assert(frontier.size() == parent.size(),
                   "merged frontier/parent size mismatch at hop ", h);
        const std::uint32_t prev_size =
            contiguous ? bounds[parts]
                       : static_cast<std::uint32_t>(owner.size());
        // The owner/remap chain feeds the *next* hop's rebase; on the
        // last hop (the bulk of the result) it has no consumer.
        const bool chain_needed = h + 1 < hops;

        if (contiguous) {
            // Optimistic single pass: with non-decreasing parents, a
            // cursor walking the rider boundaries classifies every
            // entry in O(1), sizing each rider's sub-level exactly.
            counts.assign(parts, 0);
            bool monotone = true;
            {
                std::size_t r = 0;
                std::uint32_t last_p = 0;
                for (std::size_t j = 0; j < parent.size(); ++j) {
                    const std::uint32_t p = parent[j];
                    lsd_assert(p < prev_size,
                               "parent index out of range at hop ", h);
                    if (p < last_p) {
                        monotone = false;
                        break;
                    }
                    last_p = p;
                    while (p >= bounds[r + 1])
                        ++r;
                    ++counts[r];
                }
            }
            if (monotone) {
                // Rider i owns one merged-level range of counts[i]
                // entries: assign the frontier slice whole (single
                // memcpy) and rebase parents by the rider's boundary
                // offset in one fused read-subtract-write pass.
                std::size_t begin = 0;
                for (std::size_t i = 0; i < parts; ++i) {
                    const std::size_t n = counts[i];
                    const auto b = static_cast<std::ptrdiff_t>(begin);
                    auto &sub = out[i];
                    sub.frontier[h].assign(
                        frontier.begin() + b,
                        frontier.begin() + b +
                            static_cast<std::ptrdiff_t>(n));
                    sub.parent[h].resize(n);
                    const std::uint32_t base = bounds[i];
                    const std::uint32_t *src = parent.data() + begin;
                    std::uint32_t *dst = sub.parent[h].data();
                    for (std::size_t j = 0; j < n; ++j)
                        dst[j] = src[j] - base;
                    begin += n;
                }
                bounds[0] = 0;
                for (std::size_t i = 0; i < parts; ++i)
                    bounds[i + 1] = bounds[i] + counts[i];
                continue;
            }
            // Out-of-order parents: materialize the boundary mapping
            // as explicit owner/remap arrays and take the general
            // path for this and subsequent hops.
            owner.resize(prev_size);
            remap.resize(prev_size);
            for (std::size_t i = 0; i < parts; ++i)
                for (std::uint32_t p = bounds[i]; p < bounds[i + 1];
                     ++p) {
                    owner[p] = static_cast<std::uint32_t>(i);
                    remap[p] = p - bounds[i];
                }
            contiguous = false;
        }

        // General path. Counting pass first (the optimistic pass above
        // may have aborted partway), then counts double as per-rider
        // write cursors.
        counts.assign(parts, 0);
        for (std::size_t j = 0; j < parent.size(); ++j) {
            const std::uint32_t p = parent[j];
            lsd_assert(p < prev_size,
                       "parent index out of range at hop ", h);
            ++counts[owner[p]];
        }
        auto &next_owner = scratch.next_owner;
        auto &next_remap = scratch.next_remap;
        next_owner.resize(chain_needed ? frontier.size() : 0);
        next_remap.resize(chain_needed ? frontier.size() : 0);
        for (std::size_t i = 0; i < parts; ++i) {
            out[i].frontier[h].resize(counts[i]);
            out[i].parent[h].resize(counts[i]);
        }
        counts.assign(parts, 0);
        for (std::size_t j = 0; j < frontier.size(); ++j) {
            const std::uint32_t p = parent[j];
            const std::uint32_t o = owner[p];
            const std::uint32_t k = counts[o]++;
            auto &sub = out[o];
            sub.frontier[h][k] = frontier[j];
            sub.parent[h][k] = remap[p];
            if (chain_needed) {
                next_owner[j] = o;
                next_remap[j] = k;
            }
        }
        owner.swap(next_owner);
        remap.swap(next_remap);
    }
}

} // namespace service
} // namespace lsdgnn
