#include "batcher.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace lsdgnn {
namespace service {

Batcher::Batcher(BatcherConfig config) : config_(config)
{
    lsd_assert(config_.max_requests > 0, "batcher needs max_requests");
    lsd_assert(config_.max_roots > 0, "batcher needs max_roots");
}

bool
Batcher::collect(RequestQueue &queue, std::vector<Request> &out) const
{
    out.clear();
    auto first = queue.pop();
    if (!first)
        return false;
    std::uint64_t roots = first->plan.batch_size;
    const auto window_end = Clock::now() + config_.window;
    out.push_back(std::move(*first));

    while (out.size() < config_.max_requests && roots < config_.max_roots) {
        // Snapshot the arrival counter *before* scanning so an
        // arrival racing with the scan wakes the wait immediately.
        const std::uint64_t seen = queue.arrivals();
        if (auto rider = queue.popCompatible(out.front().plan,
                                             config_.max_roots - roots)) {
            roots += rider->plan.batch_size;
            out.push_back(std::move(*rider));
            continue;
        }
        if (config_.window.count() == 0 || Clock::now() >= window_end)
            break;
        if (!queue.waitForArrival(seen, window_end))
            break; // aged out, or the queue closed
    }
    return true;
}

sampling::SamplePlan
Batcher::merge(const std::vector<Request> &batch)
{
    lsd_assert(!batch.empty(), "cannot merge an empty batch");
    sampling::SamplePlan plan = batch.front().plan;
    std::uint64_t roots = 0;
    for (const Request &req : batch) {
        lsd_assert(batchCompatible(req.plan, plan),
                   "incompatible rider in micro-batch");
        roots += req.plan.batch_size;
    }
    plan.batch_size = static_cast<std::uint32_t>(roots);
    return plan;
}

std::vector<sampling::SampleResult>
Batcher::split(const sampling::SampleResult &merged,
               const std::vector<std::uint32_t> &root_counts)
{
    const std::size_t parts = root_counts.size();
    lsd_assert(parts > 0, "split needs at least one part");

    const std::uint64_t total_roots = std::accumulate(
        root_counts.begin(), root_counts.end(), std::uint64_t{0});
    lsd_assert(total_roots == merged.roots.size(),
               "root counts (", total_roots, ") do not cover merged roots (",
               merged.roots.size(), ")");

    const std::size_t hops = merged.frontier.size();
    std::vector<sampling::SampleResult> out(parts);

    // Roots: rider i owns the contiguous slice [offset_i, offset_i+n_i).
    // owner/remap describe, for every entry of the *previous* merged
    // level, which rider it belongs to and its index inside that
    // rider's copy of the level; hop h rewires its parent indices
    // through them.
    std::vector<std::uint32_t> owner(merged.roots.size());
    std::vector<std::uint32_t> remap(merged.roots.size());
    {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < parts; ++i) {
            out[i].frontier.resize(hops);
            out[i].parent.resize(hops);
            for (std::uint32_t j = 0; j < root_counts[i]; ++j, ++idx) {
                out[i].roots.push_back(merged.roots[idx]);
                owner[idx] = static_cast<std::uint32_t>(i);
                remap[idx] = j;
            }
        }
    }

    for (std::size_t h = 0; h < hops; ++h) {
        const auto &frontier = merged.frontier[h];
        const auto &parent = merged.parent[h];
        lsd_assert(frontier.size() == parent.size(),
                   "merged frontier/parent size mismatch at hop ", h);
        std::vector<std::uint32_t> next_owner(frontier.size());
        std::vector<std::uint32_t> next_remap(frontier.size());
        for (std::size_t j = 0; j < frontier.size(); ++j) {
            const std::uint32_t p = parent[j];
            lsd_assert(p < owner.size(),
                       "parent index out of range at hop ", h);
            const std::uint32_t o = next_owner[j] = owner[p];
            auto &sub = out[o];
            next_remap[j] =
                static_cast<std::uint32_t>(sub.frontier[h].size());
            sub.frontier[h].push_back(frontier[j]);
            sub.parent[h].push_back(remap[p]);
        }
        owner = std::move(next_owner);
        remap = std::move(next_remap);
    }
    return out;
}

} // namespace service
} // namespace lsdgnn
