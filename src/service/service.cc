#include "service.hh"

#include "framework/distributed.hh"

namespace lsdgnn {
namespace service {

SamplingService::SamplingService(ServiceConfig config)
    : config_(std::move(config)),
      qos_(std::make_unique<QosRuntime>(config_.qos)),
      stats_(std::make_unique<ServiceStats>())
{
    // The EDF batcher is part of the QoS scheduler: disable both
    // together so qos.enabled=false is the complete pre-QoS engine.
    config_.batcher.deadline_aware = config_.qos.enabled;

    RequestQueueConfig qcfg;
    qcfg.capacity = config_.queue_capacity;
    qcfg.qos = config_.qos.enabled;
    qcfg.interactive_weight = config_.qos.interactive_weight;
    qcfg.batch_weight = config_.qos.batch_weight;
    qcfg.starvation_threshold = config_.qos.starvation_threshold;
    queue_ = std::make_unique<RequestQueue>(qcfg);
    if (config_.qos.enabled)
        queue_->bindQos(qos_.get());

    // The distributed workers must share one store — the graph
    // instance is the big allocation, and per-worker copies would
    // also give every shard a private view instead of one fabric.
    if (config_.session.backend == framework::Backend::Distributed &&
        !config_.session.distributed.store)
        config_.session.distributed.store =
            framework::DistributedStore::create(config_.session);

    WorkerPoolConfig pcfg;
    pcfg.num_workers = config_.num_workers;
    pcfg.session = config_.session;
    pcfg.batcher = config_.batcher;
    pcfg.qos = config_.qos.enabled ? qos_.get() : nullptr;
    pool = std::make_unique<WorkerPool>(pcfg, *queue_, *stats_);
    pool->start();
}

SamplingService::~SamplingService()
{
    shutdown(Shutdown::Drain);
}

std::future<Reply>
SamplingService::submit(const SampleRequest &request)
{
    Request req;
    req.plan = request.plan;
    req.routing = request.options.routing;
    req.tenant = request.options.tenant;
    req.lane = request.options.lane;
    // trace_id 0 = "allocate one for me": every request runs under a
    // live trace identity, so replies, spans and flight-recorder
    // events always name their request (see SubmitOptions::trace_id
    // for the id scheme).
    req.trace_id = request.options.trace_id != 0
                       ? request.options.trace_id
                       : trace::TraceContext::nextTraceId();
    req.trace = trace::TraceContext::root(req.trace_id);
    const auto now = Clock::now();
    const auto deadline = request.options.deadline.count() > 0
                              ? request.options.deadline
                              : config_.default_deadline;
    if (deadline.count() > 0)
        req.deadline = now + deadline;
    std::future<Reply> future = req.promise.get_future();

    if (config_.qos.enabled) {
        // Per-tenant token bucket: a deny burns the tenant's budget,
        // not queue capacity — the future completes immediately.
        const AdmitDecision decision =
            qos_->registry.admit(req.tenant, now);
        if (!decision.admitted) {
            Reply reply;
            reply.status = Status(StatusCode::Rejected,
                                  "tenant admission rate exceeded");
            reply.trace_id = req.trace_id;
            reply.span_id = req.trace.span_id;
            reply.tenant = req.tenant;
            reply.lane = req.lane;
            reply.shed_cause = decision.cause;
            req.promise.set_value(std::move(reply));
            return future;
        }
        // Brown-out level 2 (DegradeAndShed): keep interactive
        // traffic flowing degraded, shed Batch-lane work outright.
        const double fill =
            static_cast<double>(queue_->depth()) /
            static_cast<double>(queue_->capacity());
        const int level = qos_->brownout.observe(fill, now);
        if (level >= BrownOut::DegradeAndShed &&
            req.lane == Lane::Batch) {
            qos_->registry.recordShed(req.tenant, ShedCause::BrownOut);
            Reply reply;
            reply.status = Status(StatusCode::Rejected,
                                  "brown-out: batch lane shedding");
            reply.trace_id = req.trace_id;
            reply.span_id = req.trace.span_id;
            reply.tenant = req.tenant;
            reply.lane = req.lane;
            reply.shed_cause = ShedCause::BrownOut;
            req.promise.set_value(std::move(reply));
            return future;
        }
    }

    queue_->push(std::move(req));
    return future;
}

std::future<Reply>
SamplingService::submit(const sampling::SamplePlan &plan)
{
    return submit(SampleRequest{plan, {}});
}

std::future<Reply>
SamplingService::submit(const sampling::SamplePlan &plan,
                        std::chrono::microseconds deadline)
{
    SampleRequest request{plan, {}};
    request.options.deadline = deadline;
    return submit(request);
}

Reply
SamplingService::sample(const SampleRequest &request)
{
    return submit(request).get();
}

Reply
SamplingService::sample(const sampling::SamplePlan &plan)
{
    return sample(SampleRequest{plan, {}});
}

void
SamplingService::shutdown(Shutdown mode)
{
    if (down)
        return;
    down = true;
    queue_->close();
    if (mode == Shutdown::Cancel)
        queue_->cancelPending();
    pool->join();
}

} // namespace service
} // namespace lsdgnn
