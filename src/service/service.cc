#include "service.hh"

namespace lsdgnn {
namespace service {

SamplingService::SamplingService(ServiceConfig config)
    : config_(std::move(config)),
      stats_(std::make_unique<ServiceStats>()),
      queue_(std::make_unique<RequestQueue>(
          RequestQueueConfig{config_.queue_capacity}))
{
    WorkerPoolConfig pcfg;
    pcfg.num_workers = config_.num_workers;
    pcfg.session = config_.session;
    pcfg.batcher = config_.batcher;
    pool = std::make_unique<WorkerPool>(pcfg, *queue_, *stats_);
    pool->start();
}

SamplingService::~SamplingService()
{
    shutdown(Shutdown::Drain);
}

std::future<Reply>
SamplingService::submit(const sampling::SamplePlan &plan)
{
    return submit(plan, config_.default_deadline);
}

std::future<Reply>
SamplingService::submit(const sampling::SamplePlan &plan,
                        std::chrono::microseconds deadline)
{
    Request req;
    req.plan = plan;
    if (deadline.count() > 0)
        req.deadline = Clock::now() + deadline;
    std::future<Reply> future = req.promise.get_future();
    queue_->push(std::move(req));
    return future;
}

Reply
SamplingService::sample(const sampling::SamplePlan &plan)
{
    return submit(plan).get();
}

void
SamplingService::shutdown(Shutdown mode)
{
    if (down)
        return;
    down = true;
    queue_->close();
    if (mode == Shutdown::Cancel)
        queue_->cancelPending();
    pool->join();
}

} // namespace service
} // namespace lsdgnn
