#include "service.hh"

#include "framework/distributed.hh"

namespace lsdgnn {
namespace service {

SamplingService::SamplingService(ServiceConfig config)
    : config_(std::move(config)),
      stats_(std::make_unique<ServiceStats>()),
      queue_(std::make_unique<RequestQueue>(
          RequestQueueConfig{config_.queue_capacity}))
{
    // The distributed workers must share one store — the graph
    // instance is the big allocation, and per-worker copies would
    // also give every shard a private view instead of one fabric.
    if (config_.session.backend == framework::Backend::Distributed &&
        !config_.session.distributed.store)
        config_.session.distributed.store =
            framework::DistributedStore::create(config_.session);

    WorkerPoolConfig pcfg;
    pcfg.num_workers = config_.num_workers;
    pcfg.session = config_.session;
    pcfg.batcher = config_.batcher;
    pool = std::make_unique<WorkerPool>(pcfg, *queue_, *stats_);
    pool->start();
}

SamplingService::~SamplingService()
{
    shutdown(Shutdown::Drain);
}

std::future<Reply>
SamplingService::submit(const SampleRequest &request)
{
    Request req;
    req.plan = request.plan;
    req.routing = request.options.routing;
    // trace_id 0 = "allocate one for me": every request runs under a
    // live trace identity, so replies, spans and flight-recorder
    // events always name their request (see SubmitOptions::trace_id
    // for the id scheme).
    req.trace_id = request.options.trace_id != 0
                       ? request.options.trace_id
                       : trace::TraceContext::nextTraceId();
    req.trace = trace::TraceContext::root(req.trace_id);
    const auto deadline = request.options.deadline.count() > 0
                              ? request.options.deadline
                              : config_.default_deadline;
    if (deadline.count() > 0)
        req.deadline = Clock::now() + deadline;
    std::future<Reply> future = req.promise.get_future();
    queue_->push(std::move(req));
    return future;
}

std::future<Reply>
SamplingService::submit(const sampling::SamplePlan &plan)
{
    return submit(SampleRequest{plan, {}});
}

std::future<Reply>
SamplingService::submit(const sampling::SamplePlan &plan,
                        std::chrono::microseconds deadline)
{
    SampleRequest request{plan, {}};
    request.options.deadline = deadline;
    return submit(request);
}

Reply
SamplingService::sample(const SampleRequest &request)
{
    return submit(request).get();
}

Reply
SamplingService::sample(const sampling::SamplePlan &plan)
{
    return sample(SampleRequest{plan, {}});
}

void
SamplingService::shutdown(Shutdown mode)
{
    if (down)
        return;
    down = true;
    queue_->close();
    if (mode == Shutdown::Cancel)
        queue_->cancelPending();
    pool->join();
}

} // namespace service
} // namespace lsdgnn
