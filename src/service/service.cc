#include "service.hh"

#include "framework/distributed.hh"
#include "graph/datasets.hh"

namespace lsdgnn {
namespace service {

Service::Service(ServiceConfig config)
    : config_(std::move(config))
{
    const Status valid = config_.validate();
    lsd_assert(valid.ok(),
               "invalid ServiceConfig: ", valid.toString());
    qos_ = std::make_unique<QosRuntime>(config_.qos);
    stats_ = std::make_unique<ServiceStats>();

    // The EDF batcher is part of the QoS scheduler: disable both
    // together so qos.enabled=false is the complete pre-QoS engine.
    config_.batcher.deadline_aware = config_.qos.enabled;

    RequestQueueConfig qcfg;
    qcfg.capacity = config_.queue_capacity;
    qcfg.qos = config_.qos.enabled;
    qcfg.interactive_weight = config_.qos.interactive_weight;
    qcfg.batch_weight = config_.qos.batch_weight;
    qcfg.starvation_threshold = config_.qos.starvation_threshold;
    queue_ = std::make_unique<RequestQueue>(qcfg);
    if (config_.qos.enabled)
        queue_->bindQos(qos_.get());

    // The distributed workers must share one store — the graph
    // instance is the big allocation, and per-worker copies would
    // also give every shard a private view instead of one fabric.
    if (config_.session.backend == framework::Backend::Distributed &&
        !config_.session.distributed.store)
        config_.session.distributed.store =
            framework::DistributedStore::create(config_.session);

    // One model for the whole service, seeded independently of the
    // workers: a seeded job's embeddings must not depend on which
    // worker computes them. The dataset spec fixes the input width
    // (instantiate() scales nodes/edges but keeps attr_len).
    compute_ = std::make_unique<ComputeRuntime>(
        config_.pipeline,
        graph::datasetByName(config_.session.dataset).attr_len);

    WorkerPoolConfig pcfg;
    pcfg.num_workers = config_.num_workers;
    pcfg.session = config_.session;
    pcfg.batcher = config_.batcher;
    pcfg.qos = config_.qos.enabled ? qos_.get() : nullptr;
    pcfg.compute = compute_.get();
    pool = std::make_unique<WorkerPool>(pcfg, *queue_, *stats_);
    pool->start();
}

Service::~Service()
{
    shutdown(Shutdown::Drain);
}

std::future<Reply>
Service::submit(const Job &job)
{
    Request req;
    req.kind = job.kind();
    req.plan = job.plan();
    req.seed = job.options.seed;
    req.routing = job.options.routing;
    req.tenant = job.options.tenant;
    req.lane = job.options.lane;
    // trace_id 0 = "allocate one for me": every request runs under a
    // live trace identity, so replies, spans and flight-recorder
    // events always name their request (see SubmitOptions::trace_id
    // for the id scheme).
    req.trace_id = job.options.trace_id != 0
                       ? job.options.trace_id
                       : trace::TraceContext::nextTraceId();
    req.trace = trace::TraceContext::root(req.trace_id);
    std::future<Reply> future = req.promise.get_future();

    const auto failFast = [&](StatusCode code, std::string message,
                              ShedCause cause) {
        Reply reply;
        reply.status = Status(code, std::move(message));
        reply.kind = req.kind;
        reply.trace_id = req.trace_id;
        reply.span_id = req.trace.span_id;
        reply.tenant = req.tenant;
        reply.lane = req.lane;
        reply.shed_cause = cause;
        req.promise.set_value(std::move(reply));
        return std::move(future);
    };

    // Shape validation up front: a malformed plan must never occupy
    // queue capacity or a worker.
    if (req.plan.batch_size == 0 || req.plan.fanouts.empty())
        return failFast(StatusCode::InvalidArgument,
                        "plan needs batch_size > 0 and >= 1 hop",
                        ShedCause::None);
    if (needsCompute(req.kind) &&
        req.plan.hops() != config_.pipeline.layers)
        return failFast(
            StatusCode::InvalidArgument,
            "compute kinds must sample exactly pipeline.layers (" +
                std::to_string(config_.pipeline.layers) + ") hops, got " +
                std::to_string(req.plan.hops()),
            ShedCause::None);

    const auto now = Clock::now();
    const auto deadline = job.options.deadline.count() > 0
                              ? job.options.deadline
                              : config_.default_deadline;
    if (deadline.count() > 0)
        req.deadline = now + deadline;

    if (config_.qos.enabled) {
        // Per-tenant token bucket: a deny burns the tenant's budget,
        // not queue capacity — the future completes immediately.
        const AdmitDecision decision =
            qos_->registry.admit(req.tenant, now);
        if (!decision.admitted)
            return failFast(StatusCode::Rejected,
                            "tenant admission rate exceeded",
                            decision.cause);
        // Brown-out level 2 (DegradeAndShed): keep interactive
        // traffic flowing degraded, shed Batch-lane work outright.
        const double fill =
            static_cast<double>(queue_->depth()) /
            static_cast<double>(queue_->capacity());
        const int level = qos_->brownout.observe(fill, now);
        if (level >= BrownOut::DegradeAndShed &&
            req.lane == Lane::Batch) {
            qos_->registry.recordShed(req.tenant, ShedCause::BrownOut);
            return failFast(StatusCode::Rejected,
                            "brown-out: batch lane shedding",
                            ShedCause::BrownOut);
        }
    }

    queue_->push(std::move(req));
    return future;
}

Result<Reply>
Service::execute(const Job &job)
{
    Reply reply = submit(job).get();
    if (!reply.status.hasPayload())
        return reply.status;
    return reply;
}

void
Service::shutdown(Shutdown mode)
{
    if (down)
        return;
    down = true;
    queue_->close();
    if (mode == Shutdown::Cancel)
        queue_->cancelPending();
    pool->join();
}

} // namespace service
} // namespace lsdgnn
