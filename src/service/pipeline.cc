#include "pipeline.hh"

namespace lsdgnn {
namespace service {

namespace {

gnn::GraphSageModel
buildModel(const PipelineConfig &config, std::size_t attr_dim)
{
    Rng rng(config.model_seed);
    return gnn::GraphSageModel(attr_dim, config.hidden_dim,
                               config.layers, rng, config.aggregator);
}

} // namespace

ComputeRuntime::ComputeRuntime(const PipelineConfig &config,
                               std::size_t attr_dim)
    : config_(config), model_(buildModel(config, attr_dim)),
      gemm_(config.gemm_rows, config.gemm_cols, config.gemm_clock_mhz)
{
}

} // namespace service
} // namespace lsdgnn
