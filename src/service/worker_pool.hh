/**
 * @file
 * Worker pool: N threads, one framework::Session shard each.
 *
 * framework::Session is not thread-safe (see session.hh), so the pool
 * gives every worker thread its own Session, built *inside* the
 * worker thread from a shared config template with the seed offset by
 * the worker id — per-worker sampling streams are decorrelated yet
 * fully deterministic for a fixed base seed.
 *
 * Each worker loops: collect one micro-batch from the shared
 * admission queue (Batcher aging window), execute the merged plan on
 * its Session, split the result, complete every rider's future, and
 * record latency stats. Execution spans land on per-worker Perfetto
 * tracks (`service.workerN`) when tracing is on.
 */

#ifndef LSDGNN_SERVICE_WORKER_POOL_HH
#define LSDGNN_SERVICE_WORKER_POOL_HH

#include <cstdint>
#include <thread>
#include <vector>

#include "framework/session.hh"
#include "service/batcher.hh"
#include "service/request_queue.hh"
#include "service/service_stats.hh"

namespace lsdgnn {
namespace service {

struct QosRuntime;

/** Worker-pool construction knobs. */
struct WorkerPoolConfig {
    /** Worker threads (== Session shards). */
    std::uint32_t num_workers = 2;
    /** Per-worker Session template; seed is offset by worker id. */
    framework::SessionConfig session;
    /** Micro-batching policy every worker applies. */
    BatcherConfig batcher;
    /**
     * QoS runtime (owned by the service). When set, every worker
     * feeds the brown-out controller with queue fill before executing
     * a micro-batch, degrades the merged plan's fan-outs at level >= 1
     * (replies become Status::Degraded with ShedCause::BrownOut — the
     * payload stays usable), and records per-tenant outcomes. Null
     * disables all of it (legacy engine / direct-pool tests).
     */
    QosRuntime *qos = nullptr;
};

/**
 * Owns the worker threads. start() launches them; they exit when the
 * queue reports closed-and-drained. join() (or the destructor) waits
 * for that.
 */
class WorkerPool
{
  public:
    WorkerPool(WorkerPoolConfig config, RequestQueue &queue,
               ServiceStats &stats);

    /** Joins outstanding workers (queue must be closed to return). */
    ~WorkerPool();

    /** Launch the worker threads. Call once. */
    void start();

    /** Wait for every worker to drain out and exit. Idempotent. */
    void join();

    std::uint32_t numWorkers() const { return config_.num_workers; }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

  private:
    void run(std::uint32_t worker_id);

    WorkerPoolConfig config_;
    RequestQueue &queue_;
    ServiceStats &stats_;
    std::vector<std::thread> threads;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_WORKER_POOL_HH
