/**
 * @file
 * Worker pool: N double-buffered pipelines, one Session shard each.
 *
 * framework::Session is not thread-safe (see session.hh), so the pool
 * gives every worker thread its own Session, built *inside* the
 * worker thread from a shared config template with the seed offset by
 * the worker id — per-worker sampling streams are decorrelated yet
 * fully deterministic for a fixed base seed.
 *
 * Each worker is a two-stage pipeline (see pipeline.hh): the worker
 * thread collects a micro-batch, samples it and gathers attribute
 * rows (paced to the modeled gather fabric), then hands the payload
 * to its compute thread, which runs the GraphSAGE forward on the
 * shared GEMM engine and completes the riders' futures — so batch
 * i+1 samples/gathers while batch i computes. Sample-only jobs
 * complete inline in the first stage. PipelineConfig::enabled = false
 * runs both stages inline on the worker thread (the serial A/B
 * baseline). Execution spans land on per-worker Perfetto tracks
 * (`service.workerN`, `service.workerN.compute`) when tracing is on.
 */

#ifndef LSDGNN_SERVICE_WORKER_POOL_HH
#define LSDGNN_SERVICE_WORKER_POOL_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "framework/session.hh"
#include "service/batcher.hh"
#include "service/pipeline.hh"
#include "service/request_queue.hh"
#include "service/service_stats.hh"

namespace lsdgnn {
namespace service {

struct QosRuntime;

/**
 * Cumulative busy wall time per pipeline stage, summed over all
 * workers — the occupancy numbers the overlap benchmark divides:
 * with the pipeline on, wall clock should approach
 * max(sample + gather, compute) per worker instead of their sum.
 */
struct StageBusy {
    double sample_us = 0.0;
    double gather_us = 0.0;
    double compute_us = 0.0;
};

/** Worker-pool construction knobs. */
struct WorkerPoolConfig {
    /** Worker threads (== Session shards). */
    std::uint32_t num_workers = 2;
    /** Per-worker Session template; seed is offset by worker id. */
    framework::SessionConfig session;
    /** Micro-batching policy every worker applies. */
    BatcherConfig batcher;
    /**
     * QoS runtime (owned by the service). When set, every worker
     * feeds the brown-out controller with queue fill before executing
     * a micro-batch, degrades the merged plan's fan-outs at level >= 1
     * (replies become Status::Degraded with ShedCause::BrownOut — the
     * payload stays usable; compute kinds additionally lose embedding
     * width), and records per-tenant outcomes. Null disables all of
     * it (legacy engine / direct-pool tests).
     */
    QosRuntime *qos = nullptr;
    /**
     * Shared compute runtime (model + GEMM engine + pipeline knobs),
     * owned by the service; must outlive the pool. Null runs a
     * sample-only pool (direct-pool tests) — compute-kind requests
     * must not reach it.
     */
    const ComputeRuntime *compute = nullptr;
};

/**
 * Owns the worker threads. start() launches them; they exit when the
 * queue reports closed-and-drained. join() (or the destructor) waits
 * for that.
 */
class WorkerPool
{
  public:
    WorkerPool(WorkerPoolConfig config, RequestQueue &queue,
               ServiceStats &stats);

    /** Joins outstanding workers (queue must be closed to return). */
    ~WorkerPool();

    /** Launch the worker threads. Call once. */
    void start();

    /** Wait for every worker to drain out and exit. Idempotent. */
    void join();

    std::uint32_t numWorkers() const { return config_.num_workers; }

    /** Per-stage busy time so far (exact once workers quiesce). */
    StageBusy stageBusy() const;

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

  private:
    void run(std::uint32_t worker_id);

    WorkerPoolConfig config_;
    RequestQueue &queue_;
    ServiceStats &stats_;
    std::vector<std::thread> threads;
    /** Stage-busy accumulators, nanoseconds (atomic: all workers). */
    std::atomic<std::uint64_t> sampleBusyNs_{0};
    std::atomic<std::uint64_t> gatherBusyNs_{0};
    std::atomic<std::uint64_t> computeBusyNs_{0};
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_WORKER_POOL_HH
