#include "load_gen.hh"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hh"

namespace lsdgnn {
namespace service {

namespace {

/** Exact percentile from an unsorted latency sample (sorts in place). */
double
exactPercentile(std::vector<double> &v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

/** Fold one reply into the tallies. */
void
tally(LoadGenReport &report, const Reply &reply,
      std::vector<double> &latencies)
{
    if (reply.hasBatch()) {
        // Degraded replies still delivered a batch: goodput, with a
        // separate degradation tally.
        ++report.ok;
        if (reply.status == StatusCode::Degraded)
            ++report.degraded;
        latencies.push_back(reply.e2e_us);
        return;
    }
    switch (reply.status.code()) {
      case StatusCode::Rejected: ++report.rejected; break;
      case StatusCode::DeadlineExceeded: ++report.dropped; break;
      case StatusCode::Cancelled: ++report.cancelled; break;
      default: break;
    }
}

void
finalize(LoadGenReport &report, std::vector<double> &latencies,
         Clock::time_point start, Clock::time_point end)
{
    report.wall_s = elapsedUs(start, end) / 1e6;
    if (report.wall_s > 0) {
        report.offered_qps =
            static_cast<double>(report.offered) / report.wall_s;
        report.goodput_qps =
            static_cast<double>(report.ok) / report.wall_s;
    }
    double sum = 0.0;
    for (double v : latencies)
        sum += v;
    report.mean_us =
        latencies.empty() ? 0.0
                          : sum / static_cast<double>(latencies.size());
    report.p50_us = exactPercentile(latencies, 0.50);
    report.p95_us = exactPercentile(latencies, 0.95);
    report.p99_us = exactPercentile(latencies, 0.99);
}

} // namespace

LoadGenReport
LoadGenerator::runOpenLoop(const sampling::SamplePlan &plan,
                           double target_qps,
                           std::chrono::milliseconds duration,
                           std::uint64_t seed)
{
    LoadGenReport report;
    std::vector<double> latencies;
    Rng rng(seed);

    std::vector<std::future<Reply>> futures;
    futures.reserve(static_cast<std::size_t>(
        target_qps * std::chrono::duration<double>(duration).count() *
            1.25 + 16));

    const auto start = Clock::now();
    const auto end_at = start + duration;
    auto next_arrival = start;
    while (next_arrival < end_at) {
        std::this_thread::sleep_until(next_arrival);
        futures.push_back(service_.submit(SampleRequest{plan, {}}));
        ++report.offered;
        // Exponential inter-arrival gap: -ln(U)/lambda seconds.
        const double u = std::max(rng.nextDouble(), 1e-12);
        const auto gap_us = static_cast<std::int64_t>(
            -std::log(u) / target_qps * 1e6);
        next_arrival += std::chrono::microseconds(std::max<std::int64_t>(
            gap_us, 1));
    }
    const auto submit_end = Clock::now();

    for (auto &f : futures)
        tally(report, f.get(), latencies);
    finalize(report, latencies, start, submit_end);
    return report;
}

LoadGenReport
LoadGenerator::runClosedLoop(const sampling::SamplePlan &plan,
                             std::uint32_t clients,
                             std::chrono::milliseconds duration,
                             const SubmitOptions &options)
{
    const SampleRequest request{plan, options};
    struct ClientTally {
        LoadGenReport report;
        std::vector<double> latencies;
    };
    std::vector<ClientTally> tallies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);

    const auto start = Clock::now();
    const auto end_at = start + duration;
    for (std::uint32_t c = 0; c < clients; ++c) {
        threads.emplace_back([this, &request, end_at, &tallies, c] {
            ClientTally &t = tallies[c];
            while (Clock::now() < end_at) {
                ++t.report.offered;
                tally(t.report, service_.sample(request), t.latencies);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const auto end = Clock::now();

    LoadGenReport report;
    std::vector<double> latencies;
    for (ClientTally &t : tallies) {
        report.offered += t.report.offered;
        report.ok += t.report.ok;
        report.degraded += t.report.degraded;
        report.rejected += t.report.rejected;
        report.dropped += t.report.dropped;
        report.cancelled += t.report.cancelled;
        latencies.insert(latencies.end(), t.latencies.begin(),
                         t.latencies.end());
    }
    finalize(report, latencies, start, end);
    return report;
}

} // namespace service
} // namespace lsdgnn
