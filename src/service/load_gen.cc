#include "load_gen.hh"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hh"

namespace lsdgnn {
namespace service {

namespace {

/** Exact percentile from an unsorted latency sample (sorts in place). */
double
exactPercentile(std::vector<double> &v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

/** Fold one reply into the tallies. */
void
tally(LoadGenReport &report, const Reply &reply,
      std::vector<double> &latencies)
{
    if (reply.status.hasPayload()) {
        // Degraded replies still delivered a payload: goodput, with a
        // separate degradation tally.
        ++report.ok;
        if (reply.status == StatusCode::Degraded)
            ++report.degraded;
        if (report.slo_us <= 0.0 || reply.e2e_us <= report.slo_us)
            ++report.slo_ok;
        latencies.push_back(reply.e2e_us);
        return;
    }
    report.sheds.add(reply.shed_cause);
    switch (reply.status.code()) {
      case StatusCode::Rejected: ++report.rejected; break;
      case StatusCode::DeadlineExceeded: ++report.dropped; break;
      case StatusCode::Cancelled: ++report.cancelled; break;
      default: break;
    }
}

void
finalize(LoadGenReport &report, std::vector<double> &latencies,
         Clock::time_point start, Clock::time_point end)
{
    report.wall_s = elapsedUs(start, end) / 1e6;
    if (report.wall_s > 0) {
        report.offered_qps =
            static_cast<double>(report.offered) / report.wall_s;
        report.goodput_qps =
            static_cast<double>(report.ok) / report.wall_s;
    }
    double sum = 0.0;
    for (double v : latencies)
        sum += v;
    report.mean_us =
        latencies.empty() ? 0.0
                          : sum / static_cast<double>(latencies.size());
    report.p50_us = exactPercentile(latencies, 0.50);
    report.p95_us = exactPercentile(latencies, 0.95);
    report.p99_us = exactPercentile(latencies, 0.99);
}

} // namespace

LoadGenReport
LoadGenerator::runOpenLoop(const Job &job, double target_qps,
                           std::chrono::milliseconds duration,
                           std::uint64_t seed)
{
    LoadGenReport report;
    report.slo_us = static_cast<double>(job.options.deadline.count());
    std::vector<double> latencies;
    Rng rng(seed);

    std::vector<std::future<Reply>> futures;
    futures.reserve(static_cast<std::size_t>(
        target_qps * std::chrono::duration<double>(duration).count() *
            1.25 + 16));

    const auto start = Clock::now();
    const auto end_at = start + duration;
    auto next_arrival = start;
    while (next_arrival < end_at) {
        std::this_thread::sleep_until(next_arrival);
        futures.push_back(service_.submit(job));
        ++report.offered;
        // Exponential inter-arrival gap: -ln(U)/lambda seconds.
        const double u = std::max(rng.nextDouble(), 1e-12);
        const auto gap_us = static_cast<std::int64_t>(
            -std::log(u) / target_qps * 1e6);
        next_arrival += std::chrono::microseconds(std::max<std::int64_t>(
            gap_us, 1));
    }
    const auto submit_end = Clock::now();

    for (auto &f : futures)
        tally(report, f.get(), latencies);
    finalize(report, latencies, start, submit_end);
    return report;
}

LoadGenReport
LoadGenerator::runClosedLoop(const Job &job, std::uint32_t clients,
                             std::chrono::milliseconds duration)
{
    struct ClientTally {
        LoadGenReport report;
        std::vector<double> latencies;
    };
    std::vector<ClientTally> tallies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);

    const auto start = Clock::now();
    const auto end_at = start + duration;
    for (std::uint32_t c = 0; c < clients; ++c) {
        threads.emplace_back([this, &job, end_at, &tallies, c] {
            ClientTally &t = tallies[c];
            t.report.slo_us =
                static_cast<double>(job.options.deadline.count());
            while (Clock::now() < end_at) {
                ++t.report.offered;
                tally(t.report, service_.submit(job).get(),
                      t.latencies);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const auto end = Clock::now();

    LoadGenReport report;
    report.slo_us = static_cast<double>(job.options.deadline.count());
    std::vector<double> latencies;
    for (ClientTally &t : tallies) {
        report.merge(t.report);
        latencies.insert(latencies.end(), t.latencies.begin(),
                         t.latencies.end());
    }
    finalize(report, latencies, start, end);
    return report;
}

LoadGenReport
MixedReport::total() const
{
    LoadGenReport sum;
    for (const auto &[run, report] : runs)
        sum.merge(report);
    sum.wall_s = wall_s;
    if (wall_s > 0.0) {
        sum.offered_qps = static_cast<double>(sum.offered) / wall_s;
        sum.goodput_qps = static_cast<double>(sum.ok) / wall_s;
    }
    return sum;
}

MixedReport
LoadGenerator::runMixed(const std::vector<TenantRun> &runs,
                        std::chrono::milliseconds duration)
{
    MixedReport mixed;
    mixed.runs.resize(runs.size());
    std::vector<std::thread> drivers;
    drivers.reserve(runs.size());

    const auto start = Clock::now();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        mixed.runs[i].first = runs[i];
        drivers.emplace_back([this, &mixed, i, duration] {
            const TenantRun &run = mixed.runs[i].first;
            SubmitOptions options;
            options.tenant = run.tenant;
            options.lane = run.lane;
            options.deadline = run.deadline;
            const Job job = Job::of(run.kind, run.plan, options);
            mixed.runs[i].second =
                run.target_qps > 0.0
                    ? runOpenLoop(job, run.target_qps, duration,
                                  run.seed)
                    : runClosedLoop(job, run.clients, duration);
        });
    }
    for (std::thread &t : drivers)
        t.join();
    mixed.wall_s = elapsedUs(start, Clock::now()) / 1e6;
    return mixed;
}

} // namespace service
} // namespace lsdgnn
