/**
 * @file
 * Bounded MPMC admission queue with load shedding.
 *
 * The queue is the service's admission-control point: producers (any
 * number of client threads) push requests, consumers (the worker
 * pool) pop them. Two shedding policies keep latency bounded under
 * overload instead of letting the queue grow without limit:
 *
 *  - *Reject at the door*: push() fails the request immediately with
 *    StatusCode::Rejected when the queue already holds `capacity`
 *    requests (or the queue is closed).
 *  - *Drop inside*: every pop scan discards requests whose deadline
 *    has already passed, completing them with
 *    StatusCode::DeadlineExceeded — no worker wastes backend time on
 *    an answer nobody is waiting for.
 *
 * All requests are stamped with their admission time so the worker
 * pool can attribute queue-wait vs execution latency.
 */

#ifndef LSDGNN_SERVICE_REQUEST_QUEUE_HH
#define LSDGNN_SERVICE_REQUEST_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/stats.hh"
#include "service/request.hh"

namespace lsdgnn {
namespace service {

/** Admission-queue tuning knobs. */
struct RequestQueueConfig {
    /** Requests held before push() starts rejecting. */
    std::size_t capacity = 256;
    /**
     * Shed-rate spike trigger for the flight recorder: this many
     * sheds (reject + drop) within one window trips an anomaly dump.
     * 0 disables the trigger.
     */
    std::size_t shed_spike_threshold = 64;
    /** Width of the shed-spike counting window. */
    std::chrono::milliseconds shed_spike_window{100};
};

/**
 * Bounded multi-producer/multi-consumer queue of Requests.
 *
 * Thread-safe throughout; all completion of shed requests (rejected,
 * dropped, cancelled) happens inside the queue so admission policy
 * lives in exactly one place.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(RequestQueueConfig config);
    ~RequestQueue();

    /**
     * Admit one request. On success the request is stamped and true
     * is returned; when the queue is full or closed the request's
     * promise is completed with Rejected and false is returned.
     */
    bool push(Request &&req);

    /**
     * Blocking pop: waits until a live (non-expired) request is
     * available or the queue is closed and drained. Expired requests
     * encountered on the way are dropped. Returns std::nullopt only
     * on closed-and-empty.
     */
    std::optional<Request> pop();

    /**
     * Non-blocking pop of the oldest queued request that is
     * batch-compatible with @p proto (plan shape AND routing) and
     * whose batch_size fits within @p root_budget. Expired requests
     * are dropped during the scan.
     */
    std::optional<Request> popCompatible(const Request &proto,
                                         std::uint64_t root_budget);

    /**
     * Block until the arrival counter exceeds @p seen_arrivals, the
     * queue closes, or @p until passes. Returns true when a new
     * arrival happened (the caller should rescan), false on timeout
     * or close. Used by the batcher's aging window.
     */
    bool waitForArrival(std::uint64_t seen_arrivals,
                        Clock::time_point until);

    /** Stop admitting; queued requests stay poppable (drain). */
    void close();

    /**
     * Complete every queued request with StatusCode::Cancelled and
     * empty out.
     */
    void cancelPending();

    bool closed() const;
    std::size_t depth() const;

    /** Requests ever admitted (the batcher's rescan cursor). */
    std::uint64_t arrivals() const;

    /** "service.queue" statistics (accepted/rejected/dropped/...). */
    const stats::StatGroup &stats() const { return group; }

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

  private:
    /** Complete @p req as shed with @p status (lock held by caller). */
    void shedLocked(Request &&req, Status status,
                    Clock::time_point now);
    void traceDepthLocked(Clock::time_point now);
    /** Count one shed toward the spike window (lock held). */
    void countShedLocked(Clock::time_point now);
    /**
     * Fire a deferred shed-spike flight dump, if one is pending. Must
     * be called WITHOUT mutex_ held: the dump samples the queue-depth
     * gauge, which takes the lock.
     */
    void maybeTrip();

    RequestQueueConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool closed_ = false;
    std::uint64_t arrivals_ = 0;
    std::uint64_t next_id = 1;

    Clock::time_point shedWindowStart_{};
    std::size_t shedWindowCount_ = 0;
    std::atomic<bool> tripPending_{false};
    std::uint64_t flightGauge_ = 0;

    stats::StatGroup group{"service.queue"};
    stats::Counter accepted_, rejected_, dropped_, cancelled_;
    stats::Average depthAtAdmit;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_REQUEST_QUEUE_HH
