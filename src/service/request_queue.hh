/**
 * @file
 * Bounded MPMC admission queue with priority lanes and load shedding.
 *
 * The queue is the service's admission-control point: producers (any
 * number of client threads) push requests, consumers (the worker
 * pool) pop them. With QoS enabled the queue holds two priority
 * lanes — Interactive (online inference) and Batch (training plans) —
 * and dequeues between them with weighted fairness, so a saturating
 * Batch workload cannot starve Interactive traffic; within a lane,
 * requests are served earliest-deadline-first (EDF; requests without
 * a deadline tie-break FIFO by admission id, so the no-deadline path
 * is byte-identical to the historical FIFO order).
 *
 * Capacity policy: the queue holds at most `capacity` requests in
 * total. The Interactive lane may use the whole budget, while the
 * Batch lane is additionally bounded to its weighted share of
 * capacity — a batch flood therefore saturates its own lane and
 * leaves admission room for interactive traffic. When a TenantRegistry
 * is bound, each registered tenant is further held to its weighted
 * share of the Batch lane, so batch tenants cannot crowd each other
 * out either.
 *
 * Shedding policies keep latency bounded under overload:
 *
 *  - *Reject at the door*: push() fails the request immediately with
 *    StatusCode::Rejected / ShedCause::QueueFull when the total (or
 *    the lane's) budget is exhausted, or the queue is closed.
 *  - *Drop inside*: every pop scan discards requests whose deadline
 *    has already passed, completing them with
 *    StatusCode::DeadlineExceeded / ShedCause::DeadlineDrop — no
 *    worker wastes backend time on an answer nobody is waiting for.
 *
 * A starvation watchdog trips the flight recorder when a non-empty
 * lane goes unserved past a threshold (a weighted-fair bug, or a
 * worker wedge). All requests are stamped with their admission time
 * so the worker pool can attribute queue-wait vs execution latency.
 *
 * With QosConfig::enabled = false the queue collapses to the pre-QoS
 * engine exactly: one FIFO lane, no EDF, no lane budgets.
 */

#ifndef LSDGNN_SERVICE_REQUEST_QUEUE_HH
#define LSDGNN_SERVICE_REQUEST_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/stats.hh"
#include "service/request.hh"

namespace lsdgnn {
namespace service {

struct QosRuntime;

/** Admission-queue tuning knobs. */
struct RequestQueueConfig {
    /** Requests held (total, both lanes) before push() rejects. */
    std::size_t capacity = 256;
    /**
     * Shed-rate spike trigger for the flight recorder: this many
     * sheds (reject + drop) within one window trips an anomaly dump.
     * 0 disables the trigger.
     */
    std::size_t shed_spike_threshold = 64;
    /** Width of the shed-spike counting window. */
    std::chrono::milliseconds shed_spike_window{100};
    /**
     * QoS scheduler switch. false = the legacy single-FIFO queue
     * (lanes collapse into one, EDF off, no lane budgets) — the
     * retained pre-QoS engine the golden tests A/B against.
     */
    bool qos = true;
    /** Weighted-fair dequeue shares (see Lane). */
    std::uint32_t interactive_weight = 3;
    std::uint32_t batch_weight = 1;
    /**
     * Starvation watchdog: a non-empty lane unserved this long trips
     * the flight recorder. 0 disables.
     */
    std::chrono::milliseconds starvation_threshold{100};
};

/**
 * Bounded multi-producer/multi-consumer queue of Requests.
 *
 * Thread-safe throughout; all completion of shed requests (rejected,
 * dropped, cancelled) happens inside the queue so admission policy
 * lives in exactly one place.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(RequestQueueConfig config);
    ~RequestQueue();

    /**
     * Bind the QoS runtime: per-tenant shed accounting and the
     * per-tenant Batch-lane share caps. Call before the first push
     * (the service does, at construction). May be null (tests).
     */
    void bindQos(QosRuntime *qos) { qos_ = qos; }

    /**
     * Admit one request into its lane. On success the request is
     * stamped and true is returned; when the lane (or queue) is full
     * or closed the request's promise is completed with Rejected /
     * ShedCause::QueueFull and false is returned.
     */
    bool push(Request &&req);

    /**
     * Blocking pop: waits until a live (non-expired) request is
     * available or the queue is closed and drained. The lane is
     * chosen weighted-fair, the request within it earliest-deadline-
     * first. Expired requests encountered on the way are dropped.
     * Returns std::nullopt only on closed-and-empty.
     */
    std::optional<Request> pop();

    /**
     * Non-blocking pop of the earliest-deadline queued request (FIFO
     * among no-deadline requests) in @p proto's lane that is
     * batch-compatible with @p proto (plan shape AND routing AND
     * lane) and whose batch_size fits within @p root_budget. With QoS
     * on, candidates whose deadline falls before @p batch_dropdead
     * are left queued — merging them would straddle the forming
     * batch's drop-dead point (they need to run *sooner* than the
     * batch they would join). Expired requests are dropped during the
     * scan.
     */
    std::optional<Request>
    popCompatible(const Request &proto, std::uint64_t root_budget,
                  Clock::time_point batch_dropdead =
                      Clock::time_point::max());

    /**
     * Complete @p req as shed through the queue's single accounting
     * point (stats, spike window, flight events, per-tenant
     * counters). Used by the batcher for deadline drops discovered at
     * batch close.
     */
    void shed(Request &&req, Status status, ShedCause cause);

    /**
     * Block until the arrival counter exceeds @p seen_arrivals, the
     * queue closes, or @p until passes. Returns true when a new
     * arrival happened (the caller should rescan), false on timeout
     * or close. Used by the batcher's aging window.
     */
    bool waitForArrival(std::uint64_t seen_arrivals,
                        Clock::time_point until);

    /** Stop admitting; queued requests stay poppable (drain). */
    void close();

    /**
     * Complete every queued request with StatusCode::Cancelled and
     * empty out.
     */
    void cancelPending();

    bool closed() const;
    std::size_t depth() const;

    /** Total configured capacity (both lanes). */
    std::size_t capacity() const { return config_.capacity; }

    /** Requests queued in one lane. */
    std::size_t laneDepth(Lane lane) const;

    /** The Batch lane's capacity (its weighted share of capacity). */
    std::size_t batchLaneCapacity() const { return batchCap_; }

    /** Requests ever admitted (the batcher's rescan cursor). */
    std::uint64_t arrivals() const;

    /** "service.queue" statistics (accepted/rejected/dropped/...). */
    const stats::StatGroup &stats() const { return group; }

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

  private:
    /** Lane a request routes to under the current scheduler. */
    std::size_t laneOf(const Request &req) const;
    /** Complete @p req as shed with @p status (lock held by caller). */
    void shedLocked(Request &&req, Status status, ShedCause cause,
                    Clock::time_point now);
    /** Drop every expired request in @p lane (lock held). */
    void sweepExpiredLocked(std::size_t lane, Clock::time_point now);
    /** Weighted-fair lane choice; -1 when both lanes are empty. */
    int pickLaneLocked();
    /** Starvation watchdog after serving @p lane (lock held). */
    void checkStarvationLocked(std::size_t lane,
                               Clock::time_point now);
    /** Un-count a Batch-lane request's tenant occupancy (lock held). */
    void releaseTenantSlotLocked(const Request &req);
    void traceDepthLocked(Clock::time_point now);
    /** Count one shed toward the spike window (lock held). */
    void countShedLocked(Clock::time_point now);
    /**
     * Fire deferred flight trips (shed spike, lane starvation), if
     * pending. Must be called WITHOUT mutex_ held: the dump samples
     * the queue-depth gauge, which takes the lock.
     */
    void maybeTrip();

    RequestQueueConfig config_;
    QosRuntime *qos_ = nullptr;
    /** Batch lane's occupancy bound (weighted share of capacity). */
    std::size_t batchCap_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> lanes_[lane_count];
    /** Queued Batch-lane requests per tenant (share enforcement). */
    std::unordered_map<TenantId, std::size_t> batchTenantDepth_;
    /** Weighted-round-robin credits of the current dequeue cycle. */
    std::uint32_t credit_[lane_count] = {0, 0};
    /** Last time each lane was served (starvation watchdog). */
    Clock::time_point lastServed_[lane_count] = {};
    bool closed_ = false;
    std::uint64_t arrivals_ = 0;
    std::uint64_t next_id = 1;

    Clock::time_point shedWindowStart_{};
    std::size_t shedWindowCount_ = 0;
    std::atomic<bool> tripPending_{false};
    std::atomic<int> starvedLane_{-1};
    std::uint64_t flightGauge_ = 0;

    stats::StatGroup group{"service.queue"};
    stats::Counter accepted_, rejected_, dropped_, cancelled_;
    stats::Counter starvationTrips_;
    stats::Average depthAtAdmit;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_REQUEST_QUEUE_HH
