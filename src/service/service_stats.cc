#include "service_stats.hh"

#include "common/trace.hh"

namespace lsdgnn {
namespace service {

namespace {

// Latency histograms: 100 us resolution up to 200 ms. Anything above
// lands in the overflow bin and percentile() reports the range top —
// by then the service is far past any sane SLO anyway.
constexpr double lat_hi_us = 200'000.0;
constexpr std::size_t lat_buckets = 2000;

// Emit percentile counters every this many completions: frequent
// enough to plot, cheap enough to never matter.
constexpr std::uint64_t trace_every = 32;

} // namespace

ServiceStats::Stage::Stage(const std::string &name)
    : group("service.stage." + name),
      us(0.0, lat_hi_us, lat_buckets)
{
    group.addHistogram("us", &us, name + "-stage latency (us)");
}

ServiceStats::LaneView::LaneView(Lane lane)
    : group(std::string("service.lane.") + toString(lane)),
      e2eUs(0.0, lat_hi_us, lat_buckets)
{
    group.addCounter("completed", &completed,
                     "lane requests answered with a sample");
    group.addCounter("degraded", &degraded,
                     "of completed, served Degraded");
    group.addHistogram("e2e_us", &e2eUs,
                       "lane submit-to-completion latency (us)");
}

ServiceStats::LaneView &
ServiceStats::laneLocked(Lane lane)
{
    return lane == Lane::Batch ? laneBatch_ : laneInteractive_;
}

const ServiceStats::LaneView &
ServiceStats::laneLocked(Lane lane) const
{
    return lane == Lane::Batch ? laneBatch_ : laneInteractive_;
}

ServiceStats::ServiceStats()
    : queueWaitUs(0.0, lat_hi_us, lat_buckets),
      execUs(0.0, lat_hi_us, lat_buckets),
      e2eUs(0.0, lat_hi_us, lat_buckets),
      stageQueue_("queue"),
      stageBatch_("batch"),
      stageSample_("sample"),
      stageRemote_("remote"),
      stageGather_("gather"),
      stageCompute_("compute"),
      laneInteractive_(Lane::Interactive),
      laneBatch_(Lane::Batch),
      cacheHitPct_(0.0, 100.0, 101),
      fabricHedges_(0.0, 256.0, 64),
      fabricInflightPeak_(0.0, 65'536.0, 128)
{
    stageCacheGroup_.addHistogram(
        "hit_pct", &cacheHitPct_,
        "hot-vertex cache hit percentage per request");
    stageFabricGroup_.addHistogram(
        "hedges", &fabricHedges_,
        "async-fabric hedge re-issues per batch with remote reads");
    stageFabricGroup_.addHistogram(
        "inflight_peak", &fabricInflightPeak_,
        "peak in-flight remote reads per batch with remote reads");
    group_.addCounter("completed", &completed_,
                      "requests answered with a sample");
    group_.addCounter("batches", &batches_, "micro-batches executed");
    group_.addAverage("batch_requests", &batchRequests,
                      "requests coalesced per micro-batch");
    group_.addAverage("batch_roots", &batchRoots,
                      "merged batch_size per micro-batch");
    group_.addHistogram("queue_wait_us", &queueWaitUs,
                        "admission-queue wait (us)");
    group_.addHistogram("exec_us", &execUs, "backend execution (us)");
    group_.addHistogram("e2e_us", &e2eUs,
                        "submit-to-completion latency (us)");
}

void
ServiceStats::traceLatencyLocked(Clock::time_point now)
{
    const Tick tick = wallTick(now);
    auto &tracer = trace::Tracer::instance();
    tracer.counter(trace_pid, "service.e2e_p50_us", tick,
                   e2eUs.percentile(0.5));
    tracer.counter(trace_pid, "service.e2e_p95_us", tick,
                   e2eUs.percentile(0.95));
    tracer.counter(trace_pid, "service.e2e_p99_us", tick,
                   e2eUs.percentile(0.99));
}

void
ServiceStats::recordCompletion(const Reply &reply)
{
    std::lock_guard<std::mutex> lock(mutex_);
    completed_.inc();
    queueWaitUs.sample(reply.queue_us);
    execUs.sample(reply.exec_us);
    e2eUs.sample(reply.e2e_us);
    LaneView &lane = laneLocked(reply.lane);
    lane.completed.inc();
    if (reply.status == StatusCode::Degraded)
        lane.degraded.inc();
    lane.e2eUs.sample(reply.e2e_us);
    if (trace::Tracer::enabled() &&
        completed_.value() % trace_every == 0)
        traceLatencyLocked(Clock::now());
}

void
ServiceStats::recordStages(double queue_us, double batch_us,
                           double sample_us, double remote_us,
                           std::uint64_t cache_lookups,
                           std::uint64_t cache_hits,
                           std::uint64_t hedges,
                           std::uint64_t inflight_peak)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stageQueue_.us.sample(queue_us);
    stageBatch_.us.sample(batch_us);
    stageSample_.us.sample(sample_us);
    stageRemote_.us.sample(remote_us);
    if (cache_lookups != 0)
        cacheHitPct_.sample(100.0 *
                            static_cast<double>(cache_hits) /
                            static_cast<double>(cache_lookups));
    if (inflight_peak != 0) {
        fabricHedges_.sample(static_cast<double>(hedges));
        fabricInflightPeak_.sample(
            static_cast<double>(inflight_peak));
    }
}

void
ServiceStats::recordComputeStages(double gather_us, double compute_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stageGather_.us.sample(gather_us);
    stageCompute_.us.sample(compute_us);
}

void
ServiceStats::recordBatch(std::size_t requests, std::uint64_t roots)
{
    std::lock_guard<std::mutex> lock(mutex_);
    batches_.inc();
    batchRequests.sample(static_cast<double>(requests));
    batchRoots.sample(static_cast<double>(roots));
}

std::uint64_t
ServiceStats::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_.value();
}

std::uint64_t
ServiceStats::laneCompleted(Lane lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return laneLocked(lane).completed.value();
}

double
ServiceStats::laneE2ePercentile(Lane lane, double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return laneLocked(lane).e2eUs.percentile(q);
}

std::uint64_t
ServiceStats::batches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return batches_.value();
}

double
ServiceStats::e2ePercentile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return e2eUs.percentile(q);
}

double
ServiceStats::queueWaitPercentile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queueWaitUs.percentile(q);
}

double
ServiceStats::meanBatchRequests() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return batchRequests.mean();
}

} // namespace service
} // namespace lsdgnn
