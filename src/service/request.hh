/**
 * @file
 * Request/reply vocabulary of the sampling service layer.
 *
 * The service layer runs in *wall-clock* time on real threads, unlike
 * the simulated components underneath it: a client submits one
 * SampleRequest and receives a std::future<Reply> that completes when
 * a worker has executed the (possibly micro-batched) plan, or earlier
 * when admission control rejects or the deadline policy drops the
 * request.
 *
 * Status model: replies carry lsdgnn::Status, the repo-wide result
 * vocabulary. Ok and Degraded both deliver a usable batch
 * (Status::hasPayload()); Rejected / DeadlineExceeded / Cancelled are
 * the shed outcomes. The old service-local ReplyStatus enum survives
 * only as a deprecated alias of StatusCode for one release.
 */

#ifndef LSDGNN_SERVICE_REQUEST_HH
#define LSDGNN_SERVICE_REQUEST_HH

#include <chrono>
#include <cstdint>
#include <future>

#include "common/status.hh"
#include "common/trace.hh"
#include "common/units.hh"
#include "sampling/minibatch.hh"

namespace lsdgnn {
namespace service {

/** Wall-clock timebase of the service layer. */
using Clock = std::chrono::steady_clock;

/** Trace "pid" the service layer's tracks live under. */
inline constexpr std::uint32_t trace_pid = trace::wall_pid;

/**
 * Deprecated name for the repo-wide status vocabulary. The historical
 * `Dropped` enumerator is StatusCode::DeadlineExceeded today.
 */
using ReplyStatus [[deprecated("use lsdgnn::StatusCode")]] = StatusCode;

/** Tenant identity of a submission. 0 is the default tenant. */
using TenantId = std::uint32_t;

/**
 * Priority lane of a request. The two lanes map onto the two request
 * classes the paper's FaaS frontier mixes: latency-critical online
 * inference (GraphAGILE's regime) and throughput-oriented batch
 * training plans (HP-GNN's regime). The queue dequeues between them
 * with weighted fairness, so a saturating Batch workload cannot
 * starve Interactive traffic.
 */
enum class Lane : std::uint8_t {
    /** Online inference: low latency, weighted-preferred dequeue. */
    Interactive = 0,
    /** Batch training: throughput-oriented, bounded queue share. */
    Batch = 1,
};

/** Number of priority lanes (array sizing). */
inline constexpr std::size_t lane_count = 2;

/** Stable lane name for stats/JSON. */
constexpr const char *
toString(Lane lane)
{
    return lane == Lane::Interactive ? "interactive" : "batch";
}

/**
 * Why a request was shed (or brown-out-degraded). The Status code
 * alone conflates causes — Rejected covers both a token-bucket deny
 * and a full queue — so replies carry the precise cause and load
 * reports can break sheds out per tenant and per cause.
 */
enum class ShedCause : std::uint8_t {
    None = 0,         ///< not shed
    AdmissionThrottle, ///< per-tenant token bucket denied admission
    QueueFull,        ///< admission queue (lane) at capacity or closed
    BrownOut,         ///< shed by brown-out policy under pressure
    DeadlineDrop,     ///< deadline expired in queue or at batch close
};

/** Stable cause name for stats/JSON. */
constexpr std::string_view
toString(ShedCause cause)
{
    switch (cause) {
      case ShedCause::None: return "none";
      case ShedCause::AdmissionThrottle: return "admission-throttle";
      case ShedCause::QueueFull: return "queue-full";
      case ShedCause::BrownOut: return "brown-out";
      case ShedCause::DeadlineDrop: return "deadline-drop";
    }
    return "?";
}

/** Where a request's roots may be drawn from. */
enum class Routing : std::uint8_t {
    /** Any worker, roots drawn from the whole graph (default). */
    Any,
    /**
     * Roots drawn from the executing worker's own shard. Cuts the
     * remote fraction of hop 1 on the Distributed backend; identical
     * to Any on the single-store backends.
     */
    LocalRoots,
};

/** Per-submission options (everything beyond the plan itself). */
struct SubmitOptions {
    /** Drop-dead interval from submission; zero = no deadline. */
    std::chrono::microseconds deadline{0};
    /** Root-placement policy. */
    Routing routing = Routing::Any;
    /**
     * Tenant this submission bills against. Admission (token bucket,
     * queue share) and per-tenant stats key off this id; unregistered
     * ids are admitted under the registry's default policy.
     */
    TenantId tenant = 0;
    /** Priority lane; see Lane. */
    Lane lane = Lane::Interactive;
    /**
     * Trace id echoed in the Reply and propagated through every stage
     * the request crosses (queue, micro-batch, backend hop, fabric
     * round).
     *
     * Id scheme: 0 (the default) asks the service to allocate a fresh
     * id, so every request is traceable — the Reply carries the id
     * actually used. Auto-generated ids come from a process-wide
     * counter starting at 2^32 (trace::TraceContext::nextTraceId), so
     * they can never collide with client-chosen ids, which should be
     * small (< 2^32) nonzero values.
     */
    std::uint64_t trace_id = 0;
};

/** One sampling submission: what to sample, and how to treat it. */
struct SampleRequest {
    sampling::SamplePlan plan;
    SubmitOptions options;
};

/** What the client's future resolves to. */
struct Reply {
    /** Terminal outcome; see hasBatch() for payload validity. */
    Status status = StatusCode::Ok;
    /** The sampled mini-batch; meaningful iff hasBatch(). */
    sampling::SampleResult batch;
    /** Worker that executed the request (executed replies only). */
    std::uint32_t worker = 0;
    /** Requests coalesced into the micro-batch this rode in. */
    std::uint32_t batched_with = 1;
    /**
     * Trace id the request ran under: the client-chosen
     * SubmitOptions::trace_id, or the service-allocated one when the
     * client passed 0.
     */
    std::uint64_t trace_id = 0;
    /** Root span of this request within its trace (0 = shed early). */
    std::uint64_t span_id = 0;
    /**
     * Span of the micro-batch execution that served this request; 0
     * for shed requests. Riders of one batch share this value.
     */
    std::uint64_t batch_span_id = 0;
    double queue_us = 0.0; ///< admission-queue wait
    double exec_us = 0.0;  ///< backend execution (shared by the batch)
    double e2e_us = 0.0;   ///< submit -> completion
    /** Tenant the request billed against (echo of SubmitOptions). */
    TenantId tenant = 0;
    /** Lane the request rode (echo of SubmitOptions). */
    Lane lane = Lane::Interactive;
    /**
     * Precise shed/degradation cause: ShedCause::None for clean
     * executions, BrownOut for replies that still carry a payload but
     * were served at reduced fan-out (status Degraded), and the shed
     * causes for Rejected/DeadlineExceeded outcomes.
     */
    ShedCause shed_cause = ShedCause::None;

    /** Whether batch holds a usable sample (Ok or Degraded). */
    bool hasBatch() const { return status.hasPayload(); }
};

/** One queued sampling request. Moves through the RequestQueue. */
struct Request {
    sampling::SamplePlan plan;
    Routing routing = Routing::Any;
    TenantId tenant = 0;
    Lane lane = Lane::Interactive;
    std::uint64_t trace_id = 0;
    /** Root span context (trace_id + root span), set by submit(). */
    trace::TraceContext trace;
    /** Stamped by the queue on admission. */
    Clock::time_point enqueued_at{};
    /** Drop-dead time; time_point::max() means no deadline. */
    Clock::time_point deadline = Clock::time_point::max();
    std::uint64_t id = 0;
    std::promise<Reply> promise;
};

/** Microseconds between two service-clock points. */
inline double
elapsedUs(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

/**
 * Whether two plans may share one backend execution: identical
 * per-hop fanouts and attribute-fetch flag. Batch sizes may differ —
 * the batcher sums them and splits the merged result on root ranges.
 */
inline bool
batchCompatible(const sampling::SamplePlan &a,
                const sampling::SamplePlan &b)
{
    return a.fanouts == b.fanouts &&
           a.fetch_attributes == b.fetch_attributes;
}

/**
 * Request-level compatibility: plan shape plus routing — a LocalRoots
 * rider must not be executed under an Any batch (and vice versa),
 * since the merged plan draws all roots one way — plus lane: a Batch
 * rider must not ride (and thereby extend) an Interactive execution,
 * so micro-batches stay lane-pure and priority accounting stays
 * honest. Tenants may mix freely within a lane.
 */
inline bool
batchCompatible(const Request &a, const Request &b)
{
    return a.routing == b.routing && a.lane == b.lane &&
           batchCompatible(a.plan, b.plan);
}

/**
 * Map a wall-clock instant onto the tracer's picosecond Tick axis,
 * relative to the first call in the process, so service spans land on
 * a sane time origin in Perfetto next to the simulated tracks.
 * Forwards to trace::wallTick so every wall-clock emitter in the
 * process (service, backend hops, fabric rounds) shares one epoch.
 */
inline Tick
wallTick(Clock::time_point tp)
{
    return trace::wallTick(tp);
}

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_REQUEST_HH
