/**
 * @file
 * Request/reply vocabulary of the sampling service layer.
 *
 * The service layer runs in *wall-clock* time on real threads, unlike
 * the simulated components underneath it: a client submits one
 * SamplePlan as a Request and receives a std::future<Reply> that
 * completes when a worker has executed the (possibly micro-batched)
 * plan, or earlier when admission control rejects or the deadline
 * policy drops the request.
 */

#ifndef LSDGNN_SERVICE_REQUEST_HH
#define LSDGNN_SERVICE_REQUEST_HH

#include <chrono>
#include <cstdint>
#include <future>
#include <string_view>

#include "common/units.hh"
#include "sampling/minibatch.hh"

namespace lsdgnn {
namespace service {

/** Wall-clock timebase of the service layer. */
using Clock = std::chrono::steady_clock;

/** Trace "pid" the service layer's tracks live under. */
inline constexpr std::uint32_t trace_pid = 90;

/** Terminal state of one request. */
enum class ReplyStatus {
    Ok,        ///< executed; Reply::batch holds the sample
    Rejected,  ///< admission queue full (load shed at the door)
    Dropped,   ///< deadline expired while queued (load shed inside)
    Cancelled, ///< service shut down before execution
};

/** Human-readable status name (tables, logs). */
constexpr std::string_view
toString(ReplyStatus s)
{
    switch (s) {
      case ReplyStatus::Ok: return "ok";
      case ReplyStatus::Rejected: return "rejected";
      case ReplyStatus::Dropped: return "dropped";
      case ReplyStatus::Cancelled: return "cancelled";
    }
    return "?";
}

/** What the client's future resolves to. */
struct Reply {
    ReplyStatus status = ReplyStatus::Ok;
    /** The sampled mini-batch; empty unless status == Ok. */
    sampling::SampleResult batch;
    /** Worker that executed the request (Ok only). */
    std::uint32_t worker = 0;
    /** Requests coalesced into the micro-batch this rode in. */
    std::uint32_t batched_with = 1;
    double queue_us = 0.0; ///< admission-queue wait
    double exec_us = 0.0;  ///< backend execution (shared by the batch)
    double e2e_us = 0.0;   ///< submit -> completion
};

/** One queued sampling request. Moves through the RequestQueue. */
struct Request {
    sampling::SamplePlan plan;
    /** Stamped by the queue on admission. */
    Clock::time_point enqueued_at{};
    /** Drop-dead time; time_point::max() means no deadline. */
    Clock::time_point deadline = Clock::time_point::max();
    std::uint64_t id = 0;
    std::promise<Reply> promise;
};

/** Microseconds between two service-clock points. */
inline double
elapsedUs(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

/**
 * Whether two plans may share one backend execution: identical
 * per-hop fanouts and attribute-fetch flag. Batch sizes may differ —
 * the batcher sums them and splits the merged result on root ranges.
 */
inline bool
batchCompatible(const sampling::SamplePlan &a,
                const sampling::SamplePlan &b)
{
    return a.fanouts == b.fanouts &&
           a.fetch_attributes == b.fetch_attributes;
}

/**
 * Map a wall-clock instant onto the tracer's picosecond Tick axis,
 * relative to the first call in the process, so service spans land on
 * a sane time origin in Perfetto next to the simulated tracks.
 */
Tick wallTick(Clock::time_point tp);

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_REQUEST_HH
