/**
 * @file
 * Request/reply vocabulary of the service layer.
 *
 * The service layer runs in *wall-clock* time on real threads, unlike
 * the simulated components underneath it: a client submits one Job
 * (see job.hh) and receives a std::future<Reply> that completes when
 * a worker has executed the (possibly micro-batched) plan — and, for
 * compute kinds, gathered attributes and run the GNN forward pass —
 * or earlier when admission control rejects or the deadline policy
 * drops the request.
 *
 * Status model: replies carry lsdgnn::Status, the repo-wide result
 * vocabulary. Ok and Degraded both deliver a usable payload
 * (Status::hasPayload()); Rejected / DeadlineExceeded / Cancelled /
 * InvalidArgument are the shed outcomes.
 */

#ifndef LSDGNN_SERVICE_REQUEST_HH
#define LSDGNN_SERVICE_REQUEST_HH

#include <chrono>
#include <cstdint>
#include <future>

#include "common/status.hh"
#include "common/trace.hh"
#include "common/units.hh"
#include "gnn/tensor.hh"
#include "sampling/minibatch.hh"

namespace lsdgnn {
namespace service {

/** Wall-clock timebase of the service layer. */
using Clock = std::chrono::steady_clock;

/** Trace "pid" the service layer's tracks live under. */
inline constexpr std::uint32_t trace_pid = trace::wall_pid;

/** Tenant identity of a submission. 0 is the default tenant. */
using TenantId = std::uint32_t;

/**
 * Priority lane of a request. The two lanes map onto the two request
 * classes the paper's FaaS frontier mixes: latency-critical online
 * inference (GraphAGILE's regime) and throughput-oriented batch
 * training plans (HP-GNN's regime). The queue dequeues between them
 * with weighted fairness, so a saturating Batch workload cannot
 * starve Interactive traffic.
 */
enum class Lane : std::uint8_t {
    /** Online inference: low latency, weighted-preferred dequeue. */
    Interactive = 0,
    /** Batch training: throughput-oriented, bounded queue share. */
    Batch = 1,
};

/** Number of priority lanes (array sizing). */
inline constexpr std::size_t lane_count = 2;

/** Stable lane name for stats/JSON. */
constexpr const char *
toString(Lane lane)
{
    return lane == Lane::Interactive ? "interactive" : "batch";
}

/**
 * Why a request was shed (or brown-out-degraded). The Status code
 * alone conflates causes — Rejected covers both a token-bucket deny
 * and a full queue — so replies carry the precise cause and load
 * reports can break sheds out per tenant and per cause.
 */
enum class ShedCause : std::uint8_t {
    None = 0,         ///< not shed
    AdmissionThrottle, ///< per-tenant token bucket denied admission
    QueueFull,        ///< admission queue (lane) at capacity or closed
    BrownOut,         ///< shed by brown-out policy under pressure
    DeadlineDrop,     ///< deadline expired in queue or at batch close
};

/** Stable cause name for stats/JSON. */
constexpr std::string_view
toString(ShedCause cause)
{
    switch (cause) {
      case ShedCause::None: return "none";
      case ShedCause::AdmissionThrottle: return "admission-throttle";
      case ShedCause::QueueFull: return "queue-full";
      case ShedCause::BrownOut: return "brown-out";
      case ShedCause::DeadlineDrop: return "deadline-drop";
    }
    return "?";
}

/**
 * Kind of work a Job (job.hh) asks for. Lives here (not job.hh) so
 * the internal Request/Reply records and the compatibility rules can
 * name it without a circular include.
 */
enum class JobKind : std::uint8_t {
    Sample = 0,    ///< sampled subgraph only
    Embed = 1,     ///< sample -> gather -> GraphSAGE forward
    TrainStep = 2, ///< Embed + in-batch link-prediction loss
};

/** Stable kind name for stats/JSON. */
constexpr std::string_view
toString(JobKind kind)
{
    switch (kind) {
      case JobKind::Sample: return "sample";
      case JobKind::Embed: return "embed";
      case JobKind::TrainStep: return "train-step";
    }
    return "?";
}

/** Whether the kind runs the gather + GNN compute stages. */
constexpr bool
needsCompute(JobKind kind)
{
    return kind != JobKind::Sample;
}

/** Where a request's roots may be drawn from. */
enum class Routing : std::uint8_t {
    /** Any worker, roots drawn from the whole graph (default). */
    Any,
    /**
     * Roots drawn from the executing worker's own shard. Cuts the
     * remote fraction of hop 1 on the Distributed backend; identical
     * to Any on the single-store backends.
     */
    LocalRoots,
};

/** Per-submission options (everything beyond the plan itself). */
struct SubmitOptions {
    /** Drop-dead interval from submission; zero = no deadline. */
    std::chrono::microseconds deadline{0};
    /** Root-placement policy. */
    Routing routing = Routing::Any;
    /**
     * Tenant this submission bills against. Admission (token bucket,
     * queue share) and per-tenant stats key off this id; unregistered
     * ids are admitted under the registry's default policy.
     */
    TenantId tenant = 0;
    /** Priority lane; see Lane. */
    Lane lane = Lane::Interactive;
    /**
     * Trace id echoed in the Reply and propagated through every stage
     * the request crosses (queue, micro-batch, backend hop, fabric
     * round).
     *
     * Id scheme: 0 (the default) asks the service to allocate a fresh
     * id, so every request is traceable — the Reply carries the id
     * actually used. Auto-generated ids come from a process-wide
     * counter starting at 2^32 (trace::TraceContext::nextTraceId), so
     * they can never collide with client-chosen ids, which should be
     * small (< 2^32) nonzero values.
     */
    std::uint64_t trace_id = 0;
    /**
     * Job-local sampling seed. 0 (the default) draws from the
     * executing worker's session stream — maximum throughput, but the
     * result depends on which worker served the job and what it
     * served before. A nonzero seed pins the job's entire root and
     * neighbor draw to a private RNG stream, making the reply
     * byte-identical regardless of worker count, batching, pipeline
     * mode or scheduling — the golden-replay/A/B hook. Seeded jobs
     * are never merged into a shared micro-batch (batchCompatible),
     * so the seed fully determines the execution.
     */
    std::uint64_t seed = 0;
};

/** What the client's future resolves to. */
struct Reply {
    /** Terminal outcome; see hasBatch() for payload validity. */
    Status status = StatusCode::Ok;
    /** Kind of job this reply answers. */
    JobKind kind = JobKind::Sample;
    /**
     * The sampled mini-batch; meaningful iff hasBatch(). Compute
     * kinds do not return the subgraph (their payload is the
     * embeddings) — splitting the merged frontier per rider is pure
     * overhead when the client only wants the dense output.
     */
    sampling::SampleResult batch;
    /**
     * One embedding row per requested root; meaningful iff
     * hasEmbeddings(). Under brown-out width degradation the rows are
     * narrower than the configured hidden width (a prefix of the
     * embedding space — usable, flagged Status::Degraded).
     */
    gnn::Matrix embeddings;
    /** TrainStep only: in-batch link-prediction loss of this rider. */
    double loss = 0.0;
    /** Compute kinds: FLOPs the forward pass executed (batch-wide). */
    std::uint64_t flops = 0;
    /** Compute kinds: modeled GEMM-engine cycles (batch-wide). */
    std::uint64_t gemm_cycles = 0;
    /** Worker that executed the request (executed replies only). */
    std::uint32_t worker = 0;
    /** Requests coalesced into the micro-batch this rode in. */
    std::uint32_t batched_with = 1;
    /**
     * Trace id the request ran under: the client-chosen
     * SubmitOptions::trace_id, or the service-allocated one when the
     * client passed 0.
     */
    std::uint64_t trace_id = 0;
    /** Root span of this request within its trace (0 = shed early). */
    std::uint64_t span_id = 0;
    /**
     * Span of the micro-batch execution that served this request; 0
     * for shed requests. Riders of one batch share this value.
     */
    std::uint64_t batch_span_id = 0;
    double queue_us = 0.0; ///< admission-queue wait
    /**
     * Total execution (shared by the batch): the sample stage alone
     * for Sample jobs, sample + gather + compute for compute kinds.
     */
    double exec_us = 0.0;
    double e2e_us = 0.0;   ///< submit -> completion
    /** Per-stage split of exec_us (gather/compute zero for Sample). */
    double sample_us = 0.0;  ///< backend sampling execution
    double gather_us = 0.0;  ///< attribute-row gather (compute kinds)
    double compute_us = 0.0; ///< GNN forward pass (compute kinds)
    /** Tenant the request billed against (echo of SubmitOptions). */
    TenantId tenant = 0;
    /** Lane the request rode (echo of SubmitOptions). */
    Lane lane = Lane::Interactive;
    /**
     * Precise shed/degradation cause: ShedCause::None for clean
     * executions, BrownOut for replies that still carry a payload but
     * were served at reduced fan-out (status Degraded), and the shed
     * causes for Rejected/DeadlineExceeded outcomes.
     */
    ShedCause shed_cause = ShedCause::None;

    /** Whether batch holds a usable sample (Sample kind only). */
    bool hasBatch() const
    {
        return kind == JobKind::Sample && status.hasPayload();
    }

    /** Whether embeddings hold usable rows (compute kinds). */
    bool hasEmbeddings() const
    {
        return needsCompute(kind) && status.hasPayload();
    }
};

/** One queued request. Moves through the RequestQueue. */
struct Request {
    JobKind kind = JobKind::Sample;
    sampling::SamplePlan plan;
    /** Job-local sampling seed; see SubmitOptions::seed. */
    std::uint64_t seed = 0;
    Routing routing = Routing::Any;
    TenantId tenant = 0;
    Lane lane = Lane::Interactive;
    std::uint64_t trace_id = 0;
    /** Root span context (trace_id + root span), set by submit(). */
    trace::TraceContext trace;
    /** Stamped by the queue on admission. */
    Clock::time_point enqueued_at{};
    /** Drop-dead time; time_point::max() means no deadline. */
    Clock::time_point deadline = Clock::time_point::max();
    std::uint64_t id = 0;
    std::promise<Reply> promise;
};

/** Microseconds between two service-clock points. */
inline double
elapsedUs(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

/**
 * Whether two plans may share one backend execution: identical
 * per-hop fanouts and attribute-fetch flag. Batch sizes may differ —
 * the batcher sums them and splits the merged result on root ranges.
 */
inline bool
batchCompatible(const sampling::SamplePlan &a,
                const sampling::SamplePlan &b)
{
    return a.fanouts == b.fanouts &&
           a.fetch_attributes == b.fetch_attributes;
}

/**
 * Request-level compatibility: job kind (a merged execution is
 * stage-homogeneous — Sample riders never pay a compute stage and
 * compute riders split on root ranges), plan shape, routing — a
 * LocalRoots rider must not be executed under an Any batch (and vice
 * versa), since the merged plan draws all roots one way — and lane: a
 * Batch rider must not ride (and thereby extend) an Interactive
 * execution, so micro-batches stay lane-pure and priority accounting
 * stays honest. Tenants may mix freely within a lane. Seeded requests
 * (SubmitOptions::seed != 0) always execute solo: their draw must not
 * depend on who else happened to be queued.
 */
inline bool
batchCompatible(const Request &a, const Request &b)
{
    return a.kind == b.kind && a.seed == 0 && b.seed == 0 &&
           a.routing == b.routing && a.lane == b.lane &&
           batchCompatible(a.plan, b.plan);
}

/**
 * Map a wall-clock instant onto the tracer's picosecond Tick axis,
 * relative to the first call in the process, so service spans land on
 * a sane time origin in Perfetto next to the simulated tracks.
 * Forwards to trace::wallTick so every wall-clock emitter in the
 * process (service, backend hops, fabric rounds) shares one epoch.
 */
inline Tick
wallTick(Clock::time_point tp)
{
    return trace::wallTick(tp);
}

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_REQUEST_HH
