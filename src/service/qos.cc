#include "qos.hh"

#include <algorithm>
#include <cmath>

#include "common/flight_recorder.hh"
#include "common/logging.hh"

namespace lsdgnn {
namespace service {

// ---------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_(rate_per_s), burst_(std::max(burst, 1.0)), tokens_(burst_)
{
    lsd_assert(rate_per_s >= 0.0, "token rate must be >= 0");
}

bool
TokenBucket::tryAcquire(Clock::time_point now)
{
    if (rate_ <= 0.0)
        return true; // unlimited tenant
    if (!primed_) {
        primed_ = true;
        last_ = now;
    }
    const double dt =
        std::chrono::duration<double>(now - last_).count();
    if (dt > 0.0) {
        tokens_ = std::min(burst_, tokens_ + dt * rate_);
        last_ = now;
    }
    if (tokens_ < 1.0)
        return false;
    tokens_ -= 1.0;
    return true;
}

// ---------------------------------------------------------------------
// TenantRegistry
// ---------------------------------------------------------------------

/** One tenant's live state: policy, bucket and stats. */
struct TenantRegistry::Tenant {
    Tenant(TenantId id, TenantConfig cfg)
        : config(std::move(cfg)),
          bucket(config.rate_qps, config.burst),
          group("service.tenant." +
                (config.name.empty() ? "t" + std::to_string(id)
                                     : config.name)),
          e2eUs(0.0, 200'000.0, 2000)
    {
        group.addCounter("admitted", &admitted,
                         "submissions past the token bucket");
        group.addCounter("throttled", &throttled,
                         "submissions denied by the token bucket");
        group.addCounter("queue_full", &queueFull,
                         "submissions shed at a full lane");
        group.addCounter("brownout_shed", &brownoutShed,
                         "submissions shed by brown-out level 2");
        group.addCounter("deadline_dropped", &deadlineDropped,
                         "requests dropped past their deadline");
        group.addCounter("completed", &completed,
                         "requests answered with a sample");
        group.addCounter("degraded", &degraded,
                         "of completed, served degraded (brown-out "
                         "or fabric fallback)");
        group.addHistogram("e2e_us", &e2eUs,
                           "per-tenant end-to-end latency (us)");
    }

    TenantConfig config;
    bool registered = false; ///< configure()d (weights count) vs lazy
    TokenBucket bucket;
    stats::StatGroup group;
    stats::Counter admitted, throttled, queueFull, brownoutShed,
        deadlineDropped, completed, degraded;
    stats::Histogram e2eUs;
};

TenantRegistry::TenantRegistry() = default;
TenantRegistry::~TenantRegistry() = default;

TenantRegistry::Tenant &
TenantRegistry::tenantLocked(TenantId id)
{
    auto it = tenants_.find(id);
    if (it == tenants_.end())
        it = tenants_
                 .emplace(id, std::make_unique<Tenant>(id,
                                                       TenantConfig{}))
                 .first;
    return *it->second;
}

void
TenantRegistry::configure(TenantId id, TenantConfig config)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(id);
    if (it != tenants_.end()) {
        // Reconfigure in place: fresh bucket, weights re-summed.
        if (it->second->registered)
            totalWeight_ -= it->second->config.weight;
        it->second->config = config;
        it->second->bucket = TokenBucket(config.rate_qps, config.burst);
    } else {
        it = tenants_
                 .emplace(id, std::make_unique<Tenant>(
                                  id, std::move(config)))
                 .first;
    }
    it->second->registered = true;
    totalWeight_ += it->second->config.weight;
}

AdmitDecision
TenantRegistry::admit(TenantId id, Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant &tenant = tenantLocked(id);
    if (!tenant.bucket.tryAcquire(now)) {
        tenant.throttled.inc();
        return {false, ShedCause::AdmissionThrottle};
    }
    tenant.admitted.inc();
    return {true, ShedCause::None};
}

void
TenantRegistry::recordOutcome(TenantId id, const Reply &reply)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant &tenant = tenantLocked(id);
    if (reply.hasBatch()) {
        tenant.completed.inc();
        if (reply.status == StatusCode::Degraded)
            tenant.degraded.inc();
        tenant.e2eUs.sample(reply.e2e_us);
        return;
    }
    switch (reply.shed_cause) {
      case ShedCause::QueueFull: tenant.queueFull.inc(); break;
      case ShedCause::BrownOut: tenant.brownoutShed.inc(); break;
      case ShedCause::DeadlineDrop: tenant.deadlineDropped.inc(); break;
      default: break;
    }
}

void
TenantRegistry::recordShed(TenantId id, ShedCause cause)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant &tenant = tenantLocked(id);
    switch (cause) {
      case ShedCause::AdmissionThrottle: tenant.throttled.inc(); break;
      case ShedCause::QueueFull: tenant.queueFull.inc(); break;
      case ShedCause::BrownOut: tenant.brownoutShed.inc(); break;
      case ShedCause::DeadlineDrop: tenant.deadlineDropped.inc(); break;
      default: break;
    }
}

std::size_t
TenantRegistry::batchShareCap(TenantId id,
                              std::size_t lane_capacity) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenants_.find(id);
    if (it == tenants_.end() || !it->second->registered ||
        totalWeight_ == 0 || it->second->config.weight == 0)
        return lane_capacity;
    const std::size_t cap =
        (lane_capacity * it->second->config.weight + totalWeight_ - 1) /
        totalWeight_;
    return std::max<std::size_t>(cap, 1);
}

const stats::StatGroup *
TenantRegistry::stats(TenantId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenants_.find(id);
    return it == tenants_.end() ? nullptr : &it->second->group;
}

std::size_t
TenantRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tenants_.size();
}

// ---------------------------------------------------------------------
// BrownOut
// ---------------------------------------------------------------------

BrownOut::BrownOut(BrownOutConfig config) : config_(config)
{
    lsd_assert(config_.release_fill <= config_.engage_fill,
               "brown-out release threshold above engage threshold");
    lsd_assert(config_.engage_fill <= config_.shed_fill,
               "brown-out engage threshold above shed threshold");
    lsd_assert(config_.fanout_scale > 0.0 &&
                   config_.fanout_scale <= 1.0,
               "brown-out fanout scale must be in (0, 1]");
}

int
BrownOut::observe(double fill, Clock::time_point now)
{
    if (!config_.enabled)
        return Normal;
    std::lock_guard<std::mutex> lock(mutex_);
    const int level = level_.load(std::memory_order_relaxed);
    int next = level;

    // Escalate immediately (protecting the service beats dwell).
    if (fill >= config_.shed_fill)
        next = DegradeAndShed;
    else if (fill >= config_.engage_fill && level < Degrade)
        next = Degrade;
    // De-escalate only past the hysteresis gap AND the minimum hold.
    else if (level > Normal && fill <= config_.release_fill &&
             now - lastRaise_ >= config_.min_hold)
        next = Normal;
    else if (level == DegradeAndShed && fill < config_.shed_fill &&
             now - lastRaise_ >= config_.min_hold)
        next = Degrade;

    if (next > level) {
        lastRaise_ = now;
        engages_.fetch_add(1, std::memory_order_relaxed);
        level_.store(next, std::memory_order_relaxed);
        trace::FlightRecorder::instance().recordNow(
            "brownout.engage", 0, 0, static_cast<double>(next), fill);
        trace::FlightRecorder::instance().trip(
            next >= DegradeAndShed ? "brownout-engage:shed"
                                   : "brownout-engage:degrade");
    } else if (next < level) {
        level_.store(next, std::memory_order_relaxed);
        if (next == Normal)
            releases_.fetch_add(1, std::memory_order_relaxed);
        trace::FlightRecorder::instance().recordNow(
            "brownout.release", 0, 0, static_cast<double>(next),
            fill);
    }
    return next;
}

int
BrownOut::level() const
{
    return config_.enabled ? level_.load(std::memory_order_relaxed)
                           : Normal;
}

std::uint64_t
BrownOut::engages() const
{
    return engages_.load(std::memory_order_relaxed);
}

std::uint64_t
BrownOut::releases() const
{
    return releases_.load(std::memory_order_relaxed);
}

sampling::SamplePlan
BrownOut::degrade(const sampling::SamplePlan &plan) const
{
    sampling::SamplePlan scaled = plan;
    for (std::uint32_t &fanout : scaled.fanouts)
        fanout = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(std::lround(
                   fanout * config_.fanout_scale)));
    return scaled;
}

// ---------------------------------------------------------------------
// QosRuntime
// ---------------------------------------------------------------------

QosRuntime::QosRuntime(const QosConfig &cfg)
    : config(cfg), brownout(cfg.brownout)
{
    for (const auto &[id, tenant_cfg] : cfg.tenants)
        registry.configure(id, tenant_cfg);
}

} // namespace service
} // namespace lsdgnn
