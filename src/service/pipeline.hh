/**
 * @file
 * The double-buffered execution pipeline of the worker pool.
 *
 * The paper's Fig. 3 serving path is a three-stage pipeline — sample,
 * gather, NN compute — and its throughput argument rests on the
 * stages overlapping: while batch i occupies the NN engine, batch
 * i+1 is already sampling and gathering. Each worker realizes that
 * overlap with two threads and two payload buffers:
 *
 *   stage A (the worker thread)  collect -> sample -> gather (paced
 *                                to the modeled fabric bandwidth)
 *   stage B (the compute thread) GraphSAGE forward -> split -> reply
 *
 * joined by a capacity-1 StageMailbox. The free-list mailbox holds
 * exactly two ComputePayload buffers, so stage A can prepare batch
 * i+1 while stage B computes batch i, and blocks (backpressure) only
 * when both buffers are in flight — classic double buffering, no
 * unbounded queue growth. Sample-only jobs never enter the mailbox:
 * they complete inline in stage A, exactly like the pre-pipeline
 * engine.
 *
 * PipelineConfig::enabled = false collapses the two stages into one
 * thread: stage A calls the stage-B body inline. Both modes run the
 * identical per-batch code in the identical order, so a seeded job's
 * reply is byte-identical between them — the A/B hook the golden
 * tests pin.
 */

#ifndef LSDGNN_SERVICE_PIPELINE_HH
#define LSDGNN_SERVICE_PIPELINE_HH

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "axe/gemm.hh"
#include "framework/backend.hh"
#include "framework/gather.hh"
#include "gnn/graphsage.hh"
#include "service/request.hh"

namespace lsdgnn {
namespace service {

/** End-to-end pipeline + compute-stage knobs (one per service). */
struct PipelineConfig {
    /**
     * Double-buffered stage overlap. false runs sample, gather and
     * compute serially on the worker thread — the A/B baseline the
     * pipeline speedup is measured against. Functionally identical
     * either way.
     */
    bool enabled = true;
    /** Hidden/embedding width of the shared GraphSAGE model. */
    std::uint32_t hidden_dim = 64;
    /**
     * Model depth. Compute-kind plans must sample exactly this many
     * hops (submit rejects a mismatch with InvalidArgument).
     */
    std::uint32_t layers = 2;
    /** Neighborhood aggregation operator. */
    gnn::Aggregator aggregator = gnn::Aggregator::Max;
    /**
     * Weight-initialization seed of the shared model. One model is
     * built per service (not per worker), so embeddings for a seeded
     * job cannot depend on which worker computed them.
     */
    std::uint64_t model_seed = 7;
    /**
     * Modeled gather-fabric bandwidth, GB/s. When nonzero, the gather
     * stage sleeps until the batch's residual remote bytes would have
     * arrived at this rate (bytes / gbps + rtt), like a DMA wait on a
     * real disaggregated store — this is what gives the compute stage
     * something to hide behind. 0 disables pacing (tests).
     */
    double gather_gbps = 0.0;
    /** Fixed per-batch gather-fabric latency, microseconds. */
    double gather_rtt_us = 0.0;
    /** GEMM-engine geometry (axe::GemmEngine). */
    std::uint32_t gemm_rows = 32;
    std::uint32_t gemm_cols = 32;
    /** GEMM-engine datapath clock, MHz. */
    double gemm_clock_mhz = 250.0;
};

/**
 * The shared compute state of one service: the GraphSAGE model and
 * the GEMM engine every worker's compute stage uses. Both are
 * immutable after construction and safe to share across stage
 * threads. Built by the Service (never per worker): per-worker models
 * would give the same seeded job different embeddings on different
 * workers.
 */
class ComputeRuntime
{
  public:
    /**
     * @param config Pipeline knobs (validated by ServiceConfig).
     * @param attr_dim Input attribute width of the dataset.
     */
    ComputeRuntime(const PipelineConfig &config, std::size_t attr_dim);

    const PipelineConfig &config() const { return config_; }
    const gnn::GraphSageModel &model() const { return model_; }
    const axe::GemmEngine &gemm() const { return gemm_; }

    ComputeRuntime(const ComputeRuntime &) = delete;
    ComputeRuntime &operator=(const ComputeRuntime &) = delete;

  private:
    PipelineConfig config_;
    gnn::GraphSageModel model_;
    axe::GemmEngine gemm_;
};

/**
 * Everything stage A hands stage B for one micro-batch of a compute
 * kind. The buffers cycle through the free-list mailbox, so their
 * vector/matrix capacities survive across batches (zero steady-state
 * allocation once shapes stabilize).
 */
struct ComputePayload {
    /** The riders, in merge order (promises completed by stage B). */
    std::vector<Request> riders;
    /** Merged (possibly brown-out-degraded) plan that executed. */
    sampling::SamplePlan plan;
    /** batch_size of each rider, in merge order. */
    std::vector<std::uint32_t> root_counts;
    /** Merged sampled subgraph. */
    sampling::SampleResult batch;
    /** Per-level feature matrices the gather stage materialized. */
    framework::GatheredFeatures features;
    framework::GatherTelemetry gather_telemetry;
    framework::SampleTelemetry sample_telemetry;
    /** Micro-batch execution span (stage B parents onto it). */
    trace::TraceContext batch_ctx;
    /** Sampling outcome (Ok or Degraded; sheds never reach B). */
    Status exec_status = StatusCode::Ok;
    bool browned_out = false;
    /** Layer-width scale the forward pass must apply (brown-out). */
    double width_scale = 1.0;
    /** Stage-A timing, for the reply's per-stage split. */
    Clock::time_point exec_start{};
    double batch_us = 0.0;
    double sample_us = 0.0;
    double gather_us = 0.0;

    /** Reset per-batch state, keeping every buffer's capacity. */
    void
    clearForReuse()
    {
        riders.clear();
        root_counts.clear();
        batch.clearForReuse();
        gather_telemetry = {};
        sample_telemetry = {};
        exec_status = StatusCode::Ok;
        browned_out = false;
        width_scale = 1.0;
        batch_us = sample_us = gather_us = 0.0;
    }
};

/**
 * Bounded blocking hand-off between two pipeline stages. push()
 * blocks while the box is at capacity (the double-buffering
 * backpressure), pop() blocks while it is empty; close() wakes both
 * sides — push() then drops and returns false, pop() drains what is
 * left and then returns false. One producer, one consumer.
 */
template <typename T>
class StageMailbox
{
  public:
    explicit StageMailbox(std::size_t capacity = 1)
        : capacity_(capacity)
    {}

    /** Blocking put; false iff the mailbox was closed. */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /** Blocking take; false iff closed and drained. */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock,
                       [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /** Wake both sides; idempotent. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_PIPELINE_HH
