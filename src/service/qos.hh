/**
 * @file
 * Multi-tenant QoS: admission, priority lanes and brown-out.
 *
 * The paper's FaaS pitch is serving GNN sampling to *millions of
 * users*; one queue with one policy cannot do that. This header holds
 * the policy pieces the service threads through its request path:
 *
 *  - TokenBucket / TenantRegistry — per-tenant admission control.
 *    Every tenant owns a token bucket (configurable sustained rate +
 *    burst) consulted at submit(); a deny completes the future
 *    immediately with Rejected / ShedCause::AdmissionThrottle, so a
 *    misbehaving tenant burns its own budget, not queue capacity.
 *    Registered tenants also carry a *weight* that bounds their share
 *    of the Batch lane's queue occupancy, so two batch tenants cannot
 *    crowd each other out either. Each tenant exports a
 *    `service.tenant.<name>` StatGroup (admitted / throttled /
 *    completed / degraded / shed counters + e2e histogram) that
 *    windowed exporters (stats::WindowedStats, prefix "service") pick
 *    up for rolling per-tenant SLO views.
 *
 *  - BrownOut — graceful degradation under sustained queue pressure.
 *    A hysteretic three-level controller driven by queue fill:
 *    level 0 (normal), level 1 (Degrade: workers scale every plan's
 *    per-hop fan-outs down and mark replies Status::Degraded with
 *    ShedCause::BrownOut — the payload stays usable), level 2
 *    (DegradeAndShed: additionally, Batch-lane submissions are shed
 *    at admission with ShedCause::BrownOut). Engage/release
 *    thresholds are separated and releases honor a minimum hold time,
 *    so the controller cannot flap around one threshold. Level raises
 *    trip the flight recorder ("brownout-engage:*").
 *
 * Determinism: with one tenant, generous buckets and no queue
 * pressure, every mechanism here is a no-op and the sampled output is
 * byte-identical to the pre-QoS engine (pinned by tests/test_qos.cc
 * golden tests, with the legacy FIFO scheduler retained behind
 * QosConfig::enabled=false for A/B). All policy methods take explicit
 * time points so tests drive them with a fake clock.
 */

#ifndef LSDGNN_SERVICE_QOS_HH
#define LSDGNN_SERVICE_QOS_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "service/request.hh"

namespace lsdgnn {
namespace service {

/**
 * Deterministic token bucket. Not thread-safe (the registry
 * serializes access); refill is computed from the explicit `now`
 * passed in, so a fake clock reproduces any admission sequence
 * exactly.
 */
class TokenBucket
{
  public:
    /**
     * @param rate_per_s Sustained admission rate; 0 = unlimited
     *        (every tryAcquire succeeds, no token math).
     * @param burst Bucket capacity (max tokens banked while idle).
     */
    TokenBucket(double rate_per_s, double burst);

    /**
     * Refill by the wall time elapsed since the previous call, then
     * take one token if available. The first call primes the clock
     * and starts from a full bucket.
     */
    bool tryAcquire(Clock::time_point now);

    /** Tokens currently banked (after the last refill). */
    double tokens() const { return tokens_; }

    double ratePerSecond() const { return rate_; }

  private:
    double rate_;
    double burst_;
    double tokens_;
    bool primed_ = false;
    Clock::time_point last_{};
};

/** Per-tenant policy knobs. */
struct TenantConfig {
    /** Stat-group suffix ("service.tenant.<name>"); "" = "t<id>". */
    std::string name;
    /** Sustained admission rate (requests/s); 0 = unlimited. */
    double rate_qps = 0.0;
    /** Token-bucket burst capacity. */
    double burst = 32.0;
    /**
     * Weighted share of the Batch lane's queue occupancy relative to
     * the other registered tenants. A tenant may hold at most
     * ceil(batch_lane_capacity * weight / total_weight) queued
     * Batch-lane requests, so one flooding batch tenant cannot crowd
     * its siblings out of the lane.
     */
    std::uint32_t weight = 1;
};

/** Admission outcome of TenantRegistry::admit(). */
struct AdmitDecision {
    bool admitted = true;
    ShedCause cause = ShedCause::None; ///< set when !admitted
};

/**
 * Registry of tenants: token buckets, weights and per-tenant stats.
 * Thread-safe; admit() is on the submit hot path (one mutex, one
 * bucket update).
 */
class TenantRegistry
{
  public:
    // Both out-of-line: the inline-defaulted forms would instantiate
    // the tenant map's destructor where Tenant is incomplete.
    TenantRegistry();
    ~TenantRegistry();

    /** Register (or reconfigure) one tenant. */
    void configure(TenantId id, TenantConfig config);

    /**
     * Charge one submission against @p id's bucket. Unregistered
     * tenants are lazily created with the default config (unlimited).
     */
    AdmitDecision admit(TenantId id, Clock::time_point now);

    /** Record one reply outcome into the tenant's stat group. */
    void recordOutcome(TenantId id, const Reply &reply);

    /** Record one shed decided outside the reply path (admission). */
    void recordShed(TenantId id, ShedCause cause);

    /**
     * The tenant's queued-occupancy cap for the Batch lane, derived
     * from its weight share: ceil(lane_capacity * w / total_w).
     * Unregistered (or zero-weight) tenants are uncapped
     * (returns @p lane_capacity).
     */
    std::size_t batchShareCap(TenantId id,
                              std::size_t lane_capacity) const;

    /** The tenant's stat group, or nullptr if never seen. */
    const stats::StatGroup *stats(TenantId id) const;

    /** Tenants seen so far (registered or lazily created). */
    std::size_t size() const;

    TenantRegistry(const TenantRegistry &) = delete;
    TenantRegistry &operator=(const TenantRegistry &) = delete;

  private:
    struct Tenant;
    Tenant &tenantLocked(TenantId id);

    mutable std::mutex mutex_;
    std::unordered_map<TenantId, std::unique_ptr<Tenant>> tenants_;
    /** Sum of registered (configure()d) tenants' weights. */
    std::uint32_t totalWeight_ = 0;
};

/** Brown-out controller tuning. */
struct BrownOutConfig {
    /** Master switch; false = the controller always reports level 0. */
    bool enabled = true;
    /** Queue fill fraction at which level 1 (Degrade) engages. */
    double engage_fill = 0.75;
    /** Fill fraction at which level 2 (DegradeAndShed) engages. */
    double shed_fill = 0.92;
    /** Fill fraction below which the controller may step down. */
    double release_fill = 0.40;
    /**
     * Minimum dwell after any level raise before the controller may
     * step down — the hysteresis that prevents flapping when the
     * queue depth oscillates around a threshold.
     */
    std::chrono::milliseconds min_hold{20};
    /**
     * Fan-out degradation factor at level >= 1: every per-hop fanout
     * becomes max(1, round(fanout * fanout_scale)). 0.5 halves the
     * sampled neighborhood (so roughly quarters 2-hop work).
     */
    double fanout_scale = 0.5;
    /**
     * Layer-width degradation factor for compute kinds (Embed /
     * TrainStep) at level >= 1: the forward pass computes only the
     * first max(1, round(hidden * compute_width_scale)) embedding
     * columns per layer, so degraded replies carry a usable prefix of
     * the embedding space at a fraction of the GEMM cost. Sample jobs
     * only degrade fan-out; compute jobs degrade both.
     */
    double compute_width_scale = 0.5;
};

/**
 * Hysteretic brown-out state machine. Thread-safe: observe() is
 * called from the submit path and every worker loop; level() is a
 * relaxed atomic read.
 */
class BrownOut
{
  public:
    /** Controller levels, in escalation order. */
    enum Level : int {
        Normal = 0,       ///< full service
        Degrade = 1,      ///< fan-outs scaled down, replies Degraded
        DegradeAndShed = 2, ///< additionally shed Batch admissions
    };

    explicit BrownOut(BrownOutConfig config);

    /**
     * Feed the current queue fill fraction [0,1]; returns the level
     * after applying thresholds and hysteresis at @p now.
     */
    int observe(double fill, Clock::time_point now);

    /** Current level without feeding a sample. */
    int level() const;

    /** Level raises so far (0->1, 1->2 transitions). */
    std::uint64_t engages() const;

    /** Full releases back to Normal so far. */
    std::uint64_t releases() const;

    /** Scale @p plan's fan-outs per the configured degrade factor. */
    sampling::SamplePlan degrade(const sampling::SamplePlan &plan) const;

    const BrownOutConfig &config() const { return config_; }

    BrownOut(const BrownOut &) = delete;
    BrownOut &operator=(const BrownOut &) = delete;

  private:
    BrownOutConfig config_;
    mutable std::mutex mutex_;
    std::atomic<int> level_{Normal};
    Clock::time_point lastRaise_{};
    std::atomic<std::uint64_t> engages_{0};
    std::atomic<std::uint64_t> releases_{0};
};

/** Whole-service QoS policy (lives in ServiceConfig). */
struct QosConfig {
    /**
     * Master switch. false restores the pre-QoS engine exactly: one
     * FIFO queue, no lanes, no token buckets, no EDF, no brown-out —
     * retained so golden tests can A/B the schedulers the same way
     * the async fabric keeps its barrier engine.
     */
    bool enabled = true;
    /** Weighted-fair dequeue shares of the two lanes. */
    std::uint32_t interactive_weight = 3;
    std::uint32_t batch_weight = 1;
    /**
     * Starvation watchdog: a non-empty lane unserved for this long
     * trips the flight recorder ("lane-starvation:*"). 0 disables.
     */
    std::chrono::milliseconds starvation_threshold{100};
    /** Registered tenants (id -> policy), applied at construction. */
    std::vector<std::pair<TenantId, TenantConfig>> tenants;
    /** Brown-out policy. */
    BrownOutConfig brownout;
};

/**
 * The QoS runtime one service owns: registry + brown-out controller.
 * Referenced (never owned) by the queue and the worker pool.
 */
struct QosRuntime {
    explicit QosRuntime(const QosConfig &config);

    const QosConfig config;
    TenantRegistry registry;
    BrownOut brownout;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_QOS_HH
