#include "worker_pool.hh"

#include <algorithm>
#include <string>

#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "service/qos.hh"

namespace lsdgnn {
namespace service {

WorkerPool::WorkerPool(WorkerPoolConfig config, RequestQueue &queue,
                       ServiceStats &stats)
    : config_(config), queue_(queue), stats_(stats)
{
    lsd_assert(config_.num_workers > 0, "pool needs workers");
}

WorkerPool::~WorkerPool()
{
    join();
}

void
WorkerPool::start()
{
    lsd_assert(threads.empty(), "worker pool already started");
    threads.reserve(config_.num_workers);
    for (std::uint32_t i = 0; i < config_.num_workers; ++i)
        threads.emplace_back([this, i] { run(i); });
}

void
WorkerPool::join()
{
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
}

void
WorkerPool::run(std::uint32_t worker_id)
{
    const std::string track_name =
        "service.worker" + std::to_string(worker_id);

    // Sessions are not thread-safe; each worker owns one, built here
    // in the worker's own thread. The seed offset decorrelates the
    // per-worker sampling streams deterministically.
    framework::SessionConfig scfg = config_.session;
    scfg.seed += worker_id;
    if (scfg.backend == framework::Backend::Distributed) {
        // Each worker plays one shard of the fabric (round-robin when
        // there are more workers than shards).
        const std::uint32_t shards =
            scfg.distributed.num_shards != 0 ? scfg.distributed.num_shards
                                             : scfg.num_servers;
        scfg.distributed.shard = worker_id % std::max<std::uint32_t>(
            shards, 1);
    }
    framework::Session session(scfg);

    // The AxE command path draws its root window from a span of
    // numNodes - batch_size, so a merged batch must stay well under
    // the (scaled) graph size regardless of what the caller asked for.
    BatcherConfig bcfg = config_.batcher;
    bcfg.max_roots = std::min<std::uint64_t>(
        bcfg.max_roots, std::max<std::uint64_t>(
            1, session.graph().numNodes() / 2));
    const Batcher batcher(bcfg);

    stats::StatGroup group{track_name};
    stats::Counter batches, requests;
    group.addCounter("batches", &batches, "micro-batches executed");
    group.addCounter("requests", &requests, "requests completed");

    // Hot-path reuse: the merged execution buffer cycles through a
    // result pool (its capacity survives the batch), the split scratch
    // and the parts vector persist across iterations. Only the
    // per-rider results moved into replies leave the worker.
    sampling::SampleResultPool resultPool;
    SplitScratch splitScratch;
    std::vector<Request> batch;
    std::vector<std::uint32_t> root_counts;
    std::vector<sampling::SampleResult> parts;
    Clock::time_point first_pop{};
    while (batcher.collect(queue_, batch, &first_pop)) {
        const auto exec_start = Clock::now();

        // The micro-batch runs as one span: a child of the first
        // rider's root span (the batch's primary identity). The other
        // riders stay attached through flow events keyed on their own
        // trace ids.
        const trace::TraceContext batchCtx = batch.front().trace.child();

        sampling::SamplePlan plan = Batcher::merge(batch);
        root_counts.clear();
        for (const Request &req : batch)
            root_counts.push_back(req.plan.batch_size);

        // Brown-out: feed the controller with current queue fill and,
        // at Degrade or above, execute the merged plan with scaled-
        // down fan-outs. Riders still get a usable (smaller) sample.
        bool browned_out = false;
        if (config_.qos != nullptr) {
            const double fill =
                static_cast<double>(queue_.depth()) /
                static_cast<double>(queue_.capacity());
            const int level =
                config_.qos->brownout.observe(fill, exec_start);
            if (level >= BrownOut::Degrade) {
                plan = config_.qos->brownout.degrade(plan);
                browned_out = true;
            }
        }

        framework::SampleOptions opts;
        opts.local_roots = batch.front().routing == Routing::LocalRoots;
        opts.trace = batchCtx;
        framework::SampleTelemetry telem;
        opts.telemetry = &telem;
        sampling::SampleResult merged = resultPool.acquire();
        const Status exec_status =
            session.sampleBatchInto(plan, merged, opts);
        const bool solo = batch.size() == 1;
        if (!solo)
            Batcher::splitInto(merged, root_counts, splitScratch, parts);

        const auto exec_end = Clock::now();
        const double exec_us = elapsedUs(exec_start, exec_end);
        const double batch_us = elapsedUs(first_pop, exec_start);

        trace::FlightRecorder::instance().recordNow(
            "batch", batchCtx.trace_id, batchCtx.span_id,
            static_cast<double>(batch.size()), exec_us);

        if (trace::Tracer::enabled()) {
            auto &tracer = trace::Tracer::instance();
            const auto tid = tracer.track(trace_pid, track_name);
            const auto req_tid =
                tracer.track(trace_pid, track_name + ".req");
            // Per-rider request + queue-wait slices. Riders of one
            // batch all end together, so the slices nest cleanly on
            // the shared .req track; each rider's flow arrow starts
            // in its request slice and lands in the batch slice.
            for (const Request &req : batch) {
                const Tick rs = wallTick(req.enqueued_at);
                tracer.complete(trace_pid, req_tid, "req", rs,
                                wallTick(exec_end) - rs,
                                req.trace.argsJson());
                tracer.complete(trace_pid, req_tid, "queue.wait", rs,
                                wallTick(exec_start) - rs,
                                req.trace.argsJson());
                tracer.flowStart(trace_pid, req_tid, "req", rs,
                                 req.trace.trace_id);
                tracer.flowEnd(trace_pid, tid, "req",
                               wallTick(exec_start),
                               req.trace.trace_id);
            }
            tracer.complete(
                trace_pid, tid, "batch", wallTick(exec_start),
                wallTick(exec_end) - wallTick(exec_start),
                batchCtx.argsJson() + ",\"requests\":" +
                    std::to_string(batch.size()) + ",\"roots\":" +
                    std::to_string(plan.batch_size) + ",\"status\":\"" +
                    std::string(toString(exec_status.code())) + "\"");
        }

        stats_.recordBatch(batch.size(), plan.batch_size);
        batches.inc();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Reply reply;
            // A degraded execution degrades every rider: each one's
            // slice may contain fallback-sampled frontier entries.
            reply.status = exec_status;
            if (browned_out) {
                if (reply.status == StatusCode::Ok)
                    reply.status =
                        Status(StatusCode::Degraded,
                               "brown-out: fan-out degraded");
                reply.shed_cause = ShedCause::BrownOut;
            }
            reply.trace_id = batch[i].trace_id;
            reply.span_id = batch[i].trace.span_id;
            reply.batch_span_id = batchCtx.span_id;
            reply.tenant = batch[i].tenant;
            reply.lane = batch[i].lane;
            reply.batch = solo ? std::move(merged)
                               : std::move(parts[i]);
            reply.worker = worker_id;
            reply.batched_with =
                static_cast<std::uint32_t>(batch.size());
            reply.queue_us =
                elapsedUs(batch[i].enqueued_at, exec_start);
            reply.exec_us = exec_us;
            reply.e2e_us = elapsedUs(batch[i].enqueued_at, exec_end);
            stats_.recordCompletion(reply);
            if (config_.qos != nullptr)
                config_.qos->registry.recordOutcome(reply.tenant,
                                                    reply);
            stats_.recordStages(reply.queue_us, batch_us, exec_us,
                                telem.remote_us, telem.cache_lookups,
                                telem.cache_hits, telem.hedges,
                                telem.inflight_peak);
            // A request that finished past its drop-dead time is an
            // SLO anomaly even though it was answered: record it and
            // (rate-limited) snapshot the flight recorder.
            if (batch[i].deadline != Clock::time_point::max() &&
                exec_end > batch[i].deadline) {
                trace::FlightRecorder::instance().recordNow(
                    "deadline.miss", batch[i].trace.trace_id,
                    batch[i].trace.span_id, reply.e2e_us);
                trace::FlightRecorder::instance().trip(
                    "deadline-miss:" + track_name);
            }
            requests.inc();
            batch[i].promise.set_value(std::move(reply));
        }
        if (!solo)
            resultPool.release(std::move(merged));
        batch.clear();
    }
}

} // namespace service
} // namespace lsdgnn
