#include "worker_pool.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "common/trace.hh"

namespace lsdgnn {
namespace service {

WorkerPool::WorkerPool(WorkerPoolConfig config, RequestQueue &queue,
                       ServiceStats &stats)
    : config_(config), queue_(queue), stats_(stats)
{
    lsd_assert(config_.num_workers > 0, "pool needs workers");
}

WorkerPool::~WorkerPool()
{
    join();
}

void
WorkerPool::start()
{
    lsd_assert(threads.empty(), "worker pool already started");
    threads.reserve(config_.num_workers);
    for (std::uint32_t i = 0; i < config_.num_workers; ++i)
        threads.emplace_back([this, i] { run(i); });
}

void
WorkerPool::join()
{
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
}

void
WorkerPool::run(std::uint32_t worker_id)
{
    const std::string track_name =
        "service.worker" + std::to_string(worker_id);

    // Sessions are not thread-safe; each worker owns one, built here
    // in the worker's own thread. The seed offset decorrelates the
    // per-worker sampling streams deterministically.
    framework::SessionConfig scfg = config_.session;
    scfg.seed += worker_id;
    if (scfg.backend == framework::Backend::Distributed) {
        // Each worker plays one shard of the fabric (round-robin when
        // there are more workers than shards).
        const std::uint32_t shards =
            scfg.distributed.num_shards != 0 ? scfg.distributed.num_shards
                                             : scfg.num_servers;
        scfg.distributed.shard = worker_id % std::max<std::uint32_t>(
            shards, 1);
    }
    framework::Session session(scfg);

    // The AxE command path draws its root window from a span of
    // numNodes - batch_size, so a merged batch must stay well under
    // the (scaled) graph size regardless of what the caller asked for.
    BatcherConfig bcfg = config_.batcher;
    bcfg.max_roots = std::min<std::uint64_t>(
        bcfg.max_roots, std::max<std::uint64_t>(
            1, session.graph().numNodes() / 2));
    const Batcher batcher(bcfg);

    stats::StatGroup group{track_name};
    stats::Counter batches, requests;
    group.addCounter("batches", &batches, "micro-batches executed");
    group.addCounter("requests", &requests, "requests completed");

    // Hot-path reuse: the merged execution buffer cycles through a
    // result pool (its capacity survives the batch), the split scratch
    // and the parts vector persist across iterations. Only the
    // per-rider results moved into replies leave the worker.
    sampling::SampleResultPool resultPool;
    SplitScratch splitScratch;
    std::vector<Request> batch;
    std::vector<std::uint32_t> root_counts;
    std::vector<sampling::SampleResult> parts;
    while (batcher.collect(queue_, batch)) {
        const auto exec_start = Clock::now();

        const sampling::SamplePlan plan = Batcher::merge(batch);
        root_counts.clear();
        for (const Request &req : batch)
            root_counts.push_back(req.plan.batch_size);

        framework::SampleOptions opts;
        opts.local_roots = batch.front().routing == Routing::LocalRoots;
        sampling::SampleResult merged = resultPool.acquire();
        const Status exec_status =
            session.sampleBatchInto(plan, merged, opts);
        const bool solo = batch.size() == 1;
        if (!solo)
            Batcher::splitInto(merged, root_counts, splitScratch, parts);

        const auto exec_end = Clock::now();
        const double exec_us = elapsedUs(exec_start, exec_end);

        if (trace::Tracer::enabled()) {
            const auto tid = trace::Tracer::instance().track(
                trace_pid, track_name);
            trace::Tracer::instance().complete(
                trace_pid, tid, "batch", wallTick(exec_start),
                wallTick(exec_end) - wallTick(exec_start),
                "\"requests\":" + std::to_string(batch.size()) +
                    ",\"roots\":" + std::to_string(plan.batch_size));
        }

        stats_.recordBatch(batch.size(), plan.batch_size);
        batches.inc();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Reply reply;
            // A degraded execution degrades every rider: each one's
            // slice may contain fallback-sampled frontier entries.
            reply.status = exec_status;
            reply.trace_id = batch[i].trace_id;
            reply.batch = solo ? std::move(merged)
                               : std::move(parts[i]);
            reply.worker = worker_id;
            reply.batched_with =
                static_cast<std::uint32_t>(batch.size());
            reply.queue_us =
                elapsedUs(batch[i].enqueued_at, exec_start);
            reply.exec_us = exec_us;
            reply.e2e_us = elapsedUs(batch[i].enqueued_at, exec_end);
            stats_.recordCompletion(reply);
            requests.inc();
            batch[i].promise.set_value(std::move(reply));
        }
        if (!solo)
            resultPool.release(std::move(merged));
        batch.clear();
    }
}

} // namespace service
} // namespace lsdgnn
