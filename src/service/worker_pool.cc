#include "worker_pool.hh"

#include <algorithm>
#include <optional>
#include <string>

#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "framework/distributed.hh"
#include "gnn/minibatch_forward.hh"
#include "service/qos.hh"

namespace lsdgnn {
namespace service {

namespace {

std::uint64_t
toNs(double us)
{
    return static_cast<std::uint64_t>(us * 1000.0);
}

/** Copy @p count embedding rows starting at @p first into a reply. */
gnn::Matrix
sliceRows(const gnn::Matrix &all, std::size_t first, std::size_t count)
{
    gnn::Matrix out(count, all.cols());
    for (std::size_t i = 0; i < count; ++i) {
        const auto src = all.row(first + i);
        std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
}

} // namespace

WorkerPool::WorkerPool(WorkerPoolConfig config, RequestQueue &queue,
                       ServiceStats &stats)
    : config_(config), queue_(queue), stats_(stats)
{
    lsd_assert(config_.num_workers > 0, "pool needs workers");
}

WorkerPool::~WorkerPool()
{
    join();
}

void
WorkerPool::start()
{
    lsd_assert(threads.empty(), "worker pool already started");
    threads.reserve(config_.num_workers);
    for (std::uint32_t i = 0; i < config_.num_workers; ++i)
        threads.emplace_back([this, i] { run(i); });
}

void
WorkerPool::join()
{
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
}

StageBusy
WorkerPool::stageBusy() const
{
    StageBusy busy;
    busy.sample_us =
        static_cast<double>(sampleBusyNs_.load()) / 1000.0;
    busy.gather_us =
        static_cast<double>(gatherBusyNs_.load()) / 1000.0;
    busy.compute_us =
        static_cast<double>(computeBusyNs_.load()) / 1000.0;
    return busy;
}

void
WorkerPool::run(std::uint32_t worker_id)
{
    const std::string track_name =
        "service.worker" + std::to_string(worker_id);

    // Sessions are not thread-safe; each worker owns one, built here
    // in the worker's own thread. The stream-seed offset decorrelates
    // the per-worker sampling streams deterministically while every
    // worker still instantiates the identical graph/attribute store —
    // one service serves one dataset, and seeded jobs must not care
    // which worker executes them.
    framework::SessionConfig scfg = config_.session;
    scfg.stream_seed_offset += worker_id;
    if (scfg.backend == framework::Backend::Distributed) {
        // Each worker plays one shard of the fabric (round-robin when
        // there are more workers than shards).
        const std::uint32_t shards =
            scfg.distributed.num_shards != 0 ? scfg.distributed.num_shards
                                             : scfg.num_servers;
        scfg.distributed.shard = worker_id % std::max<std::uint32_t>(
            shards, 1);
    }
    framework::Session session(scfg);

    // The gather stage reads rows through the shared store when the
    // backend is distributed (home = this worker's shard, remote rows
    // probe the shard's hot-vertex tier), else through the session's
    // own store with server 0 as home — the partitioner still tells
    // local from would-be-remote rows, so the modeled fabric pacing
    // is meaningful on every backend.
    const ComputeRuntime *compute = config_.compute;
    std::optional<framework::AttributeGatherer> gatherer;
    if (compute != nullptr) {
        framework::AttributeGatherer::FabricModel fabric;
        fabric.gbps = compute->config().gather_gbps;
        fabric.rtt_us = compute->config().gather_rtt_us;
        if (const auto &store = session.distributedStore())
            gatherer.emplace(store->attrs(), &store->partitioner(),
                             store->cache(scfg.distributed.shard),
                             scfg.distributed.shard, fabric);
        else
            gatherer.emplace(session.attributeStore(),
                             &session.nodePartitioner(), nullptr, 0,
                             fabric);
    }

    // The AxE command path draws its root window from a span of
    // numNodes - batch_size, so a merged batch must stay well under
    // the (scaled) graph size regardless of what the caller asked for.
    BatcherConfig bcfg = config_.batcher;
    bcfg.max_roots = std::min<std::uint64_t>(
        bcfg.max_roots, std::max<std::uint64_t>(
            1, session.graph().numNodes() / 2));
    const Batcher batcher(bcfg);

    stats::StatGroup group{track_name};
    stats::Counter batches, requests;
    group.addCounter("batches", &batches, "micro-batches executed");
    group.addCounter("requests", &requests, "requests completed");

    // Stage B: complete one compute-kind payload — forward pass on
    // the shared model/GEMM engine, split embeddings on root ranges,
    // resolve every rider. Runs on the compute thread when the
    // pipeline is on, inline on this thread when it is off; the body
    // is the same either way, so the two modes are byte-identical.
    const auto computeBatch = [&, worker_id](ComputePayload &p) {
        const auto compute_start = Clock::now();
        gnn::ForwardTelemetry forward;
        gnn::Matrix emb = gnn::forwardGathered(
            compute->model(), p.batch, p.features.levels,
            compute->gemm(), p.width_scale, &forward);
        const auto exec_end = Clock::now();
        const double compute_us = elapsedUs(compute_start, exec_end);
        computeBusyNs_.fetch_add(toNs(compute_us),
                                 std::memory_order_relaxed);
        const double exec_us =
            p.sample_us + p.gather_us + compute_us;
        const bool solo = p.riders.size() == 1;

        if (trace::Tracer::enabled()) {
            auto &tracer = trace::Tracer::instance();
            const auto tid =
                tracer.track(trace_pid, track_name + ".compute");
            const auto req_tid =
                tracer.track(trace_pid, track_name + ".req");
            for (const Request &req : p.riders) {
                const Tick rs = wallTick(req.enqueued_at);
                tracer.complete(trace_pid, req_tid, "req", rs,
                                wallTick(exec_end) - rs,
                                req.trace.argsJson());
                tracer.complete(trace_pid, req_tid, "queue.wait", rs,
                                wallTick(p.exec_start) - rs,
                                req.trace.argsJson());
            }
            tracer.complete(
                trace_pid, tid, "compute", wallTick(compute_start),
                wallTick(exec_end) - wallTick(compute_start),
                p.batch_ctx.argsJson() +
                    ",\"roots\":" +
                    std::to_string(p.batch.roots.size()) +
                    ",\"flops\":" + std::to_string(forward.flops) +
                    ",\"width_scale\":" +
                    std::to_string(p.width_scale));
        }

        std::size_t row = 0;
        for (std::size_t i = 0; i < p.riders.size(); ++i) {
            Request &rider = p.riders[i];
            const std::size_t rows = p.root_counts[i];
            Reply reply;
            reply.status = p.exec_status;
            reply.kind = rider.kind;
            if (p.browned_out) {
                if (reply.status == StatusCode::Ok)
                    reply.status = Status(
                        StatusCode::Degraded,
                        "brown-out: fan-out and width degraded");
                reply.shed_cause = ShedCause::BrownOut;
            }
            reply.embeddings =
                solo ? std::move(emb) : sliceRows(emb, row, rows);
            row += rows;
            if (rider.kind == JobKind::TrainStep)
                reply.loss = gnn::inBatchLoss(reply.embeddings);
            reply.flops = forward.flops;
            reply.gemm_cycles = forward.gemm_cycles;
            reply.trace_id = rider.trace_id;
            reply.span_id = rider.trace.span_id;
            reply.batch_span_id = p.batch_ctx.span_id;
            reply.tenant = rider.tenant;
            reply.lane = rider.lane;
            reply.worker = worker_id;
            reply.batched_with =
                static_cast<std::uint32_t>(p.riders.size());
            reply.queue_us = elapsedUs(rider.enqueued_at, p.exec_start);
            reply.exec_us = exec_us;
            reply.e2e_us = elapsedUs(rider.enqueued_at, exec_end);
            reply.sample_us = p.sample_us;
            reply.gather_us = p.gather_us;
            reply.compute_us = compute_us;
            stats_.recordCompletion(reply);
            if (config_.qos != nullptr)
                config_.qos->registry.recordOutcome(reply.tenant,
                                                    reply);
            stats_.recordStages(reply.queue_us, p.batch_us,
                                p.sample_us,
                                p.sample_telemetry.remote_us,
                                p.sample_telemetry.cache_lookups +
                                    p.gather_telemetry.remote_rows,
                                p.sample_telemetry.cache_hits +
                                    p.gather_telemetry.cache_hits,
                                p.sample_telemetry.hedges,
                                p.sample_telemetry.inflight_peak);
            stats_.recordComputeStages(p.gather_us, compute_us);
            if (rider.deadline != Clock::time_point::max() &&
                exec_end > rider.deadline) {
                trace::FlightRecorder::instance().recordNow(
                    "deadline.miss", rider.trace.trace_id,
                    rider.trace.span_id, reply.e2e_us);
                trace::FlightRecorder::instance().trip(
                    "deadline-miss:" + track_name);
            }
            rider.promise.set_value(std::move(reply));
        }
    };

    // Double-buffering: exactly two payloads cycle between this
    // thread and the compute thread through capacity-1 mailboxes, so
    // batch i+1 samples/gathers while batch i computes, and this
    // thread blocks only when both buffers are in flight. Serial mode
    // (pipeline off) reuses one buffer and computes inline.
    using PayloadPtr = std::unique_ptr<ComputePayload>;
    const bool piped =
        compute != nullptr && compute->config().enabled;
    StageMailbox<PayloadPtr> workBox(1);
    StageMailbox<PayloadPtr> freeBox(2);
    std::thread computeThread;
    PayloadPtr serialPayload;
    if (piped) {
        freeBox.push(std::make_unique<ComputePayload>());
        freeBox.push(std::make_unique<ComputePayload>());
        computeThread = std::thread([&] {
            PayloadPtr p;
            while (workBox.pop(p)) {
                computeBatch(*p);
                p->clearForReuse();
                freeBox.push(std::move(p));
            }
        });
    } else if (compute != nullptr) {
        serialPayload = std::make_unique<ComputePayload>();
    }

    // Hot-path reuse: the merged execution buffer cycles through a
    // result pool (its capacity survives the batch), the split scratch
    // and the parts vector persist across iterations. Only the
    // per-rider results moved into replies leave the worker.
    sampling::SampleResultPool resultPool;
    SplitScratch splitScratch;
    std::vector<Request> batch;
    std::vector<std::uint32_t> root_counts;
    std::vector<sampling::SampleResult> parts;
    Clock::time_point first_pop{};
    while (batcher.collect(queue_, batch, &first_pop)) {
        const auto exec_start = Clock::now();
        const JobKind kind = batch.front().kind;
        lsd_assert(!needsCompute(kind) || compute != nullptr,
                   "compute-kind request on a sample-only pool");

        // The micro-batch runs as one span: a child of the first
        // rider's root span (the batch's primary identity). The other
        // riders stay attached through flow events keyed on their own
        // trace ids.
        const trace::TraceContext batchCtx = batch.front().trace.child();

        sampling::SamplePlan plan = Batcher::merge(batch);
        root_counts.clear();
        for (const Request &req : batch)
            root_counts.push_back(req.plan.batch_size);

        // Brown-out: feed the controller with current queue fill and,
        // at Degrade or above, execute the merged plan with scaled-
        // down fan-outs — and, for compute kinds, a scaled-down layer
        // width. Riders still get a usable (smaller) payload.
        bool browned_out = false;
        double width_scale = 1.0;
        if (config_.qos != nullptr) {
            const double fill =
                static_cast<double>(queue_.depth()) /
                static_cast<double>(queue_.capacity());
            const int level =
                config_.qos->brownout.observe(fill, exec_start);
            if (level >= BrownOut::Degrade) {
                plan = config_.qos->brownout.degrade(plan);
                if (needsCompute(kind))
                    width_scale = config_.qos->brownout.config()
                                      .compute_width_scale;
                browned_out = true;
            }
        }

        framework::SampleOptions opts;
        opts.local_roots = batch.front().routing == Routing::LocalRoots;
        opts.trace = batchCtx;
        framework::SampleTelemetry telem;
        opts.telemetry = &telem;
        // Seeded jobs execute solo (batchCompatible) on a private
        // stream: the draw is independent of worker identity and of
        // whatever this session sampled before.
        std::optional<Rng> seeded;
        if (batch.front().seed != 0) {
            seeded.emplace(batch.front().seed);
            opts.rng = &*seeded;
        }

        stats_.recordBatch(batch.size(), plan.batch_size);
        batches.inc();
        requests.inc(batch.size());

        if (!needsCompute(kind)) {
            sampling::SampleResult merged = resultPool.acquire();
            const Status exec_status =
                session.sampleBatchInto(plan, merged, opts);
            const bool solo = batch.size() == 1;
            if (!solo)
                Batcher::splitInto(merged, root_counts, splitScratch,
                                   parts);

            const auto exec_end = Clock::now();
            const double exec_us = elapsedUs(exec_start, exec_end);
            const double batch_us = elapsedUs(first_pop, exec_start);
            sampleBusyNs_.fetch_add(toNs(exec_us),
                                    std::memory_order_relaxed);

            trace::FlightRecorder::instance().recordNow(
                "batch", batchCtx.trace_id, batchCtx.span_id,
                static_cast<double>(batch.size()), exec_us);

            if (trace::Tracer::enabled()) {
                auto &tracer = trace::Tracer::instance();
                const auto tid = tracer.track(trace_pid, track_name);
                const auto req_tid =
                    tracer.track(trace_pid, track_name + ".req");
                // Per-rider request + queue-wait slices. Riders of one
                // batch all end together, so the slices nest cleanly on
                // the shared .req track; each rider's flow arrow starts
                // in its request slice and lands in the batch slice.
                for (const Request &req : batch) {
                    const Tick rs = wallTick(req.enqueued_at);
                    tracer.complete(trace_pid, req_tid, "req", rs,
                                    wallTick(exec_end) - rs,
                                    req.trace.argsJson());
                    tracer.complete(trace_pid, req_tid, "queue.wait",
                                    rs, wallTick(exec_start) - rs,
                                    req.trace.argsJson());
                    tracer.flowStart(trace_pid, req_tid, "req", rs,
                                     req.trace.trace_id);
                    tracer.flowEnd(trace_pid, tid, "req",
                                   wallTick(exec_start),
                                   req.trace.trace_id);
                }
                tracer.complete(
                    trace_pid, tid, "batch", wallTick(exec_start),
                    wallTick(exec_end) - wallTick(exec_start),
                    batchCtx.argsJson() + ",\"requests\":" +
                        std::to_string(batch.size()) + ",\"roots\":" +
                        std::to_string(plan.batch_size) +
                        ",\"status\":\"" +
                        std::string(toString(exec_status.code())) +
                        "\"");
            }

            for (std::size_t i = 0; i < batch.size(); ++i) {
                Reply reply;
                // A degraded execution degrades every rider: each
                // one's slice may contain fallback-sampled frontier
                // entries.
                reply.status = exec_status;
                reply.kind = kind;
                if (browned_out) {
                    if (reply.status == StatusCode::Ok)
                        reply.status =
                            Status(StatusCode::Degraded,
                                   "brown-out: fan-out degraded");
                    reply.shed_cause = ShedCause::BrownOut;
                }
                reply.trace_id = batch[i].trace_id;
                reply.span_id = batch[i].trace.span_id;
                reply.batch_span_id = batchCtx.span_id;
                reply.tenant = batch[i].tenant;
                reply.lane = batch[i].lane;
                reply.batch = solo ? std::move(merged)
                                   : std::move(parts[i]);
                reply.worker = worker_id;
                reply.batched_with =
                    static_cast<std::uint32_t>(batch.size());
                reply.queue_us =
                    elapsedUs(batch[i].enqueued_at, exec_start);
                reply.exec_us = exec_us;
                reply.sample_us = exec_us;
                reply.e2e_us =
                    elapsedUs(batch[i].enqueued_at, exec_end);
                stats_.recordCompletion(reply);
                if (config_.qos != nullptr)
                    config_.qos->registry.recordOutcome(reply.tenant,
                                                        reply);
                stats_.recordStages(reply.queue_us, batch_us, exec_us,
                                    telem.remote_us,
                                    telem.cache_lookups,
                                    telem.cache_hits, telem.hedges,
                                    telem.inflight_peak);
                // A request that finished past its drop-dead time is
                // an SLO anomaly even though it was answered: record
                // it and (rate-limited) snapshot the flight recorder.
                if (batch[i].deadline != Clock::time_point::max() &&
                    exec_end > batch[i].deadline) {
                    trace::FlightRecorder::instance().recordNow(
                        "deadline.miss", batch[i].trace.trace_id,
                        batch[i].trace.span_id, reply.e2e_us);
                    trace::FlightRecorder::instance().trip(
                        "deadline-miss:" + track_name);
                }
                batch[i].promise.set_value(std::move(reply));
            }
            if (!solo)
                resultPool.release(std::move(merged));
            batch.clear();
            continue;
        }

        // Compute kind: acquire a payload buffer (this is the
        // double-buffering backpressure point — blocks only while
        // both buffers are in flight), sample and gather into it,
        // then hand it to the compute stage.
        PayloadPtr payload;
        if (piped) {
            if (!freeBox.pop(payload))
                break; // closed (cannot happen before shutdown)
        } else {
            payload = std::move(serialPayload);
        }
        payload->plan = plan;
        payload->root_counts = root_counts;
        payload->batch_ctx = batchCtx;
        payload->browned_out = browned_out;
        payload->width_scale = width_scale;
        payload->exec_start = exec_start;
        payload->batch_us = elapsedUs(first_pop, exec_start);

        payload->exec_status =
            session.sampleBatchInto(plan, payload->batch, opts);
        const auto sample_end = Clock::now();
        payload->sample_us = elapsedUs(exec_start, sample_end);
        payload->sample_telemetry = telem;
        sampleBusyNs_.fetch_add(toNs(payload->sample_us),
                                std::memory_order_relaxed);

        // Gather, then pace the stage to the modeled fabric: sleep
        // off the time the residual remote bytes would need on the
        // configured gather bandwidth, minus what the CPU part
        // already took — the DMA wait the compute stage overlaps.
        gatherer->gather(payload->batch, payload->features,
                         &payload->gather_telemetry);
        const auto gather_cpu_end = Clock::now();
        const double gather_cpu_us =
            elapsedUs(sample_end, gather_cpu_end);
        const double modeled_us =
            payload->gather_telemetry.modeled_fabric_us;
        if (modeled_us > gather_cpu_us)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::micro>(
                    modeled_us - gather_cpu_us));
        payload->gather_us = elapsedUs(sample_end, Clock::now());
        gatherBusyNs_.fetch_add(toNs(payload->gather_us),
                                std::memory_order_relaxed);

        trace::FlightRecorder::instance().recordNow(
            "batch", batchCtx.trace_id, batchCtx.span_id,
            static_cast<double>(batch.size()),
            payload->sample_us + payload->gather_us);

        if (trace::Tracer::enabled()) {
            auto &tracer = trace::Tracer::instance();
            const auto tid = tracer.track(trace_pid, track_name);
            const Tick ss = wallTick(exec_start);
            tracer.complete(trace_pid, tid, "sample", ss,
                            wallTick(sample_end) - ss,
                            batchCtx.argsJson() + ",\"requests\":" +
                                std::to_string(batch.size()) +
                                ",\"roots\":" +
                                std::to_string(plan.batch_size));
            tracer.complete(trace_pid, tid, "gather",
                            wallTick(sample_end),
                            wallTick(Clock::now()) -
                                wallTick(sample_end),
                            batchCtx.argsJson() + ",\"rows\":" +
                                std::to_string(
                                    payload->gather_telemetry.rows));
            for (const Request &req : batch) {
                const Tick rs = wallTick(req.enqueued_at);
                tracer.flowStart(trace_pid, tid, "req", rs,
                                 req.trace.trace_id);
                tracer.flowEnd(trace_pid, tid, "req", ss,
                               req.trace.trace_id);
            }
        }

        payload->riders = std::move(batch);
        batch.clear();

        if (piped) {
            workBox.push(std::move(payload));
        } else {
            computeBatch(*payload);
            payload->clearForReuse();
            serialPayload = std::move(payload);
        }
    }

    // Drain the pipeline: the compute thread finishes any in-flight
    // payload, then exits on the closed mailbox.
    workBox.close();
    if (computeThread.joinable())
        computeThread.join();
}

} // namespace service
} // namespace lsdgnn
