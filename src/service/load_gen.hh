/**
 * @file
 * Load generators for benchmarking the sampling service.
 *
 * Two classic driver shapes:
 *
 *  - *Open loop*: arrivals follow a Poisson process at a target QPS,
 *    independent of completions — the honest way to measure latency
 *    under load, since a lagging service cannot slow the arrival
 *    process down (no coordinated omission). Overload shows up as
 *    rejections/drops, not as a silently lower request rate.
 *  - *Closed loop*: K concurrent clients each keep exactly one
 *    request outstanding — measures saturation throughput as a
 *    function of offered concurrency.
 *
 * Reports carry exact client-observed percentiles (computed from the
 * full latency sample vector, not histogram bins).
 */

#ifndef LSDGNN_SERVICE_LOAD_GEN_HH
#define LSDGNN_SERVICE_LOAD_GEN_HH

#include <chrono>
#include <cstdint>

#include "service/service.hh"

namespace lsdgnn {
namespace service {

/** Outcome of one load-generation run. */
struct LoadGenReport {
    std::uint64_t offered = 0;   ///< submissions attempted
    std::uint64_t ok = 0;        ///< completed with a sample
    std::uint64_t degraded = 0;  ///< of those, degraded (counted in ok)
    std::uint64_t rejected = 0;  ///< shed at admission
    std::uint64_t dropped = 0;   ///< shed by deadline in-queue
    std::uint64_t cancelled = 0; ///< failed by shutdown
    double wall_s = 0.0;         ///< measured run duration
    double offered_qps = 0.0;    ///< offered / wall_s
    double goodput_qps = 0.0;    ///< ok / wall_s
    double p50_us = 0.0;         ///< client-observed e2e percentiles
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;

    /** Fraction of offered requests shed (rejected + dropped). */
    double shedFraction() const
    {
        return offered == 0 ? 0.0
                            : static_cast<double>(rejected + dropped) /
                                  static_cast<double>(offered);
    }
};

/** Drives one SamplingService with synthetic traffic. */
class LoadGenerator
{
  public:
    explicit LoadGenerator(SamplingService &service)
        : service_(service)
    {}

    /**
     * Open loop: Poisson arrivals at @p target_qps for @p duration.
     * Submissions never wait for completions; every future is
     * harvested at the end (the run blocks until the tail drains).
     */
    LoadGenReport runOpenLoop(const sampling::SamplePlan &plan,
                              double target_qps,
                              std::chrono::milliseconds duration,
                              std::uint64_t seed = 1);

    /**
     * Closed loop: @p clients threads, each submitting back-to-back
     * blocking requests until @p duration elapses.
     */
    LoadGenReport runClosedLoop(const sampling::SamplePlan &plan,
                                std::uint32_t clients,
                                std::chrono::milliseconds duration,
                                const SubmitOptions &options = {});

  private:
    SamplingService &service_;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_LOAD_GEN_HH
