/**
 * @file
 * Load generators for benchmarking the serving tier.
 *
 * Two classic driver shapes:
 *
 *  - *Open loop*: arrivals follow a Poisson process at a target QPS,
 *    independent of completions — the honest way to measure latency
 *    under load, since a lagging service cannot slow the arrival
 *    process down (no coordinated omission). Overload shows up as
 *    rejections/drops, not as a silently lower request rate.
 *  - *Closed loop*: K concurrent clients each keep exactly one
 *    request outstanding — measures saturation throughput as a
 *    function of offered concurrency.
 *
 * Reports carry exact client-observed percentiles (computed from the
 * full latency sample vector, not histogram bins).
 */

#ifndef LSDGNN_SERVICE_LOAD_GEN_HH
#define LSDGNN_SERVICE_LOAD_GEN_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "service/service.hh"

namespace lsdgnn {
namespace service {

/**
 * Shed tally broken out by precise cause. The Status code alone
 * conflates them (Rejected covers a token-bucket deny, a full lane
 * and a brown-out shed), so reports carry the ShedCause each reply
 * was stamped with — tests assert on each cause independently.
 */
struct ShedBreakdown {
    std::uint64_t admission_throttle = 0; ///< token bucket denied
    std::uint64_t queue_full = 0;         ///< lane/queue at capacity
    std::uint64_t brownout = 0;           ///< brown-out level-2 shed
    std::uint64_t deadline_drop = 0;      ///< expired before execution

    std::uint64_t total() const
    {
        return admission_throttle + queue_full + brownout +
               deadline_drop;
    }

    void add(ShedCause cause)
    {
        switch (cause) {
          case ShedCause::AdmissionThrottle: ++admission_throttle; break;
          case ShedCause::QueueFull: ++queue_full; break;
          case ShedCause::BrownOut: ++brownout; break;
          case ShedCause::DeadlineDrop: ++deadline_drop; break;
          case ShedCause::None: break;
        }
    }

    void merge(const ShedBreakdown &other)
    {
        admission_throttle += other.admission_throttle;
        queue_full += other.queue_full;
        brownout += other.brownout;
        deadline_drop += other.deadline_drop;
    }
};

/** Outcome of one load-generation run. */
struct LoadGenReport {
    std::uint64_t offered = 0;   ///< submissions attempted
    std::uint64_t ok = 0;        ///< completed with a usable payload
    std::uint64_t degraded = 0;  ///< of those, degraded (counted in ok)
    std::uint64_t rejected = 0;  ///< shed at admission
    std::uint64_t dropped = 0;   ///< shed by deadline in-queue
    std::uint64_t cancelled = 0; ///< failed by shutdown
    /** Sheds broken out by precise cause (rejected + dropped). */
    ShedBreakdown sheds;
    /**
     * Completions that also met the SLO target (`slo_us`); equals
     * `ok` when no target is set.
     */
    std::uint64_t slo_ok = 0;
    /** SLO latency target this run was tallied against; 0 = none. */
    double slo_us = 0.0;
    double wall_s = 0.0;         ///< measured run duration
    double offered_qps = 0.0;    ///< offered / wall_s
    double goodput_qps = 0.0;    ///< ok / wall_s
    double p50_us = 0.0;         ///< client-observed e2e percentiles
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;

    /** Fraction of offered requests shed (any cause). */
    double shedFraction() const
    {
        return offered == 0 ? 0.0
                            : static_cast<double>(rejected + dropped) /
                                  static_cast<double>(offered);
    }

    /**
     * Fraction of offered requests answered within the SLO target
     * (sheds count against attainment; 1.0 when nothing was offered).
     */
    double sloAttainment() const
    {
        return offered == 0 ? 1.0
                            : static_cast<double>(slo_ok) /
                                  static_cast<double>(offered);
    }

    /**
     * Fold @p other's tallies into this report. The one aggregation
     * path every consumer shares: per-client merges in the closed
     * loop and MixedReport::total() both go through here, so a new
     * counter cannot be summed in one place and forgotten in the
     * other. Percentiles/rates are NOT merged (they need the pooled
     * latency samples); the caller recomputes or leaves them zero.
     */
    void merge(const LoadGenReport &other)
    {
        offered += other.offered;
        ok += other.ok;
        degraded += other.degraded;
        rejected += other.rejected;
        dropped += other.dropped;
        cancelled += other.cancelled;
        slo_ok += other.slo_ok;
        sheds.merge(other.sheds);
    }
};

/** One tenant's traffic shape within a mixed-tenant run. */
struct TenantRun {
    /** Display label for reports ("online", "train-a", ...). */
    std::string label;
    TenantId tenant = 0;
    Lane lane = Lane::Interactive;
    /** What the tenant asks for: sampling, embedding or training. */
    JobKind kind = JobKind::Sample;
    sampling::SamplePlan plan;
    /** >0: open-loop Poisson at this QPS; 0: closed loop. */
    double target_qps = 0.0;
    /** Closed-loop client threads (ignored in open loop). */
    std::uint32_t clients = 1;
    /** Per-request deadline AND the SLO attainment target; 0 = none. */
    std::chrono::microseconds deadline{0};
    std::uint64_t seed = 1;
};

/** Per-tenant outcome of a mixed run. */
struct MixedReport {
    double wall_s = 0.0;
    /** One report per TenantRun, in input order. */
    std::vector<std::pair<TenantRun, LoadGenReport>> runs;

    /** Sum of the per-tenant reports (percentiles left zero). */
    LoadGenReport total() const;
};

/** Drives one Service with synthetic traffic of any job kind. */
class LoadGenerator
{
  public:
    explicit LoadGenerator(Service &service) : service_(service) {}

    /**
     * Open loop: Poisson arrivals of @p job at @p target_qps for
     * @p duration. Submissions never wait for completions; every
     * future is harvested at the end (the run blocks until the tail
     * drains). The job's options ride on every submission (tenant,
     * lane, deadline — a nonzero deadline doubles as the report's
     * SLO target).
     */
    LoadGenReport runOpenLoop(const Job &job, double target_qps,
                              std::chrono::milliseconds duration,
                              std::uint64_t seed = 1);

    /**
     * Closed loop: @p clients threads, each submitting @p job
     * back-to-back (one outstanding each) until @p duration elapses.
     */
    LoadGenReport runClosedLoop(const Job &job, std::uint32_t clients,
                                std::chrono::milliseconds duration);

    /**
     * Mixed-tenant run: every TenantRun drives its own traffic shape
     * (open- or closed-loop, its own kind/tenant/lane/deadline)
     * against the one service, concurrently, for @p duration. The
     * adversarial QoS scenario — a flooding Batch training tenant
     * next to a paced Interactive embedding tenant — is one call.
     */
    MixedReport runMixed(const std::vector<TenantRun> &runs,
                         std::chrono::milliseconds duration);

  private:
    Service &service_;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_LOAD_GEN_HH
