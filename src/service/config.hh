/**
 * @file
 * The one service configuration: every knob of the serving tier in a
 * single nested struct, plus the three sanctioned ways to build it.
 *
 * Before this header, examples and benches each assembled ServiceConfig
 * field-by-field and invented their own env/flag plumbing; the knobs
 * drifted. Now:
 *
 *  - ServiceConfig nests the per-subsystem configs (session, batcher,
 *    qos, pipeline) plus the service-level scalars, with defaults that
 *    boot a working 2-worker service.
 *  - validate() checks cross-field invariants (worker/queue counts,
 *    batcher limits, brown-out threshold ordering, pipeline geometry)
 *    and returns InvalidArgument with a message naming the offender —
 *    the Service constructor enforces it, so a malformed config can
 *    never reach a worker thread.
 *  - fromEnv() builds defaults overridden by LSDGNN_SERVICE_* env vars
 *    (the knobs operators actually flip at deploy time).
 *  - ServiceConfig::Builder is the fluent construction path for code:
 *    examples, benches and tests chain setters and build() validates.
 */

#ifndef LSDGNN_SERVICE_CONFIG_HH
#define LSDGNN_SERVICE_CONFIG_HH

#include "framework/session.hh"
#include "service/batcher.hh"
#include "service/pipeline.hh"
#include "service/qos.hh"

namespace lsdgnn {
namespace service {

/** Whole-service configuration. */
struct ServiceConfig {
    /** Per-worker Session template (seed offset by worker id). */
    framework::SessionConfig session;
    /** Worker threads / Session shards. */
    std::uint32_t num_workers = 2;
    /** Admission-queue capacity (push rejects beyond this). */
    std::size_t queue_capacity = 256;
    /** Micro-batching policy. */
    BatcherConfig batcher;
    /**
     * Deadline attached to submissions that do not carry their own;
     * zero means requests never expire in the queue.
     */
    std::chrono::microseconds default_deadline{0};
    /**
     * Multi-tenant QoS policy: per-tenant token-bucket admission,
     * priority lanes with weighted-fair dequeue, EDF batching and
     * brown-out. qos.enabled = false restores the pre-QoS engine
     * exactly (single FIFO, no admission control).
     */
    QosConfig qos;
    /**
     * End-to-end pipeline + compute stage: the shared GraphSAGE
     * model/GEMM engine geometry, gather pacing, and whether workers
     * double-buffer the stages.
     */
    PipelineConfig pipeline;

    /**
     * Cross-field sanity. Ok, or InvalidArgument naming the first
     * violated invariant. The Service constructor asserts this.
     */
    Status validate() const;

    /**
     * Defaults overridden by environment variables:
     *
     *   LSDGNN_SERVICE_DATASET   Table 2 dataset name
     *   LSDGNN_SERVICE_SCALE     functional scale divisor
     *   LSDGNN_SERVICE_WORKERS   worker threads
     *   LSDGNN_SERVICE_QUEUE     admission-queue capacity
     *   LSDGNN_SERVICE_QOS       0/1 QoS scheduler
     *   LSDGNN_SERVICE_PIPELINE  0/1 double-buffered stages
     *   LSDGNN_SERVICE_HIDDEN    model hidden width
     *   LSDGNN_SERVICE_LAYERS    model depth (= required hops)
     *   LSDGNN_SERVICE_GATHER_GBPS  modeled gather bandwidth
     *
     * Unset or unparsable vars keep the default. The result is
     * validated (fatal on a contradictory environment).
     */
    static ServiceConfig fromEnv();

    class Builder;
};

/**
 * Fluent construction: chain setters, then build() — which validates
 * and fails fast (lsd_assert) on an invalid combination, so examples
 * and benches cannot silently run a nonsensical service.
 */
class ServiceConfig::Builder
{
  public:
    Builder() = default;

    /** Start from an existing config (e.g. fromEnv()). */
    explicit Builder(ServiceConfig base) : config_(std::move(base)) {}

    Builder &
    dataset(std::string name, std::uint64_t scale_divisor)
    {
        config_.session.dataset = std::move(name);
        config_.session.scale_divisor = scale_divisor;
        return *this;
    }

    Builder &
    servers(std::uint32_t num_servers)
    {
        config_.session.num_servers = num_servers;
        return *this;
    }

    Builder &
    backend(framework::Backend backend)
    {
        config_.session.backend = backend;
        return *this;
    }

    Builder &
    distributed(framework::DistributedConfig distributed)
    {
        config_.session.backend = framework::Backend::Distributed;
        config_.session.distributed = std::move(distributed);
        return *this;
    }

    Builder &
    seed(std::uint64_t seed)
    {
        config_.session.seed = seed;
        return *this;
    }

    Builder &
    workers(std::uint32_t num_workers)
    {
        config_.num_workers = num_workers;
        return *this;
    }

    Builder &
    queueCapacity(std::size_t capacity)
    {
        config_.queue_capacity = capacity;
        return *this;
    }

    Builder &
    batchWindow(std::chrono::microseconds window)
    {
        config_.batcher.window = window;
        return *this;
    }

    Builder &
    maxBatchRequests(std::uint32_t max_requests)
    {
        config_.batcher.max_requests = max_requests;
        return *this;
    }

    Builder &
    defaultDeadline(std::chrono::microseconds deadline)
    {
        config_.default_deadline = deadline;
        return *this;
    }

    Builder &
    qosEnabled(bool enabled)
    {
        config_.qos.enabled = enabled;
        return *this;
    }

    Builder &
    tenant(TenantId id, TenantConfig tenant)
    {
        config_.qos.tenants.emplace_back(id, std::move(tenant));
        return *this;
    }

    Builder &
    brownout(BrownOutConfig brownout)
    {
        config_.qos.brownout = brownout;
        return *this;
    }

    Builder &
    pipelined(bool enabled)
    {
        config_.pipeline.enabled = enabled;
        return *this;
    }

    Builder &
    model(std::uint32_t hidden_dim, std::uint32_t layers)
    {
        config_.pipeline.hidden_dim = hidden_dim;
        config_.pipeline.layers = layers;
        return *this;
    }

    Builder &
    gatherFabric(double gbps, double rtt_us)
    {
        config_.pipeline.gather_gbps = gbps;
        config_.pipeline.gather_rtt_us = rtt_us;
        return *this;
    }

    /** Direct access for knobs without a dedicated setter. */
    ServiceConfig &raw() { return config_; }

    /** Validate and return the config; fatal when invalid. */
    ServiceConfig build() const;

  private:
    ServiceConfig config_;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_CONFIG_HH
