/**
 * @file
 * Aggregated service-level statistics.
 *
 * One ServiceStats instance is shared by every worker and the
 * frontend; all mutation happens under an internal mutex, so it is
 * safe to record from any thread. The stats surface through the
 * process-wide StatRegistry as the "service" group:
 *
 *  - histograms `queue_wait_us`, `exec_us`, `e2e_us` (microseconds;
 *    JSON export carries p50/p90/p95/p99),
 *  - counters `completed`, `batches`,
 *  - averages `batch_requests`, `batch_roots`.
 *
 * Per-stage SLO breakdown lives in sibling groups, one histogram
 * ("us") each, so windowed exporters (stats::WindowedStats) can
 * report rolling per-stage percentiles by group prefix:
 *
 *  - `service.stage.queue`   admission-queue wait
 *  - `service.stage.batch`   micro-batch forming (aging window)
 *  - `service.stage.sample`  backend execution
 *  - `service.stage.remote`  remote-fabric wait inside execution
 *  - `service.stage.gather`  attribute-row gather (compute kinds)
 *  - `service.stage.compute` GNN forward pass (compute kinds)
 *
 * All four are sampled once per completed request (riders of one
 * batch each contribute the batch's shared stage times), keeping the
 * stage view request-weighted like `e2e_us`. A fifth group,
 * `service.stage.cache`, carries a `hit_pct` histogram (0-100) of the
 * hot-vertex-cache hit percentage per completed request; it is only
 * sampled when the batch actually probed the tier, so the windowed
 * view tracks live hit rate rather than averaging in cache-off noise.
 *
 * When tracing is enabled, end-to-end latency percentiles are also
 * emitted periodically as Perfetto counter series
 * (`service.e2e_p50_us` / `_p95_us` / `_p99_us`) so overload shows up
 * directly on the timeline next to `service.queue.depth`.
 */

#ifndef LSDGNN_SERVICE_SERVICE_STATS_HH
#define LSDGNN_SERVICE_SERVICE_STATS_HH

#include <mutex>

#include "common/stats.hh"
#include "service/request.hh"

namespace lsdgnn {
namespace service {

/** Thread-safe latency/throughput accounting for one service. */
class ServiceStats
{
  public:
    ServiceStats();

    /** Record one completed (Ok) request's latency split. */
    void recordCompletion(const Reply &reply);

    /** Record one executed micro-batch. */
    void recordBatch(std::size_t requests, std::uint64_t roots);

    /**
     * Record one completed request's per-stage latency split (all in
     * microseconds; see the file comment for stage definitions).
     * @p cache_lookups / @p cache_hits are the batch's hot-vertex
     * cache probe counts; hit percentage is only sampled when the
     * batch probed the tier at least once. @p hedges / @p
     * inflight_peak are the async fabric's hedge re-issues and peak
     * simultaneous in-flight remote reads for the batch; both are
     * only sampled when the batch actually had reads in flight, so
     * the windowed fabric view ignores all-local batches.
     */
    void recordStages(double queue_us, double batch_us,
                      double sample_us, double remote_us,
                      std::uint64_t cache_lookups = 0,
                      std::uint64_t cache_hits = 0,
                      std::uint64_t hedges = 0,
                      std::uint64_t inflight_peak = 0);

    /**
     * Record one completed compute-kind request's pipeline stages:
     * `service.stage.gather` (attribute-row materialization +
     * modeled-fabric pacing) and `service.stage.compute` (GraphSAGE
     * forward on the GEMM engine). Sampled only for Embed/TrainStep
     * completions, so the windowed view is not diluted by
     * sample-only traffic.
     */
    void recordComputeStages(double gather_us, double compute_us);

    /** Completed (Ok) requests so far. */
    std::uint64_t completed() const;

    /** Completed requests that rode @p lane. */
    std::uint64_t laneCompleted(Lane lane) const;

    /** Per-lane end-to-end latency percentile (us), q in [0,1]. */
    double laneE2ePercentile(Lane lane, double q) const;

    /** Micro-batches executed so far. */
    std::uint64_t batches() const;

    /** End-to-end latency percentile (us), q in [0,1]. */
    double e2ePercentile(double q) const;

    /** Queue-wait latency percentile (us), q in [0,1]. */
    double queueWaitPercentile(double q) const;

    /** Mean requests per executed micro-batch. */
    double meanBatchRequests() const;

    /** The registered "service" StatGroup (quiesce before reading). */
    const stats::StatGroup &group() const { return group_; }

    ServiceStats(const ServiceStats &) = delete;
    ServiceStats &operator=(const ServiceStats &) = delete;

  private:
    void traceLatencyLocked(Clock::time_point now);

    /** One per-stage breakdown group ("service.stage.<name>"). */
    struct Stage {
        explicit Stage(const std::string &name);
        stats::StatGroup group;
        stats::Histogram us;
    };

    /**
     * One per-lane view ("service.lane.<name>"): completions,
     * degraded completions and e2e latency of that priority lane, so
     * windowed exporters can show Interactive SLO attainment next to
     * (and unpolluted by) the Batch lane.
     */
    struct LaneView {
        explicit LaneView(Lane lane);
        stats::StatGroup group;
        stats::Counter completed;
        stats::Counter degraded;
        stats::Histogram e2eUs;
    };
    LaneView &laneLocked(Lane lane);
    const LaneView &laneLocked(Lane lane) const;

    mutable std::mutex mutex_;
    stats::StatGroup group_{"service"};
    stats::Counter completed_;
    stats::Counter batches_;
    stats::Average batchRequests;
    stats::Average batchRoots;
    stats::Histogram queueWaitUs;
    stats::Histogram execUs;
    stats::Histogram e2eUs;
    Stage stageQueue_;
    Stage stageBatch_;
    Stage stageSample_;
    Stage stageRemote_;
    Stage stageGather_;
    Stage stageCompute_;
    LaneView laneInteractive_;
    LaneView laneBatch_;
    /** Hot-vertex-cache hit percentage per request (0-100). */
    stats::StatGroup stageCacheGroup_{"service.stage.cache"};
    stats::Histogram cacheHitPct_;
    /** Async-fabric view per request with remote reads in flight. */
    stats::StatGroup stageFabricGroup_{"service.stage.fabric"};
    stats::Histogram fabricHedges_;
    stats::Histogram fabricInflightPeak_;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_SERVICE_STATS_HH
