#include "request_queue.hh"

#include <algorithm>

#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "common/trace.hh"

namespace lsdgnn {
namespace service {

RequestQueue::RequestQueue(RequestQueueConfig config)
    : config_(config)
{
    lsd_assert(config_.capacity > 0, "queue needs capacity");
    group.addCounter("accepted", &accepted_, "requests admitted");
    group.addCounter("rejected", &rejected_,
                     "requests shed at admission (queue full/closed)");
    group.addCounter("dropped", &dropped_,
                     "requests shed in-queue (deadline expired)");
    group.addCounter("cancelled", &cancelled_,
                     "requests failed by non-drain shutdown");
    group.addAverage("depth_at_admit", &depthAtAdmit,
                     "queue depth seen by each admitted request");
    flightGauge_ = trace::FlightRecorder::instance().registerGauge(
        "service.queue.depth", [this] {
            return static_cast<double>(depth());
        });
}

RequestQueue::~RequestQueue()
{
    trace::FlightRecorder::instance().unregisterGauge(flightGauge_);
}

void
RequestQueue::traceDepthLocked(Clock::time_point now)
{
    if (trace::Tracer::enabled())
        trace::Tracer::instance().counter(
            trace_pid, "service.queue.depth", wallTick(now),
            static_cast<double>(queue_.size()));
}

void
RequestQueue::countShedLocked(Clock::time_point now)
{
    if (config_.shed_spike_threshold == 0)
        return;
    if (now - shedWindowStart_ > config_.shed_spike_window) {
        shedWindowStart_ = now;
        shedWindowCount_ = 0;
    }
    if (++shedWindowCount_ == config_.shed_spike_threshold)
        tripPending_.store(true, std::memory_order_relaxed);
}

void
RequestQueue::maybeTrip()
{
    if (tripPending_.exchange(false, std::memory_order_relaxed))
        trace::FlightRecorder::instance().trip(
            "shed-spike:service.queue");
}

void
RequestQueue::shedLocked(Request &&req, Status status,
                         Clock::time_point now)
{
    if (status == StatusCode::DeadlineExceeded)
        dropped_.inc();
    else if (status == StatusCode::Cancelled)
        cancelled_.inc();
    countShedLocked(now);
    trace::FlightRecorder::instance().recordNow(
        "queue.shed", req.trace.trace_id, req.trace.span_id,
        static_cast<double>(static_cast<int>(status.code())));
    // Shed requests never reach a worker, so their queue-wait slice is
    // emitted here — the trace still shows where the request died.
    if (trace::Tracer::enabled()) {
        auto &tracer = trace::Tracer::instance();
        const std::string args = req.trace.argsJson() +
                                 ",\"status\":\"" +
                                 std::string(toString(status.code())) +
                                 "\"";
        tracer.complete(trace_pid,
                        tracer.track(trace_pid, "service.queue"),
                        "queue.shed", wallTick(req.enqueued_at),
                        wallTick(now) - wallTick(req.enqueued_at),
                        args);
    }
    Reply reply;
    reply.status = std::move(status);
    reply.trace_id = req.trace_id;
    reply.span_id = req.trace.span_id;
    reply.queue_us = elapsedUs(req.enqueued_at, now);
    reply.e2e_us = reply.queue_us;
    req.promise.set_value(std::move(reply));
}

bool
RequestQueue::push(Request &&req)
{
    const auto now = Clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= config_.capacity) {
        rejected_.inc();
        countShedLocked(now);
        const bool was_closed = closed_;
        lock.unlock();
        trace::FlightRecorder::instance().recordNow(
            "queue.reject", req.trace.trace_id, req.trace.span_id,
            was_closed ? 1.0 : 0.0);
        Reply reply;
        reply.status = Status(StatusCode::Rejected,
                              was_closed ? "service shutting down"
                                         : "admission queue full");
        reply.trace_id = req.trace_id;
        reply.span_id = req.trace.span_id;
        req.promise.set_value(std::move(reply));
        maybeTrip();
        return false;
    }
    req.enqueued_at = now;
    req.id = next_id++;
    depthAtAdmit.sample(static_cast<double>(queue_.size()));
    queue_.push_back(std::move(req));
    ++arrivals_;
    accepted_.inc();
    traceDepthLocked(now);
    lock.unlock();
    cv_.notify_one();
    return true;
}

std::optional<Request>
RequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        const auto now = Clock::now();
        while (!queue_.empty()) {
            Request req = std::move(queue_.front());
            queue_.pop_front();
            if (req.deadline <= now) {
                shedLocked(std::move(req),
                           Status(StatusCode::DeadlineExceeded,
                                  "expired in queue"),
                           now);
                continue;
            }
            traceDepthLocked(now);
            lock.unlock();
            maybeTrip();
            return req;
        }
        if (closed_)
            return std::nullopt;
        cv_.wait(lock);
    }
}

std::optional<Request>
RequestQueue::popCompatible(const Request &proto,
                            std::uint64_t root_budget)
{
    const auto now = Clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline <= now) {
            Request expired = std::move(*it);
            it = queue_.erase(it);
            shedLocked(std::move(expired),
                       Status(StatusCode::DeadlineExceeded,
                              "expired in queue"),
                       now);
            continue;
        }
        if (batchCompatible(*it, proto) &&
            it->plan.batch_size <= root_budget) {
            Request req = std::move(*it);
            queue_.erase(it);
            traceDepthLocked(now);
            lock.unlock();
            maybeTrip();
            return req;
        }
        ++it;
    }
    lock.unlock();
    maybeTrip();
    return std::nullopt;
}

bool
RequestQueue::waitForArrival(std::uint64_t seen_arrivals,
                             Clock::time_point until)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (arrivals_ <= seen_arrivals && !closed_) {
        if (cv_.wait_until(lock, until) == std::cv_status::timeout)
            break;
    }
    return arrivals_ > seen_arrivals;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

void
RequestQueue::cancelPending()
{
    std::deque<Request> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        orphans.swap(queue_);
    }
    const auto now = Clock::now();
    for (Request &req : orphans) {
        Reply reply;
        reply.status = Status(StatusCode::Cancelled,
                              "service shut down before execution");
        reply.trace_id = req.trace_id;
        reply.span_id = req.trace.span_id;
        reply.queue_us = elapsedUs(req.enqueued_at, now);
        reply.e2e_us = reply.queue_us;
        cancelled_.inc();
        req.promise.set_value(std::move(reply));
    }
    cv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::uint64_t
RequestQueue::arrivals() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return arrivals_;
}

} // namespace service
} // namespace lsdgnn
