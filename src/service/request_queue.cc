#include "request_queue.hh"

#include <algorithm>

#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "service/qos.hh"

namespace lsdgnn {
namespace service {

namespace {

/**
 * EDF ordering: earliest deadline first, admission id breaking ties.
 * No-deadline requests carry time_point::max(), so a lane of
 * deadline-free requests degenerates to FIFO — the pre-QoS order.
 */
bool
edfBefore(const Request &a, const Request &b)
{
    if (a.deadline != b.deadline)
        return a.deadline < b.deadline;
    return a.id < b.id;
}

} // namespace

RequestQueue::RequestQueue(RequestQueueConfig config)
    : config_(config)
{
    lsd_assert(config_.capacity > 0, "queue needs capacity");
    if (config_.qos) {
        const std::uint64_t iw = config_.interactive_weight;
        const std::uint64_t bw = config_.batch_weight;
        const std::uint64_t total = std::max<std::uint64_t>(iw + bw, 1);
        batchCap_ = std::max<std::size_t>(
            1, static_cast<std::size_t>(config_.capacity * bw / total));
    } else {
        batchCap_ = config_.capacity;
    }
    credit_[0] = config_.interactive_weight;
    credit_[1] = config_.batch_weight;
    group.addCounter("accepted", &accepted_, "requests admitted");
    group.addCounter("rejected", &rejected_,
                     "requests shed at admission (queue full/closed)");
    group.addCounter("dropped", &dropped_,
                     "requests shed in-queue (deadline expired)");
    group.addCounter("cancelled", &cancelled_,
                     "requests failed by non-drain shutdown");
    group.addCounter("starvation_trips", &starvationTrips_,
                     "lane-starvation watchdog firings");
    group.addAverage("depth_at_admit", &depthAtAdmit,
                     "queue depth seen by each admitted request");
    flightGauge_ = trace::FlightRecorder::instance().registerGauge(
        "service.queue.depth", [this] {
            return static_cast<double>(depth());
        });
}

RequestQueue::~RequestQueue()
{
    trace::FlightRecorder::instance().unregisterGauge(flightGauge_);
}

std::size_t
RequestQueue::laneOf(const Request &req) const
{
    // Legacy engine: one FIFO lane, priorities ignored.
    if (!config_.qos)
        return 0;
    return static_cast<std::size_t>(req.lane);
}

void
RequestQueue::traceDepthLocked(Clock::time_point now)
{
    if (trace::Tracer::enabled())
        trace::Tracer::instance().counter(
            trace_pid, "service.queue.depth", wallTick(now),
            static_cast<double>(lanes_[0].size() + lanes_[1].size()));
}

void
RequestQueue::countShedLocked(Clock::time_point now)
{
    if (config_.shed_spike_threshold == 0)
        return;
    if (now - shedWindowStart_ > config_.shed_spike_window) {
        shedWindowStart_ = now;
        shedWindowCount_ = 0;
    }
    if (++shedWindowCount_ == config_.shed_spike_threshold)
        tripPending_.store(true, std::memory_order_relaxed);
}

void
RequestQueue::maybeTrip()
{
    if (tripPending_.exchange(false, std::memory_order_relaxed))
        trace::FlightRecorder::instance().trip(
            "shed-spike:service.queue");
    const int lane =
        starvedLane_.exchange(-1, std::memory_order_relaxed);
    if (lane >= 0)
        trace::FlightRecorder::instance().trip(
            lane == static_cast<int>(Lane::Batch)
                ? "lane-starvation:batch"
                : "lane-starvation:interactive");
}

void
RequestQueue::releaseTenantSlotLocked(const Request &req)
{
    if (!config_.qos || req.lane != Lane::Batch)
        return;
    auto it = batchTenantDepth_.find(req.tenant);
    if (it != batchTenantDepth_.end() && --it->second == 0)
        batchTenantDepth_.erase(it);
}

void
RequestQueue::shedLocked(Request &&req, Status status, ShedCause cause,
                         Clock::time_point now)
{
    if (status == StatusCode::DeadlineExceeded)
        dropped_.inc();
    else if (status == StatusCode::Cancelled)
        cancelled_.inc();
    else if (status == StatusCode::Rejected)
        rejected_.inc();
    countShedLocked(now);
    if (qos_ && cause != ShedCause::None)
        qos_->registry.recordShed(req.tenant, cause);
    trace::FlightRecorder::instance().recordNow(
        "queue.shed", req.trace.trace_id, req.trace.span_id,
        static_cast<double>(static_cast<int>(status.code())),
        static_cast<double>(static_cast<int>(cause)));
    // Shed requests never reach a worker, so their queue-wait slice is
    // emitted here — the trace still shows where the request died.
    if (trace::Tracer::enabled()) {
        auto &tracer = trace::Tracer::instance();
        const std::string args = req.trace.argsJson() +
                                 ",\"status\":\"" +
                                 std::string(toString(status.code())) +
                                 "\",\"cause\":\"" +
                                 std::string(toString(cause)) + "\"";
        tracer.complete(trace_pid,
                        tracer.track(trace_pid, "service.queue"),
                        "queue.shed", wallTick(req.enqueued_at),
                        wallTick(now) - wallTick(req.enqueued_at),
                        args);
    }
    Reply reply;
    reply.status = std::move(status);
    reply.trace_id = req.trace_id;
    reply.span_id = req.trace.span_id;
    reply.tenant = req.tenant;
    reply.lane = req.lane;
    reply.shed_cause = cause;
    reply.queue_us = elapsedUs(req.enqueued_at, now);
    reply.e2e_us = reply.queue_us;
    req.promise.set_value(std::move(reply));
}

void
RequestQueue::sweepExpiredLocked(std::size_t lane,
                                 Clock::time_point now)
{
    auto &dq = lanes_[lane];
    for (auto it = dq.begin(); it != dq.end();) {
        if (it->deadline > now) {
            ++it;
            continue;
        }
        Request expired = std::move(*it);
        it = dq.erase(it);
        releaseTenantSlotLocked(expired);
        shedLocked(std::move(expired),
                   Status(StatusCode::DeadlineExceeded,
                          "expired in queue"),
                   ShedCause::DeadlineDrop, now);
    }
}

int
RequestQueue::pickLaneLocked()
{
    const bool has[lane_count] = {!lanes_[0].empty(),
                                  !lanes_[1].empty()};
    if (!has[0] && !has[1])
        return -1;
    if (!config_.qos)
        return has[0] ? 0 : 1;
    // Weighted round-robin: start a fresh credit cycle when no
    // non-empty lane has credit left, then prefer the Interactive
    // lane. Work-conserving — an empty lane never blocks the other.
    if (!((has[0] && credit_[0] > 0) || (has[1] && credit_[1] > 0))) {
        credit_[0] = config_.interactive_weight;
        credit_[1] = config_.batch_weight;
    }
    int pick;
    if (has[0] && credit_[0] > 0)
        pick = 0;
    else if (has[1] && credit_[1] > 0)
        pick = 1;
    else
        pick = has[0] ? 0 : 1;
    if (credit_[pick] > 0)
        --credit_[pick];
    return pick;
}

void
RequestQueue::checkStarvationLocked(std::size_t lane,
                                    Clock::time_point now)
{
    lastServed_[lane] = now;
    if (!config_.qos || config_.starvation_threshold.count() <= 0)
        return;
    const std::size_t other = 1 - lane;
    if (lanes_[other].empty())
        return;
    // Lanes are append-only deques, so the front is the oldest
    // admission. lastServed_ doubles as the watchdog's rate limiter:
    // a starved lane complains at most once per threshold period.
    if (now - lanes_[other].front().enqueued_at >
            config_.starvation_threshold &&
        now - lastServed_[other] >= config_.starvation_threshold) {
        lastServed_[other] = now;
        starvationTrips_.inc();
        starvedLane_.store(static_cast<int>(other),
                           std::memory_order_relaxed);
    }
}

bool
RequestQueue::push(Request &&req)
{
    const auto now = Clock::now();
    const std::size_t lane = laneOf(req);
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t total = lanes_[0].size() + lanes_[1].size();
    const char *refusal = nullptr;
    if (closed_) {
        refusal = "service shutting down";
    } else if (total >= config_.capacity) {
        refusal = "admission queue full";
    } else if (config_.qos && req.lane == Lane::Batch) {
        if (lanes_[lane].size() >= batchCap_) {
            refusal = "batch lane at capacity";
        } else if (qos_) {
            const auto it = batchTenantDepth_.find(req.tenant);
            const std::size_t held =
                it == batchTenantDepth_.end() ? 0 : it->second;
            if (held >=
                qos_->registry.batchShareCap(req.tenant, batchCap_))
                refusal = "tenant batch share exhausted";
        }
    }
    if (refusal != nullptr) {
        rejected_.inc();
        countShedLocked(now);
        if (qos_)
            qos_->registry.recordShed(req.tenant,
                                      ShedCause::QueueFull);
        const bool was_closed = closed_;
        lock.unlock();
        trace::FlightRecorder::instance().recordNow(
            "queue.reject", req.trace.trace_id, req.trace.span_id,
            was_closed ? 1.0 : 0.0);
        Reply reply;
        reply.status = Status(StatusCode::Rejected, refusal);
        reply.trace_id = req.trace_id;
        reply.span_id = req.trace.span_id;
        reply.tenant = req.tenant;
        reply.lane = req.lane;
        reply.shed_cause = ShedCause::QueueFull;
        req.promise.set_value(std::move(reply));
        maybeTrip();
        return false;
    }
    req.enqueued_at = now;
    req.id = next_id++;
    depthAtAdmit.sample(static_cast<double>(total));
    if (config_.qos && req.lane == Lane::Batch)
        ++batchTenantDepth_[req.tenant];
    lanes_[lane].push_back(std::move(req));
    ++arrivals_;
    accepted_.inc();
    traceDepthLocked(now);
    lock.unlock();
    cv_.notify_one();
    return true;
}

std::optional<Request>
RequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        const auto now = Clock::now();
        const int lane = pickLaneLocked();
        if (lane >= 0) {
            auto &dq = lanes_[lane];
            auto it = dq.begin();
            if (config_.qos) {
                sweepExpiredLocked(static_cast<std::size_t>(lane),
                                   now);
                if (dq.empty())
                    continue; // the whole lane had expired; re-pick
                it = std::min_element(dq.begin(), dq.end(), edfBefore);
            } else {
                // Legacy engine: FIFO, dropping expired heads.
                while (!dq.empty() && dq.front().deadline <= now) {
                    Request expired = std::move(dq.front());
                    dq.pop_front();
                    shedLocked(std::move(expired),
                               Status(StatusCode::DeadlineExceeded,
                                      "expired in queue"),
                               ShedCause::DeadlineDrop, now);
                }
                if (dq.empty())
                    continue;
                it = dq.begin();
            }
            Request req = std::move(*it);
            dq.erase(it);
            releaseTenantSlotLocked(req);
            checkStarvationLocked(static_cast<std::size_t>(lane), now);
            traceDepthLocked(now);
            lock.unlock();
            maybeTrip();
            return req;
        }
        if (closed_)
            return std::nullopt;
        cv_.wait(lock);
    }
}

std::optional<Request>
RequestQueue::popCompatible(const Request &proto,
                            std::uint64_t root_budget,
                            Clock::time_point batch_dropdead)
{
    const auto now = Clock::now();
    const std::size_t lane = laneOf(proto);
    std::unique_lock<std::mutex> lock(mutex_);
    // Sweep first so candidate selection never walks over corpses
    // (and deque::erase never invalidates the chosen iterator).
    sweepExpiredLocked(lane, now);
    auto &dq = lanes_[lane];
    auto best = dq.end();
    for (auto it = dq.begin(); it != dq.end(); ++it) {
        if (!batchCompatible(*it, proto) ||
            it->plan.batch_size > root_budget)
            continue;
        // Straddle rule: a rider due *before* the forming batch's
        // drop-dead point must not be merged into it — it needs to
        // run sooner than the batch it would join.
        if (config_.qos && it->deadline < batch_dropdead)
            continue;
        if (!config_.qos) {
            best = it; // legacy: oldest queued compatible
            break;
        }
        if (best == dq.end() || edfBefore(*it, *best))
            best = it;
    }
    if (best == dq.end()) {
        lock.unlock();
        maybeTrip();
        return std::nullopt;
    }
    Request req = std::move(*best);
    dq.erase(best);
    releaseTenantSlotLocked(req);
    traceDepthLocked(now);
    lock.unlock();
    maybeTrip();
    return req;
}

void
RequestQueue::shed(Request &&req, Status status, ShedCause cause)
{
    const auto now = Clock::now();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shedLocked(std::move(req), std::move(status), cause, now);
    }
    maybeTrip();
}

bool
RequestQueue::waitForArrival(std::uint64_t seen_arrivals,
                             Clock::time_point until)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (arrivals_ <= seen_arrivals && !closed_) {
        if (cv_.wait_until(lock, until) == std::cv_status::timeout)
            break;
    }
    return arrivals_ > seen_arrivals;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

void
RequestQueue::cancelPending()
{
    std::deque<Request> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &dq : lanes_) {
            for (Request &req : dq)
                orphans.push_back(std::move(req));
            dq.clear();
        }
        batchTenantDepth_.clear();
    }
    const auto now = Clock::now();
    for (Request &req : orphans) {
        Reply reply;
        reply.status = Status(StatusCode::Cancelled,
                              "service shut down before execution");
        reply.trace_id = req.trace_id;
        reply.span_id = req.trace.span_id;
        reply.tenant = req.tenant;
        reply.lane = req.lane;
        reply.queue_us = elapsedUs(req.enqueued_at, now);
        reply.e2e_us = reply.queue_us;
        cancelled_.inc();
        req.promise.set_value(std::move(reply));
    }
    cv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_[0].size() + lanes_[1].size();
}

std::size_t
RequestQueue::laneDepth(Lane lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_[static_cast<std::size_t>(lane)].size();
}

std::uint64_t
RequestQueue::arrivals() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return arrivals_;
}

} // namespace service
} // namespace lsdgnn
