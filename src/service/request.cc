#include "request.hh"

namespace lsdgnn {
namespace service {

Tick
wallTick(Clock::time_point tp)
{
    // Function-local static: the epoch is the first instant any
    // service component asked for a tick (thread-safe magic static).
    static const Clock::time_point epoch = Clock::now();
    if (tp < epoch)
        return 0;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        tp - epoch).count();
    return static_cast<Tick>(ns) * 1000; // ns -> ps
}

} // namespace service
} // namespace lsdgnn
