/**
 * @file
 * Service: the concurrent request frontend over Session — the paper's
 * FaaS serving tier in software.
 *
 * Clients submit Jobs (job.hh) from any number of threads and get
 * futures back. One canonical entry point covers every workload the
 * FaaS frontier mixes: SampleJob returns the sampled subgraph,
 * EmbedJob runs the full Fig. 3 pipeline (sample -> attribute gather
 * -> GraphSAGE forward on the GEMM engine) and returns root
 * embeddings, TrainStepJob adds the in-batch link-prediction loss.
 * Inside, a bounded admission queue (load shedding), per-tenant QoS
 * (token buckets, priority lanes, EDF batching, brown-out), a dynamic
 * micro-batcher and a worker pool of Session shards — each worker a
 * double-buffered sample/gather | compute pipeline — turn submissions
 * into backend executions.
 *
 * Lifecycle: construct (workers start immediately), submit freely,
 * then shutdown() — Drain finishes every queued request, Cancel fails
 * them fast; both wait for in-flight micro-batches to complete their
 * futures. The destructor drains.
 */

#ifndef LSDGNN_SERVICE_SERVICE_HH
#define LSDGNN_SERVICE_SERVICE_HH

#include <future>
#include <memory>

#include "service/config.hh"
#include "service/job.hh"
#include "service/qos.hh"
#include "service/worker_pool.hh"

namespace lsdgnn {
namespace service {

/** Multi-threaded wall-clock GNN serving tier over Session shards. */
class Service
{
  public:
    /** Validates @p config (fatal when invalid) and starts workers. */
    explicit Service(ServiceConfig config);

    /** Drains and joins (equivalent to shutdown(Shutdown::Drain)). */
    ~Service();

    /**
     * Submit one job — the single entry point for every kind. A zero
     * options deadline falls back to the config's default. Never
     * blocks: on validation failure (empty plan; compute-kind hops !=
     * pipeline.layers -> InvalidArgument), admission denial or queue
     * overflow the returned future is already completed with the
     * failing status.
     */
    std::future<Reply> submit(const Job &job);

    /**
     * Submit and wait. The value arm carries any reply with a usable
     * payload (Ok or Degraded — inspect Reply::status for the
     * asterisk); shed outcomes land on the error arm with the
     * reply's status.
     */
    Result<Reply> execute(const Job &job);

    /** How shutdown treats requests still queued. */
    enum class Shutdown {
        Drain,  ///< execute everything already admitted
        Cancel, ///< fail queued requests with StatusCode::Cancelled
    };

    /**
     * Stop admitting, resolve the backlog per @p mode, and join the
     * workers. Requests a worker has already picked up complete
     * normally in both modes. Idempotent; the first call decides.
     */
    void shutdown(Shutdown mode = Shutdown::Drain);

    /** Requests currently waiting in the admission queue. */
    std::size_t queueDepth() const { return queue_->depth(); }

    /** Latency/throughput aggregates (stable after shutdown()). */
    const ServiceStats &stats() const { return *stats_; }

    /** Admission-queue counters (accepted/rejected/dropped/...). */
    const stats::StatGroup &queueStats() const
    {
        return queue_->stats();
    }

    /** The QoS runtime (registry + brown-out controller). */
    const QosRuntime &qos() const { return *qos_; }

    /**
     * One tenant's "service.tenant.<name>" counters, or nullptr if
     * the tenant was never seen.
     */
    const stats::StatGroup *tenantStats(TenantId id) const
    {
        return qos_->registry.stats(id);
    }

    /** Shared compute state (model + GEMM engine geometry). */
    const ComputeRuntime &compute() const { return *compute_; }

    /**
     * Cumulative per-stage busy time across all workers — the
     * occupancy counters the pipeline-overlap benchmark reads
     * (quiesce first; see WorkerPool::stageBusy).
     */
    StageBusy stageBusy() const { return pool->stageBusy(); }

    const ServiceConfig &config() const { return config_; }

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

  private:
    ServiceConfig config_;
    // unique_ptrs: qos/queue/stats/compute must outlive the pool's
    // worker threads and keep stable addresses across the facade's
    // lifetime. Declaration order is destruction-critical: the queue
    // holds a QosRuntime pointer, so qos_ must outlive queue_, and
    // the pool references everything above it.
    std::unique_ptr<QosRuntime> qos_;
    std::unique_ptr<ServiceStats> stats_;
    std::unique_ptr<RequestQueue> queue_;
    std::unique_ptr<ComputeRuntime> compute_;
    std::unique_ptr<WorkerPool> pool;
    bool down = false;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_SERVICE_HH
