/**
 * @file
 * SamplingService: the concurrent request frontend over Session.
 *
 * The paper deploys AxE/MoF behind a serverless frontier because
 * LSD-GNN sampling is a *service* hit by many concurrent
 * training/inference workers. This facade is that layer in software:
 * clients submit SamplePlans from any number of threads and get
 * futures back; inside, a bounded admission queue (load shedding), a
 * dynamic micro-batcher (Tech-1-style request packing at the service
 * level) and a worker pool of Session shards turn those submissions
 * into backend executions.
 *
 * Lifecycle: construct (workers start immediately), submit freely,
 * then shutdown() — Drain finishes every queued request, Cancel fails
 * them fast; both wait for in-flight micro-batches to complete their
 * futures. The destructor drains.
 */

#ifndef LSDGNN_SERVICE_SERVICE_HH
#define LSDGNN_SERVICE_SERVICE_HH

#include <future>
#include <memory>

#include "service/qos.hh"
#include "service/worker_pool.hh"

namespace lsdgnn {
namespace service {

/** Whole-service configuration. */
struct ServiceConfig {
    /** Per-worker Session template (seed offset by worker id). */
    framework::SessionConfig session;
    /** Worker threads / Session shards. */
    std::uint32_t num_workers = 2;
    /** Admission-queue capacity (push rejects beyond this). */
    std::size_t queue_capacity = 256;
    /** Micro-batching policy. */
    BatcherConfig batcher;
    /**
     * Deadline attached to submissions that do not carry their own;
     * zero means requests never expire in the queue.
     */
    std::chrono::microseconds default_deadline{0};
    /**
     * Multi-tenant QoS policy: per-tenant token-bucket admission,
     * priority lanes with weighted-fair dequeue, EDF batching and
     * brown-out. qos.enabled = false restores the pre-QoS engine
     * exactly (single FIFO, no admission control).
     */
    QosConfig qos;
};

/** Multi-threaded wall-clock sampling service over Session shards. */
class SamplingService
{
  public:
    explicit SamplingService(ServiceConfig config);

    /** Drains and joins (equivalent to shutdown(Shutdown::Drain)). */
    ~SamplingService();

    /**
     * Submit one sampling request. A zero request deadline falls back
     * to the config's default. Never blocks: on queue overflow the
     * returned future is already completed with StatusCode::Rejected.
     */
    std::future<Reply> submit(const SampleRequest &request);

    /**
     * @deprecated Use submit(SampleRequest). Equivalent to submitting
     * {plan, {}} — the config's default deadline, Routing::Any.
     */
    [[deprecated("use submit(const SampleRequest &)")]]
    std::future<Reply> submit(const sampling::SamplePlan &plan);

    /** @deprecated Use submit(SampleRequest) with options.deadline. */
    [[deprecated("use submit(const SampleRequest &)")]]
    std::future<Reply> submit(const sampling::SamplePlan &plan,
                              std::chrono::microseconds deadline);

    /** Convenience: submit and wait. */
    Reply sample(const SampleRequest &request);

    /** Convenience: submit @p plan with default options and wait. */
    Reply sample(const sampling::SamplePlan &plan);

    /** How shutdown treats requests still queued. */
    enum class Shutdown {
        Drain,  ///< execute everything already admitted
        Cancel, ///< fail queued requests with StatusCode::Cancelled
    };

    /**
     * Stop admitting, resolve the backlog per @p mode, and join the
     * workers. Requests a worker has already picked up complete
     * normally in both modes. Idempotent; the first call decides.
     */
    void shutdown(Shutdown mode = Shutdown::Drain);

    /** Requests currently waiting in the admission queue. */
    std::size_t queueDepth() const { return queue_->depth(); }

    /** Latency/throughput aggregates (stable after shutdown()). */
    const ServiceStats &stats() const { return *stats_; }

    /** Admission-queue counters (accepted/rejected/dropped/...). */
    const stats::StatGroup &queueStats() const
    {
        return queue_->stats();
    }

    /** The QoS runtime (registry + brown-out controller). */
    const QosRuntime &qos() const { return *qos_; }

    /**
     * One tenant's "service.tenant.<name>" counters, or nullptr if
     * the tenant was never seen.
     */
    const stats::StatGroup *tenantStats(TenantId id) const
    {
        return qos_->registry.stats(id);
    }

    const ServiceConfig &config() const { return config_; }

    SamplingService(const SamplingService &) = delete;
    SamplingService &operator=(const SamplingService &) = delete;

  private:
    ServiceConfig config_;
    // unique_ptrs: qos/queue/stats must outlive the pool's worker
    // threads and keep stable addresses across the facade's lifetime.
    // Declaration order is destruction-critical: the queue holds a
    // QosRuntime pointer, so qos_ must outlive queue_.
    std::unique_ptr<QosRuntime> qos_;
    std::unique_ptr<ServiceStats> stats_;
    std::unique_ptr<RequestQueue> queue_;
    std::unique_ptr<WorkerPool> pool;
    bool down = false;
};

} // namespace service
} // namespace lsdgnn

#endif // LSDGNN_SERVICE_SERVICE_HH
