#include "endpoint.hh"

#include <algorithm>
#include <memory>

namespace lsdgnn {
namespace mof {

MofEndpoint::MofEndpoint(sim::EventQueue &eq, fabric::SimLink &phy,
                         EndpointParams params, const std::string &name)
    : sim::Component(eq, name),
      phy_(phy),
      params_(params),
      fill(0.0, static_cast<double>(params.format.max_requests) + 1.0,
           params.format.max_requests > 0 ? params.format.max_requests + 1
                                          : 1)
{
    lsd_assert(params_.format.max_requests > 0,
               "packages must carry requests");
    statGroup.addCounter("packages", &packages, "packages shipped");
    statGroup.addCounter("requests", &requests, "requests carried");
    statGroup.addCounter("wire_bytes", &wire_bytes,
                         "bytes moved including headers");
    statGroup.addCounter("unpacked_bytes", &unpacked,
                         "bytes the traffic would cost unpacked");
    statGroup.addAverage("staging_ticks", &stagingTicks,
                         "oldest-request staging delay per package");
    statGroup.addHistogram("fill", &fill, "requests per shipped package");
}

void
MofEndpoint::request(std::uint64_t bytes, std::uint32_t dest,
                     Callback done)
{
    (void)dest; // one endpoint fronts one point-to-point PHY
    lsd_assert(done, "request needs a completion callback");
    if (staged.empty())
        firstStagedAt = curTick();
    staged.push_back(Staged{bytes, std::move(done)});
    if (trace::Tracer::enabled())
        trace::Tracer::instance().counter(0, name() + ".staged",
            curTick(), static_cast<double>(staged.size()));
    // Counterfactual accounting: one request per package.
    unpacked.inc(params_.format.header_bytes +
                 params_.format.addr_bytes_per_request + bytes +
                 params_.response_header_bytes);
    if (staged.size() >= params_.format.max_requests) {
        ship();
        return;
    }
    armTimer();
}

void
MofEndpoint::armTimer()
{
    if (timerArmed)
        return;
    timerArmed = true;
    timerHandle = eventq.scheduleAfter(params_.max_staging_delay,
                                       [this] { ship(); });
}

void
MofEndpoint::flush()
{
    if (!staged.empty())
        ship();
}

void
MofEndpoint::ship()
{
    if (timerArmed) {
        eventq.deschedule(timerHandle);
        timerArmed = false;
    }
    if (staged.empty())
        return;

    auto batch =
        std::make_shared<std::vector<Staged>>(std::move(staged));
    staged.clear();

    fill.sample(static_cast<double>(batch->size()));
    stagingTicks.sample(static_cast<double>(curTick() - firstStagedAt));
    if (trace::Tracer::enabled()) {
        // One slice per package: starts when its oldest request was
        // staged, ends at ship time — the aging/packing trade-off
        // made visible.
        trace::Tracer::instance().complete(0, traceTrack(), "package",
            firstStagedAt, curTick() - firstStagedAt,
            "\"requests\":" + std::to_string(batch->size()));
        trace::Tracer::instance().counter(0, name() + ".staged",
            curTick(), 0.0);
    }

    std::uint64_t payload = 0;
    for (const auto &s : *batch)
        payload += s.bytes;
    const std::uint64_t request_pkg = params_.format.header_bytes +
        batch->size() * params_.format.addr_bytes_per_request;
    const std::uint64_t response_pkg =
        params_.response_header_bytes + payload;

    packages.inc();
    requests.inc(batch->size());
    wire_bytes.inc(request_pkg + response_pkg);

    // The PHY carries the request package out and the response
    // package back as one round trip; all staged completions fire
    // when the response lands.
    phy_.request(request_pkg + response_pkg, [batch] {
        for (auto &s : *batch)
            s.done();
    });
}

} // namespace mof
} // namespace lsdgnn
