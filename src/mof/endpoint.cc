#include "endpoint.hh"

#include <algorithm>
#include <memory>

namespace lsdgnn {
namespace mof {

MofEndpoint::MofEndpoint(sim::EventQueue &eq, fabric::SimLink &phy,
                         EndpointParams params)
    : sim::Component(eq, "mof.endpoint"),
      phy_(phy),
      params_(params)
{
    lsd_assert(params_.format.max_requests > 0,
               "packages must carry requests");
    statGroup.addCounter("packages", &packages, "packages shipped");
    statGroup.addCounter("requests", &requests, "requests carried");
    statGroup.addCounter("wire_bytes", &wire_bytes,
                         "bytes moved including headers");
    statGroup.addCounter("unpacked_bytes", &unpacked,
                         "bytes the traffic would cost unpacked");
}

void
MofEndpoint::request(std::uint64_t bytes, std::uint32_t dest,
                     Callback done)
{
    (void)dest; // one endpoint fronts one point-to-point PHY
    lsd_assert(done, "request needs a completion callback");
    staged.push_back(Staged{bytes, std::move(done)});
    // Counterfactual accounting: one request per package.
    unpacked.inc(params_.format.header_bytes +
                 params_.format.addr_bytes_per_request + bytes +
                 params_.response_header_bytes);
    if (staged.size() >= params_.format.max_requests) {
        ship();
        return;
    }
    armTimer();
}

void
MofEndpoint::armTimer()
{
    if (timerArmed)
        return;
    timerArmed = true;
    timerHandle = eventq.scheduleAfter(params_.max_staging_delay,
                                       [this] { ship(); });
}

void
MofEndpoint::flush()
{
    if (!staged.empty())
        ship();
}

void
MofEndpoint::ship()
{
    if (timerArmed) {
        eventq.deschedule(timerHandle);
        timerArmed = false;
    }
    if (staged.empty())
        return;

    auto batch =
        std::make_shared<std::vector<Staged>>(std::move(staged));
    staged.clear();

    std::uint64_t payload = 0;
    for (const auto &s : *batch)
        payload += s.bytes;
    const std::uint64_t request_pkg = params_.format.header_bytes +
        batch->size() * params_.format.addr_bytes_per_request;
    const std::uint64_t response_pkg =
        params_.response_header_bytes + payload;

    packages.inc();
    requests.inc(batch->size());
    wire_bytes.inc(request_pkg + response_pkg);

    // The PHY carries the request package out and the response
    // package back as one round trip; all staged completions fire
    // when the response lands.
    phy_.request(request_pkg + response_pkg, [batch] {
        for (auto &s : *batch)
            s.done();
    });
}

} // namespace mof
} // namespace lsdgnn
