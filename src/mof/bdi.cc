#include "bdi.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace lsdgnn {
namespace mof {

namespace {

/** Bytes of the delta field for a given base scheme. */
std::uint32_t
deltaBytes(BdiScheme scheme)
{
    switch (scheme) {
      case BdiScheme::Base1: return 1;
      case BdiScheme::Base2: return 2;
      case BdiScheme::Base4: return 4;
      default: lsd_panic("scheme has no delta width");
    }
}

/** Whether every word's signed delta from base fits in @p bytes. */
bool
deltasFit(std::span<const std::uint64_t> block, std::uint64_t base,
          std::uint32_t bytes)
{
    const std::int64_t lo = bytes == 8 ? std::numeric_limits<std::int64_t>::min()
        : -(std::int64_t(1) << (bytes * 8 - 1));
    const std::int64_t hi = bytes == 8 ? std::numeric_limits<std::int64_t>::max()
        : (std::int64_t(1) << (bytes * 8 - 1)) - 1;
    for (std::uint64_t w : block) {
        const auto delta = static_cast<std::int64_t>(w - base);
        if (delta < lo || delta > hi)
            return false;
    }
    return true;
}

void
putLe(std::vector<std::uint8_t> &out, std::uint64_t value,
      std::uint32_t bytes)
{
    for (std::uint32_t i = 0; i < bytes; ++i)
        out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

std::uint64_t
getLe(std::span<const std::uint8_t> in, std::size_t &pos,
      std::uint32_t bytes)
{
    lsd_assert(pos + bytes <= in.size(), "BDI stream truncated");
    std::uint64_t value = 0;
    for (std::uint32_t i = 0; i < bytes; ++i)
        value |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
    pos += bytes;
    return value;
}

/** Sign-extend a little-endian value of @p bytes width. */
std::int64_t
signExtend(std::uint64_t value, std::uint32_t bytes)
{
    if (bytes >= 8)
        return static_cast<std::int64_t>(value);
    const std::uint32_t shift = 64 - bytes * 8;
    return static_cast<std::int64_t>(value << shift) >> shift;
}

/** Mask a word to its significant width. */
std::uint64_t
maskWord(std::uint64_t value, std::uint32_t word_bytes)
{
    if (word_bytes >= 8)
        return value;
    return value & ((std::uint64_t(1) << (word_bytes * 8)) - 1);
}

} // namespace

BdiResult
bdiCompress(std::span<const std::uint64_t> words, const BdiParams &params)
{
    lsd_assert(params.word_bytes == 4 || params.word_bytes == 8,
               "BDI supports 4- or 8-byte words");
    lsd_assert(params.block_words > 0, "block must hold words");

    BdiResult result;
    result.input_bytes = words.size() * params.word_bytes;

    for (std::size_t begin = 0; begin < words.size();
         begin += params.block_words) {
        const std::size_t n =
            std::min<std::size_t>(params.block_words,
                                  words.size() - begin);
        const auto block = words.subspan(begin, n);

        const bool all_zero = std::all_of(block.begin(), block.end(),
            [](std::uint64_t w) { return w == 0; });

        // Candidate schemes in cost order for typical data.
        BdiScheme best = BdiScheme::Uncompressed;
        std::size_t best_cost = 2 + n * params.word_bytes;
        if (all_zero) {
            best = BdiScheme::Zeros;
            best_cost = 2;
        } else {
            const std::uint64_t base = block[0];
            for (BdiScheme s : {BdiScheme::Base1, BdiScheme::Base2,
                                BdiScheme::Base4}) {
                const std::uint32_t db = deltaBytes(s);
                if (db >= params.word_bytes)
                    continue; // no saving possible
                if (!deltasFit(block, base, db))
                    continue;
                const std::size_t cost = 2 + params.word_bytes + n * db;
                if (cost < best_cost) {
                    best = s;
                    best_cost = cost;
                }
            }
        }

        result.bytes.push_back(static_cast<std::uint8_t>(best));
        result.bytes.push_back(static_cast<std::uint8_t>(n));
        switch (best) {
          case BdiScheme::Zeros:
            break;
          case BdiScheme::Base1:
          case BdiScheme::Base2:
          case BdiScheme::Base4: {
            const std::uint32_t db = deltaBytes(best);
            putLe(result.bytes, block[0], params.word_bytes);
            for (std::uint64_t w : block)
                putLe(result.bytes, w - block[0], db);
            break;
          }
          case BdiScheme::Uncompressed:
            for (std::uint64_t w : block)
                putLe(result.bytes, w, params.word_bytes);
            break;
        }
    }
    return result;
}

std::vector<std::uint64_t>
bdiDecompress(std::span<const std::uint8_t> bytes,
              const BdiParams &params)
{
    std::vector<std::uint64_t> out;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        lsd_assert(pos + 2 <= bytes.size(), "BDI header truncated");
        const auto scheme = static_cast<BdiScheme>(bytes[pos++]);
        const std::uint32_t n = bytes[pos++];
        switch (scheme) {
          case BdiScheme::Zeros:
            out.insert(out.end(), n, 0);
            break;
          case BdiScheme::Base1:
          case BdiScheme::Base2:
          case BdiScheme::Base4: {
            const std::uint32_t db = deltaBytes(scheme);
            const std::uint64_t base = getLe(bytes, pos,
                                             params.word_bytes);
            for (std::uint32_t i = 0; i < n; ++i) {
                const std::int64_t delta =
                    signExtend(getLe(bytes, pos, db), db);
                out.push_back(maskWord(
                    base + static_cast<std::uint64_t>(delta),
                    params.word_bytes));
            }
            break;
          }
          case BdiScheme::Uncompressed:
            for (std::uint32_t i = 0; i < n; ++i)
                out.push_back(getLe(bytes, pos, params.word_bytes));
            break;
          default:
            lsd_panic("corrupt BDI stream: bad scheme tag");
        }
    }
    return out;
}

} // namespace mof
} // namespace lsdgnn
