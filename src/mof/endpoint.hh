/**
 * @file
 * MoF endpoint: dynamic multi-request packing in simulated time.
 *
 * Table 5 accounts for packing statically; the endpoint performs it
 * dynamically: read requests accumulate in a staging buffer and ship
 * as one package when either the package fills (64 requests) or the
 * aging timer expires — the classic batching latency/efficiency
 * trade-off. The endpoint fronts a SimLink (the PHY) and implements
 * MemoryPort, so it can stand wherever a raw link does, including
 * under an AxE load unit.
 */

#ifndef LSDGNN_MOF_ENDPOINT_HH
#define LSDGNN_MOF_ENDPOINT_HH

#include <vector>

#include "fabric/memory_port.hh"
#include "fabric/sim_link.hh"
#include "mof/frame.hh"
#include "sim/component.hh"

namespace lsdgnn {
namespace mof {

/** Endpoint parameters. */
struct EndpointParams {
    /** Frame geometry (requests per package, header/address bytes). */
    FrameFormat format = mofFormat();
    /** Maximum time a staged request may wait before a forced flush. */
    Tick max_staging_delay = nanoseconds(200);
    /** Response header bytes per returning package. */
    std::uint32_t response_header_bytes = 32;
};

/**
 * Packing endpoint over one fabric PHY.
 */
class MofEndpoint : public sim::Component, public fabric::MemoryPort
{
  public:
    /**
     * @param eq Shared event queue.
     * @param phy Fabric PHY the packages ride on.
     * @param params Packing configuration.
     * @param name Component name (stats/trace track).
     */
    MofEndpoint(sim::EventQueue &eq, fabric::SimLink &phy,
                EndpointParams params = EndpointParams{},
                const std::string &name = "mof.endpoint");

    /** Stage one read; completion fires when its response lands. */
    void request(std::uint64_t bytes, std::uint32_t dest,
                 Callback done) override;

    using fabric::MemoryPort::request;

    /** Force out whatever is staged (end of batch). */
    void flush();

    /** Packages shipped. */
    std::uint64_t packagesSent() const { return packages.value(); }

    /** Requests carried. */
    std::uint64_t requestsSent() const { return requests.value(); }

    /** Mean requests per package (the achieved packing factor). */
    double
    meanPackingFactor() const
    {
        return packages.value() == 0
            ? 0.0
            : static_cast<double>(requests.value()) /
              static_cast<double>(packages.value());
    }

    /** Wire bytes actually moved (requests + responses + headers). */
    std::uint64_t wireBytes() const { return wire_bytes.value(); }

    /** Requests-per-package distribution (the packing efficiency). */
    const stats::Histogram &fillHistogram() const { return fill; }

    /**
     * Wire bytes the same traffic would cost unpacked (one package
     * per request) — the Tech-1 saving denominator.
     */
    std::uint64_t unpackedWireBytes() const { return unpacked.value(); }

  private:
    struct Staged {
        std::uint64_t bytes;
        Callback done;
    };

    void armTimer();
    void ship();

    fabric::SimLink &phy_;
    EndpointParams params_;
    std::vector<Staged> staged;
    bool timerArmed = false;
    sim::EventQueue::EventHandle timerHandle = 0;
    Tick firstStagedAt = 0; ///< arrival of the oldest staged request

    stats::Counter packages;
    stats::Counter requests;
    stats::Counter wire_bytes;
    stats::Counter unpacked;
    stats::Average stagingTicks;
    stats::Histogram fill;
};

} // namespace mof
} // namespace lsdgnn

#endif // LSDGNN_MOF_ENDPOINT_HH
