#include "reliability.hh"

#include <algorithm>
#include <cstdio>

#include "common/flight_recorder.hh"

namespace lsdgnn {
namespace mof {

ReliableChannel::ReliableChannel(sim::EventQueue &eq,
                                 ReliableChannelParams params,
                                 DeliverFn deliver_fn,
                                 std::string name, FailFn on_fail)
    : sim::Component(eq, std::move(name)),
      params_(params),
      deliver(std::move(deliver_fn)),
      onFail(std::move(on_fail)),
      rng_(params.seed)
{
    lsd_assert(params_.window > 0, "ARQ window must be positive");
    lsd_assert(deliver, "channel needs a delivery callback");
    statGroup.addCounter("delivered", &delivered_,
                         "in-order deliveries");
    statGroup.addCounter("transmissions", &transmissions_,
                         "data packages put on the wire");
    statGroup.addCounter("retransmissions", &retransmissions_,
                         "data packages retransmitted after a timeout");
    statGroup.addCounter("acks", &ackSent, "ACK packages sent");
    statGroup.addCounter("lost", &dataLost, "data packages lost");
    statGroup.addCounter("timeouts", &timeouts, "ARQ timeouts fired");
    statGroup.addCounter("failed", &failed_,
                         "packages failed by the retry breaker");
}

Tick
ReliableChannel::serialize(std::uint32_t bytes) const
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             params_.bandwidth *
                             static_cast<double>(tick_per_s));
}

void
ReliableChannel::annotate(const char *what, double a, double b)
{
    // Always into the flight recorder (cheap, always-on) ...
    trace::FlightRecorder::instance().recordNow(what, trace_.trace_id,
                                                trace_.span_id, a, b);
    // ... and onto the channel's wall-clock track when tracing.
    if (!trace::Tracer::enabled())
        return;
    auto &tracer = trace::Tracer::instance();
    std::string args;
    if (trace_.valid())
        args = trace_.argsJson() + ",";
    char vals[64];
    std::snprintf(vals, sizeof(vals), "\"a\":%.17g,\"b\":%.17g", a, b);
    args += vals;
    tracer.instant(trace::wall_pid,
                   tracer.track(trace::wall_pid, name()), what,
                   trace::wallNow(), args);
}

void
ReliableChannel::failPackage(std::uint64_t seq, const Status &status)
{
    failed_.inc();
    if (onFail)
        onFail(seq, status);
}

void
ReliableChannel::send(std::uint32_t bytes)
{
    const std::uint64_t seq = nextSeq++;
    if (broken_) {
        // Fail fast: the breaker already declared the peer dead, so
        // queueing more traffic would only stall the caller.
        failPackage(seq, Status(StatusCode::Unavailable,
                                "channel " + name() + " is down"));
        sendBase = nextSeq; // nothing outstanding
        return;
    }
    sendQueue.push_back(Pending{seq, bytes});
    pump();
}

void
ReliableChannel::pump()
{
    while (!sendQueue.empty() && inFlight.size() < params_.window) {
        Pending pkg = sendQueue.front();
        sendQueue.pop_front();
        inFlight.push_back(pkg);
        firstTransmissions.inc();
        transmit(pkg);
    }
    if (!inFlight.empty())
        armTimer();
}

void
ReliableChannel::transmit(const Pending &pkg)
{
    transmissions_.inc();
    const Tick start = std::max(curTick(), wireFreeAt);
    wireFreeAt = start + serialize(pkg.bytes);
    const Tick arrive = wireFreeAt + params_.flight_latency;

    if (rng_.nextBool(params_.loss_probability)) {
        dataLost.inc();
        return; // vanished in flight; the timer recovers it
    }
    eventq.schedule(arrive, [this, pkg] { onDataArrival(pkg); });
}

void
ReliableChannel::onDataArrival(Pending pkg)
{
    if (broken_)
        return; // breaker tripped while this copy was in flight
    if (pkg.seq == expectedSeq) {
        ++expectedSeq;
        delivered_.inc();
        deliver(pkg.seq, pkg.bytes);
    }
    // Go-back-N: out-of-order data is dropped; either way the
    // receiver acknowledges the cumulative in-order prefix.
    sendAck(expectedSeq);
}

void
ReliableChannel::sendAck(std::uint64_t cumulative)
{
    ackSent.inc();
    if (rng_.nextBool(params_.ack_loss_probability))
        return;
    // ACKs are tiny; charge flight latency only.
    eventq.scheduleAfter(params_.flight_latency,
        [this, cumulative] { onAckArrival(cumulative); });
}

void
ReliableChannel::onAckArrival(std::uint64_t cumulative)
{
    if (broken_ || cumulative <= sendBase)
        return; // stale
    while (!inFlight.empty() && inFlight.front().seq < cumulative)
        inFlight.erase(inFlight.begin());
    sendBase = cumulative;
    timeoutStreak = 0; // forward progress resets the breaker
    if (timerArmed) {
        eventq.deschedule(timerHandle);
        timerArmed = false;
    }
    pump();
}

void
ReliableChannel::armTimer()
{
    if (timerArmed)
        return;
    timerArmed = true;
    timerHandle = eventq.scheduleAfter(params_.timeout,
                                       [this] { onTimeout(); });
}

void
ReliableChannel::onTimeout()
{
    timerArmed = false;
    if (broken_ || inFlight.empty())
        return;
    timeouts.inc();
    if (params_.max_retries > 0 &&
        ++timeoutStreak >= params_.max_retries) {
        breakChannel();
        return;
    }
    annotate("arq.timeout", static_cast<double>(timeoutStreak),
             static_cast<double>(inFlight.size()));
    // Go-back-N: retransmit the whole window.
    retransmissions_.inc(inFlight.size());
    annotate("arq.retx", static_cast<double>(inFlight.size()),
             static_cast<double>(timeoutStreak));
    for (const Pending &pkg : inFlight)
        transmit(pkg);
    armTimer();
}

void
ReliableChannel::breakChannel()
{
    broken_ = true;
    if (timerArmed) {
        eventq.deschedule(timerHandle);
        timerArmed = false;
    }
    annotate("arq.breaker",
             static_cast<double>(inFlight.size() + sendQueue.size()),
             static_cast<double>(params_.max_retries));
    trace::FlightRecorder::instance().trip("breaker:" + name());
    const Status cause(StatusCode::RemoteTimeout,
                       "channel " + name() + ": " +
                           std::to_string(params_.max_retries) +
                           " consecutive timeouts");
    // Fail everything unacknowledged, in sequence order: the window
    // first, then the not-yet-transmitted backlog.
    for (const Pending &pkg : inFlight)
        failPackage(pkg.seq, cause);
    for (const Pending &pkg : sendQueue)
        failPackage(pkg.seq, cause);
    inFlight.clear();
    sendQueue.clear();
    sendBase = nextSeq; // nothing outstanding anymore
}

} // namespace mof
} // namespace lsdgnn
