#include "reliability.hh"

#include <algorithm>

namespace lsdgnn {
namespace mof {

ReliableChannel::ReliableChannel(sim::EventQueue &eq,
                                 ReliableChannelParams params,
                                 DeliverFn deliver_fn)
    : sim::Component(eq, "mof.reliable"),
      params_(params),
      deliver(std::move(deliver_fn)),
      rng_(params.seed)
{
    lsd_assert(params_.window > 0, "ARQ window must be positive");
    lsd_assert(deliver, "channel needs a delivery callback");
    statGroup.addCounter("delivered", &delivered_,
                         "in-order deliveries");
    statGroup.addCounter("transmissions", &transmissions_,
                         "data packages put on the wire");
    statGroup.addCounter("acks", &ackSent, "ACK packages sent");
    statGroup.addCounter("lost", &dataLost, "data packages lost");
    statGroup.addCounter("timeouts", &timeouts, "ARQ timeouts fired");
}

Tick
ReliableChannel::serialize(std::uint32_t bytes) const
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             params_.bandwidth *
                             static_cast<double>(tick_per_s));
}

void
ReliableChannel::send(std::uint32_t bytes)
{
    sendQueue.push_back(Pending{nextSeq++, bytes});
    pump();
}

void
ReliableChannel::pump()
{
    while (!sendQueue.empty() && inFlight.size() < params_.window) {
        Pending pkg = sendQueue.front();
        sendQueue.pop_front();
        inFlight.push_back(pkg);
        firstTransmissions.inc();
        transmit(pkg);
    }
    if (!inFlight.empty())
        armTimer();
}

void
ReliableChannel::transmit(const Pending &pkg)
{
    transmissions_.inc();
    const Tick start = std::max(curTick(), wireFreeAt);
    wireFreeAt = start + serialize(pkg.bytes);
    const Tick arrive = wireFreeAt + params_.flight_latency;

    if (rng_.nextBool(params_.loss_probability)) {
        dataLost.inc();
        return; // vanished in flight; the timer recovers it
    }
    eventq.schedule(arrive, [this, pkg] { onDataArrival(pkg); });
}

void
ReliableChannel::onDataArrival(Pending pkg)
{
    if (pkg.seq == expectedSeq) {
        ++expectedSeq;
        delivered_.inc();
        deliver(pkg.seq, pkg.bytes);
    }
    // Go-back-N: out-of-order data is dropped; either way the
    // receiver acknowledges the cumulative in-order prefix.
    sendAck(expectedSeq);
}

void
ReliableChannel::sendAck(std::uint64_t cumulative)
{
    ackSent.inc();
    if (rng_.nextBool(params_.ack_loss_probability))
        return;
    // ACKs are tiny; charge flight latency only.
    eventq.scheduleAfter(params_.flight_latency,
        [this, cumulative] { onAckArrival(cumulative); });
}

void
ReliableChannel::onAckArrival(std::uint64_t cumulative)
{
    if (cumulative <= sendBase)
        return; // stale
    while (!inFlight.empty() && inFlight.front().seq < cumulative)
        inFlight.erase(inFlight.begin());
    sendBase = cumulative;
    if (timerArmed) {
        eventq.deschedule(timerHandle);
        timerArmed = false;
    }
    pump();
}

void
ReliableChannel::armTimer()
{
    if (timerArmed)
        return;
    timerArmed = true;
    timerHandle = eventq.scheduleAfter(params_.timeout,
                                       [this] { onTimeout(); });
}

void
ReliableChannel::onTimeout()
{
    timerArmed = false;
    if (inFlight.empty())
        return;
    timeouts.inc();
    // Go-back-N: retransmit the whole window.
    for (const Pending &pkg : inFlight)
        transmit(pkg);
    armTimer();
}

} // namespace mof
} // namespace lsdgnn
