/**
 * @file
 * MoF data-link reliability layer.
 *
 * The paper's MoF "provides data-link capability with high
 * reliability without much software overhead": the fabric is a raw
 * point-to-point link (DAC cables), so the protocol itself must
 * recover lost or corrupted packages. This is a go-back-N ARQ over
 * an event-driven lossy channel: sequence-numbered packages,
 * cumulative ACKs and a retransmission timer, delivering packages to
 * the receiver strictly in order. The tests drive it through loss
 * rates from 0 to 20% and assert exactly-once in-order delivery.
 *
 * Failure model: by default the sender retries forever (a healthy
 * fabric always recovers). With `max_retries` set, `max_retries`
 * consecutive timeouts without any ACK progress trip a circuit
 * breaker: every unacknowledged package fails through the FailFn
 * with StatusCode::RemoteTimeout, the channel reports broken(), and
 * later send() calls fail immediately with StatusCode::Unavailable.
 * This is what lets a ShardChannel declare a peer down instead of
 * stalling the sampling hop behind a dead cable.
 */

#ifndef LSDGNN_MOF_RELIABILITY_HH
#define LSDGNN_MOF_RELIABILITY_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "common/trace.hh"
#include "sim/component.hh"

namespace lsdgnn {
namespace mof {

/** Lossy-channel and ARQ parameters. */
struct ReliableChannelParams {
    /** One-way flight latency of the fabric. */
    Tick flight_latency = nanoseconds(300);
    /** Serialization bandwidth, bytes/s. */
    double bandwidth = 100e9;
    /** Probability that a data package is lost in flight. */
    double loss_probability = 0.0;
    /** Probability that an ACK is lost in flight. */
    double ack_loss_probability = 0.0;
    /** Go-back-N window size (packages). */
    std::uint32_t window = 16;
    /** Retransmission timeout. */
    Tick timeout = microseconds(5);
    /** RNG seed for loss decisions. */
    std::uint64_t seed = 1;
    /**
     * Consecutive ACK-less timeouts tolerated before the breaker
     * trips; 0 retries forever (the historical behavior).
     */
    std::uint32_t max_retries = 0;
};

/**
 * Go-back-N sender/receiver pair over one simulated lossy link.
 */
class ReliableChannel : public sim::Component
{
  public:
    /** Delivery callback: (sequence number, payload bytes). */
    using DeliverFn = std::function<void(std::uint64_t, std::uint32_t)>;

    /**
     * Failure callback: (sequence number, cause). Invoked once per
     * failed package, in sequence order, when the breaker trips
     * (RemoteTimeout) or on send() into a broken channel
     * (Unavailable). Optional; without it failures only show in
     * broken() and the `failed` counter.
     */
    using FailFn = std::function<void(std::uint64_t, const Status &)>;

    /**
     * @param name Stat-group/component name. Channels are routinely
     *        constructed per shard pair, so give each a unique name
     *        ("mof.remote.shard0.to2.req") or the StatRegistry ends
     *        up with colliding "mof.reliable" groups.
     */
    ReliableChannel(sim::EventQueue &eq, ReliableChannelParams params,
                    DeliverFn deliver,
                    std::string name = "mof.reliable",
                    FailFn on_fail = nullptr);

    /** Queue one package of @p bytes for reliable delivery. */
    void send(std::uint32_t bytes);

    /** Packages handed to send() so far. */
    std::uint64_t submitted() const { return nextSeq; }

    /** Packages delivered in order to the receiver. */
    std::uint64_t delivered() const { return delivered_.value(); }

    /** Data transmissions (first try + retries). */
    std::uint64_t transmissions() const { return transmissions_.value(); }

    /** Retransmitted packages (transmissions beyond the first). */
    std::uint64_t retransmissions() const
    {
        return retransmissions_.value();
    }

    /**
     * Attach the trace identity of the request currently driving this
     * channel; ARQ annotations (timeouts, retransmit bursts, breaker
     * trips) carry it so a Perfetto trace or flight-recorder dump
     * names the victim request. Cleared implicitly by the next call.
     */
    void setTrace(const trace::TraceContext &ctx) { trace_ = ctx; }

    /** True when every submitted package has been acknowledged. */
    bool allAcked() const { return sendBase == nextSeq; }

    /** True once the retry breaker tripped; the channel stays down. */
    bool broken() const { return broken_; }

    /** Packages failed (breaker trip + post-breaker sends). */
    std::uint64_t failedCount() const { return failed_.value(); }

  private:
    struct Pending {
        std::uint64_t seq;
        std::uint32_t bytes;
    };

    void pump();
    void transmit(const Pending &pkg);
    void onDataArrival(Pending pkg);
    void sendAck(std::uint64_t cumulative);
    void onAckArrival(std::uint64_t cumulative);
    void armTimer();
    void onTimeout();
    void breakChannel();
    void failPackage(std::uint64_t seq, const Status &status);
    Tick serialize(std::uint32_t bytes) const;
    void annotate(const char *what, double a, double b);

    ReliableChannelParams params_;
    DeliverFn deliver;
    FailFn onFail;
    Rng rng_;
    trace::TraceContext trace_;

    // Sender state.
    std::deque<Pending> sendQueue; ///< not yet transmitted
    std::vector<Pending> inFlight; ///< transmitted, unacked (window)
    std::uint64_t nextSeq = 0;
    std::uint64_t sendBase = 0;
    Tick wireFreeAt = 0;
    sim::EventQueue::EventHandle timerHandle = 0;
    bool timerArmed = false;
    std::uint32_t timeoutStreak = 0; ///< consecutive ACK-less timeouts
    bool broken_ = false;

    // Receiver state.
    std::uint64_t expectedSeq = 0;

    stats::Counter delivered_;
    stats::Counter transmissions_;
    stats::Counter firstTransmissions;
    stats::Counter retransmissions_;
    stats::Counter ackSent;
    stats::Counter dataLost;
    stats::Counter timeouts;
    stats::Counter failed_;
};

} // namespace mof
} // namespace lsdgnn

#endif // LSDGNN_MOF_RELIABILITY_HH
