/**
 * @file
 * ShardChannel: one shard's reliable packed-read path to a peer.
 *
 * The distributed sampling backend keeps one ShardChannel per remote
 * shard. Each sampling hop runs as a *round*:
 *
 *   beginRound() -> stage() remote reads -> flush() -> eq.run()
 *   -> roundFailed(slot)?
 *
 * stage() accumulates (address, bytes) reads into a RequestPacker, so
 * flush() emits MoF multi-request packages (up to 64 reads each,
 * BDI-compressed address stream — Tech 1). Every package then crosses
 * three simulated components:
 *
 *   request:   ReliableChannel ".req"  (go-back-N ARQ, lossy fabric)
 *   peer DRAM: fabric::SimLink        (the remote card's memory port)
 *   response:  ReliableChannel ".rsp" (ARQ again, data coming back)
 *
 * Failure semantics: flush() arms one deadline per round; slots still
 * unresolved when it fires are failed (late responses are ignored —
 * a round's answer is exactly-once or degraded, never duplicated).
 * When either ARQ direction exhausts its bounded retries the channel
 * marks itself down: everything unresolved fails, and later stage()
 * calls fail immediately until the owner rebuilds the channel. The
 * caller is expected to answer failed slots from a local fallback
 * (negative resampling) and count the reply as Degraded.
 *
 * Simulation concession: the functional payload does not travel
 * through the channel — the backend reads the peer's GraphShard
 * in-process and uses the channel purely as the cost/reliability
 * model, which is why stage() takes the response byte count up
 * front.
 *
 * Stat naming: each channel registers "mof.remote.shard<s>.to<p>"
 * (plus ".req"/".rsp" subgroups), so constructing many shards never
 * collides in the StatRegistry the way per-construction fixed names
 * did.
 */

#ifndef LSDGNN_MOF_SHARD_CHANNEL_HH
#define LSDGNN_MOF_SHARD_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/status.hh"
#include "common/trace.hh"
#include "fabric/sim_link.hh"
#include "mof/packer.hh"
#include "mof/reliability.hh"
#include "sim/component.hh"

namespace lsdgnn {
namespace mof {

/** Construction knobs for one shard-to-shard path. */
struct ShardChannelParams {
    /** Packing policy (MoF format, BDI on addresses). */
    PackerOptions packer{mofFormat(), true};
    /** Fabric/ARQ parameters shared by both directions. */
    ReliableChannelParams wire{};
    /**
     * The peer card's memory port the packed reads fan out to. An
     * empty name selects the catalog's local DDR4 channel.
     */
    fabric::LinkParams peer_memory{};
    /** Response package header bytes (routing, CRC, sequence). */
    std::uint32_t response_header_bytes = 16;
    /**
     * Per-round deadline: slots unresolved after this much fail.
     * Sized for a full round (every staged read answered, lost
     * packages recovered), not for one package round trip.
     */
    Tick request_timeout = microseconds(1000);
};

/**
 * Round-based packed remote-read channel between two shards.
 */
class ShardChannel : public sim::Component
{
  public:
    /** Slot handle returned by stage(), valid until beginRound(). */
    using Slot = std::uint32_t;

    ShardChannel(sim::EventQueue &eq, ShardChannelParams params,
                 std::uint32_t self_shard, std::uint32_t peer_shard);

    /**
     * Attach the trace identity of the hop driving the next round(s).
     * Call before beginRound(): each round derives a child span from
     * this context, and the ARQ sub-channels annotate their timeouts
     * and retransmissions with it.
     */
    void setTrace(const trace::TraceContext &ctx);

    /** Start a new round; previous slots become invalid. */
    void beginRound();

    /**
     * Close the current round for observability: emits one wall-clock
     * "round" slice on the channel's trace track (staged/failed/
     * retransmission counts, trace identity) plus a flight-recorder
     * event. Call after draining the event queue; cheap no-op for an
     * idle round.
     */
    void endRound();

    /**
     * Queue one read of @p bytes at @p address on the peer. Returns
     * the slot to query after the round completes. On a down channel
     * the slot is born failed.
     */
    Slot stage(std::uint64_t address, std::uint32_t bytes);

    /**
     * Pack and transmit everything staged since the last flush and
     * arm the round deadline. The owner must then drain the shared
     * EventQueue (eq.run()) before reading slot outcomes.
     */
    void flush();

    /** Whether @p slot missed its deadline / died with the channel. */
    bool
    roundFailed(Slot slot) const
    {
        lsd_assert(slot < slots_.size(), "slot out of range");
        return slots_[slot].failed;
    }

    /** Slots staged this round. */
    std::size_t stagedCount() const { return slots_.size(); }

    /** Failed slots this round. */
    std::uint64_t roundFailures() const { return roundFailures_; }

    /** True once the channel declared the peer unreachable. */
    bool down() const { return down_; }

    /** Administratively mark the peer down (fail-fast from now on). */
    void markDown();

    std::uint32_t selfShard() const { return self_; }
    std::uint32_t peerShard() const { return peer_; }

    /** Reads staged over the channel's lifetime. */
    std::uint64_t reads() const { return reads_.value(); }

    /** Request packages emitted. */
    std::uint64_t packages() const { return packages_.value(); }

    /** Reads failed (deadline, breaker, down channel). */
    std::uint64_t degradedReads() const { return degraded_.value(); }

    /** ARQ retransmissions summed over both directions. */
    std::uint64_t
    retransmissions() const
    {
        return req_.retransmissions() + rsp_.retransmissions();
    }

    /** Mean requests per emitted package (pack occupancy). */
    double packOccupancy() const { return packFill_.mean(); }

    const ReliableChannel &requestChannel() const { return req_; }
    const ReliableChannel &responseChannel() const { return rsp_; }

  private:
    struct SlotState {
        std::uint32_t bytes;
        bool failed;
        bool resolved;
    };

    /** One in-flight package: the slot range it answers. */
    struct OutPkg {
        std::uint32_t first_slot;
        std::uint32_t count;
        std::uint64_t response_bytes;
    };

    static ShardChannelParams normalize(ShardChannelParams params);
    static ReliableChannelParams wireParams(const ShardChannelParams &p,
                                            std::uint64_t seed_offset);

    void onRequestDelivered();
    void onResponseDelivered();
    void onWireFailure(const Status &cause);
    void onDeadline(std::uint64_t gen);
    void failUnresolved();

    ShardChannelParams params_;
    std::uint32_t self_;
    std::uint32_t peer_;

    RequestPacker packer_;
    fabric::SimLink peerMem_;
    ReliableChannel req_;
    ReliableChannel rsp_;

    std::vector<SlotState> slots_;
    std::uint32_t nextUnflushedSlot = 0;
    std::deque<OutPkg> reqPending_; ///< sent, awaiting req delivery
    std::deque<OutPkg> rspPending_; ///< at peer, awaiting rsp delivery
    std::uint64_t roundGen_ = 0;
    std::uint64_t roundFailures_ = 0;
    bool down_ = false;

    trace::TraceContext trace_;    ///< hop context (setTrace)
    trace::TraceContext roundCtx_; ///< per-round child span
    Tick roundWallStart_ = 0;
    std::uint64_t roundRetransBase_ = 0;
    std::uint64_t roundPkgBase_ = 0;

    stats::Counter reads_;
    stats::Counter packages_;
    stats::Counter wireBytes_;
    stats::Counter addressBytes_;
    stats::Counter rawAddressBytes_;
    stats::Counter degraded_;
    stats::Counter deadlineMisses_;
    stats::Average packFill_;
};

} // namespace mof
} // namespace lsdgnn

#endif // LSDGNN_MOF_SHARD_CHANNEL_HH
