/**
 * @file
 * ShardChannel: one shard's reliable packed-read path to a peer.
 *
 * The distributed sampling backend keeps one ShardChannel per remote
 * shard. Reads stream into the channel as the sampling engine
 * discovers them — there is no hop-synchronous "round" any more:
 *
 *   beginBatch() -> submit() reads as discovered -> completions fire
 *   out of submission order -> endBatch()
 *
 * submit() appends the read to a per-peer *staging buffer* (a
 * RequestPacker). The buffer flushes into a MoF multi-request package
 * (up to 64 reads, BDI-compressed address stream — Tech 1) when it
 * fills, when it ages past `stage_age`, or when the owner forces it
 * (flushStaged()). Because the buffer persists across sampling hops
 * and across the structure/attribute stages of a batch, reads from
 * different expansion waves pack into shared frames — this is what
 * lifts pack occupancy over the old one-flush-per-hop protocol.
 * Every package then crosses three simulated components:
 *
 *   request:   ReliableChannel ".req"  (go-back-N ARQ, lossy fabric)
 *   peer DRAM: fabric::SimLink        (the remote card's memory port)
 *   response:  ReliableChannel ".rsp" (ARQ again, data coming back)
 *
 * Completion is per-package and out of order with respect to
 * submission: when a package's response arrives (or its deadline
 * fires, or the wire breaks), exactly the slots it carries settle and
 * the CompletionFn runs, letting the owner resume only the roots that
 * were waiting on those slots.
 *
 * Failure semantics: every package arms its own deadline at flush
 * time (per-read, not per-round — a slow straggler no longer fails
 * the whole hop). A slot that settles failed stays failed; a late
 * response must not resurrect it (exactly-once per batch). When
 * either ARQ direction exhausts its bounded retries the channel marks
 * itself down: everything unsettled fails, and later submit() calls
 * return born-failed slots until the owner rebuilds the channel.
 *
 * Hedged reads: with `hedge_quantile` > 0, each package also arms a
 * hedge timer at the observed package-RTT quantile (times
 * `hedge_multiplier`, floored at `hedge_floor`). If the package is
 * still unsettled when the timer fires, its reads are re-issued — in
 * deployment against the hot-vertex-cache replica of the data, here
 * re-serialized over the same modeled wire — and the first answer
 * wins. This converts the loss-induced tail that go-back-N pays in
 * full into one extra package of traffic.
 *
 * Simulation concession: the functional payload does not travel
 * through the channel — the backend reads the peer's GraphShard
 * in-process and uses the channel purely as the cost/reliability
 * model, which is why submit() takes the response byte count up
 * front.
 *
 * Stat naming: each channel registers "mof.remote.shard<s>.to<p>"
 * (plus ".req"/".rsp" subgroups), so constructing many shards never
 * collides in the StatRegistry the way per-construction fixed names
 * did.
 */

#ifndef LSDGNN_MOF_SHARD_CHANNEL_HH
#define LSDGNN_MOF_SHARD_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/status.hh"
#include "common/trace.hh"
#include "fabric/sim_link.hh"
#include "mof/packer.hh"
#include "mof/reliability.hh"
#include "sim/component.hh"

namespace lsdgnn {
namespace mof {

/** Construction knobs for one shard-to-shard path. */
struct ShardChannelParams {
    /** Packing policy (MoF format, BDI on addresses). */
    PackerOptions packer{mofFormat(), true};
    /** Fabric/ARQ parameters shared by both directions. */
    ReliableChannelParams wire{};
    /**
     * The peer card's memory port the packed reads fan out to. An
     * empty name selects the catalog's local DDR4 channel.
     */
    fabric::LinkParams peer_memory{};
    /** Response package header bytes (routing, CRC, sequence). */
    std::uint32_t response_header_bytes = 16;
    /**
     * Per-package deadline, armed at flush: slots unsettled after
     * this much fail. Sized for several ARQ recoveries, not for one
     * package round trip.
     */
    Tick request_timeout = microseconds(1000);
    /**
     * Staging-buffer age bound: a partially filled buffer flushes
     * this long after its oldest read was submitted. Zero flushes
     * every submit (degenerate one-read packages; tests only).
     */
    Tick stage_age = microseconds(2);
    /**
     * Package-RTT quantile that arms the hedge timer; 0 disables
     * hedged reads.
     */
    double hedge_quantile = 0.0;
    /** Safety margin over the measured quantile. */
    double hedge_multiplier = 2.0;
    /** Minimum hedge delay (also used before RTTs are observed). */
    Tick hedge_floor = microseconds(25);
};

/**
 * Streaming packed remote-read channel between two shards with
 * out-of-order per-package completion.
 */
class ShardChannel : public sim::Component
{
  public:
    /** Slot handle returned by submit(), valid until beginBatch(). */
    using Slot = std::uint32_t;

    /**
     * Completion callback: the slot range [first, first+count) just
     * settled (resolved or failed — query failed()). Runs inside the
     * event queue, possibly synchronously inside submit()/flush when
     * the channel is down. Not invoked for born-failed submits.
     */
    using CompletionFn =
        std::function<void(ShardChannel &, Slot, std::uint32_t)>;

    ShardChannel(sim::EventQueue &eq, ShardChannelParams params,
                 std::uint32_t self_shard, std::uint32_t peer_shard);

    /** Install the out-of-order completion sink. */
    void setCompletion(CompletionFn fn) { completion_ = std::move(fn); }

    /**
     * Attach the trace identity of the batch driving the channel.
     * Call before beginBatch(): the batch derives a child span from
     * this context, and the ARQ sub-channels annotate their timeouts
     * and retransmissions with it.
     */
    void setTrace(const trace::TraceContext &ctx);

    /** Start a new batch; previous slots become invalid. */
    void beginBatch();

    /**
     * Close the current batch for observability: emits one wall-clock
     * "round" slice on the channel's trace track (submitted/failed/
     * hedged counts, trace identity) plus a flight-recorder event.
     * Call once the batch has settled; cheap no-op for an idle batch.
     */
    void endBatch();

    /**
     * Queue one read of @p bytes at @p address on the peer. The read
     * enters the staging buffer and transmits when the buffer fills,
     * ages out, or is force-flushed. On a down channel the slot is
     * born failed (settled immediately, no completion callback).
     */
    Slot submit(std::uint64_t address, std::uint32_t bytes);

    /** Force-flush the staging buffer (barrier mode / batch end). */
    void flushStaged();

    /** Whether @p slot has settled (resolved or failed). */
    bool
    settled(Slot slot) const
    {
        lsd_assert(slot < slots_.size(), "slot out of range");
        return slots_[slot].resolved || slots_[slot].failed;
    }

    /** Whether @p slot missed its deadline / died with the channel. */
    bool
    failed(Slot slot) const
    {
        lsd_assert(slot < slots_.size(), "slot out of range");
        return slots_[slot].failed;
    }

    /** Slots submitted this batch. */
    std::size_t submittedCount() const { return slots_.size(); }

    /** Failed slots this batch. */
    std::uint64_t batchFailures() const { return batchFailures_; }

    /** Reads transmitted but not yet settled. */
    std::uint32_t inFlightReads() const { return inflightReads_; }

    /** Reads sitting in the staging buffer, not yet transmitted. */
    std::size_t
    stagedReads() const
    {
        return packer_.pendingRequests();
    }

    /** Simulated age of the oldest staged read; 0 when empty. */
    Tick stagingAge() const;

    /** True once the channel declared the peer unreachable. */
    bool down() const { return down_; }

    /** Administratively mark the peer down (fail-fast from now on). */
    void markDown();

    std::uint32_t selfShard() const { return self_; }
    std::uint32_t peerShard() const { return peer_; }

    /** Reads submitted over the channel's lifetime. */
    std::uint64_t reads() const { return reads_.value(); }

    /** Request packages emitted. */
    std::uint64_t packages() const { return packages_.value(); }

    /** Reads failed (deadline, breaker, down channel). */
    std::uint64_t degradedReads() const { return degraded_.value(); }

    /** Hedge re-issues sent. */
    std::uint64_t hedges() const { return hedges_.value(); }

    /** Hedged packages that still resolved before their deadline. */
    std::uint64_t hedgeWins() const { return hedgeWins_.value(); }

    /** ARQ retransmissions summed over both directions. */
    std::uint64_t
    retransmissions() const
    {
        return req_.retransmissions() + rsp_.retransmissions();
    }

    /** Mean requests per emitted package (pack occupancy). */
    double packOccupancy() const { return packFill_.mean(); }

    const ReliableChannel &requestChannel() const { return req_; }
    const ReliableChannel &responseChannel() const { return rsp_; }

  private:
    struct SlotState {
        std::uint32_t bytes;
        bool failed;
        bool resolved;
    };

    /** One in-flight package: the slot range it answers. */
    struct OutPkg {
        std::uint32_t first_slot = 0;
        std::uint32_t count = 0;
        std::uint64_t response_bytes = 0;
        std::uint64_t wire_bytes = 0;
        Tick sent_at = 0;
        bool settled = false;
        bool hedged = false;
        bool deadline_armed = false;
        bool hedge_armed = false;
        sim::EventQueue::EventHandle deadline_ev = 0;
        sim::EventQueue::EventHandle hedge_ev = 0;
    };

    enum class FlushCause { Full, Age, Forced };
    enum class SettleOutcome { Resolved, DeadlineMiss, WireFailure };

    static ShardChannelParams normalize(ShardChannelParams params);
    static ReliableChannelParams wireParams(const ShardChannelParams &p,
                                            std::uint64_t seed_offset);

    void onRequestDelivered();
    void onResponseDelivered();
    void onWireFailure(const Status &cause);
    void onDeadline(std::uint32_t pkg_index, std::uint64_t gen);
    void onHedgeTimer(std::uint32_t pkg_index, std::uint64_t gen);
    void onStageAge(std::uint64_t gen);
    /** Emit staged reads as packages and put them on the wire. */
    void flushBuffer(FlushCause cause);
    /** Mark a package settled; resolve/fail its slots; notify. */
    void settlePackage(OutPkg &pkg, SettleOutcome outcome);
    Tick hedgeDelay();

    ShardChannelParams params_;
    std::uint32_t self_;
    std::uint32_t peer_;

    RequestPacker packer_;
    fabric::SimLink peerMem_;
    ReliableChannel req_;
    ReliableChannel rsp_;

    std::vector<SlotState> slots_;
    std::uint32_t nextUnflushedSlot = 0;
    std::vector<OutPkg> pkgs_; ///< this batch's packages, by index
    std::deque<std::uint32_t> reqPending_; ///< pkg idx per req send
    std::deque<std::uint32_t> rspPending_; ///< pkg idx per rsp send
    std::uint64_t batchGen_ = 0;
    std::uint64_t batchFailures_ = 0;
    std::uint32_t inflightReads_ = 0;
    Tick stageStart_ = 0; ///< tick the oldest staged read entered
    sim::EventQueue::EventHandle stageAgeEv_ = 0;
    bool stageAgeArmed_ = false;
    bool down_ = false;
    CompletionFn completion_;

    trace::TraceContext trace_;    ///< batch context (setTrace)
    trace::TraceContext batchCtx_; ///< per-batch child span
    Tick batchWallStart_ = 0;
    std::uint64_t batchRetransBase_ = 0;
    std::uint64_t batchPkgBase_ = 0;
    std::uint64_t batchHedgeBase_ = 0;

    stats::Counter reads_;
    stats::Counter packages_;
    stats::Counter wireBytes_;
    stats::Counter addressBytes_;
    stats::Counter rawAddressBytes_;
    stats::Counter degraded_;
    stats::Counter deadlineMisses_;
    stats::Counter hedges_;
    stats::Counter hedgeWins_;
    stats::Counter flushFull_;
    stats::Counter flushAge_;
    stats::Counter flushForced_;
    stats::Average packFill_;
    stats::Histogram stageAgeUs_;
    stats::Histogram rttUs_;
    stats::Histogram inflightDepth_;
};

} // namespace mof
} // namespace lsdgnn

#endif // LSDGNN_MOF_SHARD_CHANNEL_HH
