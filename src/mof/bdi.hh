/**
 * @file
 * Base-Delta-Immediate (BDI) compression.
 *
 * MoF's second technique compresses both the response data and the
 * request addresses: fine-grained graph reads mean the 64-bit address
 * stream costs as much wire as the data itself, and both streams have
 * strong value locality (addresses cluster within a partition's
 * arrays, node IDs cluster around hubs). This is a functional
 * implementation — compress() emits real bytes that decompress() can
 * restore — so the Table 6 bench measures achieved sizes rather than
 * assuming them.
 *
 * The scheme follows Pekhimenko et al.'s BDI: per fixed-size block,
 * pick the cheapest of {all-zero, one base + small deltas,
 * uncompressed} over a few base/delta widths.
 */

#ifndef LSDGNN_MOF_BDI_HH
#define LSDGNN_MOF_BDI_HH

#include <cstdint>
#include <span>
#include <vector>

namespace lsdgnn {
namespace mof {

/** BDI configuration. */
struct BdiParams {
    /** Word width of the uncompressed stream (4 or 8 bytes). */
    std::uint32_t word_bytes = 8;
    /** Words per compression block. */
    std::uint32_t block_words = 8;
};

/** One compressed block's encoding choice (1-byte tag on the wire). */
enum class BdiScheme : std::uint8_t {
    Zeros = 0,        ///< all words zero: tag only
    Base1 = 1,        ///< base + 1-byte deltas
    Base2 = 2,        ///< base + 2-byte deltas
    Base4 = 3,        ///< base + 4-byte deltas
    Uncompressed = 4, ///< tag + raw words
};

/** Compressed output plus accounting. */
struct BdiResult {
    std::vector<std::uint8_t> bytes;
    std::uint64_t input_bytes = 0;

    double
    ratio() const
    {
        return bytes.empty() ? 0.0
            : static_cast<double>(input_bytes) /
              static_cast<double>(bytes.size());
    }

    /** Fraction of input bytes eliminated. */
    double
    saving() const
    {
        return input_bytes == 0 ? 0.0
            : 1.0 - static_cast<double>(bytes.size()) /
                    static_cast<double>(input_bytes);
    }
};

/**
 * Compress a word stream.
 *
 * @param words Input values (each holds one word; only the low
 *        word_bytes of each entry are significant).
 * @param params Block/word geometry.
 */
BdiResult bdiCompress(std::span<const std::uint64_t> words,
                      const BdiParams &params = BdiParams{});

/**
 * Decompress a stream produced by bdiCompress.
 *
 * @return The original word sequence.
 */
std::vector<std::uint64_t>
bdiDecompress(std::span<const std::uint8_t> bytes,
              const BdiParams &params = BdiParams{});

} // namespace mof
} // namespace lsdgnn

#endif // LSDGNN_MOF_BDI_HH
