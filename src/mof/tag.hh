/**
 * @file
 * 128-bit request context tags.
 *
 * AxE's Tech-3 replaces thread context with a 128-bit tag embedded in
 * every memory request/response: instead of parking a thread per
 * outstanding request, the hardware carries just enough context to
 * route the response and re-establish ordering at the scoreboards.
 * The field layout below covers everything the GetNeighbor /
 * GetSample / GetAttribute pipeline needs to identify a response.
 */

#ifndef LSDGNN_MOF_TAG_HH
#define LSDGNN_MOF_TAG_HH

#include <cstdint>

#include "common/logging.hh"

namespace lsdgnn {
namespace mof {

/** Request classes distinguished by the load unit. */
enum class RequestKind : std::uint8_t {
    Degree = 0,    ///< CSR offsets read
    Neighbor = 1,  ///< adjacency slot read
    Attribute = 2, ///< feature vector read
    Command = 3,   ///< control traffic
};

/**
 * Packed 128-bit context tag.
 *
 * Layout (low word):
 *   [ 7:0]  AxE core id
 *   [15:8]  hop index
 *   [17:16] request kind
 *   [47:18] root index within the batch (30 bits)
 *   [63:50] neighbor index within the root's fan-out (14 bits)
 * High word: 48-bit batch sequence number + 16-bit user bits.
 */
class ContextTag
{
  public:
    ContextTag() = default;

    ContextTag(std::uint8_t core, std::uint8_t hop, RequestKind kind,
               std::uint32_t root_index, std::uint16_t neighbor_index,
               std::uint64_t batch_seq, std::uint16_t user = 0)
    {
        lsd_assert(root_index < (1u << 30), "root index field overflow");
        lsd_assert(neighbor_index < (1u << 14),
                   "neighbor index field overflow");
        lsd_assert(batch_seq < (1ull << 48), "batch sequence overflow");
        lo = static_cast<std::uint64_t>(core) |
             (static_cast<std::uint64_t>(hop) << 8) |
             (static_cast<std::uint64_t>(kind) << 16) |
             (static_cast<std::uint64_t>(root_index) << 18) |
             (static_cast<std::uint64_t>(neighbor_index) << 50);
        hi = batch_seq | (static_cast<std::uint64_t>(user) << 48);
    }

    std::uint8_t core() const { return static_cast<std::uint8_t>(lo); }
    std::uint8_t hop() const
    {
        return static_cast<std::uint8_t>(lo >> 8);
    }
    RequestKind kind() const
    {
        return static_cast<RequestKind>((lo >> 16) & 0x3);
    }
    std::uint32_t rootIndex() const
    {
        return static_cast<std::uint32_t>((lo >> 18) & 0x3fffffff);
    }
    std::uint16_t neighborIndex() const
    {
        return static_cast<std::uint16_t>((lo >> 50) & 0x3fff);
    }
    std::uint64_t batchSeq() const { return hi & 0xffffffffffffull; }
    std::uint16_t user() const
    {
        return static_cast<std::uint16_t>(hi >> 48);
    }

    std::uint64_t rawLo() const { return lo; }
    std::uint64_t rawHi() const { return hi; }

    bool
    operator==(const ContextTag &o) const
    {
        return lo == o.lo && hi == o.hi;
    }

    /** Tag bytes on the wire (the "128-bit tag" of the paper). */
    static constexpr std::uint32_t wire_bytes = 16;

  private:
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
};

} // namespace mof
} // namespace lsdgnn

#endif // LSDGNN_MOF_TAG_HH
