#include "shard_channel.hh"

#include <algorithm>
#include <string>

#include "common/flight_recorder.hh"

namespace lsdgnn {
namespace mof {

namespace {

std::string
channelName(std::uint32_t self, std::uint32_t peer)
{
    return "mof.remote.shard" + std::to_string(self) + ".to" +
           std::to_string(peer);
}

} // namespace

ShardChannelParams
ShardChannel::normalize(ShardChannelParams params)
{
    if (params.peer_memory.name.empty())
        params.peer_memory =
            fabric::catalog::localDdr4Channel().params();
    return params;
}

ReliableChannelParams
ShardChannel::wireParams(const ShardChannelParams &p,
                         std::uint64_t seed_offset)
{
    ReliableChannelParams wire = p.wire;
    wire.seed += seed_offset;
    return wire;
}

ShardChannel::ShardChannel(sim::EventQueue &eq,
                           ShardChannelParams params,
                           std::uint32_t self_shard,
                           std::uint32_t peer_shard)
    : sim::Component(eq, channelName(self_shard, peer_shard)),
      params_(normalize(std::move(params))),
      self_(self_shard),
      peer_(peer_shard),
      packer_(params_.packer),
      peerMem_(eq,
               [this] {
                   fabric::LinkParams mem = params_.peer_memory;
                   mem.name = name() + ".mem";
                   return mem;
               }()),
      req_(eq, wireParams(params_, 0),
           [this](std::uint64_t, std::uint32_t) {
               onRequestDelivered();
           },
           name() + ".req",
           [this](std::uint64_t, const Status &cause) {
               onWireFailure(cause);
           }),
      rsp_(eq, wireParams(params_, 1),
           [this](std::uint64_t, std::uint32_t) {
               onResponseDelivered();
           },
           name() + ".rsp",
           [this](std::uint64_t, const Status &cause) {
               onWireFailure(cause);
           }),
      stageAgeUs_(0.0, 32.0, 64),
      rttUs_(0.0, 512.0, 64),
      inflightDepth_(0.0, 4096.0, 64)
{
    lsd_assert(self_ != peer_, "shard channel to itself");
    statGroup.addCounter("reads", &reads_, "remote reads submitted");
    statGroup.addCounter("packages", &packages_,
                         "request packages emitted");
    statGroup.addCounter("wire_bytes", &wireBytes_,
                         "request-direction header+address bytes");
    statGroup.addCounter("address_bytes", &addressBytes_,
                         "address bytes after BDI compression");
    statGroup.addCounter("raw_address_bytes", &rawAddressBytes_,
                         "address bytes before compression");
    statGroup.addCounter("degraded", &degraded_,
                         "reads failed (deadline/breaker/down)");
    statGroup.addCounter("deadline_misses", &deadlineMisses_,
                         "reads failed by their package deadline");
    statGroup.addCounter("hedges", &hedges_,
                         "hedge re-issues of slow packages");
    statGroup.addCounter("hedge_wins", &hedgeWins_,
                         "hedged packages that still resolved");
    statGroup.addCounter("flush_full", &flushFull_,
                         "staging-buffer flushes at full occupancy");
    statGroup.addCounter("flush_age", &flushAge_,
                         "staging-buffer flushes by the age bound");
    statGroup.addCounter("flush_forced", &flushForced_,
                         "staging-buffer flushes forced by the owner");
    statGroup.addAverage("pack_fill", &packFill_,
                         "requests per emitted package (max 64)");
    statGroup.addHistogram("stage_age_us", &stageAgeUs_,
                           "staging-buffer age at flush (us)");
    statGroup.addHistogram("rtt_us", &rttUs_,
                           "package submit-to-resolve RTT (us)");
    statGroup.addHistogram("inflight_reads", &inflightDepth_,
                           "in-flight reads sampled at each flush");
}

void
ShardChannel::setTrace(const trace::TraceContext &ctx)
{
    trace_ = ctx;
}

void
ShardChannel::beginBatch()
{
    lsd_assert(packer_.pendingRequests() == 0,
               "beginBatch with staged requests");
    lsd_assert(inflightReads_ == 0,
               "beginBatch with reads in flight");
    ++batchGen_;
    slots_.clear();
    pkgs_.clear();
    nextUnflushedSlot = 0;
    batchFailures_ = 0;
    reqPending_.clear();
    rspPending_.clear();
    stageAgeArmed_ = false;

    batchWallStart_ = trace::wallNow();
    batchRetransBase_ = retransmissions();
    batchPkgBase_ = packages();
    batchHedgeBase_ = hedges();
    batchCtx_ =
        trace_.valid() ? trace_.child() : trace::TraceContext{};
    req_.setTrace(batchCtx_);
    rsp_.setTrace(batchCtx_);
}

void
ShardChannel::endBatch()
{
    const std::uint64_t retrans = retransmissions() - batchRetransBase_;
    if (slots_.empty() && retrans == 0)
        return; // idle batch: nothing worth a slice
    trace::FlightRecorder::instance().recordNow(
        "mof.batch", batchCtx_.trace_id, batchCtx_.span_id,
        static_cast<double>(slots_.size()),
        static_cast<double>(batchFailures_));
    if (!trace::Tracer::enabled())
        return;
    auto &tracer = trace::Tracer::instance();
    std::string args;
    if (batchCtx_.valid())
        args = batchCtx_.argsJson() + ",";
    args += "\"submitted\":" + std::to_string(slots_.size()) +
            ",\"failed\":" + std::to_string(batchFailures_) +
            ",\"packages\":" +
            std::to_string(packages() - batchPkgBase_) +
            ",\"hedges\":" +
            std::to_string(hedges() - batchHedgeBase_) +
            ",\"retransmissions\":" + std::to_string(retrans) +
            ",\"down\":" + (down_ ? "true" : "false");
    const Tick now = trace::wallNow();
    tracer.complete(trace::wall_pid,
                    tracer.track(trace::wall_pid, name()), "batch",
                    batchWallStart_, now - batchWallStart_, args);
}

void
ShardChannel::markDown()
{
    down_ = true;
    trace::FlightRecorder::instance().recordNow(
        "mof.markdown", batchCtx_.trace_id, batchCtx_.span_id,
        static_cast<double>(peer_));
}

Tick
ShardChannel::stagingAge() const
{
    return packer_.pendingRequests() == 0 ? 0
                                          : curTick() - stageStart_;
}

ShardChannel::Slot
ShardChannel::submit(std::uint64_t address, std::uint32_t bytes)
{
    const Slot slot = static_cast<Slot>(slots_.size());
    reads_.inc();
    if (down_) {
        slots_.push_back(SlotState{bytes, true, false});
        degraded_.inc();
        ++batchFailures_;
        return slot;
    }
    slots_.push_back(SlotState{bytes, false, false});
    packer_.add(ReadRequest{address, bytes, ContextTag{}});
    if (packer_.pendingRequests() == 1) {
        stageStart_ = curTick();
        if (params_.stage_age > 0) {
            stageAgeEv_ = eventq.scheduleAfter(
                params_.stage_age, [this, gen = batchGen_] {
                    onStageAge(gen);
                });
            stageAgeArmed_ = true;
        }
    }
    if (params_.stage_age == 0 ||
        packer_.pendingRequests() >= params_.packer.format.max_requests)
        flushBuffer(params_.stage_age == 0 ? FlushCause::Forced
                                           : FlushCause::Full);
    return slot;
}

void
ShardChannel::flushStaged()
{
    flushBuffer(FlushCause::Forced);
}

void
ShardChannel::onStageAge(std::uint64_t gen)
{
    if (gen != batchGen_)
        return;
    stageAgeArmed_ = false;
    flushBuffer(FlushCause::Age);
}

Tick
ShardChannel::hedgeDelay()
{
    Tick delay = params_.hedge_floor;
    // Quantile-driven: once enough package RTTs are on record, a
    // read that outlives multiplier x the q-quantile is hedged.
    if (rttUs_.samples() >= 32) {
        const double us =
            rttUs_.percentile(params_.hedge_quantile) *
            params_.hedge_multiplier;
        delay = std::max(delay, microseconds(us));
    }
    return delay;
}

void
ShardChannel::flushBuffer(FlushCause cause)
{
    if (packer_.pendingRequests() == 0 || down_)
        return;
    if (stageAgeArmed_) {
        eventq.deschedule(stageAgeEv_);
        stageAgeArmed_ = false;
    }
    switch (cause) {
    case FlushCause::Full:
        flushFull_.inc();
        break;
    case FlushCause::Age:
        flushAge_.inc();
        break;
    case FlushCause::Forced:
        flushForced_.inc();
        break;
    }
    stageAgeUs_.sample(
        static_cast<double>(curTick() - stageStart_) / 1e6);
    const Tick hedge_after =
        params_.hedge_quantile > 0.0 ? hedgeDelay() : 0;

    const std::vector<Package> flushed = packer_.flush();
    for (const Package &pkg : flushed) {
        const auto idx = static_cast<std::uint32_t>(pkgs_.size());
        OutPkg out;
        out.first_slot = nextUnflushedSlot;
        out.count = static_cast<std::uint32_t>(pkg.requests.size());
        out.wire_bytes = pkg.wireBytes();
        out.sent_at = curTick();
        for (const ReadRequest &req : pkg.requests)
            out.response_bytes += req.bytes;
        nextUnflushedSlot += out.count;
        inflightReads_ += out.count;

        packages_.inc();
        packFill_.sample(static_cast<double>(out.count));
        wireBytes_.inc(pkg.wireBytes());
        addressBytes_.inc(pkg.address_bytes);
        rawAddressBytes_.inc(pkg.raw_address_bytes);

        // Push the ledger entry before send(): a broken channel
        // fails synchronously through onWireFailure, which must see
        // this package as unanswered.
        pkgs_.push_back(out);
        reqPending_.push_back(idx);
        req_.send(static_cast<std::uint32_t>(pkg.wireBytes()));
        if (down_)
            break; // the failure path already settled everything
        OutPkg &live = pkgs_[idx];
        live.deadline_ev = eventq.scheduleAfter(
            params_.request_timeout,
            [this, idx, gen = batchGen_] { onDeadline(idx, gen); });
        live.deadline_armed = true;
        if (hedge_after > 0) {
            live.hedge_ev = eventq.scheduleAfter(
                hedge_after, [this, idx, gen = batchGen_] {
                    onHedgeTimer(idx, gen);
                });
            live.hedge_armed = true;
        }
    }
    if (!down_)
        inflightDepth_.sample(static_cast<double>(inflightReads_));
}

void
ShardChannel::onRequestDelivered()
{
    if (down_ || reqPending_.empty())
        return; // a broken channel already settled its slots
    const std::uint32_t idx = reqPending_.front();
    reqPending_.pop_front();
    // The peer fans the packed reads out to its memory channel; one
    // aggregate access stands in for the per-request stream (the
    // response package is what crosses the fabric back).
    const std::uint64_t bytes =
        params_.response_header_bytes + pkgs_[idx].response_bytes;
    const std::uint64_t gen = batchGen_;
    peerMem_.request(bytes, 0, [this, idx, bytes, gen] {
        if (gen != batchGen_ || down_)
            return;
        rspPending_.push_back(idx);
        rsp_.send(static_cast<std::uint32_t>(bytes));
    });
}

void
ShardChannel::onResponseDelivered()
{
    if (down_ || rspPending_.empty())
        return;
    const std::uint32_t idx = rspPending_.front();
    rspPending_.pop_front();
    OutPkg &pkg = pkgs_[idx];
    // A package the deadline already failed stays failed: its reads
    // were answered from the fallback, so a late (or duplicate
    // hedged) response must not resurrect them.
    if (pkg.settled)
        return;
    rttUs_.sample(static_cast<double>(curTick() - pkg.sent_at) / 1e6);
    if (pkg.hedged)
        hedgeWins_.inc();
    settlePackage(pkg, SettleOutcome::Resolved);
}

void
ShardChannel::onDeadline(std::uint32_t pkg_index, std::uint64_t gen)
{
    if (gen != batchGen_ || down_)
        return;
    OutPkg &pkg = pkgs_[pkg_index];
    pkg.deadline_armed = false;
    if (pkg.settled)
        return;
    trace::FlightRecorder::instance().recordNow(
        "mof.deadline", batchCtx_.trace_id, batchCtx_.span_id,
        static_cast<double>(pkg.count),
        static_cast<double>(slots_.size()));
    settlePackage(pkg, SettleOutcome::DeadlineMiss);
}

void
ShardChannel::onHedgeTimer(std::uint32_t pkg_index, std::uint64_t gen)
{
    if (gen != batchGen_ || down_)
        return;
    OutPkg &pkg = pkgs_[pkg_index];
    pkg.hedge_armed = false;
    if (pkg.settled)
        return;
    // Re-issue the package's reads — in deployment against the
    // hot-vertex-cache replica holding the same rows, here over the
    // same modeled wire — and let the first answer settle the slots.
    pkg.hedged = true;
    hedges_.inc();
    wireBytes_.inc(pkg.wire_bytes);
    reqPending_.push_back(pkg_index);
    req_.send(static_cast<std::uint32_t>(pkg.wire_bytes));
}

void
ShardChannel::settlePackage(OutPkg &pkg, SettleOutcome outcome)
{
    pkg.settled = true;
    if (pkg.deadline_armed) {
        eventq.deschedule(pkg.deadline_ev);
        pkg.deadline_armed = false;
    }
    if (pkg.hedge_armed) {
        eventq.deschedule(pkg.hedge_ev);
        pkg.hedge_armed = false;
    }
    for (std::uint32_t i = 0; i < pkg.count; ++i) {
        SlotState &slot = slots_[pkg.first_slot + i];
        if (slot.resolved || slot.failed)
            continue;
        if (outcome == SettleOutcome::Resolved) {
            slot.resolved = true;
        } else {
            slot.failed = true;
            degraded_.inc();
            if (outcome == SettleOutcome::DeadlineMiss)
                deadlineMisses_.inc();
            ++batchFailures_;
        }
    }
    lsd_assert(inflightReads_ >= pkg.count, "in-flight underflow");
    inflightReads_ -= pkg.count;
    if (completion_)
        completion_(*this, pkg.first_slot, pkg.count);
}

void
ShardChannel::onWireFailure(const Status &cause)
{
    (void)cause;
    down_ = true;
    if (stageAgeArmed_) {
        eventq.deschedule(stageAgeEv_);
        stageAgeArmed_ = false;
    }
    reqPending_.clear();
    rspPending_.clear();
    // Staged-but-unflushed reads die with the wire too: drain the
    // packer and fail the tail range [nextUnflushedSlot, end).
    (void)packer_.flush();
    const std::uint32_t tail_first = nextUnflushedSlot;
    const auto tail_end = static_cast<std::uint32_t>(slots_.size());
    nextUnflushedSlot = tail_end;
    for (std::size_t i = 0; i < pkgs_.size(); ++i) {
        OutPkg &pkg = pkgs_[i];
        if (!pkg.settled)
            settlePackage(pkg, SettleOutcome::WireFailure);
    }
    std::uint32_t tail_failed = 0;
    for (std::uint32_t s = tail_first; s < tail_end; ++s) {
        SlotState &slot = slots_[s];
        if (slot.resolved || slot.failed)
            continue;
        slot.failed = true;
        degraded_.inc();
        ++batchFailures_;
        ++tail_failed;
    }
    if (tail_failed > 0 && completion_)
        completion_(*this, tail_first, tail_end - tail_first);
}

} // namespace mof
} // namespace lsdgnn
