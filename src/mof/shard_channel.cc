#include "shard_channel.hh"

#include <string>

#include "common/flight_recorder.hh"

namespace lsdgnn {
namespace mof {

namespace {

std::string
channelName(std::uint32_t self, std::uint32_t peer)
{
    return "mof.remote.shard" + std::to_string(self) + ".to" +
           std::to_string(peer);
}

} // namespace

ShardChannelParams
ShardChannel::normalize(ShardChannelParams params)
{
    if (params.peer_memory.name.empty())
        params.peer_memory =
            fabric::catalog::localDdr4Channel().params();
    return params;
}

ReliableChannelParams
ShardChannel::wireParams(const ShardChannelParams &p,
                         std::uint64_t seed_offset)
{
    ReliableChannelParams wire = p.wire;
    wire.seed += seed_offset;
    return wire;
}

ShardChannel::ShardChannel(sim::EventQueue &eq,
                           ShardChannelParams params,
                           std::uint32_t self_shard,
                           std::uint32_t peer_shard)
    : sim::Component(eq, channelName(self_shard, peer_shard)),
      params_(normalize(std::move(params))),
      self_(self_shard),
      peer_(peer_shard),
      packer_(params_.packer),
      peerMem_(eq,
               [this] {
                   fabric::LinkParams mem = params_.peer_memory;
                   mem.name = name() + ".mem";
                   return mem;
               }()),
      req_(eq, wireParams(params_, 0),
           [this](std::uint64_t, std::uint32_t) {
               onRequestDelivered();
           },
           name() + ".req",
           [this](std::uint64_t, const Status &cause) {
               onWireFailure(cause);
           }),
      rsp_(eq, wireParams(params_, 1),
           [this](std::uint64_t, std::uint32_t) {
               onResponseDelivered();
           },
           name() + ".rsp",
           [this](std::uint64_t, const Status &cause) {
               onWireFailure(cause);
           })
{
    lsd_assert(self_ != peer_, "shard channel to itself");
    statGroup.addCounter("reads", &reads_, "remote reads staged");
    statGroup.addCounter("packages", &packages_,
                         "request packages emitted");
    statGroup.addCounter("wire_bytes", &wireBytes_,
                         "request-direction header+address bytes");
    statGroup.addCounter("address_bytes", &addressBytes_,
                         "address bytes after BDI compression");
    statGroup.addCounter("raw_address_bytes", &rawAddressBytes_,
                         "address bytes before compression");
    statGroup.addCounter("degraded", &degraded_,
                         "reads failed (deadline/breaker/down)");
    statGroup.addCounter("deadline_misses", &deadlineMisses_,
                         "reads failed by the round deadline");
    statGroup.addAverage("pack_fill", &packFill_,
                         "requests per emitted package (max 64)");
}

void
ShardChannel::setTrace(const trace::TraceContext &ctx)
{
    trace_ = ctx;
}

void
ShardChannel::beginRound()
{
    lsd_assert(packer_.pendingRequests() == 0,
               "beginRound with unflushed requests");
    ++roundGen_;
    slots_.clear();
    nextUnflushedSlot = 0;
    roundFailures_ = 0;
    reqPending_.clear();
    rspPending_.clear();

    roundWallStart_ = trace::wallNow();
    roundRetransBase_ = retransmissions();
    roundPkgBase_ = packages();
    roundCtx_ =
        trace_.valid() ? trace_.child() : trace::TraceContext{};
    req_.setTrace(roundCtx_);
    rsp_.setTrace(roundCtx_);
}

void
ShardChannel::endRound()
{
    const std::uint64_t retrans = retransmissions() - roundRetransBase_;
    if (slots_.empty() && retrans == 0)
        return; // idle round: nothing worth a slice
    trace::FlightRecorder::instance().recordNow(
        "mof.round", roundCtx_.trace_id, roundCtx_.span_id,
        static_cast<double>(slots_.size()),
        static_cast<double>(roundFailures_));
    if (!trace::Tracer::enabled())
        return;
    auto &tracer = trace::Tracer::instance();
    std::string args;
    if (roundCtx_.valid())
        args = roundCtx_.argsJson() + ",";
    args += "\"staged\":" + std::to_string(slots_.size()) +
            ",\"failed\":" + std::to_string(roundFailures_) +
            ",\"packages\":" +
            std::to_string(packages() - roundPkgBase_) +
            ",\"retransmissions\":" + std::to_string(retrans) +
            ",\"down\":" + (down_ ? "true" : "false");
    const Tick now = trace::wallNow();
    tracer.complete(trace::wall_pid,
                    tracer.track(trace::wall_pid, name()), "round",
                    roundWallStart_, now - roundWallStart_, args);
}

void
ShardChannel::markDown()
{
    down_ = true;
    trace::FlightRecorder::instance().recordNow(
        "mof.markdown", roundCtx_.trace_id, roundCtx_.span_id,
        static_cast<double>(peer_));
}

ShardChannel::Slot
ShardChannel::stage(std::uint64_t address, std::uint32_t bytes)
{
    const Slot slot = static_cast<Slot>(slots_.size());
    reads_.inc();
    if (down_) {
        slots_.push_back(SlotState{bytes, true, false});
        degraded_.inc();
        ++roundFailures_;
        return slot;
    }
    slots_.push_back(SlotState{bytes, false, false});
    packer_.add(ReadRequest{address, bytes, ContextTag{}});
    return slot;
}

void
ShardChannel::flush()
{
    if (packer_.pendingRequests() == 0)
        return;
    const std::vector<Package> pkgs = packer_.flush();
    for (const Package &pkg : pkgs) {
        OutPkg out;
        out.first_slot = nextUnflushedSlot;
        out.count = static_cast<std::uint32_t>(pkg.requests.size());
        out.response_bytes = 0;
        for (const ReadRequest &req : pkg.requests)
            out.response_bytes += req.bytes;
        nextUnflushedSlot += out.count;

        packages_.inc();
        packFill_.sample(static_cast<double>(out.count));
        wireBytes_.inc(pkg.wireBytes());
        addressBytes_.inc(pkg.address_bytes);
        rawAddressBytes_.inc(pkg.raw_address_bytes);

        // Push the ledger entry before send(): a broken channel
        // fails synchronously through onWireFailure, which must see
        // this package as unanswered.
        reqPending_.push_back(out);
        req_.send(static_cast<std::uint32_t>(pkg.wireBytes()));
        if (down_)
            break; // the failure path already failed every slot
    }
    if (!down_)
        eventq.scheduleAfter(params_.request_timeout,
                             [this, gen = roundGen_] {
                                 onDeadline(gen);
                             });
}

void
ShardChannel::onRequestDelivered()
{
    if (down_ || reqPending_.empty())
        return; // a failed round already settled its slots
    const OutPkg pkg = reqPending_.front();
    reqPending_.pop_front();
    // The peer fans the packed reads out to its memory channel; one
    // aggregate access stands in for the per-request stream (the
    // response package is what crosses the fabric back).
    const std::uint64_t bytes =
        params_.response_header_bytes + pkg.response_bytes;
    const std::uint64_t gen = roundGen_;
    peerMem_.request(bytes, 0, [this, pkg, bytes, gen] {
        if (gen != roundGen_ || down_)
            return;
        rspPending_.push_back(pkg);
        rsp_.send(static_cast<std::uint32_t>(bytes));
    });
}

void
ShardChannel::onResponseDelivered()
{
    if (down_ || rspPending_.empty())
        return;
    const OutPkg pkg = rspPending_.front();
    rspPending_.pop_front();
    for (std::uint32_t i = 0; i < pkg.count; ++i) {
        SlotState &slot = slots_[pkg.first_slot + i];
        // A slot the deadline already failed stays failed: the round
        // answered it from the fallback, so a late response must not
        // resurrect it (exactly-once per round).
        if (!slot.failed)
            slot.resolved = true;
    }
}

void
ShardChannel::onDeadline(std::uint64_t gen)
{
    if (gen != roundGen_ || down_)
        return;
    std::uint64_t missed = 0;
    for (SlotState &slot : slots_) {
        if (slot.resolved || slot.failed)
            continue;
        slot.failed = true;
        degraded_.inc();
        deadlineMisses_.inc();
        ++roundFailures_;
        ++missed;
    }
    if (missed > 0)
        trace::FlightRecorder::instance().recordNow(
            "mof.deadline", roundCtx_.trace_id, roundCtx_.span_id,
            static_cast<double>(missed),
            static_cast<double>(slots_.size()));
}

void
ShardChannel::onWireFailure(const Status &cause)
{
    (void)cause;
    down_ = true;
    failUnresolved();
    reqPending_.clear();
    rspPending_.clear();
}

void
ShardChannel::failUnresolved()
{
    for (SlotState &slot : slots_) {
        if (slot.resolved || slot.failed)
            continue;
        slot.failed = true;
        degraded_.inc();
        ++roundFailures_;
    }
}

} // namespace mof
} // namespace lsdgnn
