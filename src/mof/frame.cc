#include "frame.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace mof {

FrameFormat
genzFormat()
{
    // GEN-Z-style package: 50-byte header (routing, OpCode, R-Key,
    // PCRC/ECRC) and full 64-bit addresses; the multi-read op packs
    // only a couple of reads per package in practice.
    return FrameFormat{"genz", 50, 8, 2};
}

FrameFormat
mofFormat()
{
    // MoF: 32-byte header amortized over up to 64 requests; addresses
    // are 32-bit offsets into a pre-registered segment.
    return FrameFormat{"mof", 32, 4, 64};
}

double
PackageBreakdown::headerOverhead() const
{
    const auto total = totalBytes();
    return total == 0 ? 0.0
        : static_cast<double>(header_bytes) / static_cast<double>(total);
}

double
PackageBreakdown::addressOverhead() const
{
    const auto total = totalBytes();
    return total == 0 ? 0.0
        : static_cast<double>(address_bytes) /
          static_cast<double>(total);
}

double
PackageBreakdown::dataUtilization() const
{
    const auto total = totalBytes();
    return total == 0 ? 0.0
        : static_cast<double>(data_bytes) / static_cast<double>(total);
}

PackageBreakdown
packageBreakdown(const FrameFormat &format, std::uint64_t num_requests,
                 std::uint64_t request_bytes)
{
    lsd_assert(format.max_requests > 0, "format must carry requests");
    PackageBreakdown b;
    b.packages = (num_requests + format.max_requests - 1) /
        format.max_requests;
    b.header_bytes = b.packages * format.header_bytes;
    b.address_bytes = num_requests * format.addr_bytes_per_request;
    b.data_bytes = num_requests * request_bytes;
    return b;
}

} // namespace mof
} // namespace lsdgnn
