/**
 * @file
 * Memory-over-Fabric frame formats.
 *
 * MoF's first technique is multi-request packing: where a GEN-Z-style
 * package carries very few read requests, one MoF package carries up
 * to 64, amortizing the package header across them and shrinking each
 * request's address field to a 32-bit segment offset (the endpoints
 * register base addresses out of band). FrameFormat captures the
 * byte-level layout, and packageBreakdown() reproduces the
 * header/address/data accounting of Table 5.
 */

#ifndef LSDGNN_MOF_FRAME_HH
#define LSDGNN_MOF_FRAME_HH

#include <cstdint>
#include <vector>

namespace lsdgnn {
namespace mof {

/** Byte-level layout of one fabric package format. */
struct FrameFormat {
    const char *name;
    /** Package header bytes (routing, type, CRC, sequence). */
    std::uint32_t header_bytes;
    /** Address field bytes per packed request. */
    std::uint32_t addr_bytes_per_request;
    /** Maximum read requests one package may carry. */
    std::uint32_t max_requests;
};

/** GEN-Z-style multi-read package (the paper's comparison point). */
FrameFormat genzFormat();

/** The paper's MoF package: 64 requests, 32-bit segment offsets. */
FrameFormat mofFormat();

/** Byte accounting for a sequence of packages (one Table 5 row). */
struct PackageBreakdown {
    std::uint64_t packages = 0;
    std::uint64_t header_bytes = 0;
    std::uint64_t address_bytes = 0;
    std::uint64_t data_bytes = 0;

    std::uint64_t
    totalBytes() const
    {
        return header_bytes + address_bytes + data_bytes;
    }

    double headerOverhead() const;
    double addressOverhead() const;
    double dataUtilization() const;
};

/**
 * Account for sending @p num_requests reads of @p request_bytes each
 * using @p format.
 *
 * The data bytes ride in the response packages; following the paper's
 * Table 5 accounting, header and address cost is charged once per
 * request package and data fills the same package stream.
 */
PackageBreakdown packageBreakdown(const FrameFormat &format,
                                  std::uint64_t num_requests,
                                  std::uint64_t request_bytes);

} // namespace mof
} // namespace lsdgnn

#endif // LSDGNN_MOF_FRAME_HH
