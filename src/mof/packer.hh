/**
 * @file
 * MoF request packer: batches outstanding read requests into
 * multi-request packages with optional BDI compression of the address
 * stream and (on the response path) of the data stream.
 *
 * This is the functional heart of the MoF endpoint: the AxE load unit
 * hands it (address, length, tag) triples, and flush() emits packages
 * whose byte accounting the Table 5/6 benches report and whose
 * effective per-request overhead feeds the fabric link parameters.
 */

#ifndef LSDGNN_MOF_PACKER_HH
#define LSDGNN_MOF_PACKER_HH

#include <cstdint>
#include <vector>

#include "mof/bdi.hh"
#include "mof/frame.hh"
#include "mof/tag.hh"

namespace lsdgnn {
namespace mof {

/** One read request waiting to be packed. */
struct ReadRequest {
    std::uint64_t address;
    std::uint32_t bytes;
    ContextTag tag;
};

/** One emitted package with its byte accounting. */
struct Package {
    std::vector<ReadRequest> requests;
    /** Header bytes on the wire. */
    std::uint64_t header_bytes = 0;
    /** Address field bytes after (optional) compression. */
    std::uint64_t address_bytes = 0;
    /** Uncompressed address bytes (for reporting compression wins). */
    std::uint64_t raw_address_bytes = 0;

    std::uint64_t
    wireBytes() const
    {
        return header_bytes + address_bytes;
    }
};

/** Options for the packer. */
struct PackerOptions {
    FrameFormat format = mofFormat();
    /** BDI-compress the address fields within each package. */
    bool compress_addresses = false;
};

/**
 * Accumulates requests and flushes them into packages.
 */
class RequestPacker
{
  public:
    explicit RequestPacker(PackerOptions opts = PackerOptions{});

    /** Queue one request. */
    void add(ReadRequest req);

    std::size_t pendingRequests() const { return pending.size(); }

    /**
     * Pack all pending requests into packages and clear the queue.
     */
    std::vector<Package> flush();

    /**
     * Response-path accounting: bytes on the wire to return @p words
     * data words per request for a flushed package, with optional BDI
     * on the data.
     */
    static std::uint64_t responseBytes(const Package &pkg,
                                       std::uint32_t header_bytes,
                                       bool compress_data,
                                       std::span<const std::uint64_t>
                                           data_words);

  private:
    PackerOptions opts_;
    std::vector<ReadRequest> pending;
};

} // namespace mof
} // namespace lsdgnn

#endif // LSDGNN_MOF_PACKER_HH
