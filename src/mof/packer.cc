#include "packer.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace mof {

RequestPacker::RequestPacker(PackerOptions opts) : opts_(opts)
{
    lsd_assert(opts_.format.max_requests > 0,
               "packer format must carry requests");
}

void
RequestPacker::add(ReadRequest req)
{
    pending.push_back(req);
}

std::vector<Package>
RequestPacker::flush()
{
    std::vector<Package> out;
    std::size_t i = 0;
    while (i < pending.size()) {
        const std::size_t n = std::min<std::size_t>(
            opts_.format.max_requests, pending.size() - i);
        Package pkg;
        pkg.requests.assign(pending.begin() + i,
                            pending.begin() + i + n);
        pkg.header_bytes = opts_.format.header_bytes;
        pkg.raw_address_bytes =
            n * opts_.format.addr_bytes_per_request;
        if (opts_.compress_addresses) {
            std::vector<std::uint64_t> addrs;
            addrs.reserve(n);
            for (const auto &r : pkg.requests)
                addrs.push_back(
                    opts_.format.addr_bytes_per_request >= 8
                        ? r.address
                        : (r.address & 0xffffffffull));
            BdiParams params;
            params.word_bytes = opts_.format.addr_bytes_per_request;
            params.block_words = 16;
            const BdiResult comp = bdiCompress(addrs, params);
            // Compression never makes the wire worse: fall back to
            // raw addresses when BDI would expand the field.
            pkg.address_bytes =
                std::min<std::uint64_t>(comp.bytes.size(),
                                        pkg.raw_address_bytes);
        } else {
            pkg.address_bytes = pkg.raw_address_bytes;
        }
        out.push_back(std::move(pkg));
        i += n;
    }
    pending.clear();
    return out;
}

std::uint64_t
RequestPacker::responseBytes(const Package &pkg,
                             std::uint32_t header_bytes,
                             bool compress_data,
                             std::span<const std::uint64_t> data_words)
{
    std::uint64_t payload = 0;
    for (const auto &r : pkg.requests)
        payload += r.bytes;
    if (!compress_data)
        return header_bytes + payload;
    lsd_assert(data_words.size() * 8 >= payload,
               "response data words shorter than request payload");
    const BdiResult comp = bdiCompress(data_words);
    const std::uint64_t compressed =
        std::min<std::uint64_t>(comp.bytes.size(), payload);
    return header_bytes + compressed;
}

} // namespace mof
} // namespace lsdgnn
