#include "hetero.hh"

#include <algorithm>

#include "common/logging.hh"
#include "graph/generator.hh"

namespace lsdgnn {
namespace graph {

HeteroGraph::HeteroGraph(CsrGraph graph, std::vector<NodeType> node_types,
                         std::vector<EdgeType> edge_types,
                         std::uint8_t num_edge_types)
    : base(std::move(graph)),
      nodeTypes(std::move(node_types)),
      edgeTypes(num_edge_types)
{
    lsd_assert(num_edge_types > 0, "need at least one edge type");
    lsd_assert(nodeTypes.size() == base.numNodes(),
               "node type count mismatch");
    lsd_assert(edge_types.size() == base.numEdges(),
               "edge type count mismatch");
    for (EdgeType t : edge_types)
        lsd_assert(t < edgeTypes, "edge type ", int(t), " out of range");

    // Re-sort every adjacency slice by edge type (stable, so relative
    // order within a type is preserved) and build the per-node type
    // index. The CSR target array must be rewritten, so rebuild it.
    std::vector<NodeId> new_targets(base.numEdges());
    typeStarts.assign(base.numNodes() * (edgeTypes + 1ull), 0);

    for (NodeId n = 0; n < base.numNodes(); ++n) {
        const auto adj = base.neighbors(n);
        const std::uint64_t start = base.adjacencyByteOffset(n) /
            sizeof(NodeId);

        // Count per type.
        std::vector<std::uint32_t> count(edgeTypes, 0);
        for (std::size_t k = 0; k < adj.size(); ++k)
            ++count[edge_types[start + k]];

        // Prefix sums -> relative type starts.
        std::uint32_t *starts =
            &typeStarts[n * (edgeTypes + 1ull)];
        starts[0] = 0;
        for (std::uint8_t t = 0; t < edgeTypes; ++t)
            starts[t + 1] = starts[t] + count[t];

        // Stable scatter.
        std::vector<std::uint32_t> cursor(starts, starts + edgeTypes);
        for (std::size_t k = 0; k < adj.size(); ++k) {
            const EdgeType t = edge_types[start + k];
            new_targets[start + cursor[t]++] = adj[k];
        }
    }

    base = CsrGraph(std::vector<std::uint64_t>(base.offsets()),
                    std::move(new_targets));
}

NodeType
HeteroGraph::nodeType(NodeId node) const
{
    lsd_assert(node < numNodes(), "node out of range");
    return nodeTypes[node];
}

std::uint64_t
HeteroGraph::typeOffset(NodeId node, EdgeType type) const
{
    lsd_assert(node < numNodes(), "node out of range");
    lsd_assert(type <= edgeTypes, "edge type out of range");
    return typeStarts[node * (edgeTypes + 1ull) + type];
}

std::span<const NodeId>
HeteroGraph::neighbors(NodeId node, EdgeType type) const
{
    lsd_assert(type < edgeTypes, "edge type out of range");
    const auto all = base.neighbors(node);
    const std::uint64_t lo = typeOffset(node, type);
    const std::uint64_t hi = typeOffset(node, type + 1);
    return all.subspan(lo, hi - lo);
}

std::uint64_t
HeteroGraph::degree(NodeId node, EdgeType type) const
{
    return typeOffset(node, type + 1) - typeOffset(node, type);
}

HeteroGraph
generateHeteroGraph(const HeteroGeneratorParams &params)
{
    GeneratorParams gp;
    gp.num_nodes = params.num_nodes;
    gp.num_edges = params.num_edges;
    gp.degree_exponent = params.degree_exponent;
    gp.endpoint_skew = params.endpoint_skew;
    gp.seed = params.seed;
    CsrGraph structure = generatePowerLawGraph(gp);

    Rng rng(params.seed ^ 0xfeedfacecafebeefull);
    std::vector<NodeType> node_types(structure.numNodes());
    for (auto &t : node_types)
        t = static_cast<NodeType>(rng.nextBounded(params.num_node_types));
    std::vector<EdgeType> edge_types(structure.numEdges());
    for (auto &t : edge_types)
        t = static_cast<EdgeType>(rng.nextBounded(params.num_edge_types));

    return HeteroGraph(std::move(structure), std::move(node_types),
                       std::move(edge_types), params.num_edge_types);
}

} // namespace graph
} // namespace lsdgnn
