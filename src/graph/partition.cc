#include "partition.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace graph {

Partitioner::Partitioner(std::uint64_t num_nodes, ServerId num_servers,
                         PartitionPolicy policy)
    : nodes(num_nodes), servers(num_servers), policy_(policy)
{
    lsd_assert(num_servers > 0, "need at least one server");
    lsd_assert(num_nodes > 0, "need at least one node");
}

ServerId
Partitioner::serverOf(NodeId node) const
{
    lsd_assert(node < nodes, "serverOf: node out of range");
    switch (policy_) {
      case PartitionPolicy::Hash:
        // Multiplicative hash decorrelates server choice from the
        // popularity skew baked into low node IDs.
        return static_cast<ServerId>(
            (node * 0x9e3779b97f4a7c15ull >> 32) % servers);
      case PartitionPolicy::Range: {
        const std::uint64_t per = (nodes + servers - 1) / servers;
        return static_cast<ServerId>(node / per);
      }
    }
    lsd_panic("unknown partition policy");
}

std::uint64_t
Partitioner::nodesOnServer(ServerId server) const
{
    lsd_assert(server < servers, "server id out of range");
    std::uint64_t count = 0;
    for (NodeId n = 0; n < nodes; ++n)
        if (serverOf(n) == server)
            ++count;
    return count;
}

double
Partitioner::remoteEdgeFraction(const CsrGraph &graph) const
{
    lsd_assert(graph.numNodes() == nodes,
               "partitioner/graph node count mismatch");
    if (graph.numEdges() == 0)
        return 0.0;
    std::uint64_t remote = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        const ServerId home = serverOf(n);
        for (NodeId t : graph.neighbors(n))
            if (serverOf(t) != home)
                ++remote;
    }
    return static_cast<double>(remote) /
           static_cast<double>(graph.numEdges());
}

} // namespace graph
} // namespace lsdgnn
