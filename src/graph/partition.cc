#include "partition.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace lsdgnn {
namespace graph {

Partitioner::Partitioner(std::uint64_t num_nodes, ServerId num_servers,
                         PartitionPolicy policy)
    : nodes(num_nodes), servers(num_servers), policy_(policy),
      modMagic(std::numeric_limits<std::uint64_t>::max() /
                   num_servers + 1),
      rangePer((num_nodes + num_servers - 1) /
               std::max<ServerId>(num_servers, 1))
{
    lsd_assert(num_servers > 0, "need at least one server");
    lsd_assert(num_nodes > 0, "need at least one node");
}

std::uint64_t
Partitioner::nodesOnServer(ServerId server) const
{
    lsd_assert(server < servers, "server id out of range");
    std::uint64_t count = 0;
    for (NodeId n = 0; n < nodes; ++n)
        if (serverOf(n) == server)
            ++count;
    return count;
}

double
Partitioner::remoteEdgeFraction(const CsrGraph &graph) const
{
    lsd_assert(graph.numNodes() == nodes,
               "partitioner/graph node count mismatch");
    if (graph.numEdges() == 0)
        return 0.0;
    std::uint64_t remote = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        const ServerId home = serverOf(n);
        for (NodeId t : graph.neighbors(n))
            if (serverOf(t) != home)
                ++remote;
    }
    return static_cast<double>(remote) /
           static_cast<double>(graph.numEdges());
}

GraphShard::GraphShard(const CsrGraph &graph, const Partitioner &part,
                       ServerId shard)
    : shard_(shard),
      slice_(buildSlice(graph, part, shard, localIndex_, localNodes_))
{
}

CsrGraph
GraphShard::buildSlice(const CsrGraph &graph, const Partitioner &part,
                       ServerId shard,
                       std::vector<std::uint32_t> &local_index,
                       std::vector<NodeId> &local_nodes)
{
    lsd_assert(shard < part.numServers(), "shard id out of range");
    const std::uint64_t nodes = graph.numNodes();
    lsd_assert(nodes < npos, "graph too large for 32-bit local index");
    local_index.assign(nodes, npos);
    CsrBuilder builder;
    for (NodeId n = 0; n < nodes; ++n) {
        if (part.serverOf(n) != shard)
            continue;
        local_index[n] =
            static_cast<std::uint32_t>(local_nodes.size());
        local_nodes.push_back(n);
        builder.addNode(graph.neighbors(n));
    }
    return std::move(builder).build();
}

} // namespace graph
} // namespace lsdgnn
