#include "partition.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace lsdgnn {
namespace graph {

Partitioner::Partitioner(std::uint64_t num_nodes, ServerId num_servers,
                         PartitionPolicy policy)
    : nodes(num_nodes), servers(num_servers), policy_(policy),
      modMagic(std::numeric_limits<std::uint64_t>::max() /
                   num_servers + 1),
      rangePer((num_nodes + num_servers - 1) /
               std::max<ServerId>(num_servers, 1))
{
    lsd_assert(num_servers > 0, "need at least one server");
    lsd_assert(num_nodes > 0, "need at least one node");
}

std::uint64_t
Partitioner::nodesOnServer(ServerId server) const
{
    lsd_assert(server < servers, "server id out of range");
    std::uint64_t count = 0;
    for (NodeId n = 0; n < nodes; ++n)
        if (serverOf(n) == server)
            ++count;
    return count;
}

double
Partitioner::remoteEdgeFraction(const CsrGraph &graph) const
{
    lsd_assert(graph.numNodes() == nodes,
               "partitioner/graph node count mismatch");
    if (graph.numEdges() == 0)
        return 0.0;
    std::uint64_t remote = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        const ServerId home = serverOf(n);
        for (NodeId t : graph.neighbors(n))
            if (serverOf(t) != home)
                ++remote;
    }
    return static_cast<double>(remote) /
           static_cast<double>(graph.numEdges());
}

} // namespace graph
} // namespace lsdgnn
