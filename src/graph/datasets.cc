#include "datasets.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lsdgnn {
namespace graph {

const std::array<DatasetSpec, 6> &
paperDatasets()
{
    // Table 2 of the paper, verbatim.
    static const std::array<DatasetSpec, 6> specs = {{
        {"ss", 65'200'000ull, 592'000'000ull, 72},
        {"ls", 1'900'000'000ull, 5'200'000'000ull, 84},
        {"sl", 67'300'000ull, 601'000'000ull, 128},
        {"ml", 207'000'000ull, 5'700'000'000ull, 136},
        {"ll", 702'000'000ull, 12'300'000'000ull, 152},
        {"syn", 5'900'000'000ull, 105'000'000'000ull, 152},
    }};
    return specs;
}

const DatasetSpec &
datasetByName(const std::string &name)
{
    for (const auto &spec : paperDatasets())
        if (name == spec.name)
            return spec;
    lsd_fatal("unknown dataset '", name,
              "'; expected one of ss, ls, sl, ml, ll, syn");
}

std::uint64_t
FootprintModel::totalBytes(const DatasetSpec &spec) const
{
    const std::uint64_t attr_bytes =
        spec.nodes * static_cast<std::uint64_t>(spec.attr_len) *
        sizeof(float);
    const std::uint64_t structure_bytes =
        spec.nodes * sizeof(std::uint64_t) +    // CSR offsets
        spec.edges * sizeof(std::uint64_t);     // CSR targets
    const double raw =
        static_cast<double>(attr_bytes + structure_bytes);
    return static_cast<std::uint64_t>(raw * overhead);
}

std::uint32_t
FootprintModel::minServers(const DatasetSpec &spec) const
{
    lsd_assert(server_capacity_bytes > 0, "server capacity must be > 0");
    const std::uint64_t bytes = totalBytes(spec);
    return static_cast<std::uint32_t>(
        (bytes + server_capacity_bytes - 1) / server_capacity_bytes);
}

GeneratorParams
scaledParams(const DatasetSpec &spec, std::uint64_t scale_divisor,
             std::uint64_t seed)
{
    lsd_assert(scale_divisor > 0, "scale divisor must be positive");
    GeneratorParams p;
    p.num_nodes = std::max<std::uint64_t>(spec.nodes / scale_divisor, 64);
    // Preserve the dataset's average degree, not the absolute edge
    // count, so the sampling fan-out behaviour matches the original.
    const double avg_deg = spec.avgDegree();
    p.num_edges = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(avg_deg *
            static_cast<double>(p.num_nodes)),
        p.num_nodes);
    p.degree_exponent = 1.6;
    p.endpoint_skew = 0.35;
    p.min_degree = 1;
    // Mix dataset identity into the seed so ss and sl (nearly equal
    // sizes) do not alias to the same structure.
    std::uint64_t mix = seed;
    for (const char *c = spec.name; *c; ++c)
        mix = mix * 131 + static_cast<std::uint64_t>(*c);
    p.seed = mix;
    return p;
}

CsrGraph
instantiate(const DatasetSpec &spec, std::uint64_t scale_divisor,
            std::uint64_t seed)
{
    return generatePowerLawGraph(scaledParams(spec, scale_divisor, seed));
}

} // namespace graph
} // namespace lsdgnn
