#include "csr_graph.hh"

#include <algorithm>

namespace lsdgnn {
namespace graph {

CsrGraph::CsrGraph(std::vector<std::uint64_t> offsets,
                   std::vector<NodeId> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets))
{
    lsd_assert(!offsets_.empty(), "CSR offsets must have numNodes+1 rows");
    lsd_assert(offsets_.front() == 0, "CSR offsets must start at 0");
    lsd_assert(offsets_.back() == targets_.size(),
               "CSR offsets must end at numEdges");
    lsd_assert(std::is_sorted(offsets_.begin(), offsets_.end()),
               "CSR offsets must be non-decreasing");
}

std::uint64_t
CsrGraph::maxDegree() const
{
    std::uint64_t best = 0;
    for (NodeId n = 0; n < numNodes(); ++n)
        best = std::max(best, degree(n));
    return best;
}

CsrBuilder::CsrBuilder(std::uint64_t expected_nodes,
                       std::uint64_t expected_edges)
{
    offsets.reserve(expected_nodes + 1);
    targets.reserve(expected_edges);
    offsets.push_back(0);
}

void
CsrBuilder::addNode(std::span<const NodeId> neighbors)
{
    targets.insert(targets.end(), neighbors.begin(), neighbors.end());
    offsets.push_back(targets.size());
}

CsrGraph
CsrBuilder::build() &&
{
    return CsrGraph(std::move(offsets), std::move(targets));
}

} // namespace graph
} // namespace lsdgnn
