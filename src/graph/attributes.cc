#include "attributes.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace lsdgnn {
namespace graph {

AttributeStore::AttributeStore(std::uint32_t attr_len, std::uint64_t seed)
    : attrLen_(attr_len), seed_(seed)
{
    lsd_assert(attr_len > 0, "attribute length must be positive");
}

void
AttributeStore::setCommunityBias(std::uint32_t communities, float boost)
{
    lsd_assert(communities > 0, "need at least one community");
    communities_ = communities;
    communityBoost = boost;
}

float
AttributeStore::value(NodeId node, std::uint32_t dim) const
{
    lsd_assert(dim < attrLen_, "attribute dim out of range");
    std::uint64_t state = seed_ ^ (node * 0x9e3779b97f4a7c15ull) ^
        (static_cast<std::uint64_t>(dim) << 32);
    const std::uint64_t h = splitMix64(state);
    // Map the top 24 bits to [-1, 1).
    const double unit = static_cast<double>(h >> 40) * 0x1.0p-24;
    float v = static_cast<float>(unit * 2.0 - 1.0);
    if (communities_ > 0 &&
        dim % communities_ == node % communities_) {
        v += communityBoost;
    }
    return v;
}

void
AttributeStore::fetch(NodeId node, std::span<float> out) const
{
    lsd_assert(out.size() == attrLen_,
               "fetch buffer size mismatch: ", out.size());
    for (std::uint32_t d = 0; d < attrLen_; ++d)
        out[d] = value(node, d);
}

std::vector<float>
AttributeStore::fetch(NodeId node) const
{
    std::vector<float> out(attrLen_);
    fetch(node, std::span<float>(out));
    return out;
}

} // namespace graph
} // namespace lsdgnn
