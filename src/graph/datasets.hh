/**
 * @file
 * The six paper datasets (Table 2) and their footprint model.
 *
 * Paper-scale parameters (node/edge counts, attribute lengths) are
 * kept exactly as published and used *analytically* for footprint and
 * minimal-server results (Fig. 2a, Fig. 20). Functional runs
 * instantiate a scaled-down graph with the same attribute length,
 * edge/node ratio and degree skew; the scale divisor is explicit so
 * benches can trade run time against fidelity.
 */

#ifndef LSDGNN_GRAPH_DATASETS_HH
#define LSDGNN_GRAPH_DATASETS_HH

#include <array>
#include <cstdint>
#include <string>

#include "graph/csr_graph.hh"
#include "graph/generator.hh"

namespace lsdgnn {
namespace graph {

/** Table 2 row: one LSD-GNN sampling dataset. */
struct DatasetSpec {
    /** Paper name (ss, ls, sl, ml, ll, syn). */
    const char *name;
    /** Paper-scale node count. */
    std::uint64_t nodes;
    /** Paper-scale edge count. */
    std::uint64_t edges;
    /** Float32 attributes per node. */
    std::uint32_t attr_len;

    double
    avgDegree() const
    {
        return static_cast<double>(edges) / static_cast<double>(nodes);
    }
};

/** The six Table 2 datasets at paper scale. */
const std::array<DatasetSpec, 6> &paperDatasets();

/** Look up a dataset spec by its paper name; fatal when unknown. */
const DatasetSpec &datasetByName(const std::string &name);

/**
 * Footprint model for a dataset held in a distributed in-memory store.
 *
 * attributes: attr_len float32 per node;
 * structure: CSR offsets (8 B/node) + targets (8 B/edge);
 * framework overhead: hash indexes, slabs and caching in the store,
 * taken as a multiplicative factor on top of the raw arrays.
 */
struct FootprintModel {
    /**
     * Store overhead factor on raw bytes. The default (2.5x) covers
     * what an AliGraph-like store keeps beyond the bare CSR + float
     * attributes: edge attributes/weights, per-node hash indexes,
     * slab headers and the hot-node cache. It calibrates the syn
     * dataset to the paper's ">10 TB" scale and ls to the 5-server
     * instance of Table 3.
     */
    double overhead = 2.5;
    /** Usable DRAM per storage server. */
    std::uint64_t server_capacity_bytes = 512ull << 30;

    /** Total bytes the dataset occupies in the store. */
    std::uint64_t totalBytes(const DatasetSpec &spec) const;

    /** Minimal number of servers able to hold the dataset. */
    std::uint32_t minServers(const DatasetSpec &spec) const;
};

/** Sampling-model parameters shared by all Table 2 experiments. */
struct SamplingModelSpec {
    std::uint32_t batch_size = 512;
    std::uint32_t negative_sample_rate = 10;
    std::uint32_t hops = 2;
    std::uint32_t fanout = 10; ///< sample rate 10/10: both hops take 10
    std::uint32_t hidden_size = 128;
};

/**
 * Materialize a functional instance of @p spec scaled down by
 * @p scale_divisor (nodes and edges divided; attr_len kept).
 */
CsrGraph instantiate(const DatasetSpec &spec, std::uint64_t scale_divisor,
                     std::uint64_t seed = 1);

/** Generator parameters used by instantiate() (exposed for tests). */
GeneratorParams scaledParams(const DatasetSpec &spec,
                             std::uint64_t scale_divisor,
                             std::uint64_t seed);

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_DATASETS_HH
