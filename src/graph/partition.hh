/**
 * @file
 * Node-to-server partitioning for the distributed in-memory store.
 *
 * AliGraph-style stores spread a graph over S "servers" (logical
 * vCPU groups). The partitioner answers two questions the rest of the
 * stack asks constantly: which server owns a node, and what fraction
 * of a node's neighborhood is remote (the locality that determines
 * communication volume).
 */

#ifndef LSDGNN_GRAPH_PARTITION_HH
#define LSDGNN_GRAPH_PARTITION_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace graph {

/** Identifier of a logical storage server. */
using ServerId = std::uint32_t;

/** Placement policies for nodes onto servers. */
enum class PartitionPolicy {
    /** node % servers — maximally scattered, the paper's worst case. */
    Hash,
    /** contiguous ID ranges — best locality a static scheme can get. */
    Range,
};

/**
 * Static node partitioning over a fixed server count.
 */
class Partitioner
{
  public:
    /**
     * @param num_nodes Total node count of the partitioned graph.
     * @param num_servers Number of storage servers (>0).
     * @param policy Placement policy.
     */
    Partitioner(std::uint64_t num_nodes, ServerId num_servers,
                PartitionPolicy policy = PartitionPolicy::Hash);

    ServerId numServers() const { return servers; }

    /**
     * Owning server of @p node.
     *
     * Inlined and division-free: the sampling hot loop classifies
     * every access through here, so the Hash policy's `% servers` is
     * strength-reduced to Lemire's exact multiply-shift modulo (the
     * hashed key is 32-bit, for which the identity is exact), and the
     * Range policy's per-server width is precomputed once.
     */
    ServerId
    serverOf(NodeId node) const
    {
        lsd_assert(node < nodes, "serverOf: node out of range");
        switch (policy_) {
          case PartitionPolicy::Hash: {
            // Multiplicative hash decorrelates server choice from the
            // popularity skew baked into low node IDs.
            const std::uint32_t h = static_cast<std::uint32_t>(
                node * 0x9e3779b97f4a7c15ull >> 32);
            // h % servers without the div: lowbits carries the
            // fractional part of h / servers in 64-bit fixed point;
            // multiplying by servers recovers the remainder exactly.
            const std::uint64_t lowbits = modMagic * h;
            return static_cast<ServerId>(
                (static_cast<unsigned __int128>(lowbits) * servers) >> 64);
          }
          case PartitionPolicy::Range:
            return static_cast<ServerId>(node / rangePer);
        }
        lsd_panic("unknown partition policy");
    }

    /** Number of nodes placed on @p server. */
    std::uint64_t nodesOnServer(ServerId server) const;

    /**
     * Fraction of edges whose endpoint lives on a different server
     * than the source node (communication fraction).
     */
    double remoteEdgeFraction(const CsrGraph &graph) const;

  private:
    std::uint64_t nodes;
    ServerId servers;
    PartitionPolicy policy_;
    std::uint64_t modMagic;  ///< UINT64_MAX / servers + 1 (fastmod)
    std::uint64_t rangePer;  ///< ceil(nodes / servers) (Range policy)
};

/**
 * The CSR slice one storage server actually holds: adjacency lists of
 * the nodes the Partitioner places on it, indexed by *global* node ID
 * through a global->local translation table. Targets keep their
 * global IDs — an adjacency list routinely points at nodes owned by
 * other shards, which is exactly the traffic the distributed sampling
 * backend turns into MoF packages.
 *
 * Immutable after construction and safe to share across threads
 * read-only, like CsrGraph itself.
 */
class GraphShard
{
  public:
    /**
     * Slice @p graph down to the nodes @p part places on @p shard.
     * @pre shard < part.numServers() and the partitioner was built
     *      for this graph's node count.
     */
    GraphShard(const CsrGraph &graph, const Partitioner &part,
               ServerId shard);

    ServerId shard() const { return shard_; }

    /** Nodes this shard owns. */
    std::uint64_t numLocalNodes() const { return localNodes_.size(); }

    /** Whether @p node lives on this shard. */
    bool
    owns(NodeId node) const
    {
        lsd_assert(node < localIndex_.size(), "owns: node out of range");
        return localIndex_[node] != npos;
    }

    /** Out-degree of owned node @p node (global ID). */
    std::uint64_t
    degree(NodeId node) const
    {
        return slice_.degree(localOf(node));
    }

    /** Neighbor list (global target IDs) of owned node @p node. */
    std::span<const NodeId>
    neighbors(NodeId node) const
    {
        return slice_.neighbors(localOf(node));
    }

    /** Byte offset of the adjacency list within this shard's arrays. */
    std::uint64_t
    adjacencyByteOffset(NodeId node) const
    {
        return slice_.adjacencyByteOffset(localOf(node));
    }

    /** Owned nodes in ascending global-ID order. */
    const std::vector<NodeId> &localNodes() const { return localNodes_; }

    /** The underlying local-indexed CSR slice. */
    const CsrGraph &slice() const { return slice_; }

  private:
    static constexpr std::uint32_t npos = ~std::uint32_t(0);

    std::uint32_t
    localOf(NodeId node) const
    {
        lsd_assert(node < localIndex_.size(),
                   "shard ", shard_, ": node ", node, " out of range");
        const std::uint32_t local = localIndex_[node];
        lsd_assert(local != npos, "shard ", shard_,
                   " does not own node ", node);
        return local;
    }

    static CsrGraph buildSlice(const CsrGraph &graph,
                               const Partitioner &part, ServerId shard,
                               std::vector<std::uint32_t> &local_index,
                               std::vector<NodeId> &local_nodes);

    ServerId shard_;
    std::vector<std::uint32_t> localIndex_; ///< global -> local (npos)
    std::vector<NodeId> localNodes_;        ///< local -> global
    CsrGraph slice_;
};

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_PARTITION_HH
