/**
 * @file
 * Node-to-server partitioning for the distributed in-memory store.
 *
 * AliGraph-style stores spread a graph over S "servers" (logical
 * vCPU groups). The partitioner answers two questions the rest of the
 * stack asks constantly: which server owns a node, and what fraction
 * of a node's neighborhood is remote (the locality that determines
 * communication volume).
 */

#ifndef LSDGNN_GRAPH_PARTITION_HH
#define LSDGNN_GRAPH_PARTITION_HH

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace graph {

/** Identifier of a logical storage server. */
using ServerId = std::uint32_t;

/** Placement policies for nodes onto servers. */
enum class PartitionPolicy {
    /** node % servers — maximally scattered, the paper's worst case. */
    Hash,
    /** contiguous ID ranges — best locality a static scheme can get. */
    Range,
};

/**
 * Static node partitioning over a fixed server count.
 */
class Partitioner
{
  public:
    /**
     * @param num_nodes Total node count of the partitioned graph.
     * @param num_servers Number of storage servers (>0).
     * @param policy Placement policy.
     */
    Partitioner(std::uint64_t num_nodes, ServerId num_servers,
                PartitionPolicy policy = PartitionPolicy::Hash);

    ServerId numServers() const { return servers; }

    /** Owning server of @p node. */
    ServerId serverOf(NodeId node) const;

    /** Number of nodes placed on @p server. */
    std::uint64_t nodesOnServer(ServerId server) const;

    /**
     * Fraction of edges whose endpoint lives on a different server
     * than the source node (communication fraction).
     */
    double remoteEdgeFraction(const CsrGraph &graph) const;

  private:
    std::uint64_t nodes;
    ServerId servers;
    PartitionPolicy policy_;
};

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_PARTITION_HH
