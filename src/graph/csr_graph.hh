/**
 * @file
 * Compressed-sparse-row graph storage.
 *
 * The in-memory representation mirrors what an AliGraph-style
 * distributed store keeps per partition: a CSR offsets/targets pair
 * for structure, with node attributes handled separately (see
 * attributes.hh). Node IDs are global 64-bit IDs, as the paper's
 * billion-node graphs require.
 */

#ifndef LSDGNN_GRAPH_CSR_GRAPH_HH
#define LSDGNN_GRAPH_CSR_GRAPH_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.hh"

namespace lsdgnn {
namespace graph {

/** Global node identifier. */
using NodeId = std::uint64_t;

/** Sentinel for "no node". */
inline constexpr NodeId invalid_node = ~NodeId(0);

/**
 * Immutable CSR graph.
 *
 * Built once by a builder/generator and then only read; sampling
 * workloads never mutate structure.
 */
class CsrGraph
{
  public:
    /**
     * @param offsets Size numNodes+1, monotonically non-decreasing.
     * @param targets Concatenated adjacency lists, size = numEdges.
     */
    CsrGraph(std::vector<std::uint64_t> offsets,
             std::vector<NodeId> targets);

    /** Number of nodes. */
    std::uint64_t numNodes() const { return offsets_.size() - 1; }

    /** Number of directed edges. */
    std::uint64_t numEdges() const { return targets_.size(); }

    /** Out-degree of @p node. */
    std::uint64_t
    degree(NodeId node) const
    {
        lsd_assert(node < numNodes(), "degree: node ", node,
                   " out of range");
        return offsets_[node + 1] - offsets_[node];
    }

    /** Neighbor list of @p node as a read-only view. */
    std::span<const NodeId>
    neighbors(NodeId node) const
    {
        lsd_assert(node < numNodes(), "neighbors: node ", node,
                   " out of range");
        return std::span<const NodeId>(targets_)
            .subspan(offsets_[node], offsets_[node + 1] - offsets_[node]);
    }

    /** k-th neighbor of @p node. @pre k < degree(node). */
    NodeId
    neighbor(NodeId node, std::uint64_t k) const
    {
        lsd_assert(k < degree(node), "neighbor index out of range");
        return targets_[offsets_[node] + k];
    }

    /** Byte offset of node's adjacency list within the target array. */
    std::uint64_t
    adjacencyByteOffset(NodeId node) const
    {
        lsd_assert(node < numNodes(), "node out of range");
        return offsets_[node] * sizeof(NodeId);
    }

    /** Raw offsets array (tests, serialization). */
    const std::vector<std::uint64_t> &offsets() const { return offsets_; }
    /** Raw targets array (tests, serialization). */
    const std::vector<NodeId> &targets() const { return targets_; }

    /** Bytes used by the structure arrays. */
    std::uint64_t
    structureBytes() const
    {
        return offsets_.size() * sizeof(std::uint64_t) +
               targets_.size() * sizeof(NodeId);
    }

    /** Maximum out-degree over all nodes. */
    std::uint64_t maxDegree() const;

    /** Average out-degree. */
    double
    avgDegree() const
    {
        return numNodes() == 0 ? 0.0
            : static_cast<double>(numEdges()) /
              static_cast<double>(numNodes());
    }

  private:
    std::vector<std::uint64_t> offsets_;
    std::vector<NodeId> targets_;
};

/**
 * Incremental CSR builder: feed per-node adjacency lists in node
 * order, then finalize.
 */
class CsrBuilder
{
  public:
    explicit CsrBuilder(std::uint64_t expected_nodes = 0,
                        std::uint64_t expected_edges = 0);

    /** Append the adjacency list for the next node. */
    void addNode(std::span<const NodeId> neighbors);

    /** Consume the builder and produce the immutable graph. */
    CsrGraph build() &&;

    std::uint64_t nodesAdded() const { return offsets.size() - 1; }

  private:
    std::vector<std::uint64_t> offsets;
    std::vector<NodeId> targets;
};

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_CSR_GRAPH_HH
