#include "dynamic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "graph/generator.hh"

namespace lsdgnn {
namespace graph {

DynamicGraph::DynamicGraph(std::uint64_t num_nodes,
                           std::vector<TemporalEdge> edges)
{
    lsd_assert(num_nodes > 0, "temporal graph needs nodes");
    for (const auto &e : edges) {
        lsd_assert(e.src < num_nodes && e.dst < num_nodes,
                   "temporal edge endpoint out of range");
    }

    // Counting sort by source, then time-sort each adjacency run.
    offsets.assign(num_nodes + 1, 0);
    for (const auto &e : edges)
        ++offsets[e.src + 1];
    for (std::uint64_t n = 0; n < num_nodes; ++n)
        offsets[n + 1] += offsets[n];

    targets.resize(edges.size());
    times.resize(edges.size());
    {
        std::vector<std::uint64_t> cursor(offsets.begin(),
                                          offsets.end() - 1);
        for (const auto &e : edges) {
            const std::uint64_t slot = cursor[e.src]++;
            targets[slot] = e.dst;
            times[slot] = e.time;
        }
    }
    for (std::uint64_t n = 0; n < num_nodes; ++n) {
        const std::uint64_t lo = offsets[n];
        const std::uint64_t hi = offsets[n + 1];
        std::vector<std::uint64_t> order(hi - lo);
        for (std::uint64_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
            [&](std::uint64_t a, std::uint64_t b) {
                return times[lo + a] < times[lo + b];
            });
        std::vector<NodeId> tgt_sorted(order.size());
        std::vector<Timestamp> time_sorted(order.size());
        for (std::uint64_t i = 0; i < order.size(); ++i) {
            tgt_sorted[i] = targets[lo + order[i]];
            time_sorted[i] = times[lo + order[i]];
        }
        std::copy(tgt_sorted.begin(), tgt_sorted.end(),
                  targets.begin() + static_cast<std::ptrdiff_t>(lo));
        std::copy(time_sorted.begin(), time_sorted.end(),
                  times.begin() + static_cast<std::ptrdiff_t>(lo));
    }

    if (!times.empty()) {
        earliest = *std::min_element(times.begin(), times.end());
        latest = *std::max_element(times.begin(), times.end());
    }
}

std::uint64_t
DynamicGraph::degree(NodeId node) const
{
    lsd_assert(node < numNodes(), "node out of range");
    return offsets[node + 1] - offsets[node];
}

std::uint64_t
DynamicGraph::degreeAt(NodeId node, Timestamp t) const
{
    lsd_assert(node < numNodes(), "node out of range");
    const auto begin = times.begin() +
        static_cast<std::ptrdiff_t>(offsets[node]);
    const auto end = times.begin() +
        static_cast<std::ptrdiff_t>(offsets[node + 1]);
    return static_cast<std::uint64_t>(
        std::upper_bound(begin, end, t) - begin);
}

std::span<const NodeId>
DynamicGraph::neighborsAt(NodeId node, Timestamp t) const
{
    const std::uint64_t visible = degreeAt(node, t);
    return std::span<const NodeId>(targets)
        .subspan(offsets[node], visible);
}

std::span<const Timestamp>
DynamicGraph::timestamps(NodeId node) const
{
    lsd_assert(node < numNodes(), "node out of range");
    return std::span<const Timestamp>(times)
        .subspan(offsets[node], degree(node));
}

std::vector<NodeId>
DynamicGraph::sampleAt(NodeId node, Timestamp t, std::uint32_t k,
                       Rng &rng, double recency_tau) const
{
    std::vector<NodeId> out;
    const auto visible = neighborsAt(node, t);
    if (visible.empty() || k == 0)
        return out;
    out.reserve(k);

    if (recency_tau <= 0.0) {
        for (std::uint32_t i = 0; i < k; ++i)
            out.push_back(visible[rng.nextBounded(visible.size())]);
        return out;
    }

    // Recency bias: weight exp(-(t - time)/tau) via inverse-CDF over
    // the cumulative weights.
    const auto stamp = timestamps(node);
    std::vector<double> cum(visible.size());
    double total = 0;
    for (std::size_t i = 0; i < visible.size(); ++i) {
        const double age = static_cast<double>(t - stamp[i]);
        total += std::exp(-age / recency_tau);
        cum[i] = total;
    }
    for (std::uint32_t i = 0; i < k; ++i) {
        const double u = rng.nextDouble() * total;
        const auto it = std::lower_bound(cum.begin(), cum.end(), u);
        const auto idx = static_cast<std::size_t>(it - cum.begin());
        out.push_back(visible[std::min(idx, visible.size() - 1)]);
    }
    return out;
}

DynamicGraph
generateDynamicGraph(const DynamicGeneratorParams &params)
{
    lsd_assert(params.num_nodes > 0, "need nodes");
    Rng rng(params.seed ^ 0x1234abcd5678ull);
    std::vector<TemporalEdge> edges;
    edges.reserve(params.num_edges);
    for (std::uint64_t i = 0; i < params.num_edges; ++i) {
        TemporalEdge e;
        e.src = skewedEndpoint(rng, params.num_nodes, 1.0);
        e.dst = skewedEndpoint(rng, params.num_nodes,
                               params.endpoint_skew);
        e.time = rng.nextBounded(params.horizon + 1);
        edges.push_back(e);
    }
    return DynamicGraph(params.num_nodes, std::move(edges));
}

} // namespace graph
} // namespace lsdgnn
