/**
 * @file
 * Dynamic (temporal) graph support.
 *
 * AliGraph's dynamic-graph mode samples against a time horizon: only
 * edges created at or before the query time are visible, and recent
 * edges can be favored. DynamicGraph keeps each node's adjacency
 * sorted by timestamp so a horizon query is one binary search and the
 * visible neighborhood is a contiguous prefix — again a layout the
 * streaming GetNeighbor hardware can walk without pointer chasing.
 */

#ifndef LSDGNN_GRAPH_DYNAMIC_HH
#define LSDGNN_GRAPH_DYNAMIC_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace graph {

/** Event timestamp (application-defined ticks, e.g. seconds). */
using Timestamp = std::uint64_t;

/** One timestamped edge during construction. */
struct TemporalEdge {
    NodeId src;
    NodeId dst;
    Timestamp time;
};

/**
 * Immutable temporal graph with time-sorted adjacency.
 */
class DynamicGraph
{
  public:
    /**
     * Build from an edge list (any order); @p num_nodes fixes the
     * node ID space.
     */
    DynamicGraph(std::uint64_t num_nodes,
                 std::vector<TemporalEdge> edges);

    std::uint64_t numNodes() const { return offsets.size() - 1; }
    std::uint64_t numEdges() const { return targets.size(); }

    /** Total out-degree of @p node (all times). */
    std::uint64_t degree(NodeId node) const;

    /** Out-degree visible at horizon @p t (edges with time <= t). */
    std::uint64_t degreeAt(NodeId node, Timestamp t) const;

    /** Neighbors visible at horizon @p t (time-ascending). */
    std::span<const NodeId> neighborsAt(NodeId node, Timestamp t) const;

    /** Timestamps parallel to neighborsAt(node, max). */
    std::span<const Timestamp> timestamps(NodeId node) const;

    /** Earliest/latest edge time in the graph (0 when empty). */
    Timestamp earliestTime() const { return earliest; }
    Timestamp latestTime() const { return latest; }

    /**
     * Sample @p k visible neighbors at horizon @p t, optionally
     * recency-biased: probability proportional to
     * exp(-(t - edge_time)/tau) when @p recency_tau > 0, uniform
     * otherwise. With-replacement when fewer than k are visible.
     */
    std::vector<NodeId> sampleAt(NodeId node, Timestamp t,
                                 std::uint32_t k, Rng &rng,
                                 double recency_tau = 0.0) const;

  private:
    std::vector<std::uint64_t> offsets;
    std::vector<NodeId> targets;
    std::vector<Timestamp> times;
    Timestamp earliest = 0;
    Timestamp latest = 0;
};

/** Parameters for the temporal generator. */
struct DynamicGeneratorParams {
    std::uint64_t num_nodes = 1000;
    std::uint64_t num_edges = 10000;
    Timestamp horizon = 1'000'000; ///< edge times drawn in [0, horizon]
    double endpoint_skew = 0.35;
    std::uint64_t seed = 1;
};

/** Generate a temporal power-law graph. */
DynamicGraph generateDynamicGraph(const DynamicGeneratorParams &params);

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_DYNAMIC_HH
