#include "serialize.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace lsdgnn {
namespace graph {

namespace {

constexpr std::uint64_t magic = 0x4c53'4447'4e4e'4731ull; // "LSDGNNG1"
constexpr std::uint32_t version = 1;

std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    lsd_assert(is.good(), "graph snapshot truncated");
    return value;
}

} // namespace

void
saveGraph(std::ostream &os, const CsrGraph &graph)
{
    writePod(os, magic);
    writePod(os, version);
    const std::uint64_t nodes = graph.numNodes();
    const std::uint64_t edges = graph.numEdges();
    writePod(os, nodes);
    writePod(os, edges);
    os.write(reinterpret_cast<const char *>(graph.offsets().data()),
             static_cast<std::streamsize>(
                 graph.offsets().size() * sizeof(std::uint64_t)));
    os.write(reinterpret_cast<const char *>(graph.targets().data()),
             static_cast<std::streamsize>(
                 graph.targets().size() * sizeof(NodeId)));

    std::uint64_t checksum = 0xcbf29ce484222325ull;
    checksum = fnv1a(checksum, graph.offsets().data(),
                     graph.offsets().size() * sizeof(std::uint64_t));
    checksum = fnv1a(checksum, graph.targets().data(),
                     graph.targets().size() * sizeof(NodeId));
    writePod(os, checksum);
    lsd_assert(os.good(), "graph snapshot write failed");
}

void
saveGraph(const std::string &path, const CsrGraph &graph)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        lsd_fatal("cannot open '", path, "' for writing");
    saveGraph(os, graph);
}

CsrGraph
loadGraph(std::istream &is)
{
    const auto file_magic = readPod<std::uint64_t>(is);
    lsd_assert(file_magic == magic, "bad graph snapshot magic");
    const auto file_version = readPod<std::uint32_t>(is);
    lsd_assert(file_version == version, "unsupported snapshot version ",
               file_version);
    const auto nodes = readPod<std::uint64_t>(is);
    const auto edges = readPod<std::uint64_t>(is);

    std::vector<std::uint64_t> offsets(nodes + 1);
    is.read(reinterpret_cast<char *>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() *
                                         sizeof(std::uint64_t)));
    std::vector<NodeId> targets(edges);
    is.read(reinterpret_cast<char *>(targets.data()),
            static_cast<std::streamsize>(targets.size() *
                                         sizeof(NodeId)));
    lsd_assert(is.good(), "graph snapshot truncated");

    std::uint64_t checksum = 0xcbf29ce484222325ull;
    checksum = fnv1a(checksum, offsets.data(),
                     offsets.size() * sizeof(std::uint64_t));
    checksum = fnv1a(checksum, targets.data(),
                     targets.size() * sizeof(NodeId));
    const auto file_checksum = readPod<std::uint64_t>(is);
    lsd_assert(checksum == file_checksum,
               "graph snapshot checksum mismatch");

    return CsrGraph(std::move(offsets), std::move(targets));
}

CsrGraph
loadGraph(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        lsd_fatal("cannot open '", path, "' for reading");
    return loadGraph(is);
}

} // namespace graph
} // namespace lsdgnn
