/**
 * @file
 * Node attribute (feature) storage.
 *
 * Paper-scale graphs carry 72-152 float features per node — tens of
 * terabytes in total, which is exactly why the original system needs a
 * distributed store. For the functional reproduction we keep the
 * attribute *interface* (fetch a node's feature vector, account the
 * bytes moved) but generate the values procedurally: each float is a
 * deterministic hash of (node id, dimension), so no RAM is spent
 * holding features while every fetch still produces stable, realistic
 * data for the GNN stage.
 */

#ifndef LSDGNN_GRAPH_ATTRIBUTES_HH
#define LSDGNN_GRAPH_ATTRIBUTES_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace graph {

/**
 * Procedural per-node feature source.
 *
 * fetch() fills a caller buffer with the node's attribute vector;
 * values are uniform in [-1, 1) and deterministic in (seed, node, dim).
 */
class AttributeStore
{
  public:
    /**
     * @param attr_len Number of float32 features per node.
     * @param seed Determinism seed; distinct stores give distinct data.
     */
    AttributeStore(std::uint32_t attr_len, std::uint64_t seed = 7);

    /**
     * Give nodes community-correlated features: node n belongs to
     * community n % communities, and dimensions congruent to its
     * community get @p boost added. Homophilous synthetic graphs
     * (edges within communities) then carry a learnable
     * attribute-similarity signal for training experiments.
     */
    void setCommunityBias(std::uint32_t communities, float boost);

    std::uint32_t attrLen() const { return attrLen_; }

    /** Bytes occupied by one node's attribute vector. */
    std::uint64_t
    bytesPerNode() const
    {
        return static_cast<std::uint64_t>(attrLen_) * sizeof(float);
    }

    /**
     * Fill @p out with the attribute vector of @p node.
     * @pre out.size() == attrLen().
     */
    void fetch(NodeId node, std::span<float> out) const;

    /** Allocating convenience wrapper around fetch(). */
    std::vector<float> fetch(NodeId node) const;

    /** Single attribute value (property tests address dims directly). */
    float value(NodeId node, std::uint32_t dim) const;

  private:
    std::uint32_t attrLen_;
    std::uint64_t seed_;
    std::uint32_t communities_ = 0; ///< 0 disables the bias
    float communityBoost = 0.0f;
};

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_ATTRIBUTES_HH
