/**
 * @file
 * Heterogeneous graph support.
 *
 * AliGraph (paper Section 2.4) serves heterogeneous graphs — nodes
 * and edges carry types (user/item/shop; click/buy/view) and GNN
 * models sample along typed edges or metapaths. HeteroGraph stores a
 * type-partitioned CSR: each node's adjacency is grouped by edge
 * type with a per-node type index, so `neighbors(node, type)` is a
 * contiguous O(1) view — the layout the PoC firmware would keep so
 * typed GetNeighbor stays a streaming read.
 */

#ifndef LSDGNN_GRAPH_HETERO_HH
#define LSDGNN_GRAPH_HETERO_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace graph {

/** Node/edge type identifiers. */
using NodeType = std::uint8_t;
using EdgeType = std::uint8_t;

/**
 * Immutable typed graph with type-partitioned adjacency.
 */
class HeteroGraph
{
  public:
    /**
     * @param graph Homogeneous structure (consumed).
     * @param node_types One type per node.
     * @param edge_types One type per edge, aligned with the CSR
     *        target array of @p graph.
     * @param num_edge_types Number of distinct edge types.
     */
    HeteroGraph(CsrGraph graph, std::vector<NodeType> node_types,
                std::vector<EdgeType> edge_types,
                std::uint8_t num_edge_types);

    std::uint64_t numNodes() const { return base.numNodes(); }
    std::uint64_t numEdges() const { return base.numEdges(); }
    std::uint8_t numEdgeTypes() const { return edgeTypes; }

    NodeType nodeType(NodeId node) const;

    /** All neighbors regardless of type. */
    std::span<const NodeId>
    neighbors(NodeId node) const
    {
        return base.neighbors(node);
    }

    /** Neighbors reachable over edges of @p type (contiguous view). */
    std::span<const NodeId> neighbors(NodeId node, EdgeType type) const;

    /** Typed out-degree. */
    std::uint64_t degree(NodeId node, EdgeType type) const;

    /** Underlying homogeneous structure. */
    const CsrGraph &structure() const { return base; }

  private:
    std::uint64_t typeOffset(NodeId node, EdgeType type) const;

    CsrGraph base;
    std::vector<NodeType> nodeTypes;
    std::uint8_t edgeTypes;
    /**
     * Per-node, per-type offsets into the node's adjacency slice:
     * typeStarts[node * (edgeTypes + 1) + t] is the first slot of
     * type t, relative to the node's adjacency start.
     */
    std::vector<std::uint32_t> typeStarts;
};

/** Parameters for the typed generator. */
struct HeteroGeneratorParams {
    std::uint64_t num_nodes = 1000;
    std::uint64_t num_edges = 10000;
    std::uint8_t num_node_types = 3;
    std::uint8_t num_edge_types = 4;
    double degree_exponent = 1.6;
    double endpoint_skew = 0.35;
    std::uint64_t seed = 1;
};

/**
 * Generate a typed power-law graph: structure from the homogeneous
 * generator, node types assigned by hash, edge types drawn per edge.
 */
HeteroGraph generateHeteroGraph(const HeteroGeneratorParams &params);

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_HETERO_HH
