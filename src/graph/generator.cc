#include "generator.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace lsdgnn {
namespace graph {

NodeId
skewedEndpoint(Rng &rng, std::uint64_t num_nodes, double skew)
{
    lsd_assert(num_nodes > 0, "skewedEndpoint needs a non-empty graph");
    lsd_assert(skew > 0.0 && skew <= 1.0, "skew must be in (0,1]");
    const double u = rng.nextDouble();
    const double mapped = std::pow(u, 1.0 / skew);
    auto id = static_cast<NodeId>(mapped * static_cast<double>(num_nodes));
    return std::min<NodeId>(id, num_nodes - 1);
}

CsrGraph
generatePowerLawGraph(const GeneratorParams &params)
{
    lsd_assert(params.num_nodes > 0, "graph must have nodes");
    lsd_assert(params.num_edges >= params.num_nodes * params.min_degree,
               "edge budget below the per-node degree floor");

    Rng rng(params.seed);

    // Draw raw power-law degree weights w_i = u^(-1/(a-1)) (Pareto),
    // then scale so the total matches num_edges. Scaling preserves the
    // distribution's shape; the floor keeps every node reachable.
    const std::uint64_t n = params.num_nodes;
    std::vector<double> weight(n);
    double total = 0.0;
    const double pareto_exp = 1.0 /
        std::max(0.1, params.degree_exponent - 1.0);
    for (std::uint64_t i = 0; i < n; ++i) {
        const double u = std::max(rng.nextDouble(), 1e-12);
        weight[i] = std::pow(u, -pareto_exp);
        total += weight[i];
    }

    const double budget = static_cast<double>(params.num_edges) -
        static_cast<double>(n * params.min_degree);
    std::vector<std::uint64_t> degree(n);
    std::uint64_t assigned = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto extra = static_cast<std::uint64_t>(
            budget * weight[i] / total);
        degree[i] = params.min_degree + extra;
        assigned += degree[i];
    }
    // Distribute the rounding remainder one edge at a time over the
    // heaviest nodes so totals land exactly on num_edges.
    while (assigned < params.num_edges) {
        const NodeId i = skewedEndpoint(rng, n, params.endpoint_skew);
        ++degree[i];
        ++assigned;
    }
    while (assigned > params.num_edges) {
        const NodeId i = skewedEndpoint(rng, n, params.endpoint_skew);
        if (degree[i] > params.min_degree) {
            --degree[i];
            --assigned;
        }
    }

    CsrBuilder builder(n, params.num_edges);
    std::vector<NodeId> adj;
    for (NodeId node = 0; node < n; ++node) {
        adj.clear();
        adj.reserve(degree[node]);
        for (std::uint64_t k = 0; k < degree[node]; ++k) {
            NodeId dest = skewedEndpoint(rng, n, params.endpoint_skew);
            if (dest == node) // avoid trivial self-loops where possible
                dest = (dest + 1) % n;
            adj.push_back(dest);
        }
        builder.addNode(adj);
    }

    CsrGraph g = std::move(builder).build();
    lsd_assert(g.numEdges() == params.num_edges,
               "generator produced wrong edge count: ", g.numEdges());
    return g;
}

} // namespace graph
} // namespace lsdgnn
