/**
 * @file
 * Deterministic synthetic graph generation.
 *
 * E-commerce graphs like the paper's internal datasets have heavily
 * skewed (power-law) degree distributions. The generator reproduces
 * that shape at an arbitrary scale: degrees follow a truncated
 * discrete power law renormalized to the requested average degree,
 * and edge endpoints are drawn with a popularity skew so a small set
 * of "hub" nodes receives a large share of in-edges — the property
 * that makes framework-level hot-node caching (AliGraph) work and
 * leaves the long random tail for the hardware to chase.
 */

#ifndef LSDGNN_GRAPH_GENERATOR_HH
#define LSDGNN_GRAPH_GENERATOR_HH

#include <cstdint>

#include "common/rng.hh"
#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace graph {

/** Parameters for the power-law generator. */
struct GeneratorParams {
    /** Number of nodes to generate. */
    std::uint64_t num_nodes = 1000;
    /** Target number of directed edges (hit within rounding). */
    std::uint64_t num_edges = 10000;
    /** Degree-distribution exponent; larger = more skew. */
    double degree_exponent = 1.6;
    /** Endpoint popularity skew in (0, 1]; 1 = uniform endpoints. */
    double endpoint_skew = 0.35;
    /** Seed for the deterministic RNG. */
    std::uint64_t seed = 1;
    /** Guarantee at least this degree per node (supernode-safe floor). */
    std::uint64_t min_degree = 1;
};

/**
 * Generate a CSR graph from @p params.
 *
 * The result is fully deterministic in the seed, so every test and
 * bench across the repo sees the same graph for the same parameters.
 */
CsrGraph generatePowerLawGraph(const GeneratorParams &params);

/**
 * Draw a skewed endpoint in [0, num_nodes).
 *
 * Uses inverse-transform u^(1/skew) mapping: skew=1 is uniform and
 * smaller values concentrate probability on low node IDs (the hubs).
 * Exposed for tests and for the negative sampler, which must draw
 * from the same popularity distribution.
 */
NodeId skewedEndpoint(Rng &rng, std::uint64_t num_nodes, double skew);

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_GENERATOR_HH
