/**
 * @file
 * Binary graph serialization.
 *
 * Partition snapshots move between storage servers and FPGA boards
 * (the PoC preloads DDR from files); the format is a small
 * magic/version header, the CSR arrays, and an FNV-1a checksum so a
 * truncated or corrupted snapshot is rejected instead of silently
 * loading garbage.
 */

#ifndef LSDGNN_GRAPH_SERIALIZE_HH
#define LSDGNN_GRAPH_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace graph {

/** Serialize @p graph to the stream. */
void saveGraph(std::ostream &os, const CsrGraph &graph);

/** Serialize to a file; fatal on I/O errors. */
void saveGraph(const std::string &path, const CsrGraph &graph);

/**
 * Deserialize a graph. Panics on malformed input (bad magic,
 * version, or checksum).
 */
CsrGraph loadGraph(std::istream &is);

/** Deserialize from a file; fatal when the file cannot be opened. */
CsrGraph loadGraph(const std::string &path);

} // namespace graph
} // namespace lsdgnn

#endif // LSDGNN_GRAPH_SERIALIZE_HH
