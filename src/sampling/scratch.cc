#include "scratch.hh"

namespace lsdgnn {
namespace sampling {

void
CoalescingSet::reserveFor(std::uint64_t max_unique)
{
    std::uint64_t want = 16;
    std::uint32_t shift = 60;
    // Keep the table at most half full so linear probes stay short.
    while (want < 2 * max_unique && want < (1ull << 62)) {
        want <<= 1;
        --shift;
    }
    if (want <= keys.size())
        return;
    keys.assign(want, 0);
    stamps.assign(want, 0);
    counts.assign(want, 0);
    // 32-bit slot indices: a table beyond 2^32 slots would need 32 GB
    // of keys alone, far past anything this repo instantiates.
    occupied_.reserve(max_unique);
    mask_ = want - 1;
    shift_ = shift;
    // Fresh stamps are all zero, so epoch 1 reads as an empty table
    // and the set is usable without an intervening beginBatch().
    epoch_ = 1;
    size_ = 0;
}

} // namespace sampling
} // namespace lsdgnn
