/**
 * @file
 * Reusable scratch state for the sampling hot path.
 *
 * The paper's AxE pipeline keeps GetNeighbor -> GetSample ->
 * GetAttribute free of per-request software overheads: every stage
 * writes into fixed hardware buffers and an 8 KB coalescing cache
 * de-duplicates repeated attribute accesses. This header is the
 * software analogue: flat arenas that are sized once (from the
 * SamplePlan) and reused across every batch a Session executes, so
 * the steady-state sampling loop performs no heap allocation, plus an
 * open-addressing CoalescingSet that lets GetAttribute touch each
 * unique frontier node exactly once.
 *
 * Everything here follows the Session threading contract: one owner
 * thread, no internal locking.
 */

#ifndef LSDGNN_SAMPLING_SCRATCH_HH
#define LSDGNN_SAMPLING_SCRATCH_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace sampling {

/**
 * Per-sampler candidate/weight buffers.
 *
 * StandardRandomSampler needs an N-slot candidate buffer (the same
 * buffer the paper charges conventional sampling hardware for) and
 * DegreeBiasedSampler needs an N-slot weight buffer; both grow to the
 * largest neighborhood seen and are then reused without reallocation.
 */
struct SamplerScratch {
    std::vector<graph::NodeId> candidates;
    std::vector<double> weights;
};

/**
 * Flat open-addressing dedup set over node IDs — the software analog
 * of AxE's coalescing cache in front of GetAttribute.
 *
 * Linear probing over a power-of-two table kept at most half full.
 * Slots are invalidated per batch by an epoch stamp instead of a
 * clear, so beginBatch() is O(1) in steady state; the table only
 * reallocates when a batch can touch more unique nodes than any
 * previous one.
 */
class CoalescingSet
{
  public:
    /**
     * Ensure capacity for @p max_unique distinct insertions; resizes
     * to the next power of two >= 2 * max_unique. No-op (and no
     * allocation) when already large enough.
     */
    void reserveFor(std::uint64_t max_unique);

    /** Start a new batch: previous contents become stale in O(1). */
    void
    beginBatch()
    {
        if (++epoch_ == 0) {
            // Epoch counter wrapped: stale stamps could alias the new
            // epoch, so pay one full clear and restart at epoch 1.
            std::fill(stamps.begin(), stamps.end(), 0u);
            epoch_ = 1;
        }
        occupied_.clear();
        size_ = 0;
    }

    /** Insert @p n; true when it was not yet present this batch. */
    bool
    insert(graph::NodeId n)
    {
        std::uint64_t idx = hash(n);
        while (stamps[idx] == epoch_) {
            if (keys[idx] == n) {
                ++counts[idx];
                return false;
            }
            idx = (idx + 1) & mask_;
        }
        keys[idx] = n;
        stamps[idx] = epoch_;
        counts[idx] = 1;
        occupied_.push_back(static_cast<std::uint32_t>(idx));
        ++size_;
        return true;
    }

    /** Unique nodes inserted since beginBatch(). */
    std::uint64_t size() const { return size_; }

    /** Allocated slots (tests/introspection). */
    std::uint64_t slots() const { return keys.size(); }

    /**
     * Visit every distinct node of the current batch with its access
     * count (insertions since beginBatch()). Lets callers do per-node
     * work — e.g. local/remote classification — once per unique node
     * and scale by multiplicity, instead of once per raw access.
     * O(unique) — walks the occupied-slot list, not the table.
     */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (std::uint32_t slot : occupied_)
            fn(keys[slot], static_cast<std::uint64_t>(counts[slot]));
    }

  private:
    std::uint64_t
    hash(std::uint64_t x) const
    {
        // Fibonacci (multiplicative) hashing, keeping the high bits:
        // one multiply on the hot path, and good enough spread at the
        // <= 0.5 load factor the table guarantees.
        return (x * 0x9e3779b97f4a7c15ull) >> shift_;
    }

    std::vector<graph::NodeId> keys;
    std::vector<std::uint32_t> stamps;
    std::vector<std::uint32_t> counts; ///< accesses per key this batch
    std::vector<std::uint32_t> occupied_; ///< slots filled this batch
    std::uint32_t epoch_ = 0;
    std::uint64_t mask_ = 0;
    std::uint32_t shift_ = 60; ///< 64 - log2(slots)
    std::uint64_t size_ = 0;
};

/**
 * All reusable state one mini-batch sampling engine threads through
 * its hot loop: sampler buffers, the attribute-coalescing set, and a
 * staging arena for randomly drawn roots.
 */
struct SampleScratch {
    SamplerScratch sampler;
    CoalescingSet dedup;
    std::vector<graph::NodeId> roots;
};

} // namespace sampling
} // namespace lsdgnn

#endif // LSDGNN_SAMPLING_SCRATCH_HH
