#include "minibatch.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace sampling {

std::uint64_t
SamplePlan::maxNodesPerBatch() const
{
    std::uint64_t per_root = 0;
    std::uint64_t layer = 1;
    for (std::uint32_t f : fanouts) {
        layer *= f;
        per_root += layer;
    }
    return batch_size * (1 + per_root);
}

std::uint64_t
SampleResult::totalSampled() const
{
    std::uint64_t total = 0;
    for (const auto &hop : frontier)
        total += hop.size();
    return total;
}

double
TrafficStats::structureRequestFraction() const
{
    const std::uint64_t total = totalRequests();
    return total == 0 ? 0.0
        : static_cast<double>(structure_requests) /
          static_cast<double>(total);
}

double
TrafficStats::remoteFraction() const
{
    const std::uint64_t total = remote_requests + local_requests;
    return total == 0 ? 0.0
        : static_cast<double>(remote_requests) /
          static_cast<double>(total);
}

TrafficStats &
TrafficStats::operator+=(const TrafficStats &o)
{
    structure_requests += o.structure_requests;
    structure_bytes += o.structure_bytes;
    attribute_requests += o.attribute_requests;
    attribute_bytes += o.attribute_bytes;
    remote_requests += o.remote_requests;
    local_requests += o.local_requests;
    return *this;
}

MiniBatchSampler::MiniBatchSampler(const graph::CsrGraph &graph,
                                   const graph::AttributeStore &attrs,
                                   const NeighborSampler &sampler,
                                   const graph::Partitioner *partitioner)
    : graph_(graph), attrs_(attrs), sampler_(sampler), part(partitioner)
{
}

void
MiniBatchSampler::accountStructure(graph::NodeId node, std::uint64_t bytes)
{
    ++traffic_.structure_requests;
    traffic_.structure_bytes += bytes;
    if (part) {
        if (part->serverOf(node) == 0)
            ++traffic_.local_requests;
        else
            ++traffic_.remote_requests;
    }
}

void
MiniBatchSampler::accountAttribute(graph::NodeId node)
{
    ++traffic_.attribute_requests;
    traffic_.attribute_bytes += attrs_.bytesPerNode();
    if (part) {
        if (part->serverOf(node) == 0)
            ++traffic_.local_requests;
        else
            ++traffic_.remote_requests;
    }
}

SampleResult
MiniBatchSampler::sampleBatch(const SamplePlan &plan, Rng &rng)
{
    std::vector<graph::NodeId> roots(plan.batch_size);
    for (auto &r : roots)
        r = rng.nextBounded(graph_.numNodes());
    return sampleBatch(plan, roots, rng);
}

SampleResult
MiniBatchSampler::sampleBatch(const SamplePlan &plan,
                              std::span<const graph::NodeId> roots,
                              Rng &rng)
{
    lsd_assert(!plan.fanouts.empty(), "plan needs at least one hop");
    SampleResult result;
    result.roots.assign(roots.begin(), roots.end());
    result.frontier.resize(plan.hops());
    result.parent.resize(plan.hops());

    const std::vector<graph::NodeId> *prev = &result.roots;
    for (std::uint32_t hop = 0; hop < plan.hops(); ++hop) {
        auto &out = result.frontier[hop];
        auto &par = result.parent[hop];
        out.reserve(prev->size() * plan.fanouts[hop]);
        for (std::uint32_t i = 0; i < prev->size(); ++i) {
            const graph::NodeId node = (*prev)[i];
            // GetNeighbor: one fine-grained degree lookup against the
            // CSR offsets, then one 8-byte read per sampled adjacency
            // slot — random positions inside the neighbor list, the
            // pointer-chasing pattern Fig. 2(c) measures.
            const std::uint64_t deg = graph_.degree(node);
            accountStructure(node, structure_word_bytes);
            if (deg == 0)
                continue;
            const std::size_t before = out.size();
            sampler_.sample(graph_.neighbors(node), plan.fanouts[hop],
                            rng, out);
            for (std::size_t j = before; j < out.size(); ++j) {
                accountStructure(node, structure_word_bytes);
                par.push_back(i);
            }
        }
        prev = &out;
    }

    if (plan.fetch_attributes) {
        // GetAttribute: coarse-grained reads for roots + all samples.
        for (graph::NodeId n : result.roots)
            accountAttribute(n);
        for (const auto &hop : result.frontier)
            for (graph::NodeId n : hop)
                accountAttribute(n);
    }
    return result;
}

} // namespace sampling
} // namespace lsdgnn
