#include "minibatch.hh"

#include <limits>

#include "common/logging.hh"

namespace lsdgnn {
namespace sampling {

std::uint64_t
SamplePlan::maxNodesPerBatch() const
{
    constexpr std::uint64_t cap = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t per_root = 0;
    std::uint64_t layer = 1;
    for (std::uint32_t f : fanouts) {
        if (f != 0 && layer > cap / f)
            layer = cap;
        else
            layer *= f;
        per_root = per_root > cap - layer ? cap : per_root + layer;
    }
    const std::uint64_t per_root_total =
        per_root > cap - 1 ? cap : 1 + per_root;
    return per_root_total > cap / std::max<std::uint32_t>(batch_size, 1)
        ? cap
        : batch_size * per_root_total;
}

std::uint64_t
SampleResult::totalSampled() const
{
    std::uint64_t total = 0;
    for (const auto &hop : frontier)
        total += hop.size();
    return total;
}

void
SampleResult::clearForReuse()
{
    roots.clear();
    for (auto &hop : frontier)
        hop.clear();
    for (auto &hop : parent)
        hop.clear();
}

double
TrafficStats::structureRequestFraction() const
{
    const std::uint64_t total = totalRequests();
    return total == 0 ? 0.0
        : static_cast<double>(structure_requests) /
          static_cast<double>(total);
}

double
TrafficStats::remoteFraction() const
{
    const std::uint64_t total = remote_requests + local_requests;
    return total == 0 ? 0.0
        : static_cast<double>(remote_requests) /
          static_cast<double>(total);
}

double
TrafficStats::attributeDedupRate() const
{
    return attribute_requests == 0 ? 0.0
        : 1.0 - static_cast<double>(attribute_requests_unique) /
                static_cast<double>(attribute_requests);
}

TrafficStats &
TrafficStats::operator+=(const TrafficStats &o)
{
    structure_requests += o.structure_requests;
    structure_bytes += o.structure_bytes;
    attribute_requests += o.attribute_requests;
    attribute_bytes += o.attribute_bytes;
    attribute_requests_unique += o.attribute_requests_unique;
    attribute_bytes_unique += o.attribute_bytes_unique;
    remote_requests += o.remote_requests;
    local_requests += o.local_requests;
    return *this;
}

MiniBatchSampler::MiniBatchSampler(const graph::CsrGraph &graph,
                                   const graph::AttributeStore &attrs,
                                   const NeighborSampler &sampler,
                                   const graph::Partitioner *partitioner)
    : graph_(graph), attrs_(attrs), sampler_(sampler), part(partitioner)
{
    group.addCounter("attr_lookups", &coalesceLookups,
                     "raw GetAttribute accesses before coalescing");
    group.addCounter("attr_dedup_hits", &coalesceHits,
                     "attribute accesses absorbed by the frontier "
                     "dedup set (coalescing-cache analogue)");
}

SampleResult
MiniBatchSampler::sampleBatch(const SamplePlan &plan, Rng &rng)
{
    SampleResult result;
    sampleBatchInto(plan, rng, result);
    return result;
}

SampleResult
MiniBatchSampler::sampleBatch(const SamplePlan &plan,
                              std::span<const graph::NodeId> roots,
                              Rng &rng)
{
    SampleResult result;
    sampleBatchInto(plan, roots, rng, result);
    return result;
}

void
MiniBatchSampler::sampleBatchInto(const SamplePlan &plan, Rng &rng,
                                  SampleResult &out)
{
    auto &roots = scratch_.roots;
    roots.resize(plan.batch_size);
    for (auto &r : roots)
        r = rng.nextBounded(graph_.numNodes());
    sampleBatchInto(plan, roots, rng, out);
}

void
MiniBatchSampler::sampleBatchInto(const SamplePlan &plan,
                                  std::span<const graph::NodeId> roots,
                                  Rng &rng, SampleResult &out)
{
    lsd_assert(!plan.fanouts.empty(), "plan needs at least one hop");
    const std::uint32_t hops = plan.hops();
    if (roots.data() != out.roots.data())
        out.roots.assign(roots.begin(), roots.end());
    out.frontier.resize(hops);
    out.parent.resize(hops);

    // Accounting is accumulated in registers inside the loop and
    // flushed once per stage; local/remote classification is done per
    // *parent* node (one serverOf per frontier row, not per sample).
    std::uint64_t struct_reqs = 0, local = 0, remote = 0;

    const graph::NodeId *prev = out.roots.data();
    std::size_t prev_size = out.roots.size();
    for (std::uint32_t hop = 0; hop < hops; ++hop) {
        auto &out_v = out.frontier[hop];
        auto &par = out.parent[hop];
        const std::uint32_t fanout = plan.fanouts[hop];
        // One grow-only arena resize per hop; samples are written
        // through raw pointers and the arena is trimmed to the filled
        // prefix. Growing only when needed means a reused result pays
        // value-initialization solely for the slice beyond the
        // previous batch's fill, not the whole arena.
        const std::size_t arena =
            prev_size * static_cast<std::size_t>(fanout);
        if (out_v.size() < arena)
            out_v.resize(arena);
        if (par.size() < arena)
            par.resize(arena);
        graph::NodeId *op = out_v.data();
        std::uint32_t *pp = par.data();
        std::size_t pos = 0;
        for (std::uint32_t i = 0; i < prev_size; ++i) {
            const graph::NodeId node = prev[i];
            // GetNeighbor: one fine-grained degree lookup against the
            // CSR offsets, then one 8-byte read per sampled adjacency
            // slot — random positions inside the neighbor list, the
            // pointer-chasing pattern Fig. 2(c) measures.
            const std::uint64_t deg = graph_.degree(node);
            std::uint64_t reqs = 1; // the degree read
            if (deg != 0 && fanout != 0) {
                const std::uint32_t cnt = sampler_.sampleInto(
                    graph_.neighbors(node), fanout, rng, op + pos,
                    scratch_.sampler);
                for (std::uint32_t j = 0; j < cnt; ++j)
                    pp[pos + j] = i;
                pos += cnt;
                reqs += cnt;
            }
            struct_reqs += reqs;
            if (part) {
                if (part->serverOf(node) == 0)
                    local += reqs;
                else
                    remote += reqs;
            }
        }
        out_v.resize(pos);
        par.resize(pos);
        prev = out_v.data();
        prev_size = pos;
    }

    traffic_.structure_requests += struct_reqs;
    traffic_.structure_bytes += struct_reqs * structure_word_bytes;

    if (plan.fetch_attributes) {
        // GetAttribute: coarse-grained reads for roots + all samples.
        // The raw stream is accounted in full (that is what Fig. 2(c)
        // characterizes); the CoalescingSet additionally tracks the
        // unique stream an AxE-style coalescing cache would let
        // through to the store. The set counts multiplicity per key,
        // so local/remote classification runs once per *unique* node
        // below instead of once per raw access.
        auto &dedup = scratch_.dedup;
        dedup.reserveFor(
            std::min(plan.maxNodesPerBatch(), graph_.numNodes()));
        dedup.beginBatch();
        std::uint64_t raw = out.roots.size();
        for (graph::NodeId node : out.roots)
            dedup.insert(node);
        for (const auto &hop : out.frontier) {
            raw += hop.size();
            for (graph::NodeId node : hop)
                dedup.insert(node);
        }
        if (part) {
            dedup.forEach([&](graph::NodeId node, std::uint64_t cnt) {
                if (part->serverOf(node) == 0)
                    local += cnt;
                else
                    remote += cnt;
            });
        }

        const std::uint64_t unique = dedup.size();
        const std::uint64_t bytes_per_node = attrs_.bytesPerNode();
        traffic_.attribute_requests += raw;
        traffic_.attribute_bytes += raw * bytes_per_node;
        traffic_.attribute_requests_unique += unique;
        traffic_.attribute_bytes_unique += unique * bytes_per_node;
        coalesceLookups.inc(raw);
        coalesceHits.inc(raw - unique);
    }

    traffic_.local_requests += local;
    traffic_.remote_requests += remote;
}

} // namespace sampling
} // namespace lsdgnn
