#include "workload.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace sampling {

double
WorkloadProfile::meanRequestBytes() const
{
    const double reqs = totalRequestsPerBatch();
    return reqs == 0 ? 0.0 : totalBytesPerBatch() / reqs;
}

double
WorkloadProfile::structureRequestFraction() const
{
    const double reqs = totalRequestsPerBatch();
    return reqs == 0 ? 0.0 : structure_requests_per_batch / reqs;
}

double
WorkloadProfile::remoteFraction(std::uint32_t servers) const
{
    lsd_assert(servers > 0, "need at least one server");
    // Hash partitioning scatters nodes uniformly, so a request lands
    // on the issuing server with probability 1/S.
    return static_cast<double>(servers - 1) /
           static_cast<double>(servers);
}

WorkloadProfile
profileWorkload(const graph::DatasetSpec &spec, const SamplePlan &plan,
                std::uint64_t scale_divisor, std::uint32_t batches,
                std::uint64_t seed)
{
    lsd_assert(batches > 0, "need at least one batch to profile");

    const graph::CsrGraph g =
        graph::instantiate(spec, scale_divisor, seed);
    const graph::AttributeStore attrs(spec.attr_len, seed);
    const StreamingStepSampler sampler;
    MiniBatchSampler engine(g, attrs, sampler);
    Rng rng(seed * 0x2545f4914f6cdd1dull + 17);

    WorkloadProfile prof;
    prof.dataset = spec.name;
    prof.plan = plan;
    prof.attr_bytes_per_node = attrs.bytesPerNode();
    prof.requests_per_hop.assign(plan.hops(), 0.0);

    double samples = 0;
    for (std::uint32_t b = 0; b < batches; ++b) {
        const SampleResult res = engine.sampleBatch(plan, rng);
        samples += static_cast<double>(res.totalSampled());
        // Requests per hop: one degree read + one adjacency read per
        // frontier node of the previous hop; attribute fetches are
        // accounted against the hop that produced the node.
        const std::vector<graph::NodeId> *prev = &res.roots;
        for (std::uint32_t h = 0; h < plan.hops(); ++h) {
            // One degree read per frontier node plus one 8-byte read
            // per sample it produced.
            prof.requests_per_hop[h] += static_cast<double>(
                prev->size() + res.frontier[h].size());
            prev = &res.frontier[h];
        }
    }

    const TrafficStats &traffic = engine.traffic();
    const auto denom = static_cast<double>(batches);
    prof.samples_per_batch = samples / denom;
    prof.structure_requests_per_batch =
        static_cast<double>(traffic.structure_requests) / denom;
    prof.structure_bytes_per_batch =
        static_cast<double>(traffic.structure_bytes) / denom;
    prof.attribute_requests_per_batch =
        static_cast<double>(traffic.attribute_requests) / denom;
    prof.attribute_bytes_per_batch =
        static_cast<double>(traffic.attribute_bytes) / denom;
    for (auto &r : prof.requests_per_hop)
        r /= denom;
    return prof;
}

} // namespace sampling
} // namespace lsdgnn
