#include "negative.hh"

#include <algorithm>

#include "common/logging.hh"
#include "graph/generator.hh"

namespace lsdgnn {
namespace sampling {

NegativeSampler::NegativeSampler(const graph::CsrGraph &graph,
                                 double popularity_skew)
    : graph_(graph), skew(popularity_skew)
{
    lsd_assert(graph.numNodes() > 2,
               "negative sampling needs more than two nodes");
}

bool
NegativeSampler::isNeighbor(graph::NodeId src,
                            graph::NodeId candidate) const
{
    const auto neigh = graph_.neighbors(src);
    return std::find(neigh.begin(), neigh.end(), candidate) != neigh.end();
}

std::vector<graph::NodeId>
NegativeSampler::sample(graph::NodeId src, graph::NodeId dst,
                        std::uint32_t rate, Rng &rng) const
{
    std::vector<graph::NodeId> out;
    sampleInto(src, dst, rate, rng, out);
    return out;
}

void
NegativeSampler::sampleInto(graph::NodeId src, graph::NodeId dst,
                            std::uint32_t rate, Rng &rng,
                            std::vector<graph::NodeId> &out) const
{
    out.clear();
    out.reserve(rate);
    // Bounded rejection: on pathological inputs (node adjacent to the
    // whole graph) fall back to accepting non-src/dst nodes so the
    // call always terminates.
    const std::uint32_t max_tries = rate * 64 + 256;
    std::uint32_t tries = 0;
    while (out.size() < rate && tries < max_tries) {
        ++tries;
        const graph::NodeId cand =
            graph::skewedEndpoint(rng, graph_.numNodes(), skew);
        if (cand == src || cand == dst)
            continue;
        if (isNeighbor(src, cand))
            continue;
        out.push_back(cand);
    }
    while (out.size() < rate) {
        const graph::NodeId cand =
            graph::skewedEndpoint(rng, graph_.numNodes(), skew);
        if (cand != src && cand != dst)
            out.push_back(cand);
    }
}

} // namespace sampling
} // namespace lsdgnn
