/**
 * @file
 * Negative sampling for link-prediction style training.
 *
 * The paper's workloads (Table 2) use a negative sample rate of 10:
 * for every positive (src, dst) pair, ten negatives are drawn from
 * the node popularity distribution, rejecting true neighbors of the
 * source. This matches AxE's "negative sample" command (Table 4).
 */

#ifndef LSDGNN_SAMPLING_NEGATIVE_HH
#define LSDGNN_SAMPLING_NEGATIVE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "graph/csr_graph.hh"

namespace lsdgnn {
namespace sampling {

/**
 * Popularity-proportional negative sampler over a graph.
 */
class NegativeSampler
{
  public:
    /**
     * @param graph Graph supplying node count and adjacency for
     *        rejection.
     * @param popularity_skew Endpoint skew matching the generator's
     *        distribution (1.0 = uniform).
     */
    NegativeSampler(const graph::CsrGraph &graph, double popularity_skew);

    /**
     * Draw @p rate negatives for the positive pair (src, dst).
     *
     * Every returned node is neither @p src, nor @p dst, nor a true
     * neighbor of @p src (checked against the adjacency list).
     */
    std::vector<graph::NodeId> sample(graph::NodeId src,
                                      graph::NodeId dst,
                                      std::uint32_t rate, Rng &rng) const;

    /**
     * Hot-path variant: draw into @p out (cleared first), reusing its
     * capacity. Same rejection logic and RNG sequence as sample().
     */
    void sampleInto(graph::NodeId src, graph::NodeId dst,
                    std::uint32_t rate, Rng &rng,
                    std::vector<graph::NodeId> &out) const;

  private:
    bool isNeighbor(graph::NodeId src, graph::NodeId candidate) const;

    const graph::CsrGraph &graph_;
    double skew;
};

} // namespace sampling
} // namespace lsdgnn

#endif // LSDGNN_SAMPLING_NEGATIVE_HH
