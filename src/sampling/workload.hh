/**
 * @file
 * Workload profiling: turn a (dataset, sampling plan) pair into the
 * per-batch request profile every performance model consumes.
 *
 * The profile is measured by actually running the functional sampler
 * on a scaled instance of the dataset, so request counts, byte
 * volumes and the structure/attribute mix reflect the real degree
 * distribution rather than hand-waved averages.
 */

#ifndef LSDGNN_SAMPLING_WORKLOAD_HH
#define LSDGNN_SAMPLING_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "graph/datasets.hh"
#include "sampling/minibatch.hh"

namespace lsdgnn {
namespace sampling {

/** Per-mini-batch request statistics for one workload. */
struct WorkloadProfile {
    /** Dataset name the profile was measured on. */
    std::string dataset;
    /** The plan that was profiled. */
    SamplePlan plan;
    /** Attribute bytes per node (attr_len * 4). */
    std::uint64_t attr_bytes_per_node = 0;

    /** Mean sampled nodes per batch (all hops, excluding roots). */
    double samples_per_batch = 0;
    /** Mean structure (degree+adjacency) requests per batch. */
    double structure_requests_per_batch = 0;
    /** Mean structure bytes per batch. */
    double structure_bytes_per_batch = 0;
    /** Mean attribute requests per batch. */
    double attribute_requests_per_batch = 0;
    /** Mean attribute bytes per batch. */
    double attribute_bytes_per_batch = 0;
    /** Mean requests per hop (dependency chain = plan.hops()). */
    std::vector<double> requests_per_hop;

    double
    totalRequestsPerBatch() const
    {
        return structure_requests_per_batch +
               attribute_requests_per_batch;
    }

    double
    totalBytesPerBatch() const
    {
        return structure_bytes_per_batch + attribute_bytes_per_batch;
    }

    /** Mean bytes of one request (Eq. 3's sum C_k P_k). */
    double meanRequestBytes() const;

    /** Fraction of requests that are fine-grained structure reads. */
    double structureRequestFraction() const;

    /**
     * Fraction of requests that leave the issuing server when the
     * graph is hash-partitioned over @p servers.
     */
    double remoteFraction(std::uint32_t servers) const;
};

/**
 * Measure the profile of @p spec under @p plan.
 *
 * @param spec Paper dataset.
 * @param plan Sampling plan (Table 2 default when untouched).
 * @param scale_divisor Scale for the functional instance.
 * @param batches Mini-batches to average over.
 */
WorkloadProfile profileWorkload(const graph::DatasetSpec &spec,
                                const SamplePlan &plan,
                                std::uint64_t scale_divisor = 1000,
                                std::uint32_t batches = 8,
                                std::uint64_t seed = 1);

} // namespace sampling
} // namespace lsdgnn

#endif // LSDGNN_SAMPLING_WORKLOAD_HH
