#include "metapath.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace sampling {

std::uint64_t
MetaPathResult::totalSampled() const
{
    std::uint64_t total = 0;
    for (const auto &hop : frontier)
        total += hop.size();
    return total;
}

MetaPathResult
MetaPathSampler::sample(std::span<const graph::NodeId> roots,
                        std::span<const MetaPathStep> path,
                        Rng &rng)
{
    lsd_assert(!path.empty(), "metapath needs at least one step");
    for (const auto &step : path) {
        lsd_assert(step.edge_type < graph_.numEdgeTypes(),
                   "metapath uses unknown edge type ",
                   int(step.edge_type));
        lsd_assert(step.fanout > 0, "metapath fan-out must be positive");
    }

    MetaPathResult result;
    result.roots.assign(roots.begin(), roots.end());
    result.frontier.resize(path.size());
    result.parent.resize(path.size());

    const std::vector<graph::NodeId> *prev = &result.roots;
    for (std::size_t h = 0; h < path.size(); ++h) {
        auto &out = result.frontier[h];
        auto &par = result.parent[h];
        // Pre-size the per-stage expansion exactly like the
        // homogeneous engine: every surviving row emits fanout
        // samples, so this reserve makes the stage allocation-free
        // beyond one growth per (walker, stage-size) high-water mark.
        const std::size_t upper = prev->size() *
            static_cast<std::size_t>(path[h].fanout);
        out.reserve(upper);
        par.reserve(upper);
        for (std::uint32_t i = 0; i < prev->size(); ++i) {
            const graph::NodeId node = (*prev)[i];
            const auto typed =
                graph_.neighbors(node, path[h].edge_type);
            if (typed.empty())
                continue;
            const std::size_t before = out.size();
            out.resize(before + path[h].fanout);
            const std::uint32_t cnt = sampler_.sampleInto(
                typed, path[h].fanout, rng, out.data() + before,
                scratch_);
            out.resize(before + cnt);
            par.resize(before + cnt, i);
        }
        prev = &out;
    }
    return result;
}

} // namespace sampling
} // namespace lsdgnn
