#include "metapath.hh"

#include "common/logging.hh"

namespace lsdgnn {
namespace sampling {

std::uint64_t
MetaPathResult::totalSampled() const
{
    std::uint64_t total = 0;
    for (const auto &hop : frontier)
        total += hop.size();
    return total;
}

MetaPathResult
MetaPathSampler::sample(std::span<const graph::NodeId> roots,
                        std::span<const MetaPathStep> path,
                        Rng &rng) const
{
    lsd_assert(!path.empty(), "metapath needs at least one step");
    for (const auto &step : path) {
        lsd_assert(step.edge_type < graph_.numEdgeTypes(),
                   "metapath uses unknown edge type ",
                   int(step.edge_type));
        lsd_assert(step.fanout > 0, "metapath fan-out must be positive");
    }

    MetaPathResult result;
    result.roots.assign(roots.begin(), roots.end());
    result.frontier.resize(path.size());
    result.parent.resize(path.size());

    const std::vector<graph::NodeId> *prev = &result.roots;
    for (std::size_t h = 0; h < path.size(); ++h) {
        auto &out = result.frontier[h];
        auto &par = result.parent[h];
        for (std::uint32_t i = 0; i < prev->size(); ++i) {
            const graph::NodeId node = (*prev)[i];
            const auto typed =
                graph_.neighbors(node, path[h].edge_type);
            if (typed.empty())
                continue;
            const std::size_t before = out.size();
            sampler_.sample(typed, path[h].fanout, rng, out);
            for (std::size_t j = before; j < out.size(); ++j)
                par.push_back(i);
        }
        prev = &out;
    }
    return result;
}

} // namespace sampling
} // namespace lsdgnn
