/**
 * @file
 * Metapath sampling over heterogeneous graphs.
 *
 * AliGraph's heterogeneous-graph models sample along typed edge
 * sequences (metapaths) such as user -click-> item -bought_by-> user.
 * MetaPathSampler walks a fixed metapath hop by hop, applying the
 * configured K-of-N sampler to the typed neighbor list at each step —
 * the typed analogue of the homogeneous multi-hop plan, and exactly
 * what AxE's GetNeighbor executes when the adjacency is
 * type-partitioned (graph/hetero.hh).
 */

#ifndef LSDGNN_SAMPLING_METAPATH_HH
#define LSDGNN_SAMPLING_METAPATH_HH

#include <cstdint>
#include <vector>

#include "graph/hetero.hh"
#include "sampling/sampler.hh"

namespace lsdgnn {
namespace sampling {

/** One metapath step: follow edges of this type with this fan-out. */
struct MetaPathStep {
    graph::EdgeType edge_type;
    std::uint32_t fanout;
};

/** Result of one metapath walk batch. */
struct MetaPathResult {
    std::vector<graph::NodeId> roots;
    /** frontier[h] holds step-h samples; parent[h][j] indexes the
     *  previous frontier (or roots when h == 0). */
    std::vector<std::vector<graph::NodeId>> frontier;
    std::vector<std::vector<std::uint32_t>> parent;

    std::uint64_t totalSampled() const;
};

/**
 * Typed multi-hop sampler.
 *
 * Not thread-safe: the walker owns reusable sampler scratch buffers
 * (same single-owner contract as MiniBatchSampler).
 */
class MetaPathSampler
{
  public:
    /**
     * @param graph Typed graph to walk.
     * @param sampler K-of-N algorithm per frontier node.
     */
    MetaPathSampler(const graph::HeteroGraph &graph,
                    const NeighborSampler &sampler)
        : graph_(graph), sampler_(sampler)
    {}

    /**
     * Walk @p path from every root. Nodes without typed neighbors at
     * a step contribute no children (the row simply ends there).
     */
    MetaPathResult sample(std::span<const graph::NodeId> roots,
                          std::span<const MetaPathStep> path,
                          Rng &rng);

  private:
    const graph::HeteroGraph &graph_;
    const NeighborSampler &sampler_;
    SamplerScratch scratch_;
};

} // namespace sampling
} // namespace lsdgnn

#endif // LSDGNN_SAMPLING_METAPATH_HH
