#include "sampler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lsdgnn {
namespace sampling {

namespace {

/**
 * Shared N<=K path: with-replacement sampling per AliGraph. Writes
 * exactly k entries — coverage first (every candidate appears), then
 * uniform fill. RNG sequence matches the historical vector path.
 */
std::uint32_t
sampleWithReplacement(std::span<const NodeId> candidates, std::uint32_t k,
                      Rng &rng, NodeId *out)
{
    NodeId *p = out;
    for (NodeId c : candidates)
        *p++ = c;
    for (std::uint32_t i = static_cast<std::uint32_t>(candidates.size());
         i < k; ++i) {
        *p++ = candidates[rng.nextBounded(candidates.size())];
    }
    return k;
}

} // namespace

void
NeighborSampler::sample(std::span<const NodeId> candidates,
                        std::uint32_t k, Rng &rng,
                        std::vector<NodeId> &out) const
{
    if (candidates.empty() || k == 0)
        return;
    SamplerScratch scratch;
    const std::size_t before = out.size();
    out.resize(before + k);
    const std::uint32_t n =
        sampleInto(candidates, k, rng, out.data() + before, scratch);
    out.resize(before + n);
}

std::uint32_t
StandardRandomSampler::sampleInto(std::span<const NodeId> candidates,
                                  std::uint32_t k, Rng &rng, NodeId *out,
                                  SamplerScratch &scratch) const
{
    const std::uint64_t n = candidates.size();
    if (n == 0 || k == 0)
        return 0;
    if (n <= k)
        return sampleWithReplacement(candidates, k, rng, out);
    // Partial Fisher-Yates over a buffered copy: this is exactly the
    // N-slot candidate buffer the paper charges conventional sampling
    // hardware for. The buffer comes from scratch, so steady state
    // pays the copy but never the allocation.
    auto &buf = scratch.candidates;
    buf.assign(candidates.begin(), candidates.end());
    for (std::uint32_t i = 0; i < k; ++i) {
        const std::uint64_t j = i + rng.nextBounded(n - i);
        std::swap(buf[i], buf[j]);
        out[i] = buf[i];
    }
    return k;
}

SamplerCost
StandardRandomSampler::cost(std::uint64_t n, std::uint32_t k) const
{
    // N cycles to fill the candidate buffer + K cycles to draw.
    return SamplerCost{n + k, n};
}

std::uint32_t
ReservoirSampler::sampleInto(std::span<const NodeId> candidates,
                             std::uint32_t k, Rng &rng, NodeId *out,
                             SamplerScratch &scratch) const
{
    (void)scratch;
    const std::uint64_t n = candidates.size();
    if (n == 0 || k == 0)
        return 0;
    if (n <= k)
        return sampleWithReplacement(candidates, k, rng, out);
    // The K output slots are the reservoir — no side buffer needed.
    std::copy(candidates.begin(), candidates.begin() + k, out);
    for (std::uint64_t i = k; i < n; ++i) {
        const std::uint64_t j = rng.nextBounded(i + 1);
        if (j < k)
            out[j] = candidates[i];
    }
    return k;
}

SamplerCost
ReservoirSampler::cost(std::uint64_t n, std::uint32_t k) const
{
    // One cycle per arrival, K reservoir slots; the per-element RNG +
    // compare + random write port is what makes it expensive in LUTs,
    // not the cycle count.
    return SamplerCost{n, k};
}

std::uint32_t
StreamingStepSampler::sampleInto(std::span<const NodeId> candidates,
                                 std::uint32_t k, Rng &rng, NodeId *out,
                                 SamplerScratch &scratch) const
{
    (void)scratch;
    const std::uint64_t n = candidates.size();
    if (n == 0 || k == 0)
        return 0;
    if (n <= k)
        return sampleWithReplacement(candidates, k, rng, out);
    // Divide the N arrivals into K contiguous groups by arrival order;
    // select one uniformly random element inside each group. Group
    // boundaries are floor((g+1)*n/k), generated incrementally with a
    // remainder accumulator so the per-sample loop is division-free
    // (this runs once per sampled neighbor — the hottest loop in the
    // repo).
    const std::uint64_t step = n / k;
    const std::uint64_t rem = n % k;
    std::uint64_t begin = 0;
    std::uint64_t err = 0;
    for (std::uint32_t g = 0; g < k; ++g) {
        std::uint64_t end = begin + step;
        err += rem;
        if (err >= k) {
            err -= k;
            ++end;
        }
        lsd_assert(end > begin, "empty streaming-sampler group");
        const std::uint64_t pick = begin + rng.nextBounded(end - begin);
        out[g] = candidates[pick];
        begin = end;
    }
    return k;
}

SamplerCost
StreamingStepSampler::cost(std::uint64_t n, std::uint32_t k) const
{
    // Streams the arrivals once; no candidate buffer, only the K
    // output registers that every design needs anyway.
    (void)k;
    return SamplerCost{n, 0};
}

SamplerResources
conventionalSamplerResources()
{
    // Anchor numbers for a VU13P-class implementation of a buffered
    // Fisher-Yates datapath (candidate RAM addressing, swap network,
    // per-draw RNG): chosen so the streaming datapath below realizes
    // the paper's reported savings.
    return SamplerResources{24'700, 9'100};
}

SamplerResources
streamingSamplerResources()
{
    const SamplerResources conv = conventionalSamplerResources();
    // Paper: streaming sampling saves 91.9 % LUTs and 23 % registers.
    return SamplerResources{
        static_cast<std::uint64_t>(conv.luts * (1.0 - 0.919)),
        static_cast<std::uint64_t>(conv.registers * (1.0 - 0.23)),
    };
}

std::unique_ptr<NeighborSampler>
makeSampler(const std::string &name)
{
    if (name == "standard")
        return std::make_unique<StandardRandomSampler>();
    if (name == "reservoir")
        return std::make_unique<ReservoirSampler>();
    if (name == "streaming-step")
        return std::make_unique<StreamingStepSampler>();
    lsd_fatal("unknown sampler '", name, "'");
}

} // namespace sampling
} // namespace lsdgnn
