#include "sampler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lsdgnn {
namespace sampling {

namespace {

/** Shared N<K path: with-replacement sampling per AliGraph. */
void
sampleWithReplacement(std::span<const NodeId> candidates, std::uint32_t k,
                      Rng &rng, std::vector<NodeId> &out)
{
    // Guarantee coverage first (every candidate appears), then fill
    // the remainder uniformly at random.
    for (NodeId c : candidates)
        out.push_back(c);
    for (std::uint32_t i = static_cast<std::uint32_t>(candidates.size());
         i < k; ++i) {
        out.push_back(candidates[rng.nextBounded(candidates.size())]);
    }
}

} // namespace

void
StandardRandomSampler::sample(std::span<const NodeId> candidates,
                              std::uint32_t k, Rng &rng,
                              std::vector<NodeId> &out) const
{
    const std::uint64_t n = candidates.size();
    if (n == 0 || k == 0)
        return;
    if (n <= k) {
        sampleWithReplacement(candidates, k, rng, out);
        return;
    }
    // Partial Fisher-Yates over a buffered copy: this is exactly the
    // N-slot candidate buffer the paper charges conventional sampling
    // hardware for.
    std::vector<NodeId> buf(candidates.begin(), candidates.end());
    for (std::uint32_t i = 0; i < k; ++i) {
        const std::uint64_t j = i + rng.nextBounded(n - i);
        std::swap(buf[i], buf[j]);
        out.push_back(buf[i]);
    }
}

SamplerCost
StandardRandomSampler::cost(std::uint64_t n, std::uint32_t k) const
{
    // N cycles to fill the candidate buffer + K cycles to draw.
    return SamplerCost{n + k, n};
}

void
ReservoirSampler::sample(std::span<const NodeId> candidates,
                         std::uint32_t k, Rng &rng,
                         std::vector<NodeId> &out) const
{
    const std::uint64_t n = candidates.size();
    if (n == 0 || k == 0)
        return;
    if (n <= k) {
        sampleWithReplacement(candidates, k, rng, out);
        return;
    }
    std::vector<NodeId> reservoir(candidates.begin(),
                                  candidates.begin() + k);
    for (std::uint64_t i = k; i < n; ++i) {
        const std::uint64_t j = rng.nextBounded(i + 1);
        if (j < k)
            reservoir[j] = candidates[i];
    }
    out.insert(out.end(), reservoir.begin(), reservoir.end());
}

SamplerCost
ReservoirSampler::cost(std::uint64_t n, std::uint32_t k) const
{
    // One cycle per arrival, K reservoir slots; the per-element RNG +
    // compare + random write port is what makes it expensive in LUTs,
    // not the cycle count.
    return SamplerCost{n, k};
}

void
StreamingStepSampler::sample(std::span<const NodeId> candidates,
                             std::uint32_t k, Rng &rng,
                             std::vector<NodeId> &out) const
{
    const std::uint64_t n = candidates.size();
    if (n == 0 || k == 0)
        return;
    if (n <= k) {
        sampleWithReplacement(candidates, k, rng, out);
        return;
    }
    // Divide the N arrivals into K contiguous groups by arrival order;
    // select one uniformly random element inside each group. Group
    // boundaries use fixed-point arithmetic so all N elements are
    // covered even when K does not divide N.
    for (std::uint32_t g = 0; g < k; ++g) {
        const std::uint64_t begin = g * n / k;
        const std::uint64_t end = (g + 1) * n / k;
        lsd_assert(end > begin, "empty streaming-sampler group");
        const std::uint64_t pick = begin + rng.nextBounded(end - begin);
        out.push_back(candidates[pick]);
    }
}

SamplerCost
StreamingStepSampler::cost(std::uint64_t n, std::uint32_t k) const
{
    // Streams the arrivals once; no candidate buffer, only the K
    // output registers that every design needs anyway.
    (void)k;
    return SamplerCost{n, 0};
}

SamplerResources
conventionalSamplerResources()
{
    // Anchor numbers for a VU13P-class implementation of a buffered
    // Fisher-Yates datapath (candidate RAM addressing, swap network,
    // per-draw RNG): chosen so the streaming datapath below realizes
    // the paper's reported savings.
    return SamplerResources{24'700, 9'100};
}

SamplerResources
streamingSamplerResources()
{
    const SamplerResources conv = conventionalSamplerResources();
    // Paper: streaming sampling saves 91.9 % LUTs and 23 % registers.
    return SamplerResources{
        static_cast<std::uint64_t>(conv.luts * (1.0 - 0.919)),
        static_cast<std::uint64_t>(conv.registers * (1.0 - 0.23)),
    };
}

std::unique_ptr<NeighborSampler>
makeSampler(const std::string &name)
{
    if (name == "standard")
        return std::make_unique<StandardRandomSampler>();
    if (name == "reservoir")
        return std::make_unique<ReservoirSampler>();
    if (name == "streaming-step")
        return std::make_unique<StreamingStepSampler>();
    lsd_fatal("unknown sampler '", name, "'");
}

} // namespace sampling
} // namespace lsdgnn
