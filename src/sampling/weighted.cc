#include "weighted.hh"

#include <deque>
#include <numeric>

#include "common/logging.hh"

namespace lsdgnn {
namespace sampling {

AliasTable::AliasTable(std::span<const double> weights)
{
    lsd_assert(!weights.empty(), "alias table needs weights");
    double total = 0;
    for (double w : weights) {
        lsd_assert(w >= 0, "alias weights must be non-negative");
        total += w;
    }
    lsd_assert(total > 0, "alias weights must not all be zero");

    const std::size_t n = weights.size();
    prob.assign(n, 1.0);
    alias.assign(n, 0);
    weightShare.resize(n);

    // Scaled weights: mean 1 per bucket.
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
        weightShare[i] = weights[i] / total;
        scaled[i] = weightShare[i] * static_cast<double>(n);
    }

    std::deque<std::size_t> small, large;
    for (std::size_t i = 0; i < n; ++i)
        (scaled[i] < 1.0 ? small : large).push_back(i);

    while (!small.empty() && !large.empty()) {
        const std::size_t s = small.front();
        small.pop_front();
        const std::size_t l = large.front();
        prob[s] = scaled[s];
        alias[s] = static_cast<std::uint32_t>(l);
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0) {
            large.pop_front();
            small.push_back(l);
        }
    }
    // Leftovers are numerically 1.0.
    for (std::size_t i : small)
        prob[i] = 1.0;
    for (std::size_t i : large)
        prob[i] = 1.0;
}

std::size_t
AliasTable::sample(Rng &rng) const
{
    const std::size_t bucket = rng.nextBounded(prob.size());
    return rng.nextDouble() < prob[bucket] ? bucket : alias[bucket];
}

double
AliasTable::probabilityOf(std::size_t i) const
{
    lsd_assert(i < weightShare.size(), "index out of range");
    return weightShare[i];
}

std::uint32_t
DegreeBiasedSampler::sampleInto(std::span<const graph::NodeId> candidates,
                                std::uint32_t k, Rng &rng,
                                graph::NodeId *out,
                                SamplerScratch &scratch) const
{
    if (candidates.empty() || k == 0)
        return 0;
    // The weight buffer comes from scratch; the alias table itself is
    // rebuilt per call by construction (weights differ per
    // neighborhood), which is the O(n) setup the cost model charges.
    auto &weights = scratch.weights;
    weights.resize(candidates.size());
    bool any = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        weights[i] = static_cast<double>(graph_.degree(candidates[i]));
        any = any || weights[i] > 0;
    }
    if (!any) {
        // All leaves: degenerate to uniform with replacement.
        for (std::uint32_t i = 0; i < k; ++i)
            out[i] = candidates[rng.nextBounded(candidates.size())];
        return k;
    }
    const AliasTable table(weights);
    for (std::uint32_t i = 0; i < k; ++i)
        out[i] = candidates[table.sample(rng)];
    return k;
}

SamplerCost
DegreeBiasedSampler::cost(std::uint64_t n, std::uint32_t k) const
{
    // One pass to accumulate weights (streaming) + K draws; needs the
    // candidate weights buffered to build the table.
    return SamplerCost{n + k, n};
}

} // namespace sampling
} // namespace lsdgnn
