/**
 * @file
 * Mini-batch multi-hop sampling plan and functional engine.
 *
 * This is the workload every other layer of the repo executes: given
 * a batch of root nodes, sample `fanout[h]` neighbors per frontier
 * node for each hop, then fetch attributes for everything touched.
 * The engine also keeps the byte-level traffic accounting (structure
 * vs attribute, local vs remote) behind Fig. 2(c) and the baseline
 * characterization.
 *
 * The execution path is allocation-free in steady state: the engine
 * threads a SampleScratch (see scratch.hh) through every hop, writes
 * samples into pre-sized arenas inside the caller's SampleResult, and
 * de-duplicates the GetAttribute stage with a CoalescingSet — the
 * software analogue of the paper's AxE pipeline buffers and 8 KB
 * coalescing cache. Traffic accounting reports both the raw access
 * stream (what a cache-less baseline would issue, Fig. 2(c)) and the
 * deduplicated unique stream (what survives the coalescing stage).
 */

#ifndef LSDGNN_SAMPLING_MINIBATCH_HH
#define LSDGNN_SAMPLING_MINIBATCH_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "graph/attributes.hh"
#include "graph/csr_graph.hh"
#include "graph/partition.hh"
#include "sampling/sampler.hh"
#include "sampling/scratch.hh"

namespace lsdgnn {
namespace sampling {

/** Static description of one sampling task. */
struct SamplePlan {
    /** Roots per mini-batch. */
    std::uint32_t batch_size = 512;
    /** Neighbors to sample per frontier node, one entry per hop. */
    std::vector<std::uint32_t> fanouts = {10, 10};
    /** Fetch node attributes for sampled nodes. */
    bool fetch_attributes = true;

    std::uint32_t hops() const
    {
        return static_cast<std::uint32_t>(fanouts.size());
    }

    /**
     * Upper bound on nodes touched per batch (roots + all hops).
     * Saturates at UINT64_MAX instead of overflowing on pathological
     * fanout products.
     */
    std::uint64_t maxNodesPerBatch() const;
};

/** One sampled mini-batch: per-hop frontiers. */
struct SampleResult {
    /** Roots of the batch. */
    std::vector<graph::NodeId> roots;
    /**
     * frontier[h] holds the hop-h samples; entry i*fanout..(i+1)*fanout
     * are the children of frontier[h-1][i] (or of roots when h == 0).
     * Nodes with no neighbors contribute no children, so rows are
     * tracked by the companion parent index vector.
     */
    std::vector<std::vector<graph::NodeId>> frontier;
    /** parent[h][j] = index into previous frontier of sample j. */
    std::vector<std::vector<std::uint32_t>> parent;

    /** Total sampled nodes across all hops (excluding roots). */
    std::uint64_t totalSampled() const;

    /** Empty the result while keeping every buffer's capacity. */
    void clearForReuse();
};

/**
 * Free list of SampleResults that keeps vector capacities alive, so a
 * worker that executes the same plan shape repeatedly reuses the same
 * heap blocks batch after batch. Single-owner (one worker thread), no
 * locking.
 */
class SampleResultPool
{
  public:
    /** Get a result (recycled, contents unspecified, when available). */
    SampleResult
    acquire()
    {
        if (free_.empty())
            return SampleResult{};
        SampleResult r = std::move(free_.back());
        free_.pop_back();
        return r;
    }

    /**
     * Return a result to the pool. Its contents become unspecified —
     * deliberately not cleared, so a full-overwrite consumer like
     * sampleBatchInto() can reuse the still-sized buffers without
     * re-initialization.
     */
    void
    release(SampleResult &&r)
    {
        free_.push_back(std::move(r));
    }

    std::size_t size() const { return free_.size(); }

  private:
    std::vector<SampleResult> free_;
};

/** Byte and request accounting for one or more batches. */
struct TrafficStats {
    std::uint64_t structure_requests = 0; ///< degree/adjacency reads
    std::uint64_t structure_bytes = 0;
    std::uint64_t attribute_requests = 0; ///< raw (pre-coalescing)
    std::uint64_t attribute_bytes = 0;
    /** Unique attribute reads after frontier dedup (coalescing). */
    std::uint64_t attribute_requests_unique = 0;
    std::uint64_t attribute_bytes_unique = 0;
    std::uint64_t remote_requests = 0; ///< requests leaving home server
    std::uint64_t local_requests = 0;

    std::uint64_t totalBytes() const
    {
        return structure_bytes + attribute_bytes;
    }

    std::uint64_t totalRequests() const
    {
        return structure_requests + attribute_requests;
    }

    /** Fraction of requests that are fine-grained structure reads. */
    double structureRequestFraction() const;

    /** Fraction of requests that cross servers. */
    double remoteFraction() const;

    /**
     * Fraction of raw attribute reads absorbed by the coalescing
     * dedup stage (0 when no attributes were fetched).
     */
    double attributeDedupRate() const;

    TrafficStats &operator+=(const TrafficStats &o);
};

/**
 * Functional mini-batch sampler over one CSR graph.
 *
 * Partition-awareness is optional: when a Partitioner is supplied the
 * engine classifies every access as local/remote relative to the
 * issuing server (server 0 by convention — the worker's colocated
 * storage process).
 *
 * Not thread-safe: the engine owns per-batch scratch arenas and
 * traffic accounting, matching the Session threading contract (one
 * engine per worker thread).
 */
class MiniBatchSampler
{
  public:
    /**
     * @param graph Graph to sample.
     * @param attrs Attribute store (sizes drive byte accounting).
     * @param sampler K-of-N algorithm to use per frontier node.
     * @param partitioner Optional placement for local/remote split.
     */
    MiniBatchSampler(const graph::CsrGraph &graph,
                     const graph::AttributeStore &attrs,
                     const NeighborSampler &sampler,
                     const graph::Partitioner *partitioner = nullptr);

    /**
     * Sample one mini-batch with roots drawn uniformly at random.
     */
    SampleResult sampleBatch(const SamplePlan &plan, Rng &rng);

    /**
     * Sample one mini-batch from the given roots.
     */
    SampleResult sampleBatch(const SamplePlan &plan,
                             std::span<const graph::NodeId> roots,
                             Rng &rng);

    /**
     * Hot-path variant: sample with random roots into @p out, reusing
     * whatever capacity @p out already holds. Zero heap allocation in
     * steady state (same plan shape batch over batch).
     */
    void sampleBatchInto(const SamplePlan &plan, Rng &rng,
                         SampleResult &out);

    /** Hot-path variant with explicit roots. */
    void sampleBatchInto(const SamplePlan &plan,
                         std::span<const graph::NodeId> roots, Rng &rng,
                         SampleResult &out);

    /** Accumulated traffic accounting since construction/reset. */
    const TrafficStats &traffic() const { return traffic_; }

    void resetTraffic() { traffic_ = TrafficStats{}; }

    /**
     * Coalescing-stage hit rate so far: fraction of attribute
     * lookups answered by the dedup set instead of the store.
     */
    double
    coalesceHitRate() const
    {
        const std::uint64_t lookups = coalesceLookups.value();
        return lookups == 0
            ? 0.0
            : static_cast<double>(coalesceHits.value()) /
              static_cast<double>(lookups);
    }

    /** Engine statistics ("sampling.coalesce.*"). */
    const stats::StatGroup &stats() const { return group; }

  private:
    const graph::CsrGraph &graph_;
    const graph::AttributeStore &attrs_;
    const NeighborSampler &sampler_;
    const graph::Partitioner *part;
    TrafficStats traffic_;
    SampleScratch scratch_;
    stats::StatGroup group{"sampling.coalesce"};
    stats::Counter coalesceLookups; ///< raw GetAttribute accesses
    stats::Counter coalesceHits;    ///< duplicates absorbed by dedup
};

/** Size in bytes of one graph-structure pointer/ID word. */
inline constexpr std::uint64_t structure_word_bytes = 8;

} // namespace sampling
} // namespace lsdgnn

#endif // LSDGNN_SAMPLING_MINIBATCH_HH
