/**
 * @file
 * Neighbor sampling algorithms.
 *
 * Three K-of-N samplers share one interface:
 *  - StandardRandomSampler: exact uniform sampling without
 *    replacement (partial Fisher-Yates). This is the conventional
 *    hardware baseline the paper charges N+K cycles and N buffer
 *    slots.
 *  - ReservoirSampler: classic Algorithm-R streaming reservoir;
 *    exact, O(K) storage, but needs a random replace per element.
 *  - StreamingStepSampler: the paper's Tech-2 step-based approximate
 *    sampler — split the N arrivals into K contiguous groups and take
 *    one uniformly random element per group. O(1) storage beyond the
 *    output, N cycles, fully streaming; approximate because elements
 *    of the same group can never be co-sampled.
 *
 * Each sampler also reports a hardware cost model (cycles and buffer
 * slots) used by the Tech-2 bench to reproduce the paper's latency
 * and resource claims.
 */

#ifndef LSDGNN_SAMPLING_SAMPLER_HH
#define LSDGNN_SAMPLING_SAMPLER_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "graph/csr_graph.hh"
#include "sampling/scratch.hh"

namespace lsdgnn {
namespace sampling {

using graph::NodeId;

/** Hardware cost of one sampling operation. */
struct SamplerCost {
    /** Pipeline cycles to process N candidates and emit K samples. */
    std::uint64_t cycles;
    /** Candidate buffer slots the implementation must provision. */
    std::uint64_t buffer_slots;
};

/**
 * Common interface: draw K of the N candidates.
 *
 * Semantics when N < K follow the AliGraph convention: sample with
 * replacement until K outputs exist (every candidate still appears at
 * least once when N > 0). N == 0 yields no samples.
 */
class NeighborSampler
{
  public:
    virtual ~NeighborSampler() = default;

    /**
     * Hot-path primitive: sample @p k of @p candidates into the
     * caller-provided buffer @p out, which must hold at least @p k
     * slots. Returns the number of samples written: k when the
     * candidate list is non-empty and k > 0, zero otherwise. Never
     * allocates in steady state — any buffered state (the candidate
     * copy of the conventional datapath, alias weights) lives in
     * @p scratch and is reused across calls.
     *
     * The RNG consumption sequence is part of the contract: for a
     * given (candidates, k) it is identical across repeated calls and
     * identical to the historical vector-based path, so golden-seed
     * reproducibility holds through this interface.
     */
    virtual std::uint32_t sampleInto(std::span<const NodeId> candidates,
                                     std::uint32_t k, Rng &rng,
                                     NodeId *out,
                                     SamplerScratch &scratch) const = 0;

    /**
     * Convenience wrapper: sample @p k of @p candidates and append to
     * @p out. Allocation behavior is the vector's; prefer sampleInto()
     * on hot paths.
     */
    void sample(std::span<const NodeId> candidates, std::uint32_t k,
                Rng &rng, std::vector<NodeId> &out) const;

    /** Hardware cost to sample k of n. */
    virtual SamplerCost cost(std::uint64_t n, std::uint32_t k) const = 0;

    /** Algorithm name for reports. */
    virtual std::string name() const = 0;
};

/** Exact uniform K-of-N without replacement (baseline hardware). */
class StandardRandomSampler : public NeighborSampler
{
  public:
    std::uint32_t sampleInto(std::span<const NodeId> candidates,
                             std::uint32_t k, Rng &rng, NodeId *out,
                             SamplerScratch &scratch) const override;
    SamplerCost cost(std::uint64_t n, std::uint32_t k) const override;
    std::string name() const override { return "standard"; }
};

/** Algorithm-R reservoir sampling. */
class ReservoirSampler : public NeighborSampler
{
  public:
    std::uint32_t sampleInto(std::span<const NodeId> candidates,
                             std::uint32_t k, Rng &rng, NodeId *out,
                             SamplerScratch &scratch) const override;
    SamplerCost cost(std::uint64_t n, std::uint32_t k) const override;
    std::string name() const override { return "reservoir"; }
};

/** Paper Tech-2: streaming step-based approximate random sampling. */
class StreamingStepSampler : public NeighborSampler
{
  public:
    std::uint32_t sampleInto(std::span<const NodeId> candidates,
                             std::uint32_t k, Rng &rng, NodeId *out,
                             SamplerScratch &scratch) const override;
    SamplerCost cost(std::uint64_t n, std::uint32_t k) const override;
    std::string name() const override { return "streaming-step"; }
};

/** FPGA resource usage of a sampler datapath (for the Tech-2 bench). */
struct SamplerResources {
    std::uint64_t luts;
    std::uint64_t registers;
};

/**
 * Modeled FPGA resources for the conventional and streaming sampler
 * datapaths. Derived from the paper's reported savings: streaming
 * sampling saves 91.9 % of LUTs and 23 % of registers relative to the
 * conventional buffered design.
 */
SamplerResources conventionalSamplerResources();
SamplerResources streamingSamplerResources();

/** Factory by algorithm name ("standard", "reservoir",
 *  "streaming-step"); fatal on unknown names. */
std::unique_ptr<NeighborSampler> makeSampler(const std::string &name);

} // namespace sampling
} // namespace lsdgnn

#endif // LSDGNN_SAMPLING_SAMPLER_HH
