/**
 * @file
 * Weighted sampling: alias tables and the degree-biased neighbor
 * sampler.
 *
 * The paper's Tech-2 notes that random sampling "is the base for many
 * other sampling methods, such as degree-based sampling": the
 * hardware draws uniform randoms and a weighting stage maps them to
 * biased picks. The software equivalents here are Walker's alias
 * method (O(1) per draw after O(n) setup) and a degree-proportional
 * neighbor sampler built on it, matching AliGraph's in-degree /
 * edge-weight sampling options.
 */

#ifndef LSDGNN_SAMPLING_WEIGHTED_HH
#define LSDGNN_SAMPLING_WEIGHTED_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "graph/csr_graph.hh"
#include "sampling/sampler.hh"

namespace lsdgnn {
namespace sampling {

/**
 * Walker alias table over a fixed weight vector.
 */
class AliasTable
{
  public:
    /**
     * Build from non-negative weights (at least one must be
     * positive).
     */
    explicit AliasTable(std::span<const double> weights);

    /** Draw one index with probability weight[i]/sum(weights). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return prob.size(); }

    /** Exact selection probability of index @p i (tests). */
    double probabilityOf(std::size_t i) const;

  private:
    std::vector<double> prob;  ///< acceptance probability per bucket
    std::vector<std::uint32_t> alias;
    std::vector<double> weightShare; ///< normalized input weights
};

/**
 * Degree-proportional neighbor sampler (with replacement).
 *
 * Candidates are drawn with probability proportional to their
 * out-degree in the bound graph — hubs are favored, mimicking the
 * importance-sampling variants AliGraph exposes. With-replacement
 * semantics everywhere (a biased draw cannot guarantee distinctness
 * in a streaming pipeline).
 */
class DegreeBiasedSampler : public NeighborSampler
{
  public:
    explicit DegreeBiasedSampler(const graph::CsrGraph &graph)
        : graph_(graph)
    {}

    std::uint32_t sampleInto(std::span<const graph::NodeId> candidates,
                             std::uint32_t k, Rng &rng,
                             graph::NodeId *out,
                             SamplerScratch &scratch) const override;

    SamplerCost cost(std::uint64_t n, std::uint32_t k) const override;

    std::string name() const override { return "degree-biased"; }

  private:
    const graph::CsrGraph &graph_;
};

} // namespace sampling
} // namespace lsdgnn

#endif // LSDGNN_SAMPLING_WEIGHTED_HH
